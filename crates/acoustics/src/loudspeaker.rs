//! Playback-device (loudspeaker) model.
//!
//! Replay, voice-synthesis and hidden-voice attacks are all delivered
//! through a loudspeaker (the paper uses a Razer Sound Bar RC30 placed
//! 10 cm behind the barrier). The model captures the two properties that
//! matter downstream: a band-limited frequency response and mild harmonic
//! distortion — both of which are also what audio-domain replay detectors
//! key on.

/// A loudspeaker with band limits and soft-clipping distortion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Loudspeaker {
    /// Low cutoff of the reproduction band in Hz.
    pub low_hz: f32,
    /// High cutoff of the reproduction band in Hz.
    pub high_hz: f32,
    /// Soft-clip drive (0 = perfectly linear).
    pub distortion: f32,
}

impl Loudspeaker {
    /// A small sound-bar similar to the paper's Razer RC30.
    pub fn sound_bar() -> Self {
        Loudspeaker {
            low_hz: 90.0,
            high_hz: 18_000.0,
            distortion: 0.08,
        }
    }

    /// A small portable speaker with a narrower band and more
    /// distortion.
    pub fn portable() -> Self {
        Loudspeaker {
            low_hz: 180.0,
            high_hz: 10_000.0,
            distortion: 0.2,
        }
    }

    /// Plays a signal through the speaker: band-limits it and applies
    /// soft-clipping (tanh) distortion that introduces odd harmonics.
    pub fn play(&self, signal: &[f32], sample_rate: u32) -> Vec<f32> {
        let lo = self.low_hz;
        let hi = self.high_hz.min(sample_rate as f32 / 2.0 * 0.98);
        let key = thrubarrier_dsp::response::curve_key(0x4C53_504B, &[lo, hi]);
        let mut band =
            thrubarrier_dsp::response::filter_cached(key, signal, sample_rate, move |f| {
                if f < lo {
                    (f / lo).powi(2)
                } else if f > hi {
                    (hi / f).powi(2)
                } else {
                    1.0
                }
            });
        if self.distortion <= 0.0 {
            return band;
        }
        // Soft clip around the signal's own scale so distortion is
        // level-independent. The peak scan has to finish before any
        // sample is reshaped, but the tanh itself mutates the filtered
        // buffer in place — no second allocation.
        let peak = thrubarrier_dsp::stats::peak(&band).max(1e-9);
        let drive = 1.0 + 4.0 * self.distortion;
        let norm = drive.tanh();
        for x in &mut band {
            *x = (*x / peak * drive).tanh() / norm * peak;
        }
        band
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrubarrier_dsp::{fft::magnitude_spectrum, gen, stats};

    #[test]
    fn in_band_tone_passes() {
        let sp = Loudspeaker::sound_bar();
        let tone = gen::sine(1_000.0, 0.5, 16_000, 0.5);
        let out = sp.play(&tone, 16_000);
        assert!((stats::rms(&out) - stats::rms(&tone)).abs() / stats::rms(&tone) < 0.15);
    }

    #[test]
    fn sub_band_tone_is_attenuated() {
        let sp = Loudspeaker::portable();
        let tone = gen::sine(50.0, 0.5, 16_000, 0.5);
        let out = sp.play(&tone, 16_000);
        assert!(stats::rms(&out) < 0.2 * stats::rms(&tone));
    }

    #[test]
    fn distortion_creates_odd_harmonics() {
        let sp = Loudspeaker {
            low_hz: 50.0,
            high_hz: 8_000.0,
            distortion: 0.5,
        };
        let tone = gen::sine(500.0, 0.5, 16_000, 0.5);
        let out = sp.play(&tone, 16_000);
        let mags = magnitude_spectrum(&out, 8_192);
        let bin = |hz: f32| (hz / 16_000.0 * 8_192.0).round() as usize;
        let fundamental = mags[bin(500.0)];
        let third = mags[bin(1_500.0) - 1..bin(1_500.0) + 2]
            .iter()
            .cloned()
            .fold(0.0f32, f32::max);
        assert!(third > fundamental * 0.01, "no third harmonic generated");
    }

    #[test]
    fn linear_speaker_adds_no_harmonics() {
        let sp = Loudspeaker {
            low_hz: 50.0,
            high_hz: 8_000.0,
            distortion: 0.0,
        };
        let tone = gen::sine(500.0, 0.5, 16_000, 0.5);
        let out = sp.play(&tone, 16_000);
        let mags = magnitude_spectrum(&out, 8_192);
        let bin = |hz: f32| (hz / 16_000.0 * 8_192.0).round() as usize;
        let fundamental = mags[bin(500.0)];
        let third = mags[bin(1_500.0)];
        assert!(third < fundamental * 0.01);
    }
}
