//! Voice-assistant device models for the attack study (paper Table I).
//!
//! Each device couples a microphone class with a wake-word matcher and —
//! for Siri devices — a speaker-verification gate. The matcher is an
//! MFCC-template correlator: deliberately simple, but it reproduces the
//! properties Table I turns on: (i) louder and cleaner receptions match
//! better, (ii) far-field arrays trigger at lower SPLs, and (iii) Siri
//! devices reject voices whose pitch signature does not match the
//! enrolled user.

use crate::mic::Microphone;
use crate::propagation::rms_to_spl;
use rand::Rng;
use thrubarrier_dsp::mel::MfccExtractor;
use thrubarrier_dsp::stats;

/// Commercial device models evaluated in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VaModel {
    /// Google Home smart speaker ("OK Google").
    GoogleHome,
    /// Amazon Echo smart speaker ("Alexa").
    AlexaEcho,
    /// MacBook Pro ("Hey Siri", speaker verification on).
    MacBookPro,
    /// iPhone ("Hey Siri", speaker verification on).
    IPhone,
}

impl VaModel {
    /// All Table I devices.
    pub fn all() -> [VaModel; 4] {
        [
            VaModel::GoogleHome,
            VaModel::AlexaEcho,
            VaModel::MacBookPro,
            VaModel::IPhone,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            VaModel::GoogleHome => "Google Home",
            VaModel::AlexaEcho => "Alexa Echo",
            VaModel::MacBookPro => "MacBook Pro",
            VaModel::IPhone => "iPhone",
        }
    }

    /// The wake word Table I uses for this device.
    pub fn wake_word(self) -> &'static str {
        match self {
            VaModel::GoogleHome => "ok google",
            VaModel::AlexaEcho => "alexa",
            VaModel::MacBookPro | VaModel::IPhone => "hey siri",
        }
    }
}

/// The outcome of presenting a recording to a VA device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WakeDecision {
    /// Whether the device triggered.
    pub triggered: bool,
    /// MFCC template-match score in `[-1, 1]`.
    pub match_score: f32,
    /// Received level above the device's noise floor, in dB.
    pub snr_db: f32,
    /// Speaker-verification outcome (`None` if the device does not
    /// verify speakers).
    pub verified: Option<bool>,
}

/// A voice-assistant device instance.
#[derive(Debug, Clone)]
pub struct VaDevice {
    /// Which commercial model this emulates.
    pub model: VaModel,
    /// The device's microphone.
    pub mic: Microphone,
    /// Minimum received SNR (dB over noise floor) to attempt matching.
    pub min_snr_db: f32,
    /// Minimum template-match score to trigger.
    pub match_threshold: f32,
    /// Enrolled user's F0 in Hz (Siri-style verification), if any.
    pub enrolled_f0: Option<f32>,
    templates: Vec<Vec<Vec<f32>>>,
}

impl VaDevice {
    /// Builds the Table I configuration for a model. `templates` are
    /// clean wake-word recordings (one or more reference speakers) the
    /// matcher compares against.
    pub fn paper_device(model: VaModel, template_audio: &[Vec<f32>]) -> Self {
        let (mic, min_snr_db, match_threshold) = match model {
            VaModel::GoogleHome => (Microphone::far_field_array(), 9.0, 0.62),
            VaModel::AlexaEcho => (Microphone::far_field_array(), 12.0, 0.68),
            VaModel::MacBookPro => (Microphone::laptop(), 12.4, 0.62),
            VaModel::IPhone => (Microphone::phone(), 18.0, 0.70),
        };
        let extractor = MfccExtractor::paper_default();
        let templates = template_audio
            .iter()
            .map(|sig| prepare_template(&extractor.extract(sig), TEMPLATE_FRAMES))
            .collect();
        let enrolled_f0 = None;
        VaDevice {
            model,
            mic,
            min_snr_db,
            match_threshold,
            enrolled_f0,
            templates,
        }
    }

    /// Enrolls a user's voice (enables speaker verification on Siri
    /// devices; ignored by the matcher on others).
    pub fn enroll_user(&mut self, f0_hz: f32) {
        self.enrolled_f0 = Some(f0_hz);
    }

    /// Whether this model runs speaker verification.
    pub fn verifies_speaker(&self) -> bool {
        matches!(self.model, VaModel::MacBookPro | VaModel::IPhone)
    }

    /// Presents a received recording (already passed through an acoustic
    /// path and this device's microphone) to the wake engine.
    pub fn evaluate(&self, recording: &[f32], sample_rate: u32) -> WakeDecision {
        let noise = crate::propagation::spl_to_rms(self.mic.noise_floor_spl_db);
        let snr_db = rms_to_spl(stats::rms(recording)) - self.mic.noise_floor_spl_db;
        let _ = noise;
        let extractor = MfccExtractor::paper_default();
        let feats = prepare_template(&extractor.extract(recording), TEMPLATE_FRAMES);
        let match_score = self
            .templates
            .iter()
            .map(|t| mfcc_similarity(&feats, t))
            .fold(f32::NEG_INFINITY, f32::max);
        let passes_match = snr_db >= self.min_snr_db && match_score >= self.match_threshold;
        let verified = if self.verifies_speaker() {
            let enrolled = self.enrolled_f0;
            Some(match (enrolled, estimate_f0(recording, sample_rate)) {
                (Some(target), Some(f0)) => (f0 / target).ln().abs() < 0.125,
                _ => false,
            })
        } else {
            None
        };
        let triggered = passes_match && verified.unwrap_or(true);
        WakeDecision {
            triggered,
            match_score,
            snr_db,
            verified,
        }
    }

    /// Records an incident signal with the device's microphone and
    /// evaluates it in one step.
    pub fn hear<R: Rng + ?Sized>(
        &self,
        incident: &[f32],
        sample_rate: u32,
        rng: &mut R,
    ) -> WakeDecision {
        let rec = self.mic.record(incident, sample_rate, rng);
        self.evaluate(rec.samples(), sample_rate)
    }
}

const TEMPLATE_FRAMES: usize = 50;

/// Drops leading/trailing frames whose C0 (log energy) is near the
/// sequence minimum — wake engines match on the spoken span, not the
/// surrounding silence.
fn trim_silence(frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
    if frames.is_empty() {
        return Vec::new();
    }
    let c0: Vec<f32> = frames.iter().map(|f| f[0]).collect();
    let lo = c0.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = c0.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let thr = lo + 0.25 * (hi - lo);
    let first = c0.iter().position(|&e| e > thr).unwrap_or(0);
    let last = c0.iter().rposition(|&e| e > thr).unwrap_or(c0.len() - 1);
    frames[first..=last].to_vec()
}

/// Cepstral mean normalization: subtracts each coefficient's temporal
/// mean. A stationary channel (loudspeaker response, barrier tilt) is a
/// constant additive offset in the cepstral domain, which CMN removes —
/// this is why real wake-word engines keep working through barriers.
fn cepstral_mean_normalize(frames: &mut [Vec<f32>]) {
    if frames.is_empty() {
        return;
    }
    let dims = frames[0].len();
    for d in 0..dims {
        let mean = frames.iter().map(|f| f[d]).sum::<f32>() / frames.len() as f32;
        for f in frames.iter_mut() {
            f[d] -= mean;
        }
    }
}

/// Trim, length-normalize and CMN an MFCC sequence into template form.
fn prepare_template(frames: &[Vec<f32>], target: usize) -> Vec<Vec<f32>> {
    let trimmed = trim_silence(frames);
    let mut normed = normalize_mfcc_length(&trimmed, target);
    cepstral_mean_normalize(&mut normed);
    normed
}

/// Resamples an MFCC sequence to a fixed number of frames (linear
/// interpolation per coefficient), giving a duration-invariant template.
fn normalize_mfcc_length(frames: &[Vec<f32>], target: usize) -> Vec<Vec<f32>> {
    if frames.is_empty() {
        return vec![vec![0.0; 14]; target];
    }
    let n = frames.len();
    let dims = frames[0].len();
    (0..target)
        .map(|i| {
            let pos = i as f32 * (n - 1).max(1) as f32 / (target - 1).max(1) as f32;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(n - 1);
            let frac = pos - lo as f32;
            (0..dims)
                .map(|d| frames[lo][d] * (1.0 - frac) + frames[hi][d] * frac)
                .collect()
        })
        .collect()
}

/// Similarity of two prepared MFCC sequences via dynamic time warping:
/// the average per-frame cosine similarity (C1…C13, C0 excluded) along
/// the best monotone alignment path, with a Sakoe–Chiba band of ±20 %.
/// DTW absorbs the speaking-rate and pause variation that defeats flat
/// frame-by-frame correlation.
fn mfcc_similarity(a: &[Vec<f32>], b: &[Vec<f32>]) -> f32 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return 0.0;
    }
    let cos = |x: &[f32], y: &[f32]| -> f32 {
        let mut dot = 0.0f32;
        let mut nx = 0.0f32;
        let mut ny = 0.0f32;
        for (p, q) in x[1..].iter().zip(&y[1..]) {
            dot += p * q;
            nx += p * p;
            ny += q * q;
        }
        if nx <= 1e-12 || ny <= 1e-12 {
            0.0
        } else {
            dot / (nx.sqrt() * ny.sqrt())
        }
    };
    let band = (n.max(m) / 5).max(2);
    let neg_inf = f32::NEG_INFINITY;
    // acc[i][j] = (best total similarity, path length).
    let mut acc = vec![vec![(neg_inf, 0u32); m]; n];
    for i in 0..n {
        let j_lo = i.saturating_sub(band);
        let j_hi = (i + band + 1).min(m);
        for j in j_lo..j_hi {
            let sim = cos(&a[i], &b[j]);
            let best_prev = if i == 0 && j == 0 {
                Some((0.0f32, 0u32))
            } else {
                let mut best: Option<(f32, u32)> = None;
                for (pi, pj) in [
                    (i.wrapping_sub(1), j),
                    (i, j.wrapping_sub(1)),
                    (i.wrapping_sub(1), j.wrapping_sub(1)),
                ] {
                    if pi < n && pj < m && acc[pi][pj].0 > neg_inf {
                        let cand = acc[pi][pj];
                        let better = match best {
                            None => true,
                            Some(b) => cand.0 / cand.1.max(1) as f32 > b.0 / b.1.max(1) as f32,
                        };
                        if better {
                            best = Some(cand);
                        }
                    }
                }
                best
            };
            if let Some((total, len)) = best_prev {
                acc[i][j] = (total + sim, len + 1);
            }
        }
    }
    let (total, len) = acc[n - 1][m - 1];
    if len == 0 || total == neg_inf {
        0.0
    } else {
        total / len as f32
    }
}

/// Autocorrelation-based F0 estimate over the most energetic 48 ms
/// window. Returns `None` when no periodicity in 70–320 Hz is found.
pub fn estimate_f0(signal: &[f32], sample_rate: u32) -> Option<f32> {
    let fs = sample_rate as f32;
    let win = (0.048 * fs) as usize;
    if signal.len() < win {
        return None;
    }
    // Most energetic window, hopping by half a window.
    let mut best_start = 0usize;
    let mut best_energy = -1.0f32;
    let mut start = 0;
    while start + win <= signal.len() {
        let e: f32 = signal[start..start + win].iter().map(|x| x * x).sum();
        if e > best_energy {
            best_energy = e;
            best_start = start;
        }
        start += win / 2;
    }
    let frame = &signal[best_start..best_start + win];
    let lag_min = (fs / 320.0) as usize;
    let lag_max = (fs / 70.0) as usize;
    if lag_max >= win {
        return None;
    }
    let energy: f32 = frame.iter().map(|x| x * x).sum();
    if energy <= 1e-9 {
        return None;
    }
    let mut best_lag = 0usize;
    let mut best_corr = 0.0f32;
    for lag in lag_min..=lag_max {
        let mut c = 0.0f32;
        for i in 0..win - lag {
            c += frame[i] * frame[i + lag];
        }
        let c_norm = c / energy;
        if c_norm > best_corr {
            best_corr = c_norm;
            best_lag = lag;
        }
    }
    if best_corr > 0.25 && best_lag > 0 {
        Some(fs / best_lag as f32)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrubarrier_dsp::gen;

    #[test]
    fn dtw_similarity_of_identical_sequences_is_one() {
        let frames: Vec<Vec<f32>> = (0..20)
            .map(|i| {
                (0..14)
                    .map(|j| ((i * 14 + j) as f32 * 0.31).sin())
                    .collect()
            })
            .collect();
        let prepared = prepare_template(&frames, TEMPLATE_FRAMES);
        let s = mfcc_similarity(&prepared, &prepared);
        assert!(s > 0.999, "self-similarity {s}");
    }

    #[test]
    fn dtw_absorbs_time_stretching() {
        // The same trajectory sampled at two rates must stay similar.
        let traj = |t: f32| -> Vec<f32> { (0..14).map(|j| (t * 3.0 + j as f32).sin()).collect() };
        let a: Vec<Vec<f32>> = (0..30).map(|i| traj(i as f32 / 30.0)).collect();
        let b: Vec<Vec<f32>> = (0..45).map(|i| traj(i as f32 / 45.0)).collect();
        let pa = prepare_template(&a, TEMPLATE_FRAMES);
        let pb = prepare_template(&b, TEMPLATE_FRAMES);
        let s = mfcc_similarity(&pa, &pb);
        assert!(s > 0.95, "stretched similarity {s}");
    }

    #[test]
    fn cmn_removes_constant_channel_offset() {
        let frames: Vec<Vec<f32>> = (0..10)
            .map(|i| (0..14).map(|j| ((i + j) as f32 * 0.7).cos()).collect())
            .collect();
        // A stationary channel adds a constant per coefficient.
        let offset: Vec<Vec<f32>> = frames
            .iter()
            .map(|f| {
                f.iter()
                    .enumerate()
                    .map(|(j, v)| v + j as f32 * 0.5)
                    .collect()
            })
            .collect();
        let pa = prepare_template(&frames, TEMPLATE_FRAMES);
        let pb = prepare_template(&offset, TEMPLATE_FRAMES);
        let s = mfcc_similarity(&pa, &pb);
        assert!(s > 0.999, "offset similarity {s}");
    }

    #[test]
    fn trim_silence_drops_quiet_edges() {
        // C0 encodes log energy; build quiet-loud-quiet.
        let mut frames = Vec::new();
        for _ in 0..5 {
            frames.push(vec![-10.0f32; 14]);
        }
        for _ in 0..8 {
            frames.push(vec![2.0f32; 14]);
        }
        for _ in 0..5 {
            frames.push(vec![-10.0f32; 14]);
        }
        let trimmed = trim_silence(&frames);
        assert_eq!(trimmed.len(), 8);
        assert!(trimmed.iter().all(|f| f[0] > 0.0));
    }

    #[test]
    fn estimate_f0_recovers_tone_period() {
        // A pulse train at 120 Hz (harmonic-rich like a glottal source).
        let fs = 16_000u32;
        let mut sig = vec![0.0f32; 16_000];
        let period = (fs as f32 / 120.0) as usize;
        for i in (0..sig.len()).step_by(period) {
            sig[i] = 1.0;
        }
        // Smooth to look voiced.
        let sig = thrubarrier_dsp::response::filter_cached(
            thrubarrier_dsp::response::curve_key(0x5641_4630, &[]),
            &sig,
            fs,
            |f| if f < 3_000.0 { 1.0 } else { 0.0 },
        );
        let f0 = estimate_f0(&sig, fs).expect("should detect pitch");
        assert!((f0 - 120.0).abs() < 6.0, "estimated {f0}");
    }

    #[test]
    fn estimate_f0_rejects_noise() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let noise = gen::gaussian_noise(&mut rng, 0.3, 16_000);
        // White noise has low normalized autocorrelation at voice lags.
        if let Some(f0) = estimate_f0(&noise, 16_000) {
            // Accept occasional spurious estimates but they must carry
            // low confidence — re-run with stricter threshold by
            // asserting the estimate is implausible for speech use.
            assert!((70.0..320.0).contains(&f0));
        }
    }

    #[test]
    fn estimate_f0_short_signal_is_none() {
        assert_eq!(estimate_f0(&[0.1; 100], 16_000), None);
    }

    #[test]
    fn template_match_accepts_same_template() {
        let tone = gen::chirp(200.0, 700.0, 0.3, 16_000, 0.6);
        let dev = VaDevice::paper_device(VaModel::GoogleHome, std::slice::from_ref(&tone));
        let d = dev.evaluate(&tone, 16_000);
        assert!(d.match_score > 0.95);
    }

    #[test]
    fn template_match_rejects_different_sound() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let tone = gen::chirp(200.0, 700.0, 0.3, 16_000, 0.6);
        let other = gen::gaussian_noise(&mut rng, 0.3, 9_600);
        let dev = VaDevice::paper_device(VaModel::GoogleHome, &[tone]);
        let d = dev.evaluate(&other, 16_000);
        assert!(d.match_score < 0.5, "score {}", d.match_score);
    }

    #[test]
    fn quiet_reception_does_not_trigger() {
        let tone = gen::chirp(200.0, 700.0, 0.3, 16_000, 0.6);
        let dev = VaDevice::paper_device(VaModel::IPhone, std::slice::from_ref(&tone));
        let quiet: Vec<f32> = tone.iter().map(|x| x * 1e-4).collect();
        let d = dev.evaluate(&quiet, 16_000);
        assert!(!d.triggered);
    }

    #[test]
    fn siri_devices_verify_speakers() {
        let tone = gen::chirp(200.0, 700.0, 0.3, 16_000, 0.6);
        let mut dev = VaDevice::paper_device(VaModel::IPhone, std::slice::from_ref(&tone));
        assert!(dev.verifies_speaker());
        dev.enroll_user(120.0);
        // Without a pitched signal, verification fails and blocks the
        // trigger even on a perfect template match.
        let d = dev.evaluate(&tone, 16_000);
        assert_eq!(d.verified, Some(false));
        assert!(!d.triggered);
    }

    #[test]
    fn smart_speakers_skip_verification() {
        let tone = gen::chirp(200.0, 700.0, 0.3, 16_000, 0.6);
        let dev = VaDevice::paper_device(VaModel::AlexaEcho, std::slice::from_ref(&tone));
        let d = dev.evaluate(&tone, 16_000);
        assert_eq!(d.verified, None);
    }

    #[test]
    fn model_metadata() {
        assert_eq!(VaModel::all().len(), 4);
        assert_eq!(VaModel::GoogleHome.wake_word(), "ok google");
        assert_eq!(VaModel::IPhone.wake_word(), "hey siri");
    }
}
