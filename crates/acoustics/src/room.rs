//! Room models A–D from the paper's evaluation.
//!
//! Paper Sec. VII-A: four rooms — one residential apartment and three
//! university offices — of sizes 7×6 m, 7×7 m, 6×4 m and 5×3 m. The
//! barrier-material paragraph (Sec. VII-D) fixes the mapping: rooms A and
//! D have glass barriers (window / wall), rooms B and C wooden doors.
//! Each room contributes early reflections (image-source style first-order
//! taps) and an ambient noise floor.

use crate::barrier::{Barrier, BarrierMaterial};
use crate::propagation::{propagation_delay_samples, spl_to_rms};
use rand::Rng;

/// The four evaluation rooms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoomId {
    /// Residential apartment, 7×6 m, glass window.
    A,
    /// Office, 7×7 m, wooden door.
    B,
    /// Office, 6×4 m, wooden door.
    C,
    /// Office, 5×3 m, glass wall.
    D,
}

impl RoomId {
    /// All four rooms in order.
    pub fn all() -> [RoomId; 4] {
        [RoomId::A, RoomId::B, RoomId::C, RoomId::D]
    }
}

impl std::fmt::Display for RoomId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoomId::A => write!(f, "Room A"),
            RoomId::B => write!(f, "Room B"),
            RoomId::C => write!(f, "Room C"),
            RoomId::D => write!(f, "Room D"),
        }
    }
}

/// A room: dimensions, barrier and ambient noise.
#[derive(Debug, Clone, PartialEq)]
pub struct Room {
    /// Which evaluation room this is.
    pub id: RoomId,
    /// Floor dimensions `(width, length)` in metres.
    pub size_m: (f32, f32),
    /// The barrier separating the attacker from the room.
    pub barrier: Barrier,
    /// Ambient noise floor in dB SPL.
    pub ambient_spl_db: f32,
    /// Reflection coefficient of the walls (0 = anechoic).
    pub reflectivity: f32,
}

impl Room {
    /// Builds one of the paper's rooms.
    pub fn paper_room(id: RoomId) -> Self {
        match id {
            RoomId::A => Room {
                id,
                size_m: (7.0, 6.0),
                barrier: Barrier::new(BarrierMaterial::GlassWindow),
                ambient_spl_db: 38.0,
                reflectivity: 0.35,
            },
            RoomId::B => Room {
                id,
                size_m: (7.0, 7.0),
                barrier: Barrier::new(BarrierMaterial::WoodenDoor),
                ambient_spl_db: 40.0,
                reflectivity: 0.30,
            },
            RoomId::C => Room {
                id,
                size_m: (6.0, 4.0),
                barrier: Barrier::new(BarrierMaterial::WoodenDoor),
                ambient_spl_db: 40.0,
                reflectivity: 0.30,
            },
            RoomId::D => Room {
                id,
                size_m: (5.0, 3.0),
                barrier: Barrier::new(BarrierMaterial::GlassWall),
                ambient_spl_db: 42.0,
                reflectivity: 0.40,
            },
        }
    }

    /// All four paper rooms.
    pub fn all_paper_rooms() -> Vec<Room> {
        RoomId::all()
            .iter()
            .map(|&id| Room::paper_room(id))
            .collect()
    }

    /// Applies first-order early reflections: one tap per wall pair with
    /// distance-derived delay and reflectivity-scaled gain.
    pub fn apply_reverb(&self, signal: &[f32], sample_rate: u32) -> Vec<f32> {
        self.apply_reverb_taps(signal, sample_rate, &[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0])
    }

    /// Early reflections for a *specific position* in the room: tap
    /// delays and gains are jittered (±30 %), because image-source path
    /// lengths depend on where source and receiver actually stand. Two
    /// devices at different positions therefore hear different echo
    /// patterns of the same sound.
    pub fn apply_reverb_positioned<R: Rng + ?Sized>(
        &self,
        signal: &[f32],
        sample_rate: u32,
        rng: &mut R,
    ) -> Vec<f32> {
        let jd: Vec<f32> = (0..3).map(|_| rng.gen_range(0.7..1.3)).collect();
        let jg: Vec<f32> = (0..3).map(|_| rng.gen_range(0.7..1.3)).collect();
        self.apply_reverb_taps(signal, sample_rate, &jd, &jg)
    }

    /// The room's first-order reflection taps as `(delay_samples, gain)`
    /// pairs, after position jitter. Shared between the staged
    /// convolution below and the fused scene engine, which folds the
    /// same taps into its combined transfer function — both paths must
    /// derive taps from identical arithmetic.
    pub(crate) fn reverb_taps(
        &self,
        sample_rate: u32,
        delay_jitter: &[f32],
        gain_jitter: &[f32],
    ) -> Vec<(usize, f32)> {
        let (w, l) = self.size_m;
        // Representative extra path lengths for first-order images.
        let paths = [w * 0.9, l * 0.9, (w + l) * 0.7];
        let mut taps: Vec<(usize, f32)> = Vec::with_capacity(paths.len());
        for (k, &extra) in paths.iter().enumerate() {
            let extra = extra * delay_jitter[k % delay_jitter.len()];
            let delay = propagation_delay_samples(extra, sample_rate);
            let gain = self.reflectivity * 0.6f32.powi(k as i32) / (1.0 + extra)
                * gain_jitter[k % gain_jitter.len()];
            if delay > 0 {
                taps.push((delay, gain));
            }
        }
        taps
    }

    fn apply_reverb_taps(
        &self,
        signal: &[f32],
        sample_rate: u32,
        delay_jitter: &[f32],
        gain_jitter: &[f32],
    ) -> Vec<f32> {
        let taps = self.reverb_taps(sample_rate, delay_jitter, gain_jitter);
        let max_delay = taps.iter().map(|&(d, _)| d).max().unwrap_or(0);
        if !signal.is_empty() && max_delay + 1 > REVERB_FFT_CROSSOVER {
            convolve_taps_fft(signal, &taps, max_delay)
        } else {
            convolve_taps_direct(signal, &taps)
        }
    }

    /// Adds the room's ambient noise floor to a signal in place.
    pub fn add_ambient_noise<R: Rng + ?Sized>(&self, signal: &mut [f32], rng: &mut R) {
        thrubarrier_dsp::gen::add_gaussian_noise(signal, spl_to_rms(self.ambient_spl_db), rng);
    }
}

/// Echo patterns at least this long (in samples, counting the direct
/// path) convolve in the frequency domain; shorter ones stay on the
/// direct sparse-tap path, which is cheaper than an FFT round-trip.
const REVERB_FFT_CROSSOVER: usize = 256;

/// Direct sparse-tap convolution: one delayed, scaled copy of the signal
/// per tap, added onto the direct path.
fn convolve_taps_direct(signal: &[f32], taps: &[(usize, f32)]) -> Vec<f32> {
    let mut out = signal.to_vec();
    for &(delay, gain) in taps {
        let needed = signal.len() + delay;
        if out.len() < needed {
            out.resize(needed, 0.0);
        }
        for (i, &s) in signal.iter().enumerate() {
            out[i + delay] += gain * s;
        }
    }
    out
}

/// Frequency-domain path: builds the dense impulse response (unit direct
/// path plus one spike per tap) and runs it through the planned-FFT
/// overlap-save convolver, turning O(taps · N) sample updates into
/// O(N log M) streaming blocks.
fn convolve_taps_fft(signal: &[f32], taps: &[(usize, f32)], max_delay: usize) -> Vec<f32> {
    let mut ir = vec![0.0f32; max_delay + 1];
    ir[0] = 1.0;
    for &(delay, gain) in taps {
        ir[delay] += gain;
    }
    thrubarrier_dsp::filter::overlap_save_convolve(signal, &ir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::stats;

    #[test]
    fn paper_room_barriers_match_materials_paragraph() {
        assert!(Room::paper_room(RoomId::A).barrier.material.is_glass());
        assert!(!Room::paper_room(RoomId::B).barrier.material.is_glass());
        assert!(!Room::paper_room(RoomId::C).barrier.material.is_glass());
        assert!(Room::paper_room(RoomId::D).barrier.material.is_glass());
    }

    #[test]
    fn paper_room_sizes() {
        assert_eq!(Room::paper_room(RoomId::A).size_m, (7.0, 6.0));
        assert_eq!(Room::paper_room(RoomId::B).size_m, (7.0, 7.0));
        assert_eq!(Room::paper_room(RoomId::C).size_m, (6.0, 4.0));
        assert_eq!(Room::paper_room(RoomId::D).size_m, (5.0, 3.0));
    }

    #[test]
    fn reverb_extends_signal_and_preserves_direct_path() {
        let room = Room::paper_room(RoomId::A);
        let mut sig = vec![0.0f32; 400];
        sig[0] = 1.0;
        let out = room.apply_reverb(&sig, 16_000);
        assert!(out.len() > sig.len());
        assert!((out[0] - 1.0).abs() < 1e-6, "direct path altered");
        // Echo energy exists after the direct impulse.
        let tail: f32 = out[1..].iter().map(|x| x.abs()).sum();
        assert!(tail > 0.0);
    }

    #[test]
    fn reverb_echoes_are_quieter_than_direct() {
        let room = Room::paper_room(RoomId::D);
        let mut sig = vec![0.0f32; 400];
        sig[0] = 1.0;
        let out = room.apply_reverb(&sig, 16_000);
        let max_echo = out[1..].iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        assert!(max_echo < 0.5);
    }

    #[test]
    fn ambient_noise_matches_room_level() {
        let room = Room::paper_room(RoomId::B);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sig = vec![0.0f32; 40_000];
        room.add_ambient_noise(&mut sig, &mut rng);
        let spl = crate::propagation::rms_to_spl(stats::rms(&sig));
        assert!((spl - room.ambient_spl_db).abs() < 0.5, "{spl}");
    }

    #[test]
    fn ambient_noise_is_well_below_speech() {
        // Speech at 65 dB must dominate every room's floor by >20 dB.
        for room in Room::all_paper_rooms() {
            assert!(room.ambient_spl_db < 45.0);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(RoomId::A.to_string(), "Room A");
        assert_eq!(RoomId::all().len(), 4);
    }

    #[test]
    fn fft_reverb_path_matches_direct_tap_path() {
        // Tap sets straddling the crossover, including colliding delays.
        let tap_sets: [&[(usize, f32)]; 3] = [
            &[(300, 0.3), (550, 0.18), (901, 0.07)],
            &[(257, 0.25)],
            &[(400, 0.2), (400, 0.1), (1_023, 0.05)],
        ];
        let signal: Vec<f32> = (0..2_000)
            .map(|i| ((i * 31) % 17) as f32 * 0.05 - 0.4)
            .collect();
        for taps in tap_sets {
            let max_delay = taps.iter().map(|&(d, _)| d).max().unwrap();
            let direct = convolve_taps_direct(&signal, taps);
            let fft = convolve_taps_fft(&signal, taps, max_delay);
            assert_eq!(direct.len(), fft.len());
            for (i, (a, b)) in direct.iter().zip(&fft).enumerate() {
                assert!((a - b).abs() < 1e-4, "sample {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn paper_rooms_cross_into_fft_path_at_audio_rate() {
        // At 16 kHz every paper room's longest image path exceeds the
        // crossover, so the routed output must still match the direct
        // tap computation exactly enough for downstream correlation.
        let signal: Vec<f32> = (0..1_500).map(|i| (i as f32 * 0.07).sin()).collect();
        for room in Room::all_paper_rooms() {
            let (w, l) = room.size_m;
            let longest = propagation_delay_samples((w + l) * 0.7, 16_000);
            assert!(
                longest + 1 > REVERB_FFT_CROSSOVER,
                "{}: longest tap {longest}",
                room.id
            );
            let routed = room.apply_reverb(&signal, 16_000);
            // Rebuild the tap set exactly as apply_reverb_taps does.
            let paths = [w * 0.9, l * 0.9, (w + l) * 0.7];
            let taps: Vec<(usize, f32)> = paths
                .iter()
                .enumerate()
                .filter_map(|(k, &extra)| {
                    let delay = propagation_delay_samples(extra, 16_000);
                    let gain = room.reflectivity * 0.6f32.powi(k as i32) / (1.0 + extra);
                    (delay > 0).then_some((delay, gain))
                })
                .collect();
            let direct = convolve_taps_direct(&signal, &taps);
            assert_eq!(routed.len(), direct.len());
            for (i, (a, b)) in direct.iter().zip(&routed).enumerate() {
                assert!((a - b).abs() < 1e-4, "{} sample {i}: {a} vs {b}", room.id);
            }
        }
    }
}
