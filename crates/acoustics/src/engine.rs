//! Fused single-pass acoustic scene-rendering engine.
//!
//! The staged rendering chain ([`AcousticPath::record_staged`]) walks a
//! recording through **3–4 independent frequency-domain round-trips**:
//! the loudspeaker band-limit, the barrier transmission curve, the
//! overlap-save reverb convolution and the microphone gain/roll-off
//! each run their own forward + inverse FFT over the full signal, with
//! a full-size temporary per stage. But everything after the
//! loudspeaker's tanh soft-clip is LTI, so the whole middle of the
//! chain is one transfer function:
//!
//! ```text
//! H[k] = barrier[k] · distance_gain · e^{-jω_k d} ·
//!        (1 + Σ_t g_t e^{-jω_k t_t}) · mic[k]
//! ```
//!
//! The engine renders it as **one forward + one inverse transform**:
//!
//! 1. run the loudspeaker (nonlinear, stays in the time domain);
//! 2. draw the reverb position jitter and build the tap set — the same
//!    draws, in the same order, as the staged chain;
//! 3. forward real FFT of the played signal at
//!    `next_pow2(delay + len + max_tap)` — sized for the *output*, so
//!    the delay and tap terms never wrap;
//! 4. multiply each bin by the combined transfer: barrier and mic gains
//!    come from the same cached [`ResponseCurve`] tables the staged
//!    stages filter through, the propagation delay and reverb taps are
//!    exact [`fft::unit_roots`] table lookups, and the spreading loss
//!    is a scalar;
//! 5. one inverse transform, truncated to the staged output length;
//! 6. ambient noise, microphone self-noise and full-scale clamping in
//!    the time domain, drawing the RNG in the staged order.
//!
//! Fused and staged outputs agree at tolerance level, not bitwise, for
//! two structural reasons. First, the staged chain truncates after the
//! barrier stage (circular convolution at `next_pow2(len)`, pad region
//! re-zeroed) where the fused pass keeps the curve's ringing tail in a
//! larger transform. Second, the staged chain adds ambient noise
//! *before* the microphone, so the mic's high-pass also filters the
//! noise floor; the fused pass adds it after the spectral pass, scaled
//! by the mic's passband (array) gain. The high-pass corner sits at
//! 60–80 Hz — about 1 % of a 16 kHz recording's white-noise energy —
//! so the difference stays inside the noise-floor term of the parity
//! tolerance. Both gaps are gated by proptests against the kept staged
//! oracle, exactly like the conversion and correlation engines.
//!
//! [`SceneEngine`] owns the spectrum scratch and [`with_engine`] hands
//! out a per-thread instance (the `ConversionEngine` pattern), so
//! steady-state renders allocate only their output buffer. The
//! `eval.build.propagation` span — previously wrapped around the
//! recording pair in `eval::scenario` — lives on
//! [`SceneEngine::record`] now, one span per rendered path, next to
//! per-path `acoustics.render.path.*` counters.
//!
//! [`ResponseCurve`]: thrubarrier_dsp::response::ResponseCurve

use crate::mic::Microphone;
use crate::propagation::{distance_gain, propagation_delay_samples, spl_to_rms};
use crate::scene::AcousticPath;
use rand::Rng;
use std::cell::RefCell;
use thrubarrier_dsp::{fft, gen, AudioBuffer, Complex};

/// Which implementation an [`AcousticPath::record`] call runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RenderPath {
    /// The fused single-pass engine (this module).
    #[default]
    Fused,
    /// The staged per-stage chain — the parity oracle.
    Staged,
}

/// Reusable scratch for fused acoustic-path renders.
///
/// Holds the half-spectrum working buffer; FFT plans, unit-root tables
/// and sampled response curves come from the dsp crate's caches. One
/// engine renders any number of paths of any length — the buffer grows
/// to the largest render seen and is reused.
#[derive(Debug, Default)]
pub struct SceneEngine {
    /// Half-spectrum of the padded played signal (`n/2 + 1` bins).
    spec: Vec<Complex>,
    /// Combined per-bin gain (spreading loss × mic × barrier curves).
    gain: Vec<f32>,
}

impl SceneEngine {
    /// Creates an engine with empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders one acoustic path into a microphone recording on the
    /// path selected by `path.render`. Semantics match
    /// [`AcousticPath::record_staged`]: same output rate and length,
    /// same RNG draw sequence, tolerance-level numeric agreement.
    pub fn record<R: Rng + ?Sized>(
        &mut self,
        path: &AcousticPath,
        source: &[f32],
        sample_rate: u32,
        mic: &Microphone,
        rng: &mut R,
    ) -> AudioBuffer {
        let _span = thrubarrier_obs::span!("eval.build.propagation");
        match path.render {
            RenderPath::Fused => {
                thrubarrier_obs::counter!("acoustics.render.path.fused").incr();
                self.record_fused(path, source, sample_rate, mic, rng)
            }
            RenderPath::Staged => {
                thrubarrier_obs::counter!("acoustics.render.path.staged").incr();
                path.record_staged(source, sample_rate, mic, rng)
            }
        }
    }

    /// The fused render: loudspeaker in time domain, one forward
    /// transform, combined-transfer multiply, one inverse transform,
    /// then the noise/clamp tail.
    fn record_fused<R: Rng + ?Sized>(
        &mut self,
        path: &AcousticPath,
        source: &[f32],
        sample_rate: u32,
        mic: &Microphone,
        rng: &mut R,
    ) -> AudioBuffer {
        // Nonlinear front: the soft-clipping playback device cannot be
        // folded into the transfer function.
        let played;
        let sig: &[f32] = match &path.loudspeaker {
            Some(sp) => {
                played = sp.play(source, sample_rate);
                &played
            }
            None => source,
        };

        // Position jitter in the staged draw order
        // (`Room::apply_reverb_positioned`: 3 delay draws, 3 gain
        // draws), then the identical tap arithmetic.
        let jd: Vec<f32> = (0..3).map(|_| rng.gen_range(0.7..1.3)).collect();
        let jg: Vec<f32> = (0..3).map(|_| rng.gen_range(0.7..1.3)).collect();
        let taps = path.room.reverb_taps(sample_rate, &jd, &jg);
        let max_tap = taps.iter().map(|&(d, _)| d).max().unwrap_or(0);
        let delay = propagation_delay_samples(path.distance_m, sample_rate);
        // The staged chain's output length: travel delay + signal +
        // reverb tail (`convolve_taps_*` extend by the longest tap).
        let len_full = delay + sig.len() + max_tap;

        let mut out = if sig.is_empty() {
            // Filtered silence is silence; only the noise tail below
            // touches the samples.
            vec![0.0f32; len_full]
        } else {
            let n = fft::next_pow2(len_full);
            fft::half_spectrum_into(sig, n, &mut self.spec);
            self.apply_transfer(path, mic, n, sample_rate, delay, &taps);
            let mut time = Vec::with_capacity(n);
            fft::real_inverse_into(&self.spec, n, &mut time);
            time.truncate(len_full);
            time
        };

        // Noise tail in the staged order: one full-buffer ambient pass,
        // then one full-buffer self-noise pass (never interleaved — the
        // staged chain finishes the ambient stage before the mic
        // draws) with the full-scale clamp fused into it.
        let ambient_std = spl_to_rms(path.room.ambient_spl_db);
        let mic_gain = thrubarrier_dsp::stats::db_to_amplitude(mic.array_gain_db);
        gen::add_gaussian_noise(&mut out, ambient_std * mic_gain, rng);
        gen::add_gaussian_noise_clamped(&mut out, mic.noise_std(), rng);
        AudioBuffer::new(out, sample_rate)
    }

    /// Multiplies the held spectrum by the combined transfer function:
    /// per-bin barrier and microphone gains from the shared curve
    /// cache, the scalar spreading loss, and exact unit-root phase
    /// terms for the travel delay and each reverb tap.
    fn apply_transfer(
        &mut self,
        path: &AcousticPath,
        mic: &Microphone,
        n: usize,
        sample_rate: u32,
        delay: usize,
        taps: &[(usize, f32)],
    ) {
        let roots = fft::unit_roots(n);
        let barrier = path
            .through_barrier
            .then(|| path.room.barrier.response_curve(n, sample_rate));
        let mic_curve = mic.response_curve(n, sample_rate);
        let g = distance_gain(path.distance_m);
        // Re-slicing every table to the known bin count lets the zipped
        // loops below compile without bounds checks.
        debug_assert!(n.is_power_of_two());
        let roots = &roots[..n];
        let bins = self.spec.len();
        let mic_gains = &mic_curve.gains()[..bins];
        // Combine spreading loss × mic × barrier into one gain array
        // first: a branch-free sequential pass the compiler can
        // vectorize, and it keeps the phase loop's working set down to
        // the unit-root table plus two linear streams. The product is
        // ordered (g·mg)·bg on both arms so adding a barrier never
        // re-rounds the barrier-free factors.
        self.gain.clear();
        match &barrier {
            Some(b) => self.gain.extend(
                mic_gains
                    .iter()
                    .zip(&b.gains()[..bins])
                    .map(|(&mg, &bg)| g * mg * bg),
            ),
            None => self.gain.extend(mic_gains.iter().map(|&mg| g * mg)),
        }
        // Delay + reverb phase: e^{-jω_k d}·(1 + Σ g_t e^{-jω_k t}) —
        // all table lookups, since a shift by s samples rotates bin k
        // by root (k·s) mod n. Each term's index walks the table with
        // a running stride (step < n, so one conditional subtract
        // wraps it) — no per-bin multiply or modulo. Every room model
        // emits three first-order reflections, so the three-tap case
        // gets a specialized loop whose running indices live in
        // registers; the generic loop covers degenerate tap sets.
        if let &[(td0, tg0), (td1, tg1), (td2, tg2)] = taps {
            let (s0, s1, s2) = (delay + td0, delay + td1, delay + td2);
            let (mut id, mut i0, mut i1, mut i2) = (0usize, 0usize, 0usize, 0usize);
            for (v, &scale) in self.spec.iter_mut().zip(&self.gain) {
                let h =
                    roots[id] + roots[i0].scale(tg0) + roots[i1].scale(tg1) + roots[i2].scale(tg2);
                *v *= h.scale(scale);
                id += delay;
                i0 += s0;
                i1 += s1;
                i2 += s2;
                if id >= n {
                    id -= n;
                }
                if i0 >= n {
                    i0 -= n;
                }
                if i1 >= n {
                    i1 -= n;
                }
                if i2 >= n {
                    i2 -= n;
                }
            }
            return;
        }
        let mut delay_idx = 0usize;
        let mut tap_idx: Vec<(usize, usize, f32)> = taps
            .iter()
            .map(|&(td, tg)| (delay + td, 0usize, tg))
            .collect();
        for (v, &scale) in self.spec.iter_mut().zip(&self.gain) {
            let mut h = roots[delay_idx];
            for &(_, idx, tg) in tap_idx.iter() {
                h += roots[idx].scale(tg);
            }
            *v *= h.scale(scale);
            delay_idx += delay;
            if delay_idx >= n {
                delay_idx -= n;
            }
            for (step, idx, _) in tap_idx.iter_mut() {
                *idx += *step;
                if *idx >= n {
                    *idx -= n;
                }
            }
        }
    }
}

thread_local! {
    static ENGINE: RefCell<SceneEngine> = RefCell::new(SceneEngine::new());
}

/// Runs `f` with this thread's [`SceneEngine`] — the per-thread
/// scratch-reuse entry point ([`AcousticPath::record`] goes through
/// it).
///
/// # Panics
///
/// Panics if `f` re-enters `with_engine` on the same thread (the
/// engine is a single per-thread instance behind a `RefCell`).
pub fn with_engine<R>(f: impl FnOnce(&mut SceneEngine) -> R) -> R {
    ENGINE.with(|e| f(&mut e.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loudspeaker::Loudspeaker;
    use crate::room::{Room, RoomId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::stats;

    #[test]
    fn staged_path_selector_reproduces_oracle_bitwise() {
        let path =
            AcousticPath::thru_barrier(Room::paper_room(RoomId::B), 2.0, Loudspeaker::sound_bar())
                .with_render(RenderPath::Staged);
        let sig = thrubarrier_dsp::gen::chirp(150.0, 3_000.0, 0.2, 16_000, 0.4);
        let mic = Microphone::far_field_array();
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let via_engine = path.record(&sig, 16_000, &mic, &mut rng_a);
        let direct = path.record_staged(&sig, 16_000, &mic, &mut rng_b);
        assert_eq!(via_engine.samples(), direct.samples());
    }

    #[test]
    fn fused_output_matches_staged_length_and_onset() {
        let path = AcousticPath::direct(Room::paper_room(RoomId::A), 3.43); // 10 ms
        let mut src = vec![0.0f32; 400];
        src[0] = 1.0;
        let mic = Microphone::phone();
        let mut rng_f = StdRng::seed_from_u64(11);
        let mut rng_s = StdRng::seed_from_u64(11);
        let fused = path.record(&src, 16_000, &mic, &mut rng_f);
        let staged = path.record_staged(&src, 16_000, &mic, &mut rng_s);
        assert_eq!(fused.len(), staged.len());
        // The impulse still lands 160 samples in, well above the noise.
        let peak_at = fused
            .samples()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(peak_at, 160);
    }

    #[test]
    fn fused_tracks_staged_at_tolerance() {
        let path =
            AcousticPath::thru_barrier(Room::paper_room(RoomId::D), 2.5, Loudspeaker::portable());
        let sig = thrubarrier_dsp::gen::chirp(120.0, 2_500.0, 0.3, 16_000, 0.5);
        let mic = Microphone::laptop();
        let mut rng_f = StdRng::seed_from_u64(7);
        let mut rng_s = StdRng::seed_from_u64(7);
        let fused = path.record(&sig, 16_000, &mic, &mut rng_f);
        let staged = path.record_staged(&sig, 16_000, &mic, &mut rng_s);
        assert_eq!(fused.len(), staged.len());
        let diff: Vec<f32> = fused
            .samples()
            .iter()
            .zip(staged.samples())
            .map(|(a, b)| a - b)
            .collect();
        let floor = spl_to_rms(path.room.ambient_spl_db) + mic.noise_std();
        assert!(
            stats::rms(&diff) <= 0.15 * stats::rms(staged.samples()) + 2.0 * floor,
            "diff rms {} vs staged rms {}",
            stats::rms(&diff),
            stats::rms(staged.samples())
        );
    }

    #[test]
    fn empty_source_keeps_rng_stream_aligned_with_staged() {
        for distance in [0.0, 2.0] {
            let path = AcousticPath::direct(Room::paper_room(RoomId::C), distance);
            let mic = Microphone::wearable();
            let mut rng_f = StdRng::seed_from_u64(5);
            let mut rng_s = StdRng::seed_from_u64(5);
            let fused = path.record(&[], 16_000, &mic, &mut rng_f);
            let staged = path.record_staged(&[], 16_000, &mic, &mut rng_s);
            assert_eq!(fused.len(), staged.len(), "distance {distance}");
            // Both paths must have consumed the same number of draws.
            assert_eq!(rng_f.gen::<u64>(), rng_s.gen::<u64>());
        }
    }
}
