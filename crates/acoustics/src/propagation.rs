//! Sound-pressure-level calibration, spreading loss and travel delay.
//!
//! Calibration convention for the whole workspace: a digital RMS
//! amplitude of `1.0` corresponds to 94 dB SPL (the standard 1 Pa
//! microphone calibration point). Conversational speech at 65–75 dB SPL
//! therefore has RMS amplitude ≈ 0.035–0.11.

/// Speed of sound used for propagation delays, in m/s.
pub const SPEED_OF_SOUND: f32 = 343.0;

/// The SPL that maps to digital RMS 1.0.
pub const REFERENCE_SPL_DB: f32 = 94.0;

/// Converts a sound pressure level to the digital RMS amplitude of the
/// calibration convention.
///
/// # Example
///
/// ```
/// let a = thrubarrier_acoustics::propagation::spl_to_rms(94.0);
/// assert!((a - 1.0).abs() < 1e-6);
/// ```
pub fn spl_to_rms(spl_db: f32) -> f32 {
    10f32.powf((spl_db - REFERENCE_SPL_DB) / 20.0)
}

/// Converts a digital RMS amplitude back to dB SPL.
pub fn rms_to_spl(rms: f32) -> f32 {
    REFERENCE_SPL_DB + 20.0 * rms.max(1e-12).log10()
}

/// Scales a signal so that its RMS corresponds to `target_spl_db` at the
/// point of emission. Returns the applied gain (0 for a silent input).
pub fn calibrate_to_spl(signal: &mut [f32], target_spl_db: f32) -> f32 {
    let rms = thrubarrier_dsp::stats::rms(signal);
    if rms <= 0.0 {
        return 0.0;
    }
    let gain = spl_to_rms(target_spl_db) / rms;
    for v in signal.iter_mut() {
        *v *= gain;
    }
    gain
}

/// Scales synthesized speech (whose reference-vowel RMS is
/// [`thrubarrier_phoneme::synth::REFERENCE_RMS`]) so that the *passage*
/// level matches `spl_db` while per-phoneme intrinsic intensity
/// differences are preserved. Returns the gain to apply.
pub fn speech_gain_for_spl(spl_db: f32) -> f32 {
    spl_to_rms(spl_db) / thrubarrier_phoneme::synth::REFERENCE_RMS
}

/// Spherical-spreading amplitude gain from a source at `distance_m`
/// relative to the 1 m reference distance. Distances below 0.2 m are
/// clamped (near field).
pub fn distance_gain(distance_m: f32) -> f32 {
    1.0 / distance_m.max(0.2)
}

/// Propagation delay in whole samples for a path of `distance_m` at
/// `sample_rate`.
pub fn propagation_delay_samples(distance_m: f32, sample_rate: u32) -> usize {
    (distance_m / SPEED_OF_SOUND * sample_rate as f32).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spl_roundtrip() {
        for spl in [40.0, 65.0, 75.0, 85.0, 94.0] {
            assert!((rms_to_spl(spl_to_rms(spl)) - spl).abs() < 1e-3);
        }
    }

    #[test]
    fn conversational_speech_amplitude_range() {
        assert!((spl_to_rms(65.0) - 0.0355).abs() < 0.002);
        assert!((spl_to_rms(75.0) - 0.112).abs() < 0.005);
    }

    #[test]
    fn calibrate_sets_rms() {
        let mut sig: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.1).sin()).collect();
        calibrate_to_spl(&mut sig, 70.0);
        let spl = rms_to_spl(thrubarrier_dsp::stats::rms(&sig));
        assert!((spl - 70.0).abs() < 0.1);
    }

    #[test]
    fn calibrate_silence_is_noop() {
        let mut sig = vec![0.0f32; 10];
        assert_eq!(calibrate_to_spl(&mut sig, 70.0), 0.0);
        assert!(sig.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn distance_gain_follows_inverse_law() {
        assert!((distance_gain(1.0) - 1.0).abs() < 1e-6);
        assert!((distance_gain(2.0) - 0.5).abs() < 1e-6);
        assert!((distance_gain(4.0) - 0.25).abs() < 1e-6);
        // Near-field clamp.
        assert_eq!(distance_gain(0.01), distance_gain(0.2));
    }

    #[test]
    fn delay_scales_with_distance() {
        let d1 = propagation_delay_samples(3.43, 16_000);
        assert_eq!(d1, 160); // 10 ms at 16 kHz
        assert_eq!(propagation_delay_samples(0.0, 16_000), 0);
    }
}
