//! Acoustic environment substrate: barriers, rooms, propagation,
//! microphones, loudspeakers and voice-assistant device models.
//!
//! The paper's physical testbed — apartments and offices with glass
//! windows / wooden doors / glass walls, a Razer RC30 loudspeaker
//! replaying attack sounds behind the barrier, commercial VA devices two
//! metres inside — is replaced here by physics-based models:
//!
//! * [`barrier`] — the **frequency-selective barrier effect** (paper
//!   Sec. III-B, Eq. 1): transmission filters built from the
//!   frequency–material-dependent attenuation coefficient α(f, η). High
//!   frequencies (> 500 Hz) lose far more energy than the 85–500 Hz
//!   speech fundamentals, which is the physical signature the defense
//!   detects.
//! * [`propagation`] — dB-SPL calibration, spherical spreading loss and
//!   travel delay.
//! * [`room`] — rooms A–D from the paper's evaluation with early
//!   reflections and ambient noise levels.
//! * [`mic`] — microphone models (sensitivity, noise floor, clipping).
//! * [`loudspeaker`] — playback-device model (band limits plus mild
//!   harmonic distortion) used by replay/synthesis/hidden attacks.
//! * [`scene`] — composition of a full acoustic path
//!   (source → loudspeaker? → barrier? → distance → reverb → microphone).
//! * [`engine`] — the fused scene-rendering engine: the path's whole
//!   LTI middle (barrier × spreading × delay × reverb taps × mic) as
//!   one combined transfer function, applied in a single spectral pass.
//! * [`va`] — voice-assistant device models (wake-word matcher,
//!   Siri-style speaker-verification gate) for the Table I attack study.

#![warn(missing_docs)]

pub mod barrier;
pub mod engine;
pub mod loudspeaker;
pub mod mic;
pub mod propagation;
pub mod room;
pub mod scene;
pub mod va;

pub use barrier::{Barrier, BarrierMaterial};
pub use engine::{RenderPath, SceneEngine};
pub use mic::Microphone;
pub use room::{Room, RoomId};
pub use scene::AcousticPath;
pub use va::VaDevice;
