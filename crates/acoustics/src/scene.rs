//! Composition of a complete acoustic path from a source to a
//! microphone.

use crate::engine::{self, RenderPath};
use crate::loudspeaker::Loudspeaker;
use crate::mic::Microphone;
use crate::propagation::{distance_gain, propagation_delay_samples};
use crate::room::Room;
use rand::Rng;
use thrubarrier_dsp::AudioBuffer;

/// An acoustic path: optional playback device, optional barrier
/// crossing, spreading loss over a distance, room reverberation and
/// ambient noise.
///
/// Legitimate users speak directly (`loudspeaker: None`,
/// `through_barrier: false`); thru-barrier attackers play sound through a
/// loudspeaker behind the room's barrier.
#[derive(Debug, Clone)]
pub struct AcousticPath {
    /// The room the microphone is in.
    pub room: Room,
    /// Whether the sound crosses the room's barrier.
    pub through_barrier: bool,
    /// Total source-to-microphone distance in metres.
    pub distance_m: f32,
    /// Playback device for replayed sounds, if any.
    pub loudspeaker: Option<Loudspeaker>,
    /// Which rendering implementation [`AcousticPath::record`] uses.
    pub render: RenderPath,
}

impl AcousticPath {
    /// A legitimate user speaking inside the room at `distance_m` from
    /// the microphone.
    pub fn direct(room: Room, distance_m: f32) -> Self {
        AcousticPath {
            room,
            through_barrier: false,
            distance_m,
            loudspeaker: None,
            render: RenderPath::default(),
        }
    }

    /// A thru-barrier attack path: loudspeaker behind the barrier,
    /// `distance_m` from barrier to microphone (the paper places the
    /// speaker 10 cm behind the barrier, which we fold into the total).
    pub fn thru_barrier(room: Room, distance_m: f32, loudspeaker: Loudspeaker) -> Self {
        AcousticPath {
            room,
            through_barrier: true,
            distance_m,
            loudspeaker: Some(loudspeaker),
            render: RenderPath::default(),
        }
    }

    /// The same path with an explicit rendering implementation (parity
    /// tests and benches pin [`RenderPath::Staged`]; everything else
    /// keeps the default).
    pub fn with_render(mut self, render: RenderPath) -> Self {
        self.render = render;
        self
    }

    /// The shared linear front of the staged chain: playback device,
    /// barrier, spreading loss and travel delay — everything before the
    /// reverberation stage. Borrows the source straight through when
    /// there is no loudspeaker instead of copying it.
    fn staged_front(&self, source: &[f32], sample_rate: u32) -> Vec<f32> {
        let played;
        let sig: &[f32] = match &self.loudspeaker {
            Some(sp) => {
                played = sp.play(source, sample_rate);
                &played
            }
            None => source,
        };
        let crossed;
        let sig: &[f32] = if self.through_barrier {
            crossed = self.room.barrier.transmit(sig, sample_rate);
            &crossed
        } else {
            sig
        };
        let g = distance_gain(self.distance_m);
        let delay = propagation_delay_samples(self.distance_m, sample_rate);
        let mut delayed = Vec::with_capacity(delay + sig.len());
        delayed.resize(delay, 0.0);
        delayed.extend(sig.iter().map(|&v| v * g));
        delayed
    }

    /// Propagates a source signal along the path (everything except the
    /// microphone's own transduction): playback device, barrier,
    /// spreading loss, travel delay, reverberation.
    pub fn transmit(&self, source: &[f32], sample_rate: u32) -> Vec<f32> {
        let delayed = self.staged_front(source, sample_rate);
        self.room.apply_reverb(&delayed, sample_rate)
    }

    /// Like [`AcousticPath::transmit`] but with position-dependent
    /// (jittered) early reflections.
    pub fn transmit_positioned<R: Rng + ?Sized>(
        &self,
        source: &[f32],
        sample_rate: u32,
        rng: &mut R,
    ) -> Vec<f32> {
        let delayed = self.staged_front(source, sample_rate);
        self.room
            .apply_reverb_positioned(&delayed, sample_rate, rng)
    }

    /// Propagates the source and records it with `mic`, including the
    /// room's ambient noise. Reflections are position-dependent: each
    /// recording device hears its own echo pattern.
    ///
    /// Rendering is dispatched on [`AcousticPath::render`]: the default
    /// fused path runs the whole linear chain in one spectral pass on
    /// the per-thread [`engine::SceneEngine`]; [`RenderPath::Staged`]
    /// keeps the original stage-by-stage chain as the parity oracle.
    pub fn record<R: Rng + ?Sized>(
        &self,
        source: &[f32],
        sample_rate: u32,
        mic: &Microphone,
        rng: &mut R,
    ) -> AudioBuffer {
        engine::with_engine(|e| e.record(self, source, sample_rate, mic, rng))
    }

    /// The staged rendering chain: transmit stage by stage, add ambient
    /// noise, then run the microphone. Kept as the parity oracle for
    /// the fused scene engine — its RNG draw order (reverb jitter,
    /// ambient, mic self-noise) is the contract the fused path matches.
    pub fn record_staged<R: Rng + ?Sized>(
        &self,
        source: &[f32],
        sample_rate: u32,
        mic: &Microphone,
        rng: &mut R,
    ) -> AudioBuffer {
        let mut incident = self.transmit_positioned(source, sample_rate, rng);
        self.room.add_ambient_noise(&mut incident, rng);
        mic.record(&incident, sample_rate, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::room::RoomId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::{gen, stats};

    fn band_rms(sig: &[f32], fs: f32, lo: f32, hi: f32) -> f32 {
        let filtered = thrubarrier_dsp::response::filter_cached(
            thrubarrier_dsp::response::curve_key(0x5343_4E42, &[lo, hi]),
            sig,
            fs as u32,
            |f| if f >= lo && f < hi { 1.0 } else { 0.0 },
        );
        stats::rms(&filtered)
    }

    #[test]
    fn direct_path_keeps_spectral_balance() {
        let room = Room::paper_room(RoomId::A);
        let path = AcousticPath::direct(room, 2.0);
        let mut src = gen::sine(300.0, 0.5, 16_000, 0.5);
        let high = gen::sine(3_000.0, 0.5, 16_000, 0.5);
        thrubarrier_dsp::gen::mix_into(&mut src, &high);
        let out = path.transmit(&src, 16_000);
        let low_ratio =
            band_rms(&out, 16_000.0, 200.0, 400.0) / band_rms(&src, 16_000.0, 200.0, 400.0);
        let high_ratio =
            band_rms(&out, 16_000.0, 2_800.0, 3_200.0) / band_rms(&src, 16_000.0, 2_800.0, 3_200.0);
        // Both bands lose the same spreading factor.
        assert!((low_ratio - high_ratio).abs() / low_ratio < 0.25);
    }

    #[test]
    fn barrier_path_tilts_spectrum_to_low_frequencies() {
        let room = Room::paper_room(RoomId::A);
        let path = AcousticPath::thru_barrier(room, 2.0, Loudspeaker::sound_bar());
        let mut src = gen::sine(300.0, 0.5, 16_000, 0.5);
        let high = gen::sine(3_000.0, 0.5, 16_000, 0.5);
        thrubarrier_dsp::gen::mix_into(&mut src, &high);
        let out = path.transmit(&src, 16_000);
        let low = band_rms(&out, 16_000.0, 200.0, 400.0);
        let high_b = band_rms(&out, 16_000.0, 2_800.0, 3_200.0);
        assert!(low > 5.0 * high_b, "low {low} vs high {high_b}");
    }

    #[test]
    fn transmit_applies_distance_loss() {
        let room = Room::paper_room(RoomId::B);
        let near = AcousticPath::direct(room.clone(), 1.0);
        let far = AcousticPath::direct(room, 4.0);
        let src = gen::sine(500.0, 0.5, 16_000, 0.25);
        let rn = stats::rms(&near.transmit(&src, 16_000));
        let rf = stats::rms(&far.transmit(&src, 16_000));
        assert!((rn / rf - 4.0).abs() < 0.8, "ratio {}", rn / rf);
    }

    #[test]
    fn record_includes_noise_floor() {
        let room = Room::paper_room(RoomId::C);
        let path = AcousticPath::direct(room, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let rec = path.record(
            &vec![0.0; 8_000],
            16_000,
            &Microphone::far_field_array(),
            &mut rng,
        );
        assert!(rec.rms() > 0.0);
    }

    #[test]
    fn transmit_delays_signal_onset() {
        let room = Room::paper_room(RoomId::A);
        let path = AcousticPath::direct(room, 3.43); // 10 ms
        let mut src = vec![0.0f32; 400];
        src[0] = 1.0;
        let out = path.transmit(&src, 16_000);
        let onset = out.iter().position(|&x| x.abs() > 1e-4).unwrap();
        assert_eq!(onset, 160);
    }
}
