//! Frequency-selective barrier transmission — the *barrier effect*.
//!
//! Paper Sec. III-B models attenuation through a medium as
//! `P(x + Δd) = P(x) · e^(−α(f, η) Δd)` (Eq. 1) where α is the
//! frequency- and material-dependent attenuation/absorption coefficient.
//! The paper's convention (kept here, and worth restating because it is
//! the opposite of some acoustics texts): **larger α means the sound
//! penetrates more easily**. The cited coefficients are:
//!
//! | material | α (low freq) | α (high freq) |
//! |---|---|---|
//! | glass window | 0.10 | 0.02 |
//! | wooden door  | 0.14 | 0.04 |
//! | brick wall   | ~0.02 | ~0.02 |
//!
//! We turn these into a transmission-loss curve
//! `TL(f) = L₀ · α_low / α(f)` with `L₀` the material's low-frequency
//! loss, interpolating α between its low- and high-frequency values over
//! 500 Hz – 2 kHz (log-frequency). Glass then loses ≈ 6 dB below 500 Hz
//! and ≈ 30 dB above 2 kHz — reproducing the measured shape of paper
//! Fig. 3 — while a brick wall loses ≈ 28 dB everywhere, matching the
//! paper's observation that brick makes thru-barrier attacks impractical.

use thrubarrier_dsp::response;

/// Barrier materials studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarrierMaterial {
    /// Glass window (rooms A's barrier).
    GlassWindow,
    /// Interior glass wall (room D's barrier).
    GlassWall,
    /// Wooden door (rooms B and C's barrier).
    WoodenDoor,
    /// Brick/concrete wall — high, flat attenuation.
    BrickWall,
}

impl BarrierMaterial {
    /// Attenuation coefficient α at low frequencies (≤ 500 Hz), paper
    /// convention (larger ⇒ easier penetration).
    pub fn alpha_low(self) -> f32 {
        match self {
            BarrierMaterial::GlassWindow => 0.10,
            BarrierMaterial::GlassWall => 0.09,
            BarrierMaterial::WoodenDoor => 0.14,
            BarrierMaterial::BrickWall => 0.022,
        }
    }

    /// Attenuation coefficient α at high frequencies (≥ 2 kHz).
    pub fn alpha_high(self) -> f32 {
        match self {
            BarrierMaterial::GlassWindow => 0.02,
            BarrierMaterial::GlassWall => 0.018,
            BarrierMaterial::WoodenDoor => 0.035,
            BarrierMaterial::BrickWall => 0.02,
        }
    }

    /// Low-frequency transmission loss `L₀` in dB.
    pub fn base_loss_db(self) -> f32 {
        match self {
            BarrierMaterial::GlassWindow => 7.5,
            BarrierMaterial::GlassWall => 8.0,
            BarrierMaterial::WoodenDoor => 9.5,
            BarrierMaterial::BrickWall => 28.0,
        }
    }

    /// Whether the material is glass (for the Fig. 11b wood-vs-glass
    /// grouping).
    pub fn is_glass(self) -> bool {
        matches!(
            self,
            BarrierMaterial::GlassWindow | BarrierMaterial::GlassWall
        )
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            BarrierMaterial::GlassWindow => "glass window",
            BarrierMaterial::GlassWall => "glass wall",
            BarrierMaterial::WoodenDoor => "wooden door",
            BarrierMaterial::BrickWall => "brick wall",
        }
    }
}

/// A physical barrier between the attacker and the protected room.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Barrier {
    /// Material of the barrier.
    pub material: BarrierMaterial,
}

impl Barrier {
    /// Creates a barrier of the given material.
    pub fn new(material: BarrierMaterial) -> Self {
        Barrier { material }
    }

    /// The attenuation coefficient α(f, η) of paper Eq. 1,
    /// log-interpolated between the material's low- and high-frequency
    /// values across 500 Hz – 2 kHz.
    pub fn alpha(&self, freq_hz: f32) -> f32 {
        let lo = self.material.alpha_low();
        let hi = self.material.alpha_high();
        if freq_hz <= 500.0 {
            lo
        } else if freq_hz >= 2_000.0 {
            hi
        } else {
            let t = (freq_hz / 500.0).ln() / (2_000.0f32 / 500.0).ln();
            lo * (hi / lo).powf(t)
        }
    }

    /// Transmission loss in dB at `freq_hz` (positive = loss).
    ///
    /// Above 2 kHz a mass-law term (+9 dB/octave) is added on top of the
    /// α-derived plateau: rigid panels keep getting harder to penetrate
    /// as frequency rises.
    pub fn transmission_loss_db(&self, freq_hz: f32) -> f32 {
        let base = self.material.base_loss_db() * self.material.alpha_low() / self.alpha(freq_hz);
        let mass_law = if freq_hz > 2_000.0 {
            9.0 * (freq_hz / 2_000.0).log2()
        } else {
            0.0
        };
        base + mass_law
    }

    /// Linear amplitude gain at `freq_hz` (always in `(0, 1]`).
    pub fn transmission_gain(&self, freq_hz: f32) -> f32 {
        thrubarrier_dsp::stats::db_to_amplitude(-self.transmission_loss_db(freq_hz))
    }

    /// The transmission curve sampled for an `n_fft`-point FFT at
    /// `sample_rate`, from the response-curve cache. The curve is fully
    /// determined by the material's three coefficients, so it is
    /// sampled once per (material, fft-size, rate) and shared between
    /// [`Barrier::transmit`] and the fused scene engine — both paths
    /// multiply bit-identical gain tables.
    pub(crate) fn response_curve(
        &self,
        n_fft: usize,
        sample_rate: u32,
    ) -> std::sync::Arc<response::ResponseCurve> {
        let this = *self;
        let key = response::curve_key(
            0x0042_4152_5249_4552,
            &[
                self.material.alpha_low(),
                self.material.alpha_high(),
                self.material.base_loss_db(),
            ],
        );
        response::cached_curve(key, n_fft, sample_rate, move |f| this.transmission_gain(f))
    }

    /// Filters a signal through the barrier (frequency-domain
    /// application of the transmission curve).
    pub fn transmit(&self, signal: &[f32], sample_rate: u32) -> Vec<f32> {
        let _span = thrubarrier_obs::span!("acoustics.barrier_transmit");
        if signal.is_empty() {
            return Vec::new();
        }
        let n = thrubarrier_dsp::fft::next_pow2(signal.len());
        self.response_curve(n, sample_rate).filter(signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrubarrier_dsp::{gen, stats};

    #[test]
    fn alpha_endpoints_match_paper_values() {
        let b = Barrier::new(BarrierMaterial::GlassWindow);
        assert!((b.alpha(100.0) - 0.10).abs() < 1e-6);
        assert!((b.alpha(4_000.0) - 0.02).abs() < 1e-6);
        let w = Barrier::new(BarrierMaterial::WoodenDoor);
        assert!((w.alpha(100.0) - 0.14).abs() < 1e-6);
        assert!((w.alpha(4_000.0) - 0.035).abs() < 1e-6);
    }

    #[test]
    fn alpha_is_monotone_decreasing_in_frequency() {
        let b = Barrier::new(BarrierMaterial::GlassWindow);
        let mut prev = b.alpha(0.0);
        for k in 1..100 {
            let a = b.alpha(k as f32 * 80.0);
            assert!(a <= prev + 1e-9);
            prev = a;
        }
    }

    #[test]
    fn high_frequencies_lose_more_than_low() {
        for m in [
            BarrierMaterial::GlassWindow,
            BarrierMaterial::GlassWall,
            BarrierMaterial::WoodenDoor,
        ] {
            let b = Barrier::new(m);
            let low = b.transmission_loss_db(200.0);
            let high = b.transmission_loss_db(3_000.0);
            assert!(high > low + 15.0, "{m:?}: low {low} dB, high {high} dB");
        }
    }

    #[test]
    fn glass_loss_matches_fig3_shape() {
        let b = Barrier::new(BarrierMaterial::GlassWindow);
        // Low band loses little; >2 kHz loses the α-ratio plateau
        // (7.5 dB x 5) plus the mass-law rise.
        assert!((b.transmission_loss_db(100.0) - 7.5).abs() < 0.5);
        let at_3k = b.transmission_loss_db(3_000.0);
        assert!((at_3k - 42.8).abs() < 2.0, "TL(3 kHz) = {at_3k}");
    }

    #[test]
    fn brick_wall_attenuates_flat_and_hard() {
        let b = Barrier::new(BarrierMaterial::BrickWall);
        let low = b.transmission_loss_db(200.0);
        let mid = b.transmission_loss_db(1_800.0);
        assert!(low > 25.0);
        // Flat α plateau below the mass-law region.
        assert!(
            (mid - low).abs() < 5.0,
            "brick should be ~flat: {low} vs {mid}"
        );
        // Everything is hard to penetrate, low frequencies included.
        assert!(b.transmission_loss_db(100.0) > 25.0);
    }

    #[test]
    fn transmit_prefers_low_frequency_tone() {
        let b = Barrier::new(BarrierMaterial::GlassWindow);
        let low = gen::sine(200.0, 1.0, 16_000, 0.5);
        let high = gen::sine(3_000.0, 1.0, 16_000, 0.5);
        let low_out = stats::rms(&b.transmit(&low, 16_000));
        let high_out = stats::rms(&b.transmit(&high, 16_000));
        let low_ratio = low_out / stats::rms(&low);
        let high_ratio = high_out / stats::rms(&high);
        assert!(low_ratio > 3.0 * high_ratio, "{low_ratio} vs {high_ratio}");
    }

    #[test]
    fn transmission_gain_is_bounded() {
        for m in [
            BarrierMaterial::GlassWindow,
            BarrierMaterial::GlassWall,
            BarrierMaterial::WoodenDoor,
            BarrierMaterial::BrickWall,
        ] {
            let b = Barrier::new(m);
            for k in 0..80 {
                let g = b.transmission_gain(k as f32 * 100.0);
                assert!(g > 0.0 && g <= 1.0, "{m:?} at {k}: {g}");
            }
        }
    }

    #[test]
    fn material_grouping() {
        assert!(BarrierMaterial::GlassWindow.is_glass());
        assert!(BarrierMaterial::GlassWall.is_glass());
        assert!(!BarrierMaterial::WoodenDoor.is_glass());
        assert!(!BarrierMaterial::BrickWall.is_glass());
    }
}
