//! Microphone models.

use crate::propagation::spl_to_rms;
use rand::Rng;
use thrubarrier_dsp::AudioBuffer;

/// A microphone: frequency band, self-noise floor and clipping.
///
/// Smart speakers carry sensitive far-field microphone arrays (modelled
/// by a low noise floor and a small array gain); phone and wearable
/// microphones are noisier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Microphone {
    /// Equivalent input-noise level in dB SPL.
    pub noise_floor_spl_db: f32,
    /// Gain applied by array beamforming / AGC front-ends, in dB.
    pub array_gain_db: f32,
    /// Low-frequency roll-off corner in Hz.
    pub highpass_hz: f32,
}

impl Microphone {
    /// A far-field array microphone (smart-speaker class).
    pub fn far_field_array() -> Self {
        Microphone {
            noise_floor_spl_db: 33.0,
            array_gain_db: 6.0,
            highpass_hz: 60.0,
        }
    }

    /// A laptop-class microphone.
    pub fn laptop() -> Self {
        Microphone {
            noise_floor_spl_db: 43.0,
            array_gain_db: 2.0,
            highpass_hz: 70.0,
        }
    }

    /// A phone-class microphone (shorter intended pickup range).
    pub fn phone() -> Self {
        Microphone {
            noise_floor_spl_db: 41.0,
            array_gain_db: 0.0,
            highpass_hz: 80.0,
        }
    }

    /// A wearable (smartwatch) microphone.
    pub fn wearable() -> Self {
        Microphone {
            noise_floor_spl_db: 43.0,
            array_gain_db: 0.0,
            highpass_hz: 80.0,
        }
    }

    /// The microphone's gain/roll-off response sampled for an
    /// `n_fft`-point FFT at `sample_rate`, from the response-curve
    /// cache. Shared between [`Microphone::record`] and the fused scene
    /// engine, so both paths multiply bit-identical gain tables.
    pub(crate) fn response_curve(
        &self,
        n_fft: usize,
        sample_rate: u32,
    ) -> std::sync::Arc<thrubarrier_dsp::response::ResponseCurve> {
        let gain = thrubarrier_dsp::stats::db_to_amplitude(self.array_gain_db);
        let hp = self.highpass_hz;
        let key = thrubarrier_dsp::response::curve_key(0x4D49_4352, &[gain, hp]);
        thrubarrier_dsp::response::cached_curve(key, n_fft, sample_rate, move |f| {
            // Gentle 2nd-order-like roll-off below the corner.
            let r = if f < hp {
                let x = (f / hp).max(1e-3);
                x * x
            } else {
                1.0
            };
            gain * r
        })
    }

    /// Standard deviation of the microphone's self-noise.
    pub(crate) fn noise_std(&self) -> f32 {
        spl_to_rms(self.noise_floor_spl_db)
    }

    /// Records an incident pressure signal: applies the array gain and
    /// high-pass roll-off, adds self-noise, and clips at full scale.
    pub fn record<R: Rng + ?Sized>(
        &self,
        incident: &[f32],
        sample_rate: u32,
        rng: &mut R,
    ) -> AudioBuffer {
        let mut out = if incident.is_empty() {
            Vec::new()
        } else {
            let n = thrubarrier_dsp::fft::next_pow2(incident.len());
            self.response_curve(n, sample_rate).filter(incident)
        };
        thrubarrier_dsp::gen::add_gaussian_noise_clamped(&mut out, self.noise_std(), rng);
        AudioBuffer::new(out, sample_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::{gen, stats};

    #[test]
    fn far_field_is_most_sensitive() {
        let ff = Microphone::far_field_array();
        let ph = Microphone::phone();
        assert!(ff.noise_floor_spl_db < ph.noise_floor_spl_db);
        assert!(ff.array_gain_db > ph.array_gain_db);
    }

    #[test]
    fn record_adds_noise_floor() {
        let mic = Microphone::phone();
        let mut rng = StdRng::seed_from_u64(1);
        let silence = vec![0.0f32; 16_000];
        let rec = mic.record(&silence, 16_000, &mut rng);
        let spl = crate::propagation::rms_to_spl(rec.rms());
        assert!((spl - mic.noise_floor_spl_db).abs() < 1.0, "{spl}");
    }

    #[test]
    fn record_applies_array_gain() {
        let mic = Microphone::far_field_array();
        let mut rng = StdRng::seed_from_u64(2);
        let tone = gen::sine(1_000.0, 0.1, 16_000, 0.5);
        let rec = mic.record(&tone, 16_000, &mut rng);
        let expected = 0.1 / 2f32.sqrt() * stats::db_to_amplitude(6.0);
        assert!((rec.rms() - expected).abs() / expected < 0.1);
    }

    #[test]
    fn record_rolls_off_subsonic_content() {
        let mic = Microphone::phone();
        let mut rng = StdRng::seed_from_u64(3);
        let rumble = gen::sine(20.0, 0.5, 16_000, 0.5);
        let rec = mic.record(&rumble, 16_000, &mut rng);
        assert!(rec.rms() < 0.1 * stats::rms(&rumble));
    }

    #[test]
    fn record_clips_at_full_scale() {
        let mic = Microphone::phone();
        let mut rng = StdRng::seed_from_u64(4);
        let loud = gen::sine(1_000.0, 10.0, 16_000, 0.1);
        let rec = mic.record(&loud, 16_000, &mut rng);
        assert!(rec.peak() <= 1.0);
    }
}
