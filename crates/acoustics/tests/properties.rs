//! Property-based tests for the acoustic substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thrubarrier_acoustics::barrier::{Barrier, BarrierMaterial};
use thrubarrier_acoustics::loudspeaker::Loudspeaker;
use thrubarrier_acoustics::mic::Microphone;
use thrubarrier_acoustics::propagation;
use thrubarrier_acoustics::room::{Room, RoomId};
use thrubarrier_acoustics::scene::AcousticPath;
use thrubarrier_dsp::{gen, stats};

const MATERIALS: [BarrierMaterial; 4] = [
    BarrierMaterial::GlassWindow,
    BarrierMaterial::GlassWall,
    BarrierMaterial::WoodenDoor,
    BarrierMaterial::BrickWall,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transmission_loss_is_positive_and_monotone_above_500(
        mat_idx in 0usize..4,
        f in 10.0f32..7_500.0,
    ) {
        let b = Barrier::new(MATERIALS[mat_idx]);
        let tl = b.transmission_loss_db(f);
        prop_assert!(tl > 0.0);
        if f > 500.0 {
            // Loss never decreases with frequency above the plateau knee.
            let tl_higher = b.transmission_loss_db(f + 200.0);
            prop_assert!(tl_higher + 1e-4 >= tl, "{f}: {tl} vs {tl_higher}");
        }
    }

    #[test]
    fn barrier_never_amplifies(mat_idx in 0usize..4, seed in 0u64..50) {
        let b = Barrier::new(MATERIALS[mat_idx]);
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = gen::gaussian_noise(&mut rng, 0.1, 4_000);
        let out = b.transmit(&sig, 16_000);
        prop_assert!(stats::rms(&out) <= stats::rms(&sig) * 1.01);
    }

    #[test]
    fn spl_conversion_roundtrips(spl in 20.0f32..110.0) {
        let rms = propagation::spl_to_rms(spl);
        prop_assert!((propagation::rms_to_spl(rms) - spl).abs() < 1e-2);
    }

    #[test]
    fn farther_paths_are_quieter(
        d1 in 0.3f32..6.0,
        extra in 0.5f32..4.0,
        room_idx in 0usize..4,
    ) {
        let room = Room::paper_room(RoomId::all()[room_idx]);
        let sig = gen::sine(500.0, 0.2, 16_000, 0.2);
        let near = AcousticPath::direct(room.clone(), d1).transmit(&sig, 16_000);
        let far = AcousticPath::direct(room, d1 + extra).transmit(&sig, 16_000);
        prop_assert!(stats::rms(&far) < stats::rms(&near));
    }

    #[test]
    fn loudspeaker_output_is_finite_and_bounded(seed in 0u64..50, amp in 0.01f32..0.8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = gen::gaussian_noise(&mut rng, amp, 4_000);
        let out = Loudspeaker::sound_bar().play(&sig, 16_000);
        prop_assert!(out.iter().all(|v| v.is_finite()));
        // Soft clipping cannot grow the peak beyond the input's peak
        // (plus filter ringing headroom).
        prop_assert!(stats::peak(&out) < stats::peak(&sig) * 1.5);
    }

    #[test]
    fn positioned_reverb_preserves_direct_path(seed in 0u64..50, room_idx in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let room = Room::paper_room(RoomId::all()[room_idx]);
        let mut sig = vec![0.0f32; 800];
        sig[0] = 1.0;
        let out = room.apply_reverb_positioned(&sig, 16_000, &mut rng);
        prop_assert!((out[0] - 1.0).abs() < 1e-5);
        prop_assert!(out.len() >= sig.len());
    }

    /// The fused scene engine against the staged oracle across the full
    /// device matrix: all four paper rooms, all four mic models, the
    /// direct no-loudspeaker path plus both playback devices (direct
    /// and thru-barrier), three sample rates, and lengths down to the
    /// empty signal. Same seed on both paths — outputs must share
    /// length/rate, agree at the PR 7-style hybrid tolerance, and leave
    /// the RNG stream in the identical state.
    #[test]
    fn fused_render_matches_staged_oracle(
        room_idx in 0usize..4,
        mic_idx in 0usize..4,
        scenario in 0usize..4,
        rate_idx in 0usize..3,
        len in 0usize..2_500,
        distance in 0.5f32..4.0,
        seed in 0u64..1_000,
    ) {
        let rate = [8_000u32, 16_000, 48_000][rate_idx];
        let room = Room::paper_room(RoomId::all()[room_idx]);
        let mic = [
            Microphone::far_field_array(),
            Microphone::laptop(),
            Microphone::phone(),
            Microphone::wearable(),
        ][mic_idx];
        let path = match scenario {
            0 => AcousticPath::direct(room.clone(), distance),
            1 => {
                let mut p = AcousticPath::direct(room.clone(), distance);
                p.loudspeaker = Some(Loudspeaker::portable());
                p
            }
            2 => AcousticPath::thru_barrier(room.clone(), distance, Loudspeaker::sound_bar()),
            _ => AcousticPath::thru_barrier(room.clone(), distance, Loudspeaker::portable()),
        };
        let src = gen::gaussian_noise(&mut StdRng::seed_from_u64(seed), 0.2, len);
        let mut rng_f = StdRng::seed_from_u64(seed ^ 0xF00D);
        let mut rng_s = StdRng::seed_from_u64(seed ^ 0xF00D);
        let fused = path.record(&src, rate, &mic, &mut rng_f);
        let staged = path.record_staged(&src, rate, &mic, &mut rng_s);
        prop_assert_eq!(fused.len(), staged.len());
        prop_assert_eq!(fused.sample_rate(), staged.sample_rate());
        // Identical RNG draw counts: the streams are aligned afterwards.
        prop_assert_eq!(rng_f.gen::<u64>(), rng_s.gen::<u64>());
        prop_assert!(fused.samples().iter().all(|v| v.is_finite() && v.abs() <= 1.0));
        // Hybrid tolerance: relative where the signal dominates, plus
        // absolute headroom of twice the noise floor (ambient through
        // the mic's passband gain + self-noise) for the structural
        // truncation/ambient-filtering differences.
        let diff: Vec<f32> = fused
            .samples()
            .iter()
            .zip(staged.samples())
            .map(|(a, b)| a - b)
            .collect();
        let floor = propagation::spl_to_rms(room.ambient_spl_db)
            * stats::db_to_amplitude(mic.array_gain_db)
            + propagation::spl_to_rms(mic.noise_floor_spl_db);
        let staged_rms = stats::rms(staged.samples());
        prop_assert!(
            stats::rms(&diff) <= 0.15 * staged_rms + 2.0 * floor,
            "diff rms {} vs staged rms {} (floor {})",
            stats::rms(&diff),
            staged_rms,
            floor
        );
    }

    #[test]
    fn brick_is_always_the_hardest_barrier(f in 50.0f32..7_500.0) {
        let brick = Barrier::new(BarrierMaterial::BrickWall).transmission_loss_db(f);
        for m in [BarrierMaterial::GlassWindow, BarrierMaterial::WoodenDoor] {
            let other = Barrier::new(m).transmission_loss_db(f);
            prop_assert!(brick + 1e-3 >= other.min(brick), "{m:?} at {f}");
        }
        // And strictly hardest in the speech band.
        if f < 1_000.0 {
            let glass = Barrier::new(BarrierMaterial::GlassWindow).transmission_loss_db(f);
            prop_assert!(brick > glass);
        }
    }
}
