//! Property-based tests for the attack generators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thrubarrier_attack::hidden::obfuscate;
use thrubarrier_attack::{AttackGenerator, AttackKind};
use thrubarrier_dsp::{gen, stats};
use thrubarrier_phoneme::command::CommandBank;
use thrubarrier_phoneme::speaker::SpeakerProfile;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_attack_is_nonsilent_and_finite(
        kind_idx in 0usize..4,
        cmd_idx in 0usize..25,
        seed in 0u64..50,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bank = CommandBank::standard();
        let cmd = &bank.commands()[cmd_idx];
        let victim = SpeakerProfile::random(&mut rng);
        let adversary = SpeakerProfile::random(&mut rng);
        let g = AttackGenerator::new(16_000);
        let a = g.generate(AttackKind::all()[kind_idx], cmd, &victim, &adversary, &mut rng);
        prop_assert!(a.samples.iter().all(|v| v.is_finite()));
        prop_assert!(stats::rms(&a.samples) > 1e-5);
        prop_assert_eq!(a.sample_rate, 16_000);
    }

    #[test]
    fn obfuscation_preserves_rms_for_any_speechlike_input(
        seed in 0u64..50,
        f0 in 100.0f32..800.0,
        dur in 0.6f32..2.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let clear = gen::chirp(f0, f0 * 2.0, 0.2, 16_000, dur);
        let hidden = obfuscate(&clear, 16_000, &mut rng);
        prop_assert_eq!(hidden.len(), clear.len());
        let ratio = stats::rms(&hidden) / stats::rms(&clear);
        prop_assert!((0.8..1.2).contains(&ratio), "rms ratio {ratio}");
    }

    #[test]
    fn voice_estimation_error_is_bounded(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let victim = SpeakerProfile::random(&mut rng);
        let g = AttackGenerator::new(16_000);
        let est = g.estimate_voice(&victim, &mut rng);
        // A synthesis attack is only a threat if the estimate is close.
        prop_assert!((est.f0_hz / victim.f0_hz - 1.0).abs() < 0.25);
        prop_assert!((est.formant_scale / victim.formant_scale - 1.0).abs() < 0.15);
        prop_assert_eq!(est.sex, victim.sex);
    }

    #[test]
    fn replay_recordings_differ_from_live_synthesis(seed in 0u64..30) {
        // The recording channel (band limit + noise) must change the
        // waveform, not just copy it.
        let mut rng = StdRng::seed_from_u64(seed);
        let bank = CommandBank::standard();
        let cmd = &bank.commands()[seed as usize % bank.len()];
        let victim = SpeakerProfile::reference_male();
        let g = AttackGenerator::new(16_000);
        let rec1 = g.victim_recording(cmd, &victim, &mut rng);
        let rec2 = g.victim_recording(cmd, &victim, &mut rng);
        // Two "public recordings" of the same command are different
        // takes (utterance randomness + channel noise).
        let n = rec1.len().min(rec2.len());
        prop_assert!(stats::pearson(&rec1[..n], &rec2[..n]).abs() < 0.99);
    }
}
