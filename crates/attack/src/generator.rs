//! Attack-sound generation for the four threat classes.

use rand::Rng;
use thrubarrier_acoustics::loudspeaker::Loudspeaker;
use thrubarrier_phoneme::command::Command;
use thrubarrier_phoneme::speaker::SpeakerProfile;
use thrubarrier_phoneme::synth::Synthesizer;

/// The four attack classes of the paper's threat model (Sec. II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Adversary speaks with their own voice.
    Random,
    /// Adversary replays a recording of the victim.
    Replay,
    /// Adversary synthesizes the victim's voice from a few samples.
    VoiceSynthesis,
    /// Adversary plays an obfuscated (machine-only) command.
    HiddenVoice,
}

impl AttackKind {
    /// All four attack kinds.
    pub fn all() -> [AttackKind; 4] {
        [
            AttackKind::Random,
            AttackKind::Replay,
            AttackKind::VoiceSynthesis,
            AttackKind::HiddenVoice,
        ]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Random => "random attack",
            AttackKind::Replay => "replay attack",
            AttackKind::VoiceSynthesis => "voice synthesis attack",
            AttackKind::HiddenVoice => "hidden voice attack",
        }
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An attack sound ready to be transmitted along an acoustic path.
#[derive(Debug, Clone)]
pub struct AttackSound {
    /// The source waveform at [`AttackSound::sample_rate`].
    pub samples: Vec<f32>,
    /// Sample rate of `samples`.
    pub sample_rate: u32,
    /// Which attack produced it.
    pub kind: AttackKind,
    /// Whether the sound is emitted by a playback device (true for
    /// everything except a live random attack) — the acoustic path then
    /// includes the loudspeaker's response.
    pub needs_loudspeaker: bool,
}

/// Generates attack sounds for every threat class.
#[derive(Debug, Clone)]
pub struct AttackGenerator {
    synth: Synthesizer,
    /// The playback device replayed attacks go through.
    pub loudspeaker: Loudspeaker,
}

impl AttackGenerator {
    /// Creates a generator at the given audio sample rate with the
    /// paper's sound-bar playback device.
    pub fn new(sample_rate: u32) -> Self {
        AttackGenerator {
            synth: Synthesizer::new(sample_rate),
            loudspeaker: Loudspeaker::sound_bar(),
        }
    }

    /// The audio sample rate.
    pub fn sample_rate(&self) -> u32 {
        self.synth.sample_rate()
    }

    /// Generates the attack sound for `kind` targeting `victim`'s command.
    ///
    /// * `Random` — `adversary` speaks the command live.
    /// * `Replay` — a recording of `victim` speaking the command
    ///   (public-source quality) is replayed.
    /// * `VoiceSynthesis` — the victim's voice parameters are estimated
    ///   from `n_estimation_samples` short samples and the command is
    ///   synthesized in the estimated voice.
    /// * `HiddenVoice` — the command is obfuscated into a noise-like
    ///   wideband sound.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        kind: AttackKind,
        command: &Command,
        victim: &SpeakerProfile,
        adversary: &SpeakerProfile,
        rng: &mut R,
    ) -> AttackSound {
        let _span = thrubarrier_obs::span!("attack.generate");
        let fs = self.sample_rate();
        match kind {
            AttackKind::Random => AttackSound {
                samples: self
                    .synth
                    .synthesize_command(command, adversary, rng)
                    .audio
                    .into_samples(),
                sample_rate: fs,
                kind,
                needs_loudspeaker: false,
            },
            AttackKind::Replay => AttackSound {
                samples: self.victim_recording(command, victim, rng),
                sample_rate: fs,
                kind,
                needs_loudspeaker: true,
            },
            AttackKind::VoiceSynthesis => {
                let estimated = self.estimate_voice(victim, rng);
                let mut samples = self
                    .synth
                    .synthesize_command(command, &estimated, rng)
                    .audio
                    .into_samples();
                // Vocoder roughness: TTS output carries slow amplitude
                // artifacts that degrade template matching at marginal
                // SNR.
                let mod_noise = thrubarrier_dsp::response::filter_cached(
                    thrubarrier_dsp::response::curve_key(0x564F_434F, &[]),
                    &thrubarrier_dsp::gen::gaussian_noise(rng, 1.0, samples.len()),
                    fs,
                    |f| if f < 20.0 { 1.0 } else { 0.0 },
                );
                let mod_rms = thrubarrier_dsp::stats::rms(&mod_noise).max(1e-9);
                for (v, m) in samples.iter_mut().zip(&mod_noise) {
                    *v *= (1.0 + 0.5 * m / mod_rms).clamp(0.2, 1.8);
                }
                AttackSound {
                    samples,
                    sample_rate: fs,
                    kind,
                    needs_loudspeaker: true,
                }
            }
            AttackKind::HiddenVoice => {
                let clear = self
                    .synth
                    .synthesize_command(command, victim, rng)
                    .audio
                    .into_samples();
                AttackSound {
                    samples: crate::hidden::obfuscate(&clear, fs, rng),
                    sample_rate: fs,
                    kind,
                    needs_loudspeaker: true,
                }
            }
        }
    }

    /// A public-source recording of the victim speaking the command:
    /// clean synthesis degraded by a recording channel (band limit +
    /// light noise).
    pub fn victim_recording<R: Rng + ?Sized>(
        &self,
        command: &Command,
        victim: &SpeakerProfile,
        rng: &mut R,
    ) -> Vec<f32> {
        let fs = self.sample_rate();
        let clean = self
            .synth
            .synthesize_command(command, victim, rng)
            .audio
            .into_samples();
        let mut rec = thrubarrier_dsp::response::filter_cached(
            thrubarrier_dsp::response::curve_key(0x5652_4543, &[]),
            &clean,
            fs,
            |f| {
                if f < 80.0 {
                    (f / 80.0).powi(2)
                } else if f > 7_000.0 {
                    (7_000.0 / f).powi(2)
                } else {
                    1.0
                }
            },
        );
        let noise_std = thrubarrier_dsp::stats::rms(&rec) * 0.02;
        for v in &mut rec {
            *v += noise_std * thrubarrier_dsp::gen::standard_normal(rng);
        }
        rec
    }

    /// Estimates the victim's voice from a handful of samples: the
    /// estimate is close but carries error, and synthetic prosody is
    /// flatter than natural speech.
    pub fn estimate_voice<R: Rng + ?Sized>(
        &self,
        victim: &SpeakerProfile,
        rng: &mut R,
    ) -> SpeakerProfile {
        let mut est = victim.clone();
        est.f0_hz *= 1.0 + 0.04 * thrubarrier_dsp::gen::standard_normal(rng);
        est.formant_scale *= 1.0 + 0.02 * thrubarrier_dsp::gen::standard_normal(rng);
        // TTS prosody: flatter jitter, nominal effort and rate.
        est.f0_jitter = 0.005;
        est.effort_db = 0.0;
        est.rate = 1.0;
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::stats;
    use thrubarrier_phoneme::command::CommandBank;

    fn setup() -> (AttackGenerator, Command, SpeakerProfile, SpeakerProfile) {
        let bank = CommandBank::standard();
        let cmd = bank.by_text("unlock the door").unwrap().clone();
        (
            AttackGenerator::new(16_000),
            cmd,
            SpeakerProfile::reference_male(),
            SpeakerProfile::reference_female(),
        )
    }

    #[test]
    fn all_kinds_generate_nonsilent_sounds() {
        let (g, cmd, victim, adversary) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        for kind in AttackKind::all() {
            let a = g.generate(kind, &cmd, &victim, &adversary, &mut rng);
            assert!(stats::rms(&a.samples) > 1e-4, "{kind} silent");
            assert_eq!(a.kind, kind);
            assert_eq!(a.sample_rate, 16_000);
        }
    }

    #[test]
    fn only_random_attack_is_live() {
        let (g, cmd, victim, adversary) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        for kind in AttackKind::all() {
            let a = g.generate(kind, &cmd, &victim, &adversary, &mut rng);
            assert_eq!(a.needs_loudspeaker, kind != AttackKind::Random, "{kind}");
        }
    }

    #[test]
    fn replay_sound_resembles_victim_not_adversary() {
        let (g, cmd, victim, adversary) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let replay = g.generate(AttackKind::Replay, &cmd, &victim, &adversary, &mut rng);
        // The victim is male (F0 120); verify the replay carries a male
        // pitch rather than the adversary's female pitch.
        let f0 = thrubarrier_acoustics::va::estimate_f0(&replay.samples, 16_000)
            .expect("voiced content");
        assert!((f0 - victim.f0_hz).abs() < 25.0, "f0 {f0}");
    }

    #[test]
    fn synthesis_estimate_is_near_but_not_exact() {
        let (g, _, victim, _) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let est = g.estimate_voice(&victim, &mut rng);
        assert!((est.f0_hz / victim.f0_hz - 1.0).abs() < 0.15);
        assert_ne!(est.f0_hz, victim.f0_hz);
        assert!(est.f0_jitter < victim.f0_jitter);
    }

    #[test]
    fn hidden_attack_differs_from_clear_command() {
        let (g, cmd, victim, adversary) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let hidden = g.generate(AttackKind::HiddenVoice, &cmd, &victim, &adversary, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(5);
        let clear = Synthesizer::new(16_000)
            .synthesize_command(&cmd, &victim, &mut rng2)
            .audio
            .into_samples();
        let n = hidden.samples.len().min(clear.len());
        let r = stats::pearson(&hidden.samples[..n], &clear[..n]);
        assert!(r.abs() < 0.3, "hidden correlates with clear: {r}");
    }

    #[test]
    fn victim_recording_is_band_limited_and_noisy() {
        let (g, cmd, victim, _) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let rec = g.victim_recording(&cmd, &victim, &mut rng);
        assert!(stats::rms(&rec) > 1e-4);
    }

    #[test]
    fn attack_kind_display() {
        assert_eq!(AttackKind::Replay.to_string(), "replay attack");
        assert_eq!(AttackKind::all().len(), 4);
    }
}
