//! Attack generators for the four thru-barrier attack classes of the
//! paper's threat model (Sec. II):
//!
//! * **Random attack** — the adversary speaks with their own voice
//!   (no prior knowledge of the victim).
//! * **Replay attack** — the adversary replays recordings of the victim
//!   obtained from public sources through a loudspeaker.
//! * **Voice-synthesis attack** — the adversary estimates the victim's
//!   voice parameters from a few samples and synthesizes arbitrary
//!   commands in that voice.
//! * **Hidden voice attack** — obfuscated commands: wideband (0–6 kHz)
//!   noise-like sounds whose coarse spectral envelope still matches what
//!   speech-recognition front-ends extract, but which are
//!   incomprehensible to humans.
//!
//! All attack sounds are *sources*; delivering them through a barrier
//! into a room is the job of
//! [`thrubarrier_acoustics::scene::AcousticPath`].

#![warn(missing_docs)]

pub mod generator;
pub mod hidden;

pub use generator::{AttackGenerator, AttackKind, AttackSound};
