//! Hidden voice command generation (Carlini et al. style obfuscation).
//!
//! A hidden voice command keeps the coarse time–frequency envelope that
//! automatic speech recognition extracts (mel-band energies over ~25 ms
//! frames) while destroying everything a human uses — harmonic structure
//! and fine phase. We reproduce that by re-synthesizing each analysis
//! frame from *random-phase noise shaped to the frame's mel-band
//! envelope*, then overlap-adding. The result occupies a wide 0–6 kHz
//! band (paper Sec. VII-D: "hidden voice commands reside in a wider
//! frequency range … making the frequency-selectivity attenuation of the
//! barrier more obvious").

use rand::Rng;
use thrubarrier_dsp::{fft, mel, stats, window::WindowKind, Complex};

/// Number of mel bands used to describe each frame's envelope.
const N_BANDS: usize = 12;
/// Analysis/synthesis frame length in samples (32 ms at 16 kHz).
const FRAME: usize = 512;
/// Hop (50% overlap).
const HOP: usize = 256;
/// Upper edge of the obfuscated signal's band in Hz.
const BAND_TOP: f32 = 6_000.0;

/// Converts a clear voice command into a hidden (obfuscated) command.
///
/// The output has the same length and RMS as the input but is noise-like:
/// per-frame mel-band envelopes are preserved, harmonic fine structure is
/// replaced by random phase.
pub fn obfuscate<R: Rng + ?Sized>(clear: &[f32], sample_rate: u32, rng: &mut R) -> Vec<f32> {
    if clear.len() < FRAME {
        return clear.to_vec();
    }
    let filterbank = mel::MelFilterbank::new(N_BANDS, FRAME, sample_rate, 50.0, BAND_TOP)
        .expect("static mel config is valid");
    let band_edges: Vec<f32> = (0..=N_BANDS)
        .map(|i| {
            mel::mel_to_hz(
                mel::hz_to_mel(50.0)
                    + (mel::hz_to_mel(BAND_TOP) - mel::hz_to_mel(50.0)) * i as f32 / N_BANDS as f32,
            )
        })
        .collect();
    let win = WindowKind::Hann.coefficients(FRAME);
    let n_frames = (clear.len() - FRAME) / HOP + 1;
    let mut out = vec![0.0f32; clear.len()];
    let mut norm = vec![0.0f32; clear.len()];
    for fi in 0..n_frames {
        let start = fi * HOP;
        // Analyze the original frame's mel envelope.
        let mut buf: Vec<Complex> = (0..FRAME)
            .map(|i| Complex::from_real(clear[start + i] * win[i]))
            .collect();
        fft::fft_in_place(&mut buf).expect("frame length is a power of two");
        let power: Vec<f32> = buf[..FRAME / 2 + 1].iter().map(|c| c.norm_sq()).collect();
        let env = filterbank.apply(&power);

        // Synthesize a noise frame shaped to that envelope.
        let noise = thrubarrier_dsp::gen::gaussian_noise(rng, 1.0, FRAME);
        let mut nbuf: Vec<Complex> = noise.iter().map(|&x| Complex::from_real(x)).collect();
        fft::fft_in_place(&mut nbuf).expect("frame length is a power of two");
        let fs = sample_rate as f32;
        // Per-band gains so the noise frame's band powers track env.
        let npower: Vec<f32> = nbuf[..FRAME / 2 + 1].iter().map(|c| c.norm_sq()).collect();
        let nenv = filterbank.apply(&npower);
        let gains: Vec<f32> = env
            .iter()
            .zip(&nenv)
            .map(|(&e, &ne)| (e / ne.max(1e-9)).sqrt())
            .collect();
        let band_of = |f: f32| -> f32 {
            if f < band_edges[0] || f > band_edges[N_BANDS] {
                return 0.0;
            }
            for b in 0..N_BANDS {
                if f <= band_edges[b + 1] {
                    return gains[b];
                }
            }
            0.0
        };
        let n = nbuf.len();
        for (k, v) in nbuf.iter_mut().enumerate() {
            let f = if k <= n / 2 {
                k as f32 * fs / n as f32
            } else {
                (n - k) as f32 * fs / n as f32
            };
            *v = v.scale(band_of(f));
        }
        fft::ifft_in_place(&mut nbuf).expect("frame length is a power of two");
        for i in 0..FRAME {
            out[start + i] += nbuf[i].re * win[i];
            norm[start + i] += win[i] * win[i];
        }
    }
    for (o, &w) in out.iter_mut().zip(&norm) {
        if w > 1e-6 {
            *o /= w;
        }
    }
    // Match the original's overall level.
    let g = stats::rms(clear) / stats::rms(&out).max(1e-12);
    for o in &mut out {
        *o *= g;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::gen;

    fn band_energy(sig: &[f32], fs: f32, lo: f32, hi: f32) -> f32 {
        let mags = fft::magnitude_spectrum(sig, 8_192);
        let n_fft = ((mags.len() - 1) * 2) as f32;
        mags.iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = *k as f32 * fs / n_fft;
                f >= lo && f < hi
            })
            .map(|(_, &m)| m * m)
            .sum()
    }

    #[test]
    fn obfuscation_preserves_length_and_level() {
        let mut rng = StdRng::seed_from_u64(1);
        let clear = gen::chirp(200.0, 900.0, 0.2, 16_000, 1.0);
        let hidden = obfuscate(&clear, 16_000, &mut rng);
        assert_eq!(hidden.len(), clear.len());
        assert!((stats::rms(&hidden) - stats::rms(&clear)).abs() / stats::rms(&clear) < 0.05);
    }

    #[test]
    fn obfuscation_destroys_waveform_similarity() {
        let mut rng = StdRng::seed_from_u64(2);
        let clear = gen::sine(300.0, 0.2, 16_000, 1.0);
        let hidden = obfuscate(&clear, 16_000, &mut rng);
        let r = stats::pearson(&clear[1_000..9_000], &hidden[1_000..9_000]);
        assert!(r.abs() < 0.2, "waveforms still correlate: {r}");
    }

    #[test]
    fn obfuscation_preserves_temporal_envelope() {
        // A clear signal with a gap in the middle must map to a hidden
        // signal with a gap in the middle.
        let mut rng = StdRng::seed_from_u64(3);
        let mut clear = gen::sine(400.0, 0.3, 16_000, 1.5);
        let n = clear.len();
        for v in clear[n / 3..n / 2].iter_mut() {
            *v = 0.0;
        }
        let hidden = obfuscate(&clear, 16_000, &mut rng);
        let active = stats::rms(&hidden[..n / 4]);
        let gap = stats::rms(&hidden[n * 2 / 5..n * 9 / 20]);
        assert!(active > 3.0 * gap, "active {active} vs gap {gap}");
    }

    #[test]
    fn hidden_command_is_wideband() {
        // Clear speech-like input concentrated below 1 kHz spreads into
        // the analysis band once the mel envelope is resynthesized with
        // noise; verify substantial energy above 2 kHz relative to a
        // pure tone's leakage.
        let mut rng = StdRng::seed_from_u64(4);
        let clear = gen::sine(300.0, 0.2, 16_000, 1.0);
        let hidden = obfuscate(&clear, 16_000, &mut rng);
        let clear_high = band_energy(&clear, 16_000.0, 2_000.0, 6_000.0)
            / band_energy(&clear, 16_000.0, 0.0, 8_000.0);
        let hidden_high = band_energy(&hidden, 16_000.0, 2_000.0, 6_000.0)
            / band_energy(&hidden, 16_000.0, 0.0, 8_000.0);
        assert!(
            hidden_high > clear_high * 5.0,
            "{hidden_high} vs {clear_high}"
        );
    }

    #[test]
    fn short_input_passes_through() {
        let mut rng = StdRng::seed_from_u64(5);
        let short = vec![0.1f32; 100];
        assert_eq!(obfuscate(&short, 16_000, &mut rng), short);
    }
}
