//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thrubarrier_nn::gru::BiGru;
use thrubarrier_nn::loss;
use thrubarrier_nn::lstm::{BiLstm, Lstm};
use thrubarrier_nn::model::TrainConfig;
use thrubarrier_nn::{BatchWorkspace, BrnnClassifier, GemmScratch, Matrix};

fn sequence_strategy() -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 3), 1..12)
}

/// A minibatch at the issue's pinned sizes (B ∈ {1, 2, 5, 8}) with
/// independently drawn, usually unequal, sequence lengths. Implemented
/// as a hand-rolled [`Strategy`] because the vendored proptest has no
/// `prop_flat_map`/`sample::select` combinators.
struct BatchStrategy;

impl Strategy for BatchStrategy {
    type Value = Vec<Vec<Vec<f32>>>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        const SIZES: [usize; 4] = [1, 2, 5, 8];
        let b = SIZES[rng.gen_range(0..SIZES.len())];
        (0..b).map(|_| sequence_strategy().generate(rng)).collect()
    }
}

fn batch_strategy() -> impl Strategy<Value = Vec<Vec<Vec<f32>>>> {
    BatchStrategy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lstm_hidden_states_are_bounded(xs in sequence_strategy(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lstm = Lstm::new(3, 5, &mut rng);
        let (hs, _) = lstm.forward(&xs);
        prop_assert_eq!(hs.len(), xs.len());
        for h in &hs {
            for &v in h {
                prop_assert!(v.abs() < 1.0, "hidden state {v} out of (-1, 1)");
            }
        }
    }

    #[test]
    fn lstm_forward_is_deterministic(xs in sequence_strategy(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lstm = Lstm::new(3, 4, &mut rng);
        let (a, _) = lstm.forward(&xs);
        let (b, _) = lstm.forward(&xs);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn lstm_is_causal(xs in sequence_strategy(), seed in 0u64..50) {
        // Changing the last frame must not affect earlier outputs.
        if xs.len() < 2 {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let lstm = Lstm::new(3, 4, &mut rng);
        let (a, _) = lstm.forward(&xs);
        let mut ys = xs.clone();
        let last = ys.len() - 1;
        ys[last] = vec![0.9, -0.9, 0.9];
        let (b, _) = lstm.forward(&ys);
        for t in 0..last {
            prop_assert_eq!(&a[t], &b[t], "output at {} changed", t);
        }
    }

    #[test]
    fn bilstm_reversal_symmetry(xs in sequence_strategy(), seed in 0u64..50) {
        // Swapping the two directions' weights and reversing the input
        // reverses the output sequence.
        let mut rng = StdRng::seed_from_u64(seed);
        let bi = BiLstm::new(3, 4, &mut rng);
        let (out, _) = bi.forward(&xs);
        let rev_in: Vec<Vec<f32>> = xs.iter().rev().cloned().collect();
        let swapped = BiLstm {
            fwd: bi.bwd.clone(),
            bwd: bi.fwd.clone(),
        };
        let (rev_out, _) = swapped.forward(&rev_in);
        for (a, b) in out.iter().zip(rev_out.iter().rev()) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-20.0f32..20.0, 1..10)) {
        let p = loss::softmax(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn cross_entropy_is_nonnegative(
        logits in prop::collection::vec(-10.0f32..10.0, 2..6),
        target_raw in 0usize..6,
    ) {
        let target = target_raw % logits.len();
        let (l, dl) = loss::softmax_cross_entropy(&logits, target);
        prop_assert!(l >= 0.0);
        // Gradient components sum to ~0 (softmax minus one-hot).
        prop_assert!(dl.iter().sum::<f32>().abs() < 1e-4);
    }

    #[test]
    fn fused_forward_matches_legacy_both_directions(
        xs in sequence_strategy(),
        seed in 0u64..100,
    ) {
        // The fused time-batched engine must agree with the pre-fusion
        // reference (four per-gate matrices, four matvecs per timestep)
        // in both directions of a bidirectional layer.
        let mut rng = StdRng::seed_from_u64(seed);
        let bi = BiLstm::new(3, 4, &mut rng);
        let legacy_f = LegacyLstm::from_fused(&bi.fwd);
        let legacy_b = LegacyLstm::from_fused(&bi.bwd);
        let (hf, _) = legacy_f.forward(&xs);
        let rev: Vec<Vec<f32>> = xs.iter().rev().cloned().collect();
        let (hb, _) = legacy_b.forward(&rev);
        let t_len = xs.len();
        let expected: Vec<Vec<f32>> = (0..t_len)
            .map(|t| {
                hf[t]
                    .iter()
                    .zip(&hb[t_len - 1 - t])
                    .map(|(a, b)| a + b)
                    .collect()
            })
            .collect();
        let (fused, _) = bi.forward(&xs);
        let mut scratch = GemmScratch::new();
        let inferred = bi.hidden_states_with_scratch(&xs, &mut scratch);
        for t in 0..t_len {
            for k in 0..4 {
                prop_assert!(rel_close(fused[t][k], expected[t][k]),
                    "train-path fused {} vs legacy {} at [{t}][{k}]", fused[t][k], expected[t][k]);
                prop_assert!(rel_close(inferred[t][k], expected[t][k]),
                    "infer-path fused {} vs legacy {} at [{t}][{k}]", inferred[t][k], expected[t][k]);
            }
        }
    }

    #[test]
    fn fused_backward_matches_legacy_gate_gradients(
        xs in sequence_strategy(),
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let legacy = LegacyLstm::from_fused(&lstm);
        let dhs: Vec<Vec<f32>> = (0..xs.len())
            .map(|t| (0..4).map(|k| ((t + k) as f32 * 0.37).sin()).collect())
            .collect();
        let (_, cache) = lstm.forward(&xs);
        let dxs = lstm.backward(&cache, &dhs);
        let (_, legacy_cache) = legacy.forward(&xs);
        let (dw, du, db, legacy_dxs) = legacy.backward(&legacy_cache, &dhs);
        for t in 0..xs.len() {
            for j in 0..3 {
                prop_assert!(rel_close(dxs[t][j], legacy_dxs[t][j]), "dx[{t}][{j}]");
            }
        }
        let fused_dw = slice_gates(&lstm.w.grad, 4);
        let fused_du = slice_gates(&lstm.u.grad, 4);
        for g in 0..4 {
            for (a, b) in fused_dw[g].data().iter().zip(dw[g].data()) {
                prop_assert!(rel_close(*a, *b), "dW gate {g}: {a} vs {b}");
            }
            for (a, b) in fused_du[g].data().iter().zip(du[g].data()) {
                prop_assert!(rel_close(*a, *b), "dU gate {g}: {a} vs {b}");
            }
            for (k, &legacy_db) in db[g].iter().enumerate() {
                let fused_db = lstm.b.grad.get(g * 4 + k, 0);
                prop_assert!(rel_close(fused_db, legacy_db), "db gate {g}[{k}]");
            }
        }
    }

    #[test]
    fn old_layout_checkpoint_runs_identically_on_fused_engine(
        xs in sequence_strategy(),
        seed in 0u64..100,
    ) {
        // The V1 container has always stored the fused matrices, so a
        // checkpoint written before the engine rework must load and
        // classify bit-identically — and agree with the legacy compute
        // path reconstructed from its weights.
        let mut rng = StdRng::seed_from_u64(seed);
        let model = BrnnClassifier::new(3, 4, 2, &mut rng);
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap();
        let loaded = BrnnClassifier::load(bytes.as_slice()).unwrap();
        prop_assert_eq!(model.predict_proba(&xs), loaded.predict_proba(&xs));
        prop_assert_eq!(model.predict(&xs), loaded.predict(&xs));
    }

    #[test]
    fn matvec_distributes_over_addition(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..50,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::xavier(rows, cols, &mut rng);
        let x: Vec<f32> = (0..cols).map(|i| i as f32 * 0.3 - 0.5).collect();
        let y: Vec<f32> = (0..cols).map(|i| 0.7 - i as f32 * 0.2).collect();
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = m.matvec(&sum);
        let mx = m.matvec(&x);
        let my = m.matvec(&y);
        for (l, (a, b)) in lhs.iter().zip(mx.iter().zip(&my)) {
            prop_assert!((l - (a + b)).abs() < 1e-4);
        }
    }
}

/// Relative closeness at the issue's 1e-5 tolerance.
fn rel_close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-5 * a.abs().max(b.abs()).max(1.0)
}

/// Extracts the four per-gate `H x *` blocks (`[i, f, g, o]` order) from
/// a fused `4H x *` matrix.
fn slice_gates(m: &Matrix, h: usize) -> [Matrix; 4] {
    std::array::from_fn(|g| {
        let rows: Vec<&[f32]> = (g * h..(g + 1) * h).map(|r| m.row(r)).collect();
        Matrix::from_rows(&rows)
    })
}

// The legacy reference uses the engine's own activation kernels so the
// comparison isolates the *fused-gate restructuring* (one 4H×I GEMM and
// flat caches versus four per-gate matvecs), not the activation
// approximation, which `act`'s unit tests pin against libm separately.
use thrubarrier_nn::act::{sigmoid, tanh};

/// Per-step activations recorded by [`LegacyLstm::forward`].
struct LegacyStep {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// The pre-fusion reference implementation: four separate per-gate
/// weight matrices, four input and four recurrent matvecs per timestep,
/// and rank-1 (`add_outer`) gradient updates per gate per step. Kept in
/// the test suite as the ground truth the fused engine is checked
/// against.
struct LegacyLstm {
    w: [Matrix; 4],
    u: [Matrix; 4],
    b: [Vec<f32>; 4],
    hidden: usize,
}

impl LegacyLstm {
    fn from_fused(l: &Lstm) -> Self {
        let h = l.hidden_size();
        let b_full = slice_gates(&l.b.value, h);
        LegacyLstm {
            w: slice_gates(&l.w.value, h),
            u: slice_gates(&l.u.value, h),
            b: std::array::from_fn(|g| b_full[g].data().to_vec()),
            hidden: h,
        }
    }

    fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, Vec<LegacyStep>) {
        let hl = self.hidden;
        let mut h = vec![0.0f32; hl];
        let mut c = vec![0.0f32; hl];
        let mut outputs = Vec::new();
        let mut steps = Vec::new();
        for x in xs {
            let wx: [Vec<f32>; 4] = std::array::from_fn(|g| self.w[g].matvec(x));
            let uh: [Vec<f32>; 4] = std::array::from_fn(|g| self.u[g].matvec(&h));
            let mut step = LegacyStep {
                x: x.clone(),
                h_prev: h.clone(),
                c_prev: c.clone(),
                i: vec![0.0; hl],
                f: vec![0.0; hl],
                g: vec![0.0; hl],
                o: vec![0.0; hl],
                tanh_c: vec![0.0; hl],
            };
            for k in 0..hl {
                step.i[k] = sigmoid(wx[0][k] + uh[0][k] + self.b[0][k]);
                step.f[k] = sigmoid(wx[1][k] + uh[1][k] + self.b[1][k]);
                step.g[k] = tanh(wx[2][k] + uh[2][k] + self.b[2][k]);
                step.o[k] = sigmoid(wx[3][k] + uh[3][k] + self.b[3][k]);
                c[k] = step.f[k] * c[k] + step.i[k] * step.g[k];
                step.tanh_c[k] = tanh(c[k]);
                h[k] = step.o[k] * step.tanh_c[k];
            }
            outputs.push(h.clone());
            steps.push(step);
        }
        (outputs, steps)
    }

    #[allow(clippy::type_complexity)]
    fn backward(
        &self,
        steps: &[LegacyStep],
        dhs: &[Vec<f32>],
    ) -> ([Matrix; 4], [Matrix; 4], [Vec<f32>; 4], Vec<Vec<f32>>) {
        let hl = self.hidden;
        let input = self.w[0].cols();
        let mut dw: [Matrix; 4] = std::array::from_fn(|_| Matrix::zeros(hl, input));
        let mut du: [Matrix; 4] = std::array::from_fn(|_| Matrix::zeros(hl, hl));
        let mut db: [Vec<f32>; 4] = std::array::from_fn(|_| vec![0.0; hl]);
        let mut dxs = vec![vec![0.0f32; input]; steps.len()];
        let mut dh_next = vec![0.0f32; hl];
        let mut dc_next = vec![0.0f32; hl];
        for t in (0..steps.len()).rev() {
            let s = &steps[t];
            let mut dz: [Vec<f32>; 4] = std::array::from_fn(|_| vec![0.0; hl]);
            for k in 0..hl {
                let dh = dhs[t][k] + dh_next[k];
                let dc = dc_next[k] + dh * s.o[k] * (1.0 - s.tanh_c[k] * s.tanh_c[k]);
                dz[0][k] = dc * s.g[k] * s.i[k] * (1.0 - s.i[k]);
                dz[1][k] = dc * s.c_prev[k] * s.f[k] * (1.0 - s.f[k]);
                dz[2][k] = dc * s.i[k] * (1.0 - s.g[k] * s.g[k]);
                dz[3][k] = dh * s.tanh_c[k] * s.o[k] * (1.0 - s.o[k]);
                dc_next[k] = dc * s.f[k];
            }
            dh_next.iter_mut().for_each(|v| *v = 0.0);
            for g in 0..4 {
                dw[g].add_outer(&dz[g], &s.x);
                du[g].add_outer(&dz[g], &s.h_prev);
                for k in 0..hl {
                    db[g][k] += dz[g][k];
                }
                for (a, b) in dxs[t].iter_mut().zip(self.w[g].matvec_transposed(&dz[g])) {
                    *a += b;
                }
                for (a, b) in dh_next.iter_mut().zip(self.u[g].matvec_transposed(&dz[g])) {
                    *a += b;
                }
            }
        }
        (dw, du, db, dxs)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The packed-batch BiLSTM engine — both the training path
    /// (`forward_batch`) and the cache-free inference path
    /// (`hidden_states_batch`) — reproduces the per-sequence engine
    /// within 1e-5 at every frame, for minibatch sizes B ∈ {1, 2, 5, 8}
    /// with independently drawn (mixed) sequence lengths.
    #[test]
    fn batched_bilstm_forward_matches_sequential(
        batch in batch_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = BiLstm::new(3, 6, &mut rng);
        let mut scratch = GemmScratch::new();
        let mut ws = BatchWorkspace::new();
        let seqs: Vec<&[Vec<f32>]> = batch.iter().map(|s| s.as_slice()).collect();
        let trained = net.forward_batch(&seqs, &mut ws, &mut scratch);
        let inferred = net.hidden_states_batch(&seqs, &mut ws, &mut scratch);
        for (i, xs) in batch.iter().enumerate() {
            let (expect, _) = net.forward_with_scratch(xs, &mut scratch);
            prop_assert_eq!(trained[i].len(), expect.len());
            prop_assert_eq!(inferred[i].len(), expect.len());
            for (t, row) in expect.iter().enumerate() {
                for (k, &e) in row.iter().enumerate() {
                    prop_assert!(
                        rel_close(trained[i][t][k], e),
                        "train path seq {} frame {} unit {}: {} vs {}",
                        i, t, k, trained[i][t][k], e
                    );
                    prop_assert!(
                        rel_close(inferred[i][t][k], e),
                        "infer path seq {} frame {} unit {}: {} vs {}",
                        i, t, k, inferred[i][t][k], e
                    );
                }
            }
        }
    }

    /// The same parity property for the packed-batch BiGRU engine —
    /// the training path (`forward_batch`) and the fused-GEMM inference
    /// path (`hidden_states_batch`) both reproduce the per-sequence
    /// engine within tolerance.
    #[test]
    fn batched_bigru_forward_matches_sequential(
        batch in batch_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = BiGru::new(3, 6, &mut rng);
        let mut scratch = GemmScratch::new();
        let mut ws = BatchWorkspace::new();
        let seqs: Vec<&[Vec<f32>]> = batch.iter().map(|s| s.as_slice()).collect();
        let batched = net.forward_batch(&seqs, &mut ws, &mut scratch);
        let inferred = net.hidden_states_batch(&seqs, &mut ws, &mut scratch);
        for (i, xs) in batch.iter().enumerate() {
            let (expect, _) = net.forward_with_scratch(xs, &mut scratch);
            prop_assert_eq!(batched[i].len(), expect.len());
            prop_assert_eq!(inferred[i].len(), expect.len());
            for (t, row) in expect.iter().enumerate() {
                for (k, &e) in row.iter().enumerate() {
                    prop_assert!(
                        rel_close(batched[i][t][k], e),
                        "train path seq {} frame {} unit {}: {} vs {}",
                        i, t, k, batched[i][t][k], e
                    );
                    prop_assert!(
                        rel_close(inferred[i][t][k], e),
                        "infer path seq {} frame {} unit {}: {} vs {}",
                        i, t, k, inferred[i][t][k], e
                    );
                }
            }
        }
    }

    /// One batched `train_step` reaches the same loss as the sequential
    /// reference path when both start from identical weights (fixed
    /// seed) and see the same minibatch.
    #[test]
    fn batched_train_step_loss_matches_sequential(
        batch in batch_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seq_model = BrnnClassifier::new(3, 5, 2, &mut rng);
        let mut bat_model = seq_model.clone();
        let labels: Vec<Vec<usize>> = batch
            .iter()
            .map(|s| (0..s.len()).map(|t| t % 2).collect())
            .collect();
        let pairs: Vec<(&[Vec<f32>], &[usize])> = batch
            .iter()
            .zip(&labels)
            .map(|(s, y)| (s.as_slice(), y.as_slice()))
            .collect();
        let cfg = TrainConfig::default();
        let seq_loss = seq_model.train_step_sequential(&pairs, &cfg);
        let bat_loss = bat_model.train_step(&pairs, &cfg);
        prop_assert!(
            rel_close(seq_loss, bat_loss),
            "sequential {} vs batched {}",
            seq_loss, bat_loss
        );
    }
}
