//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thrubarrier_nn::loss;
use thrubarrier_nn::lstm::{BiLstm, Lstm};
use thrubarrier_nn::Matrix;

fn sequence_strategy() -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 3), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lstm_hidden_states_are_bounded(xs in sequence_strategy(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lstm = Lstm::new(3, 5, &mut rng);
        let (hs, _) = lstm.forward(&xs);
        prop_assert_eq!(hs.len(), xs.len());
        for h in &hs {
            for &v in h {
                prop_assert!(v.abs() < 1.0, "hidden state {v} out of (-1, 1)");
            }
        }
    }

    #[test]
    fn lstm_forward_is_deterministic(xs in sequence_strategy(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lstm = Lstm::new(3, 4, &mut rng);
        let (a, _) = lstm.forward(&xs);
        let (b, _) = lstm.forward(&xs);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn lstm_is_causal(xs in sequence_strategy(), seed in 0u64..50) {
        // Changing the last frame must not affect earlier outputs.
        if xs.len() < 2 {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let lstm = Lstm::new(3, 4, &mut rng);
        let (a, _) = lstm.forward(&xs);
        let mut ys = xs.clone();
        let last = ys.len() - 1;
        ys[last] = vec![0.9, -0.9, 0.9];
        let (b, _) = lstm.forward(&ys);
        for t in 0..last {
            prop_assert_eq!(&a[t], &b[t], "output at {} changed", t);
        }
    }

    #[test]
    fn bilstm_reversal_symmetry(xs in sequence_strategy(), seed in 0u64..50) {
        // Swapping the two directions' weights and reversing the input
        // reverses the output sequence.
        let mut rng = StdRng::seed_from_u64(seed);
        let bi = BiLstm::new(3, 4, &mut rng);
        let (out, _) = bi.forward(&xs);
        let rev_in: Vec<Vec<f32>> = xs.iter().rev().cloned().collect();
        let swapped = BiLstm {
            fwd: bi.bwd.clone(),
            bwd: bi.fwd.clone(),
        };
        let (rev_out, _) = swapped.forward(&rev_in);
        for (a, b) in out.iter().zip(rev_out.iter().rev()) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-20.0f32..20.0, 1..10)) {
        let p = loss::softmax(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn cross_entropy_is_nonnegative(
        logits in prop::collection::vec(-10.0f32..10.0, 2..6),
        target_raw in 0usize..6,
    ) {
        let target = target_raw % logits.len();
        let (l, dl) = loss::softmax_cross_entropy(&logits, target);
        prop_assert!(l >= 0.0);
        // Gradient components sum to ~0 (softmax minus one-hot).
        prop_assert!(dl.iter().sum::<f32>().abs() < 1e-4);
    }

    #[test]
    fn matvec_distributes_over_addition(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in 0u64..50,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::xavier(rows, cols, &mut rng);
        let x: Vec<f32> = (0..cols).map(|i| i as f32 * 0.3 - 0.5).collect();
        let y: Vec<f32> = (0..cols).map(|i| 0.7 - i as f32 * 0.2).collect();
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = m.matvec(&sum);
        let mx = m.matvec(&x);
        let my = m.matvec(&y);
        for (l, (a, b)) in lhs.iter().zip(mx.iter().zip(&my)) {
            prop_assert!((l - (a + b)).abs() < 1e-4);
        }
    }
}
