//! Binary serialization of trained models.
//!
//! A trained BRNN phoneme detector takes minutes to fit; deployments
//! train once and ship the weights. The format is a simple
//! little-endian container: magic, version, layer dimensions, then raw
//! `f32` parameter data in a fixed order.
//!
//! # Version 1 layout (pinned)
//!
//! `"TBNN"` · `u32` version (=1) · `u32` matrix count (=8) · eight
//! matrices, each `u32 rows` · `u32 cols` · row-major `f32` data, in the
//! order: forward LSTM `W (4H x D)`, `U (4H x H)`, `b (4H x 1)`; backward
//! LSTM `W`, `U`, `b`; head `W (C x H)`, `b (C x 1)`. The LSTM matrices
//! have always been stored *fused* (the four `[i, f, g, o]` gate blocks
//! stacked along rows), so checkpoints written before the fused-gate
//! compute engine load byte-identically — the engine changed how the
//! matrices are multiplied, not how they are laid out.

use crate::matrix::Matrix;
use crate::model::BrnnClassifier;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"TBNN";
const VERSION: u32 = 1;

/// Serialization errors.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a model file or has an unsupported version.
    Format(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<io::Error> for SerializeError {
    fn from(e: io::Error) -> Self {
        SerializeError::Io(e)
    }
}

fn write_matrix<W: Write>(w: &mut W, m: &Matrix) -> io::Result<()> {
    w.write_all(&(m.rows() as u32).to_le_bytes())?;
    w.write_all(&(m.cols() as u32).to_le_bytes())?;
    for &v in m.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_matrix<R: Read>(r: &mut R) -> Result<Matrix, SerializeError> {
    let rows = read_u32(r)? as usize;
    let cols = read_u32(r)? as usize;
    if rows.saturating_mul(cols) > 64 << 20 {
        return Err(SerializeError::Format(format!(
            "matrix {rows}x{cols} implausibly large"
        )));
    }
    let mut m = Matrix::zeros(rows, cols);
    let mut buf = [0u8; 4];
    for i in 0..rows * cols {
        r.read_exact(&mut buf)?;
        m.data_mut()[i] = f32::from_le_bytes(buf);
    }
    Ok(m)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, SerializeError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

impl BrnnClassifier {
    /// Serializes the model's weights (not the optimizer state) to a
    /// writer.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), SerializeError> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        let params = self.parameter_matrices();
        w.write_all(&(params.len() as u32).to_le_bytes())?;
        for m in params {
            write_matrix(&mut w, m)?;
        }
        Ok(())
    }

    /// Deserializes a model previously written by [`BrnnClassifier::save`].
    ///
    /// # Errors
    ///
    /// Returns a format error for wrong magic/version or mismatched
    /// shapes, and propagates reader errors.
    pub fn load<R: Read>(mut r: R) -> Result<Self, SerializeError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SerializeError::Format("bad magic".into()));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(SerializeError::Format(format!(
                "unsupported version {version}"
            )));
        }
        let count = read_u32(&mut r)? as usize;
        if count != 8 {
            return Err(SerializeError::Format(format!(
                "expected 8 parameter matrices, found {count}"
            )));
        }
        let mats: Vec<Matrix> = (0..count)
            .map(|_| read_matrix(&mut r))
            .collect::<Result<_, _>>()?;
        BrnnClassifier::from_parameter_matrices(mats).map_err(SerializeError::Format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = BrnnClassifier::new(4, 6, 2, &mut rng);
        let xs: Vec<Vec<f32>> = (0..7)
            .map(|i| (0..4).map(|j| ((i * 4 + j) as f32 * 0.13).sin()).collect())
            .collect();
        let before = model.predict_proba(&xs);
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap();
        let back = BrnnClassifier::load(bytes.as_slice()).unwrap();
        let after = back.predict_proba(&xs);
        for (a, b) in before.iter().zip(&after) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    /// Golden byte-level pin of the V1 container: a checkpoint assembled
    /// by hand, exactly as the pre-fused-engine code wrote it, must load
    /// and classify. Guards against accidental format drift while the
    /// compute engine underneath evolves.
    #[test]
    fn v1_byte_layout_is_pinned() {
        let (d, h, c) = (2usize, 1usize, 2usize);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"TBNN");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&8u32.to_le_bytes());
        let mut val = 0.0f32;
        let mut push_matrix = |bytes: &mut Vec<u8>, rows: usize, cols: usize| {
            bytes.extend_from_slice(&(rows as u32).to_le_bytes());
            bytes.extend_from_slice(&(cols as u32).to_le_bytes());
            for _ in 0..rows * cols {
                val += 0.01;
                bytes.extend_from_slice(&(val.sin() * 0.5).to_le_bytes());
            }
        };
        for _ in 0..2 {
            push_matrix(&mut bytes, 4 * h, d); // W
            push_matrix(&mut bytes, 4 * h, h); // U
            push_matrix(&mut bytes, 4 * h, 1); // b
        }
        push_matrix(&mut bytes, c, h); // head W
        push_matrix(&mut bytes, c, 1); // head b
        let model = BrnnClassifier::load(bytes.as_slice()).unwrap();
        assert_eq!(model.n_classes(), c);
        let preds = model.predict(&[vec![0.5, -0.5], vec![-0.1, 0.9]]);
        assert_eq!(preds.len(), 2);
        // Saving it back reproduces the exact byte stream.
        let mut out = Vec::new();
        model.save(&mut out).unwrap();
        assert_eq!(out, bytes);
    }

    #[test]
    fn rejects_garbage() {
        assert!(BrnnClassifier::load(&b"not a model"[..]).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&8u32.to_le_bytes());
        assert!(BrnnClassifier::load(bytes.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = BrnnClassifier::new(3, 4, 2, &mut rng);
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(BrnnClassifier::load(bytes.as_slice()).is_err());
    }
}
