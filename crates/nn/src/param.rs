//! Trainable parameter tensors with ADAM state.

use crate::matrix::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global ticket counter backing [`Param::version`]. Every value update
/// draws a fresh ticket, so two parameters only ever share a version
/// when one is an unmodified clone of the other — in which case their
/// values are identical and any cache keyed by the version is still
/// sound to reuse.
static VERSION_TICKETS: AtomicU64 = AtomicU64::new(1);

fn next_version() -> u64 {
    VERSION_TICKETS.fetch_add(1, Ordering::Relaxed)
}

/// A trainable tensor: value, accumulated gradient and the first/second
/// moment estimates used by the ADAM optimizer (the optimizer the paper
/// trains its BRNN with).
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (zeroed by [`Param::zero_grad`]).
    pub grad: Matrix,
    m: Matrix,
    v: Matrix,
    version: u64,
}

/// ADAM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate (default `1e-3`).
    pub lr: f32,
    /// Exponential decay for the first moment (default `0.9`).
    pub beta1: f32,
    /// Exponential decay for the second moment (default `0.999`).
    pub beta2: f32,
    /// Numerical-stability constant (default `1e-8`).
    pub eps: f32,
    /// Gradient-clipping threshold on the absolute value of each
    /// component (default `5.0`; set to `f32::INFINITY` to disable).
    pub clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 5.0,
        }
    }
}

impl Param {
    /// Wraps a value matrix as a trainable parameter.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = (value.rows(), value.cols());
        Param {
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
            version: next_version(),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Version ticket of the current value: changes on every optimizer
    /// update. Caches derived from the value (the batched engine's
    /// time-batched `W·X` projections) store the ticket they were
    /// computed against and recompute on mismatch.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Applies one ADAM update using the accumulated gradient.
    /// `step` is the 1-based global step count (for bias correction).
    pub fn adam_step(&mut self, cfg: &AdamConfig, step: u64) {
        let b1t = 1.0 - cfg.beta1.powi(step as i32);
        let b2t = 1.0 - cfg.beta2.powi(step as i32);
        let n = self.value.data().len();
        for i in 0..n {
            let g = self.grad.data()[i].clamp(-cfg.clip, cfg.clip);
            let m = cfg.beta1 * self.m.data()[i] + (1.0 - cfg.beta1) * g;
            let v = cfg.beta2 * self.v.data()[i] + (1.0 - cfg.beta2) * g * g;
            self.m.data_mut()[i] = m;
            self.v.data_mut()[i] = v;
            let m_hat = m / b1t;
            let v_hat = v / b2t;
            self.value.data_mut()[i] -= cfg.lr * m_hat / (v_hat.sqrt() + cfg.eps);
        }
        self.version = next_version();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_moves_against_gradient() {
        let mut p = Param::new(Matrix::zeros(1, 1));
        p.grad.set(0, 0, 1.0);
        p.adam_step(&AdamConfig::default(), 1);
        assert!(p.value.get(0, 0) < 0.0);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the first ADAM step has magnitude ~lr.
        let cfg = AdamConfig::default();
        let mut p = Param::new(Matrix::zeros(1, 1));
        p.grad.set(0, 0, 0.37);
        p.adam_step(&cfg, 1);
        assert!((p.value.get(0, 0).abs() - cfg.lr).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(x) = (x - 3)^2 with gradient 2(x - 3).
        let cfg = AdamConfig {
            lr: 0.1,
            ..AdamConfig::default()
        };
        let mut p = Param::new(Matrix::zeros(1, 1));
        for step in 1..=500 {
            let x = p.value.get(0, 0);
            p.zero_grad();
            p.grad.set(0, 0, 2.0 * (x - 3.0));
            p.adam_step(&cfg, step);
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 0.05);
    }

    #[test]
    fn clipping_bounds_update() {
        let cfg = AdamConfig {
            clip: 0.5,
            ..AdamConfig::default()
        };
        let mut a = Param::new(Matrix::zeros(1, 1));
        a.grad.set(0, 0, 100.0);
        let mut b = Param::new(Matrix::zeros(1, 1));
        b.grad.set(0, 0, 0.5);
        a.adam_step(&cfg, 1);
        b.adam_step(&cfg, 1);
        // Clipped 100.0 behaves exactly like 0.5.
        assert!((a.value.get(0, 0) - b.value.get(0, 0)).abs() < 1e-7);
    }

    #[test]
    fn version_tickets_are_unique_and_change_on_update() {
        let a = Param::new(Matrix::zeros(1, 1));
        let b = Param::new(Matrix::zeros(1, 1));
        assert_ne!(a.version(), b.version());
        // An unmodified clone shares the ticket (identical value, caches
        // keyed by it stay valid)…
        let mut c = a.clone();
        assert_eq!(c.version(), a.version());
        // …until the first optimizer update diverges it.
        c.grad.set(0, 0, 1.0);
        c.adam_step(&AdamConfig::default(), 1);
        assert_ne!(c.version(), a.version());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        p.grad.set(1, 1, 4.0);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0; 4]);
    }
}
