//! A minimal, dependency-free neural-network substrate.
//!
//! The paper's barrier-effect-sensitive phoneme detector is a
//! bidirectional recurrent network with LSTM units (64 per direction), a
//! dense output layer with two neurons, softmax cross-entropy loss and an
//! ADAM optimizer (Sec. V-B). This crate implements exactly those pieces
//! from scratch:
//!
//! * [`matrix::Matrix`] — a dense row-major `f32` matrix with blocked
//!   GEMM kernels ([`matrix::Matrix::matmul_nt`], batched gradient
//!   products) shared by every layer,
//! * [`matrix::GemmScratch`] — reusable working buffers so the hot
//!   inference/training paths allocate nothing per timestep,
//! * [`act`] — branch-free rational `tanh`/`sigmoid` kernels that the
//!   gate loops auto-vectorize through (scalar libm transcendentals
//!   cost as much as the matrix products at this model size),
//! * [`param::Param`] — a trainable tensor with gradient and ADAM state,
//! * [`lstm::Lstm`] — a single-direction LSTM with full backpropagation
//!   through time,
//! * [`lstm::BiLstm`] — the paper's bidirectional wrapper (forward and
//!   backward hidden states are *summed*, matching the paper's
//!   `h_t = h→_t + h←_t`),
//! * [`dense::Dense`] — an affine output layer,
//! * [`loss`] — softmax cross-entropy,
//! * [`model::BrnnClassifier`] — the assembled per-frame binary
//!   classifier with a training loop.
//!
//! Gradients are verified against finite differences in the test suite.
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use thrubarrier_nn::model::{BrnnClassifier, TrainConfig};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut model = BrnnClassifier::new(4, 8, 2, &mut rng);
//! // One toy sequence: class 1 iff feature 0 is high.
//! let xs = vec![vec![1.0, 0.0, 0.0, 0.0]; 5];
//! let ys = vec![1usize; 5];
//! let cfg = TrainConfig::default();
//! for _ in 0..30 {
//!     model.train_step(&[(&xs, &ys)], &cfg);
//! }
//! let probs = model.predict_proba(&xs);
//! assert!(probs[2][1] > 0.5);
//! ```

#![warn(missing_docs)]

pub mod act;
pub mod batch;
pub mod dense;
pub mod gru;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod model;
pub mod param;
pub mod score;
pub mod serialize;

pub use batch::BatchWorkspace;
pub use matrix::{GemmScratch, Matrix};
pub use model::BrnnClassifier;
pub use score::{PendingScore, ScoreClient, ScoreService};
