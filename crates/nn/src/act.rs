//! Fast, deterministic gate activations.
//!
//! The recurrent gate loops evaluate a sigmoid or tanh for every hidden
//! unit of every timestep — roughly `6·H·T` transcendentals per scored
//! second of audio. `f32::tanh`/`f32::exp` lower to scalar libm calls,
//! which profiling showed cost as much as the recurrent matrix products
//! themselves. The versions here are branch-free polynomial kernels, so
//! the element-wise gate loops that call them auto-vectorize.
//!
//! [`tanh`] is the classic single-precision minimax rational
//! approximation (an odd 13th-degree numerator over a 6th-degree
//! denominator in `x²`, the same form used by Eigen and XLA), clamped
//! to the range where `tanh` is exactly `±1` at `f32` precision.
//! [`sigmoid`] is derived from it through the identity
//! `σ(x) = (1 + tanh(x/2)) / 2`.
//!
//! Both functions are pure and branch-free, so results are identical
//! on every target, and every engine path — training forward,
//! inference, and the BPTT derivative formulas (which differentiate
//! through cached activation *values*) — shares these definitions.

/// Largest `|x|` the rational approximation is evaluated at; beyond it
/// `tanh(x)` is within one `f32` ulp of `±1` and the clamped value is
/// returned instead.
const CLAMP: f32 = 7.905_311_5;

/// Odd-power numerator coefficients, highest degree first.
const NUM: [f32; 7] = [
    -2.760_768_5e-16,
    2.000_188e-13,
    -8.604_672e-11,
    5.122_297_1e-8,
    1.485_722_4e-5,
    6.372_619_3e-4,
    4.893_525_6e-3,
];

/// Even-power denominator coefficients, highest degree first.
const DEN: [f32; 4] = [1.198_258_4e-6, 1.185_347_1e-4, 2.268_434_6e-3, 4.893_525e-3];

/// Hyperbolic tangent via a minimax rational approximation, accurate to
/// a few `f32` ulps over the whole real line.
///
/// # Example
///
/// ```
/// let y = thrubarrier_nn::act::tanh(0.5);
/// assert!((y - 0.5f32.tanh()).abs() < 1e-6);
/// ```
#[inline]
pub fn tanh(x: f32) -> f32 {
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let mut p = NUM[0];
    for &a in &NUM[1..] {
        p = p * x2 + a;
    }
    let mut q = DEN[0];
    for &b in &DEN[1..] {
        q = q * x2 + b;
    }
    (x * p) / q
}

/// Logistic sigmoid `1 / (1 + e^(-x))`, computed as
/// `(1 + tanh(x/2)) / 2` so it shares [`tanh`]'s kernel.
///
/// # Example
///
/// ```
/// let y = thrubarrier_nn::act::sigmoid(0.0);
/// assert!((y - 0.5).abs() < 1e-6);
/// ```
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    0.5 * tanh(0.5 * x) + 0.5
}

/// In-place [`tanh`] over a slice — bitwise identical to mapping the
/// scalar function, but eight elements wide on AVX2 machines. The gate
/// loops are bound by the rational kernel's division throughput, so
/// doubling the division width is a direct win.
#[inline]
pub fn tanh_slice(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { tanh_slice_avx2(xs) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: guarded by the runtime NEON check above.
        unsafe { tanh_slice_neon(xs) };
        return;
    }
    for x in xs {
        *x = tanh(*x);
    }
}

/// In-place [`sigmoid`] over a slice; see [`tanh_slice`].
#[inline]
pub fn sigmoid_slice(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { sigmoid_slice_avx2(xs) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: guarded by the runtime NEON check above.
        unsafe { sigmoid_slice_neon(xs) };
        return;
    }
    for x in xs {
        *x = sigmoid(*x);
    }
}

/// Fused activation sweep over a packed `[i, f, g, o]` LSTM gate row:
/// sigmoid on `[..2H]` (input and forget gates), [`tanh`] on
/// `[2H..3H]` (cell candidate), sigmoid on `[3H..]` (output gate) — in
/// a single pass over the `4H` buffer.
///
/// Every element receives exactly the operation sequence of the scalar
/// [`tanh`]/[`sigmoid`] functions, so the result is bitwise identical
/// to three separate [`sigmoid_slice`]/[`tanh_slice`] calls. What the
/// fusion buys is one runtime feature dispatch instead of three, one
/// inlined loop body over the whole row, and no per-slice sub-lane
/// remainder tails when `H` is lane-aligned — which matters because
/// this runs once per timestep per sequence in both the training cell
/// and the batched inference row loop.
///
/// # Panics
///
/// Panics if `zs.len() != 4 * hl`.
///
/// # Example
///
/// ```
/// let hl = 3;
/// let mut fused: Vec<f32> = (0..4 * hl).map(|i| i as f32 * 0.3 - 1.7).collect();
/// let mut sliced = fused.clone();
/// thrubarrier_nn::act::gates_fused(&mut fused, hl);
/// thrubarrier_nn::act::sigmoid_slice(&mut sliced[..2 * hl]);
/// thrubarrier_nn::act::tanh_slice(&mut sliced[2 * hl..3 * hl]);
/// thrubarrier_nn::act::sigmoid_slice(&mut sliced[3 * hl..]);
/// assert_eq!(fused, sliced);
/// ```
#[inline]
pub fn gates_fused(zs: &mut [f32], hl: usize) {
    assert_eq!(zs.len(), 4 * hl, "gate buffer must be 4·H wide");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { gates_fused_avx2(zs, hl) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: guarded by the runtime NEON check above.
        unsafe { gates_fused_neon(zs, hl) };
        return;
    }
    let (sig_lo, rest) = zs.split_at_mut(2 * hl);
    let (tanh_mid, sig_hi) = rest.split_at_mut(hl);
    for x in sig_lo {
        *x = sigmoid(*x);
    }
    for x in tanh_mid {
        *x = tanh(*x);
    }
    for x in sig_hi {
        *x = sigmoid(*x);
    }
}

/// AVX2 body of [`gates_fused`]: one walk over the `4H` row, switching
/// the lane op at the two region boundaries. Full eight-lane chunks use
/// [`tanh_lanes`] (directly for the candidate region, through the
/// `0.5 · tanh(0.5x) + 0.5` identity for the sigmoid regions); the up
/// to seven elements before each boundary fall back to the scalar
/// kernels, which are lane-for-lane bitwise identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gates_fused_avx2(zs: &mut [f32], hl: usize) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };
    let half = _mm256_set1_ps(0.5);
    let (b1, b2, n) = (2 * hl, 3 * hl, 4 * hl);
    let mut i = 0;
    while i < n {
        let (end, is_tanh) = if i < b1 {
            (b1, false)
        } else if i < b2 {
            (b2, true)
        } else {
            (n, false)
        };
        while i + 8 <= end {
            // SAFETY: `i + 8 <= end <= n == zs.len()`.
            let x = unsafe { _mm256_loadu_ps(zs.as_ptr().add(i)) };
            let y = if is_tanh {
                tanh_lanes(x)
            } else {
                let t = tanh_lanes(_mm256_mul_ps(half, x));
                _mm256_add_ps(_mm256_mul_ps(half, t), half)
            };
            // SAFETY: as above.
            unsafe { _mm256_storeu_ps(zs.as_mut_ptr().add(i), y) };
            i += 8;
        }
        while i < end {
            zs[i] = if is_tanh { tanh(zs[i]) } else { sigmoid(zs[i]) };
            i += 1;
        }
    }
}

/// NEON body of [`gates_fused`]; the four-wide mirror of
/// [`gates_fused_avx2`], built on [`tanh_lanes_neon`].
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn gates_fused_neon(zs: &mut [f32], hl: usize) {
    use std::arch::aarch64::{vaddq_f32, vdupq_n_f32, vld1q_f32, vmulq_f32, vst1q_f32};
    let half = vdupq_n_f32(0.5);
    let (b1, b2, n) = (2 * hl, 3 * hl, 4 * hl);
    let mut i = 0;
    while i < n {
        let (end, is_tanh) = if i < b1 {
            (b1, false)
        } else if i < b2 {
            (b2, true)
        } else {
            (n, false)
        };
        while i + 4 <= end {
            // SAFETY: `i + 4 <= end <= n == zs.len()`.
            let x = unsafe { vld1q_f32(zs.as_ptr().add(i)) };
            let y = if is_tanh {
                tanh_lanes_neon(x)
            } else {
                let t = tanh_lanes_neon(vmulq_f32(half, x));
                vaddq_f32(vmulq_f32(half, t), half)
            };
            // SAFETY: as above.
            unsafe { vst1q_f32(zs.as_mut_ptr().add(i), y) };
            i += 4;
        }
        while i < end {
            zs[i] = if is_tanh { tanh(zs[i]) } else { sigmoid(zs[i]) };
            i += 1;
        }
    }
}

/// Eight-wide [`tanh`]: the same clamp, polynomial-evaluation and
/// division sequence as the scalar kernel, so every lane's result is
/// bitwise identical to `tanh(x)` (IEEE min/max/mul/add/div round the
/// same way at any vector width; no FMA contraction is used).
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn tanh_slice_avx2(xs: &mut [f32]) {
    use std::arch::x86_64::{_mm256_loadu_ps, _mm256_storeu_ps};
    let mut chunks = xs.chunks_exact_mut(8);
    for chunk in &mut chunks {
        // SAFETY: `chunk` is exactly eight elements.
        let x = unsafe { _mm256_loadu_ps(chunk.as_ptr()) };
        let y = tanh_lanes(x);
        unsafe { _mm256_storeu_ps(chunk.as_mut_ptr(), y) };
    }
    for x in chunks.into_remainder() {
        *x = tanh(*x);
    }
}

/// Eight-wide [`sigmoid`], mirroring the scalar identity exactly.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sigmoid_slice_avx2(xs: &mut [f32]) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };
    let half = _mm256_set1_ps(0.5);
    let mut chunks = xs.chunks_exact_mut(8);
    for chunk in &mut chunks {
        // SAFETY: `chunk` is exactly eight elements.
        let x = unsafe { _mm256_loadu_ps(chunk.as_ptr()) };
        let t = tanh_lanes(_mm256_mul_ps(half, x));
        let y = _mm256_add_ps(_mm256_mul_ps(half, t), half);
        unsafe { _mm256_storeu_ps(chunk.as_mut_ptr(), y) };
    }
    for x in chunks.into_remainder() {
        *x = sigmoid(*x);
    }
}

/// Lane-parallel body of [`tanh`]; op-for-op the scalar sequence.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn tanh_lanes(x: std::arch::x86_64::__m256) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_div_ps, _mm256_max_ps, _mm256_min_ps, _mm256_mul_ps, _mm256_set1_ps,
    };
    let x = _mm256_min_ps(
        _mm256_max_ps(x, _mm256_set1_ps(-CLAMP)),
        _mm256_set1_ps(CLAMP),
    );
    let x2 = _mm256_mul_ps(x, x);
    let mut p = _mm256_set1_ps(NUM[0]);
    for &a in &NUM[1..] {
        p = _mm256_add_ps(_mm256_mul_ps(p, x2), _mm256_set1_ps(a));
    }
    let mut q = _mm256_set1_ps(DEN[0]);
    for &b in &DEN[1..] {
        q = _mm256_add_ps(_mm256_mul_ps(q, x2), _mm256_set1_ps(b));
    }
    _mm256_div_ps(_mm256_mul_ps(x, p), q)
}

/// Four-wide [`tanh`] for aarch64: the same clamp, polynomial and
/// division sequence as the scalar kernel. `vminq`/`vmaxq`/`vmulq`/
/// `vaddq`/`vdivq` round exactly like their scalar IEEE counterparts
/// and no fused multiply-add is emitted, so every lane is bitwise
/// identical to `tanh(x)`.
#[cfg(target_arch = "aarch64")]
#[inline]
#[target_feature(enable = "neon")]
unsafe fn tanh_slice_neon(xs: &mut [f32]) {
    use std::arch::aarch64::{vld1q_f32, vst1q_f32};
    let mut chunks = xs.chunks_exact_mut(4);
    for chunk in &mut chunks {
        // SAFETY: `chunk` is exactly four elements.
        let x = unsafe { vld1q_f32(chunk.as_ptr()) };
        let y = tanh_lanes_neon(x);
        unsafe { vst1q_f32(chunk.as_mut_ptr(), y) };
    }
    for x in chunks.into_remainder() {
        *x = tanh(*x);
    }
}

/// Four-wide [`sigmoid`] for aarch64, mirroring the scalar identity
/// `0.5 * tanh(0.5 * x) + 0.5` op for op.
#[cfg(target_arch = "aarch64")]
#[inline]
#[target_feature(enable = "neon")]
unsafe fn sigmoid_slice_neon(xs: &mut [f32]) {
    use std::arch::aarch64::{vaddq_f32, vdupq_n_f32, vld1q_f32, vmulq_f32, vst1q_f32};
    let half = vdupq_n_f32(0.5);
    let mut chunks = xs.chunks_exact_mut(4);
    for chunk in &mut chunks {
        // SAFETY: `chunk` is exactly four elements.
        let x = unsafe { vld1q_f32(chunk.as_ptr()) };
        let t = tanh_lanes_neon(vmulq_f32(half, x));
        let y = vaddq_f32(vmulq_f32(half, t), half);
        unsafe { vst1q_f32(chunk.as_mut_ptr(), y) };
    }
    for x in chunks.into_remainder() {
        *x = sigmoid(*x);
    }
}

/// Lane-parallel body of [`tanh`] on NEON; op-for-op the scalar
/// sequence (separate multiply and add — `vfmaq_f32` would contract
/// the rounding and break bitwise parity).
#[cfg(target_arch = "aarch64")]
#[inline]
#[target_feature(enable = "neon")]
unsafe fn tanh_lanes_neon(x: std::arch::aarch64::float32x4_t) -> std::arch::aarch64::float32x4_t {
    use std::arch::aarch64::{vaddq_f32, vdivq_f32, vdupq_n_f32, vmaxq_f32, vminq_f32, vmulq_f32};
    let x = vminq_f32(vmaxq_f32(x, vdupq_n_f32(-CLAMP)), vdupq_n_f32(CLAMP));
    let x2 = vmulq_f32(x, x);
    let mut p = vdupq_n_f32(NUM[0]);
    for &a in &NUM[1..] {
        p = vaddq_f32(vmulq_f32(p, x2), vdupq_n_f32(a));
    }
    let mut q = vdupq_n_f32(DEN[0]);
    for &b in &DEN[1..] {
        q = vaddq_f32(vmulq_f32(q, x2), vdupq_n_f32(b));
    }
    vdivq_f32(vmulq_f32(x, p), q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_tracks_libm_within_a_few_ulps() {
        let mut worst = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            let err = (tanh(x) - (x as f64).tanh() as f32).abs();
            worst = worst.max(err);
            x += 0.003;
        }
        assert!(worst < 5e-7, "worst tanh error {worst}");
    }

    #[test]
    fn sigmoid_tracks_libm_within_a_few_ulps() {
        let mut worst = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            let exact = (1.0 / (1.0 + (-x as f64).exp())) as f32;
            let err = (sigmoid(x) - exact).abs();
            worst = worst.max(err);
            x += 0.003;
        }
        assert!(worst < 5e-7, "worst sigmoid error {worst}");
    }

    #[test]
    fn outputs_stay_in_range_and_saturate() {
        for &x in &[-1e9f32, -30.0, 30.0, 1e9] {
            assert!(tanh(x).abs() <= 1.0);
            assert_eq!(tanh(x), tanh(x.signum() * CLAMP));
            assert!((0.0..=1.0).contains(&sigmoid(x)));
        }
        assert_eq!(tanh(0.0), 0.0);
        assert_eq!(tanh(-3.0), -tanh(3.0));
    }

    #[test]
    fn slice_kernels_are_bitwise_identical_to_scalar() {
        // On AVX2 machines this pits the eight-wide kernels against the
        // scalar ones; odd lengths exercise the sub-8 remainder.
        for len in [0, 1, 7, 8, 9, 64, 97] {
            let xs: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin() * 9.0).collect();
            let mut t = xs.clone();
            tanh_slice(&mut t);
            let mut s = xs.clone();
            sigmoid_slice(&mut s);
            for (k, &x) in xs.iter().enumerate() {
                assert_eq!(t[k].to_bits(), tanh(x).to_bits(), "tanh lane {k} len {len}");
                assert_eq!(
                    s[k].to_bits(),
                    sigmoid(x).to_bits(),
                    "sigmoid lane {k} len {len}"
                );
            }
        }
    }

    #[test]
    fn fused_gate_sweep_is_bitwise_identical_to_sliced_calls() {
        // Hidden sizes that are multiples of the SIMD width, odd, prime,
        // and sub-lane — the latter force the scalar boundary handling
        // inside every vector body.
        for hl in [1, 2, 3, 5, 7, 8, 11, 16, 33, 64] {
            let zs: Vec<f32> = (0..4 * hl)
                .map(|i| (i as f32 * 0.61).sin() * 8.0 - 1.0)
                .collect();
            let mut fused = zs.clone();
            gates_fused(&mut fused, hl);
            let mut sliced = zs.clone();
            sigmoid_slice(&mut sliced[..2 * hl]);
            tanh_slice(&mut sliced[2 * hl..3 * hl]);
            sigmoid_slice(&mut sliced[3 * hl..]);
            for k in 0..4 * hl {
                assert_eq!(
                    fused[k].to_bits(),
                    sliced[k].to_bits(),
                    "fused gate lane {k} hl {hl}"
                );
                // And against the scalar reference directly, so the
                // sliced path can't mask a shared error.
                let want = if (2 * hl..3 * hl).contains(&k) {
                    tanh(zs[k])
                } else {
                    sigmoid(zs[k])
                };
                assert_eq!(
                    fused[k].to_bits(),
                    want.to_bits(),
                    "scalar lane {k} hl {hl}"
                );
            }
        }
    }

    #[test]
    fn monotone_on_a_grid_up_to_rounding() {
        // A minimax approximation is only monotone up to its own error
        // (a few ulps near saturation) — but nothing coarser.
        let mut prev = f32::NEG_INFINITY;
        let mut x = -9.0f32;
        while x <= 9.0 {
            let y = tanh(x);
            assert!(y >= prev - 5e-7, "tanh decreased at {x}");
            prev = y;
            x += 0.01;
        }
    }
}
