//! Dense row-major matrix with the handful of operations the LSTM needs.

use rand::Rng;

/// A dense row-major `f32` matrix.
///
/// # Example
///
/// ```
/// use thrubarrier_nn::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let v = m.matvec(&[1.0, 1.0]);
/// assert_eq!(v, vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Xavier/Glorot-uniform initialization: entries uniform in
    /// `[-s, s]` with `s = sqrt(6 / (rows + cols))`.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let s = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-s..=s)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable access to the raw data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0f32; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *slot = acc;
        }
        out
    }

    /// Transposed matrix–vector product `selfᵀ * x` — used in
    /// backpropagation without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_transposed dimension mismatch");
        let mut out = vec![0.0f32; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            for (o, &w) in out.iter_mut().zip(row) {
                *o += w * xr;
            }
        }
        out
    }

    /// Accumulates the outer product `x ⊗ y` into the matrix — used for
    /// weight gradients (`dW += dgate ⊗ input`).
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == rows` and `y.len() == cols`.
    pub fn add_outer(&mut self, x: &[f32], y: &[f32]) {
        assert_eq!(x.len(), self.rows, "outer product row mismatch");
        assert_eq!(y.len(), self.cols, "outer product col mismatch");
        for (r, &xr) in x.iter().enumerate() {
            let base = r * self.cols;
            for (c, &yc) in y.iter().enumerate() {
                self.data[base + c] += xr * yc;
            }
        }
    }

    /// Sets all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of squares of all elements (for gradient-norm diagnostics).
    pub fn frobenius_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, -1.0, 1.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 0.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = [1.0, 0.5, -1.0];
        let got = m.matvec_transposed(&x);
        // Explicit: columns of m dotted with x.
        assert_eq!(got, vec![1.0 + 1.5 - 5.0, 2.0 + 2.0 - 6.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[1.0, 0.0, -1.0]);
        m.add_outer(&[1.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(m.row(0), &[2.0, 1.0, 0.0]);
        assert_eq!(m.row(1), &[2.0, 0.0, -2.0]);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Matrix::xavier(10, 20, &mut rng);
        let s = (6.0f32 / 30.0).sqrt();
        assert!(m.data().iter().all(|&v| v.abs() <= s + 1e-6));
        // Not all zero.
        assert!(m.frobenius_sq() > 0.0);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_rejects_wrong_length() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row lengths")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[&[1.0, 2.0], &[1.0]]);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = Matrix::from_rows(&[&[1.0], &[2.0]]);
        m.fill_zero();
        assert_eq!(m.data(), &[0.0, 0.0]);
    }
}
