//! Dense row-major matrix with the operations the recurrent layers need.
//!
//! The hot paths of the BRNN phoneme detector are expressed as three
//! kernels here:
//!
//! * [`Matrix::matmul_nt`] — a time-batched `C = X · selfᵀ` product that
//!   computes the input projections `W·x_t` of *all* timesteps of an
//!   utterance in one cache-blocked GEMM before the sequential
//!   recurrence begins,
//! * [`Matrix::matvec_add_into`] — the per-step recurrent half `z += U·h`
//!   accumulated into a caller-provided buffer (no allocation),
//! * [`Matrix::add_tn_product`] — the batched weight-gradient update
//!   `dW += dZᵀ · X` that replaces one rank-1 `add_outer` per timestep in
//!   backpropagation through time.
//!
//! All kernels share one unrolled dot product so the training and
//! inference paths are bitwise identical. [`GemmScratch`] owns the
//! buffers the recurrent engines stream through, so a caller that scores
//! or trains many sequences reuses one set of allocations.

use rand::Rng;

/// Thirty-two-lane dot product — the shared inner kernel of every
/// matrix product in this module. Lane `k` sums elements `32i + k`, the
/// lanes are folded with a fixed reduction tree, and the tail shorter
/// than 32 is handled by an eight-lane pass plus a sequential
/// remainder. The *lane assignment* (not the vector width of the
/// machine it runs on) defines the summation order, so the scalar and
/// SIMD implementations below are bitwise identical and every caller —
/// forward, backward, inference — stays bitwise consistent with the
/// others. Thirty-two lanes means four independent 8-wide accumulator
/// chains, enough instruction-level parallelism to hide the
/// floating-point add latency that a single chain would serialize on.
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        return unsafe { dot_avx2(a, b) };
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: guarded by the runtime NEON check above.
        return unsafe { dot_neon(a, b) };
    }
    dot_scalar(a, b)
}

/// Portable implementation of [`dot`]'s lane semantics.
#[inline]
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 32];
    let mut ca = a.chunks_exact(32);
    let mut cb = b.chunks_exact(32);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for k in 0..32 {
            acc[k] += xa[k] * xb[k];
        }
    }
    let mut m = [0.0f32; 8];
    for k in 0..8 {
        m[k] = (acc[k] + acc[8 + k]) + (acc[16 + k] + acc[24 + k]);
    }
    let s = ((m[0] + m[1]) + (m[2] + m[3])) + ((m[4] + m[5]) + (m[6] + m[7]));
    s + dot_tail(ca.remainder(), cb.remainder())
}

/// Eight-lane pass over the sub-32 tail, shared by both [`dot`]
/// implementations so their results agree bitwise.
#[inline]
fn dot_tail(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for k in 0..8 {
            acc[k] += xa[k] * xb[k];
        }
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (xa, xb) in ca.remainder().iter().zip(cb.remainder()) {
        s += xa * xb;
    }
    s
}

/// AVX2 implementation of [`dot`]'s lane semantics: lane `32i + 8j + k`
/// lives in lane `k` of accumulator register `j`, the registers are
/// folded pairwise (matching `dot_scalar`'s tree), and multiplies and
/// adds stay separate instructions (no FMA contraction), so the result
/// is bitwise identical to the portable path. Marked `#[inline]` so the
/// row-loop kernels below (which share the `avx2` feature context)
/// inline it — a per-row function call would pay call overhead plus an
/// AVX-to-SSE `vzeroupper` transition on every row.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    let mut acc = [_mm256_setzero_ps(); 4];
    let mut ca = a.chunks_exact(32);
    let mut cb = b.chunks_exact(32);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for (j, slot) in acc.iter_mut().enumerate() {
            // SAFETY: `xa`/`xb` are exactly 32 elements, so offsets
            // `8j..8j + 8` for `j < 4` are in bounds.
            let va = unsafe { _mm256_loadu_ps(xa.as_ptr().add(8 * j)) };
            let vb = unsafe { _mm256_loadu_ps(xb.as_ptr().add(8 * j)) };
            *slot = _mm256_add_ps(*slot, _mm256_mul_ps(va, vb));
        }
    }
    let m = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
    let mut lanes = [0.0f32; 8];
    // SAFETY: `lanes` is a 32-byte buffer; unaligned store is allowed.
    unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), m) };
    let s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    s + dot_tail(ca.remainder(), cb.remainder())
}

/// NEON implementation of [`dot`]'s lane semantics: scalar lane
/// `32i + 4j + k` lives in lane `k` of four-wide accumulator register
/// `j` (`j < 8`), so the scalar reduction `m[k] = (acc[k] + acc[8+k]) +
/// (acc[16+k] + acc[24+k])` maps to the register folds `(r0 + r2) +
/// (r4 + r6)` (lanes 0..4 of `m`) and `(r1 + r3) + (r5 + r7)` (lanes
/// 4..8). Multiplies and adds stay separate instructions — no
/// `vfmaq_f32` contraction — so the result is bitwise identical to the
/// portable path, exactly like the AVX2 kernel above.
#[cfg(target_arch = "aarch64")]
#[inline]
#[target_feature(enable = "neon")]
unsafe fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::aarch64::{vaddq_f32, vdupq_n_f32, vgetq_lane_f32, vld1q_f32, vmulq_f32};
    let mut acc = [vdupq_n_f32(0.0); 8];
    let mut ca = a.chunks_exact(32);
    let mut cb = b.chunks_exact(32);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for (j, slot) in acc.iter_mut().enumerate() {
            // SAFETY: `xa`/`xb` are exactly 32 elements, so offsets
            // `4j..4j + 4` for `j < 8` are in bounds.
            let va = unsafe { vld1q_f32(xa.as_ptr().add(4 * j)) };
            let vb = unsafe { vld1q_f32(xb.as_ptr().add(4 * j)) };
            *slot = vaddq_f32(*slot, vmulq_f32(va, vb));
        }
    }
    let mlo = vaddq_f32(vaddq_f32(acc[0], acc[2]), vaddq_f32(acc[4], acc[6]));
    let mhi = vaddq_f32(vaddq_f32(acc[1], acc[3]), vaddq_f32(acc[5], acc[7]));
    let s = ((vgetq_lane_f32::<0>(mlo) + vgetq_lane_f32::<1>(mlo))
        + (vgetq_lane_f32::<2>(mlo) + vgetq_lane_f32::<3>(mlo)))
        + ((vgetq_lane_f32::<0>(mhi) + vgetq_lane_f32::<1>(mhi))
            + (vgetq_lane_f32::<2>(mhi) + vgetq_lane_f32::<3>(mhi)));
    s + dot_tail(ca.remainder(), cb.remainder())
}

/// Row loop of a matrix–vector product (`add` selects `out[r] += …`
/// versus `out[r] = …`), dispatched once per call so the SIMD dot
/// kernel inlines into the loop instead of being re-entered per row.
#[inline]
fn matvec_rows(data: &[f32], cols: usize, x: &[f32], out: &mut [f32], add: bool) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { matvec_rows_avx2(data, cols, x, out, add) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: guarded by the runtime NEON check above.
        unsafe { matvec_rows_neon(data, cols, x, out, add) };
        return;
    }
    for (slot, row) in out.iter_mut().zip(data.chunks_exact(cols)) {
        let d = dot_scalar(row, x);
        *slot = if add { *slot + d } else { d };
    }
}

/// AVX2 instantiation of [`matvec_rows`]'s loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matvec_rows_avx2(data: &[f32], cols: usize, x: &[f32], out: &mut [f32], add: bool) {
    for (slot, row) in out.iter_mut().zip(data.chunks_exact(cols)) {
        // SAFETY: the caller established AVX2 support.
        let d = unsafe { dot_avx2(row, x) };
        *slot = if add { *slot + d } else { d };
    }
}

/// NEON instantiation of [`matvec_rows`]'s loop.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn matvec_rows_neon(data: &[f32], cols: usize, x: &[f32], out: &mut [f32], add: bool) {
    for (slot, row) in out.iter_mut().zip(data.chunks_exact(cols)) {
        // SAFETY: the caller established NEON support.
        let d = unsafe { dot_neon(row, x) };
        *slot = if add { *slot + d } else { d };
    }
}

/// Column counts below this use the column-streaming layout in
/// [`matmul_nt_narrow`]: the shared dot kernel's 32-lane body never
/// engages on such short rows, leaving its reduction tree and tail
/// handling as pure overhead per output element.
const NARROW_COLS: usize = 32;

/// Blocked loop of the time-batched `C = X · Wᵀ` product (`add`
/// selects accumulation onto the existing contents of `out`): each
/// ~L1-sized panel of weight rows is reused across every timestep
/// before moving to the next panel. Dispatched once per call, like
/// [`matvec_rows`].
#[inline]
fn matmul_nt_rows(data: &[f32], rows: usize, cols: usize, x: &[f32], out: &mut [f32], add: bool) {
    if cols < NARROW_COLS {
        matmul_nt_narrow(data, rows, cols, x, out, add);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512dq")
    {
        // SAFETY: guarded by the runtime AVX-512 checks above.
        unsafe { matmul_nt_rows_avx512(data, rows, cols, x, out, add) };
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { matmul_nt_rows_avx2(data, rows, cols, x, out, add) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: guarded by the runtime NEON check above.
        unsafe { matmul_nt_rows_neon(data, rows, cols, x, out, add) };
        return;
    }
    const ROW_BLOCK: usize = 64;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + ROW_BLOCK).min(rows);
        let panel = &data[r0 * cols..r1 * cols];
        for (xi, oi) in x.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
            for (slot, row) in oi[r0..r1].iter_mut().zip(panel.chunks_exact(cols)) {
                let d = dot_scalar(row, xi);
                *slot = if add { *slot + d } else { d };
            }
        }
        r0 = r1;
    }
}

/// Narrow-input variant of [`matmul_nt_rows`]: the weight panel is
/// transposed once so each input column is contiguous, then every
/// timestep accumulates `out_t += x[t][c] · w_col_c` column by column —
/// SIMD lanes span *output rows* and the (short) sum over the input
/// dimension runs sequentially. The summation order therefore differs
/// from the dot kernel's lane order, which is why [`Matrix::matmul_nt`]
/// is documented as matching [`Matrix::matvec`] only up to rounding;
/// training and inference both project inputs through this same path,
/// so they still agree bitwise with each other.
fn matmul_nt_narrow(data: &[f32], rows: usize, cols: usize, x: &[f32], out: &mut [f32], add: bool) {
    let mut wt = vec![0.0f32; cols * rows];
    for (r, row) in data.chunks_exact(cols).enumerate() {
        for (c, &v) in row.iter().enumerate() {
            wt[c * rows + r] = v;
        }
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { matmul_nt_narrow_avx2(&wt, rows, cols, x, out, add) };
        return;
    }
    for (xi, oi) in x.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
        if !add {
            oi.iter_mut().for_each(|v| *v = 0.0);
        }
        for (c, &xc) in xi.iter().enumerate() {
            let col = &wt[c * rows..(c + 1) * rows];
            for (o, &w) in oi.iter_mut().zip(col) {
                *o += w * xc;
            }
        }
    }
}

/// AVX2 instantiation of [`matmul_nt_narrow`]'s accumulation, taking
/// the already-transposed panel. Per output element the operation
/// sequence (sequential multiply-adds over columns, starting from zero
/// or from the existing value when `add`) matches the portable loop
/// exactly, so results are bitwise identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_nt_narrow_avx2(
    wt: &[f32],
    rows: usize,
    cols: usize,
    x: &[f32],
    out: &mut [f32],
    add: bool,
) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };
    let blocked = rows / 8 * 8;
    for (xi, oi) in x.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
        let mut r = 0;
        while r < blocked {
            let mut acc = if add {
                // SAFETY: `r + 8 <= blocked <= rows == oi.len()`.
                unsafe { _mm256_loadu_ps(oi.as_ptr().add(r)) }
            } else {
                _mm256_setzero_ps()
            };
            for (c, &xc) in xi.iter().enumerate() {
                // SAFETY: `c * rows + r + 8 <= cols * rows` because
                // `r + 8 <= blocked <= rows` and `c < cols`.
                let w = unsafe { _mm256_loadu_ps(wt.as_ptr().add(c * rows + r)) };
                acc = _mm256_add_ps(acc, _mm256_mul_ps(w, _mm256_set1_ps(xc)));
            }
            // SAFETY: `r + 8 <= blocked <= rows == oi.len()`.
            unsafe { _mm256_storeu_ps(oi.as_mut_ptr().add(r), acc) };
            r += 8;
        }
        for (r, slot) in oi.iter_mut().enumerate().skip(blocked) {
            let mut s = if add { *slot } else { 0.0f32 };
            for (c, &xc) in xi.iter().enumerate() {
                s += wt[c * rows + r] * xc;
            }
            *slot = s;
        }
    }
}

/// AVX2 instantiation of [`matmul_nt_rows`]'s loop. Full groups of
/// eight weight rows go through [`dot8_avx2`], which shares the input
/// chunk loads across the group and replaces eight store-and-scalar-add
/// horizontal reductions with one register transpose; leftover rows
/// fall back to per-row [`dot_avx2`]. Both produce bitwise-identical
/// elements, so the split is invisible to callers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_nt_rows_avx2(
    data: &[f32],
    rows: usize,
    cols: usize,
    x: &[f32],
    out: &mut [f32],
    add: bool,
) {
    const ROW_BLOCK: usize = 64;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + ROW_BLOCK).min(rows);
        let panel = &data[r0 * cols..r1 * cols];
        let grouped = (r1 - r0) / 8 * 8;
        for (xi, oi) in x.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
            let oi = &mut oi[r0..r1];
            let mut g = 0;
            while g < grouped {
                // SAFETY: the caller established AVX2 support;
                // `panel[g * cols..]` holds at least eight rows because
                // `g + 8 <= grouped <= r1 - r0`.
                unsafe { dot8_avx2(&panel[g * cols..], cols, xi, &mut oi[g..g + 8], add) };
                g += 8;
            }
            for (slot, row) in oi[grouped..]
                .iter_mut()
                .zip(panel[grouped * cols..].chunks_exact(cols))
            {
                // SAFETY: the caller established AVX2 support.
                let d = unsafe { dot_avx2(row, xi) };
                *slot = if add { *slot + d } else { d };
            }
        }
        r0 = r1;
    }
}

/// Eight consecutive weight rows against one input vector, with
/// [`dot`]'s lane semantics per row. Rows are processed in pairs so the
/// input chunk registers are loaded once per pair, each row's four
/// accumulators are folded into one register `m_j` exactly as in
/// [`dot_avx2`], and the eight `m` registers are transposed so lane `k`
/// of every row lands in register `t_k`. The lane-wise vector folds
/// `((t0+t1)+(t2+t3))+((t4+t5)+(t6+t7))` then perform, per lane, the
/// same scalar addition tree `dot_avx2` performs after its store — so
/// every output element is bitwise identical to a per-row `dot_avx2`
/// call, while the horizontal reduction costs ~4 shuffle/add ops per
/// row instead of a 32-byte store feeding eight dependent scalar adds.
/// This is where the batched engine's GEMM advantage over per-sequence
/// mat-vecs comes from: the reduction overhead amortizes over the row
/// group only when enough independent dot products are in flight.
///
/// `rows8` must hold at least `8 * cols` values and `out` exactly 8.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot8_avx2(rows8: &[f32], cols: usize, x: &[f32], out: &mut [f32], add: bool) {
    use std::arch::x86_64::{_mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_setzero_ps};
    let body = cols / 32 * 32;
    let xp = x.as_ptr();
    let mut m = [_mm256_setzero_ps(); 8];
    for j in (0..8).step_by(2) {
        let ra = rows8[j * cols..].as_ptr();
        let rb = rows8[(j + 1) * cols..].as_ptr();
        let mut acc_a = [_mm256_setzero_ps(); 4];
        let mut acc_b = [_mm256_setzero_ps(); 4];
        let mut c = 0;
        while c < body {
            for k in 0..4 {
                // SAFETY: `c + 8k + 8 <= body <= cols`, so the loads
                // stay inside row `j`, row `j + 1` and `x`.
                let vx = unsafe { _mm256_loadu_ps(xp.add(c + 8 * k)) };
                let va = unsafe { _mm256_loadu_ps(ra.add(c + 8 * k)) };
                let vb = unsafe { _mm256_loadu_ps(rb.add(c + 8 * k)) };
                acc_a[k] = _mm256_add_ps(acc_a[k], _mm256_mul_ps(va, vx));
                acc_b[k] = _mm256_add_ps(acc_b[k], _mm256_mul_ps(vb, vx));
            }
            c += 32;
        }
        m[j] = _mm256_add_ps(
            _mm256_add_ps(acc_a[0], acc_a[1]),
            _mm256_add_ps(acc_a[2], acc_a[3]),
        );
        m[j + 1] = _mm256_add_ps(
            _mm256_add_ps(acc_b[0], acc_b[1]),
            _mm256_add_ps(acc_b[2], acc_b[3]),
        );
    }
    // SAFETY: same AVX2 context and the same row-group invariants.
    unsafe { fold8_store_avx2(m, rows8, cols, body, x, out, add) };
}

/// Shared epilogue of the eight-row kernels: transposes the eight
/// folded accumulator registers, performs the per-lane reduction tree,
/// adds each row's sub-32 tail and writes the results. `m[j]` must hold
/// row `j`'s four accumulators folded as in [`dot_avx2`].
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn fold8_store_avx2(
    m: [std::arch::x86_64::__m256; 8],
    rows8: &[f32],
    cols: usize,
    body: usize,
    x: &[f32],
    out: &mut [f32],
    add: bool,
) {
    use std::arch::x86_64::_mm256_storeu_ps;
    // SAFETY: same AVX2 context.
    let s = unsafe { transpose8_sum_avx2(m) };
    let mut sums = [0.0f32; 8];
    // SAFETY: `sums` is a 32-byte buffer; unaligned store is allowed.
    unsafe { _mm256_storeu_ps(sums.as_mut_ptr(), s) };
    let xt = &x[body..cols];
    for (j, (slot, &sj)) in out.iter_mut().zip(&sums).enumerate() {
        let d = sj + dot_tail(&rows8[j * cols + body..(j + 1) * cols], xt);
        *slot = if add { *slot + d } else { d };
    }
}

/// Transposes eight folded accumulator registers (`t_k[j] = m_j[k]`
/// after the transpose) and performs the per-lane reduction tree
/// `((t0+t1)+(t2+t3))+((t4+t5)+(t6+t7))`, so lane `j` of the result is
/// exactly the scalar fold `((m_j[0]+m_j[1])+(m_j[2]+m_j[3]))+
/// ((m_j[4]+m_j[5])+(m_j[6]+m_j[7]))` — vector adds are lane-wise, so
/// the addition order per lane matches the scalar tree bitwise.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn transpose8_sum_avx2(m: [std::arch::x86_64::__m256; 8]) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_permute2f128_ps, _mm256_shuffle_ps, _mm256_unpackhi_ps,
        _mm256_unpacklo_ps,
    };
    let lo01 = _mm256_unpacklo_ps(m[0], m[1]);
    let hi01 = _mm256_unpackhi_ps(m[0], m[1]);
    let lo23 = _mm256_unpacklo_ps(m[2], m[3]);
    let hi23 = _mm256_unpackhi_ps(m[2], m[3]);
    let lo45 = _mm256_unpacklo_ps(m[4], m[5]);
    let hi45 = _mm256_unpackhi_ps(m[4], m[5]);
    let lo67 = _mm256_unpacklo_ps(m[6], m[7]);
    let hi67 = _mm256_unpackhi_ps(m[6], m[7]);
    let a0 = _mm256_shuffle_ps(lo01, lo23, 0x44);
    let a1 = _mm256_shuffle_ps(lo01, lo23, 0xEE);
    let a2 = _mm256_shuffle_ps(hi01, hi23, 0x44);
    let a3 = _mm256_shuffle_ps(hi01, hi23, 0xEE);
    let b0 = _mm256_shuffle_ps(lo45, lo67, 0x44);
    let b1 = _mm256_shuffle_ps(lo45, lo67, 0xEE);
    let b2 = _mm256_shuffle_ps(hi45, hi67, 0x44);
    let b3 = _mm256_shuffle_ps(hi45, hi67, 0xEE);
    let t0 = _mm256_permute2f128_ps(a0, b0, 0x20);
    let t1 = _mm256_permute2f128_ps(a1, b1, 0x20);
    let t2 = _mm256_permute2f128_ps(a2, b2, 0x20);
    let t3 = _mm256_permute2f128_ps(a3, b3, 0x20);
    let t4 = _mm256_permute2f128_ps(a0, b0, 0x31);
    let t5 = _mm256_permute2f128_ps(a1, b1, 0x31);
    let t6 = _mm256_permute2f128_ps(a2, b2, 0x31);
    let t7 = _mm256_permute2f128_ps(a3, b3, 0x31);
    _mm256_add_ps(
        _mm256_add_ps(_mm256_add_ps(t0, t1), _mm256_add_ps(t2, t3)),
        _mm256_add_ps(_mm256_add_ps(t4, t5), _mm256_add_ps(t6, t7)),
    )
}

/// AVX-512 variant of [`dot8_avx2`]: one 512-bit register carries two of
/// a row's four 8-lane accumulators side by side (`acc[2r]` holds scalar
/// accumulator lanes `0..16`, i.e. `acc0 | acc1`, and `acc[2r + 1]`
/// holds `acc2 | acc3`), because a 32-element chunk is exactly two
/// 512-bit loads whose lanes line up with consecutive accumulator
/// groups. Sixteen accumulator registers cover the whole eight-row
/// group, so the two input chunk loads are shared by every row, and
/// each 32-element chunk costs two multiplies and two adds per row
/// instead of four of each. Splitting each accumulator register into
/// halves and adding them lane-wise reproduces `dot_avx2`'s folds
/// `acc0 + acc1` and `acc2 + acc3` exactly, so the result is bitwise
/// identical to the AVX2 and scalar paths.
///
/// `rows8` must hold at least `8 * cols` values and `out` exactly 8.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn dot8_avx512(rows8: &[f32], cols: usize, x: &[f32], out: &mut [f32], add: bool) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_setzero_ps, _mm512_add_ps, _mm512_castps512_ps256,
        _mm512_extractf32x8_ps, _mm512_loadu_ps, _mm512_mul_ps, _mm512_setzero_ps,
    };
    let body = cols / 32 * 32;
    let xp = x.as_ptr();
    let rp = rows8.as_ptr();
    let mut acc = [_mm512_setzero_ps(); 16];
    let mut c = 0;
    while c < body {
        // SAFETY: `c + 32 <= body <= cols`, so both 16-lane loads stay
        // inside `x`, and `r * cols + c + 32 <= 8 * cols` keeps the row
        // loads inside `rows8` for every `r < 8`.
        let xa = unsafe { _mm512_loadu_ps(xp.add(c)) };
        let xb = unsafe { _mm512_loadu_ps(xp.add(c + 16)) };
        for r in 0..8 {
            let row = unsafe { rp.add(r * cols + c) };
            let wa = unsafe { _mm512_loadu_ps(row) };
            let wb = unsafe { _mm512_loadu_ps(row.add(16)) };
            acc[2 * r] = _mm512_add_ps(acc[2 * r], _mm512_mul_ps(wa, xa));
            acc[2 * r + 1] = _mm512_add_ps(acc[2 * r + 1], _mm512_mul_ps(wb, xb));
        }
        c += 32;
    }
    let mut m = [_mm256_setzero_ps(); 8];
    for (r, mr) in m.iter_mut().enumerate() {
        let z0 = acc[2 * r];
        let z1 = acc[2 * r + 1];
        let a01 = _mm256_add_ps(_mm512_castps512_ps256(z0), _mm512_extractf32x8_ps::<1>(z0));
        let a23 = _mm256_add_ps(_mm512_castps512_ps256(z1), _mm512_extractf32x8_ps::<1>(z1));
        *mr = _mm256_add_ps(a01, a23);
    }
    // SAFETY: avx512f implies avx2; same row-group invariants.
    unsafe { fold8_store_avx2(m, rows8, cols, body, x, out, add) };
}

/// AVX-512 instantiation of [`matmul_nt_rows`]'s loop: full groups of
/// eight weight rows go through [`dot8_avx512`], leftovers through
/// per-row [`dot_avx2`] (bitwise identical either way).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn matmul_nt_rows_avx512(
    data: &[f32],
    rows: usize,
    cols: usize,
    x: &[f32],
    out: &mut [f32],
    add: bool,
) {
    const ROW_BLOCK: usize = 64;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + ROW_BLOCK).min(rows);
        let panel = &data[r0 * cols..r1 * cols];
        let grouped = (r1 - r0) / 8 * 8;
        for (xi, oi) in x.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
            let oi = &mut oi[r0..r1];
            let mut g = 0;
            while g < grouped {
                // SAFETY: the caller established AVX-512 support;
                // `panel[g * cols..]` holds at least eight rows because
                // `g + 8 <= grouped <= r1 - r0`.
                unsafe { dot8_avx512(&panel[g * cols..], cols, xi, &mut oi[g..g + 8], add) };
                g += 8;
            }
            for (slot, row) in oi[grouped..]
                .iter_mut()
                .zip(panel[grouped * cols..].chunks_exact(cols))
            {
                // SAFETY: avx512f implies avx2.
                let d = unsafe { dot_avx2(row, xi) };
                *slot = if add { *slot + d } else { d };
            }
        }
        r0 = r1;
    }
}

/// Sixteen-lane *fused* dot product — the inner kernel of
/// [`Matrix::matmul_nt_fused_to`], the batched engines' recurrent GEMM.
/// Lane `k` accumulates elements `16i + k` with a fused multiply-add
/// (one rounding per step instead of two), the sixteen lanes fold as
/// `m[k] = acc[k] + acc[8 + k]` followed by the same pairwise tree the
/// unfused kernel uses, and the sub-16 tail is folded in sequentially
/// with scalar fused multiply-adds. Fusing halves the floating-point
/// instruction count, which is exactly the resource a batched GEMM is
/// bound by once its loads amortize over the batch; the price is that
/// results differ from the unfused [`dot`] semantics by normal rounding
/// (~1e-7 relative), so the batched engine matches the per-sequence
/// engine within tolerance instead of bitwise.
///
/// As with [`dot`], the *lane assignment* defines the summation order:
/// this portable implementation (`f32::mul_add` is a correctly rounded
/// IEEE fma, identical to the hardware instruction) and the AVX2-FMA /
/// AVX-512 kernels below are bitwise identical to each other, and the
/// result is independent of batch size and row position.
#[inline]
fn dot_fused_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 16];
    let mut ca = a.chunks_exact(16);
    let mut cb = b.chunks_exact(16);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for k in 0..16 {
            acc[k] = xa[k].mul_add(xb[k], acc[k]);
        }
    }
    let mut m = [0.0f32; 8];
    for k in 0..8 {
        m[k] = acc[k] + acc[8 + k];
    }
    let mut s = ((m[0] + m[1]) + (m[2] + m[3])) + ((m[4] + m[5]) + (m[6] + m[7]));
    for (&xa, &xb) in ca.remainder().iter().zip(cb.remainder()) {
        s = xa.mul_add(xb, s);
    }
    s
}

/// Folds the eight per-lane sums of a [`dot_fused_scalar`]-semantics
/// accumulator (`m[k] = acc[k] + acc[8+k]` already applied) with the
/// shared pairwise tree, then adds the sequential fused tail.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[inline]
fn fused_tail(mut s: f32, row_tail: &[f32], x_tail: &[f32]) -> f32 {
    for (&xa, &xb) in row_tail.iter().zip(x_tail) {
        s = xa.mul_add(xb, s);
    }
    s
}

/// AVX-512 single-row instantiation of [`dot_fused_scalar`]: one zmm
/// register is the whole sixteen-lane accumulator, so a 64-column dot
/// is four fused multiply-adds plus one half-split add for the fold.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn dot1_fused_avx512(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_storeu_ps, _mm512_castps512_ps256, _mm512_extractf32x8_ps,
        _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_setzero_ps,
    };
    let cols = a.len().min(b.len());
    let body = cols / 16 * 16;
    let mut acc = _mm512_setzero_ps();
    let mut c = 0;
    while c < body {
        // SAFETY: `c + 16 <= body <= a.len(), b.len()`.
        let va = unsafe { _mm512_loadu_ps(a.as_ptr().add(c)) };
        let vb = unsafe { _mm512_loadu_ps(b.as_ptr().add(c)) };
        acc = _mm512_fmadd_ps(va, vb, acc);
        c += 16;
    }
    let m = _mm256_add_ps(
        _mm512_castps512_ps256(acc),
        _mm512_extractf32x8_ps::<1>(acc),
    );
    let mut lanes = [0.0f32; 8];
    // SAFETY: `lanes` is a 32-byte buffer; unaligned store is allowed.
    unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), m) };
    let s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    fused_tail(s, &a[body..cols], &b[body..cols])
}

/// AVX-512 eight-row instantiation of [`dot_fused_scalar`]: one zmm
/// accumulator per row covers the whole group in eight registers, so
/// every input chunk is loaded once and shared by all eight rows, each
/// 16-element chunk costs one fused multiply-add per row, and the
/// per-row half-split folds feed the shared transpose reduction.
/// Bitwise identical to eight [`dot1_fused_avx512`] calls.
///
/// `rows8` must hold at least `8 * cols` values and `out` exactly 8.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn dot8_fused_avx512(rows8: &[f32], cols: usize, x: &[f32], out: &mut [f32], add: bool) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_setzero_ps, _mm256_storeu_ps, _mm512_castps512_ps256,
        _mm512_extractf32x8_ps, _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_setzero_ps,
    };
    let body = cols / 16 * 16;
    let xp = x.as_ptr();
    let rp = rows8.as_ptr();
    let mut acc = [_mm512_setzero_ps(); 8];
    let mut c = 0;
    while c < body {
        // SAFETY: `c + 16 <= body <= cols` keeps the `x` load in
        // bounds, and `r * cols + c + 16 <= 8 * cols` keeps every row
        // load inside `rows8`.
        let vx = unsafe { _mm512_loadu_ps(xp.add(c)) };
        for (r, slot) in acc.iter_mut().enumerate() {
            let vw = unsafe { _mm512_loadu_ps(rp.add(r * cols + c)) };
            *slot = _mm512_fmadd_ps(vw, vx, *slot);
        }
        c += 16;
    }
    let mut m = [_mm256_setzero_ps(); 8];
    for (mr, &z) in m.iter_mut().zip(&acc) {
        *mr = _mm256_add_ps(_mm512_castps512_ps256(z), _mm512_extractf32x8_ps::<1>(z));
    }
    // SAFETY: avx512f implies avx2.
    let s = unsafe { transpose8_sum_avx2(m) };
    let mut sums = [0.0f32; 8];
    // SAFETY: `sums` is a 32-byte buffer; unaligned store is allowed.
    unsafe { _mm256_storeu_ps(sums.as_mut_ptr(), s) };
    let xt = &x[body..cols];
    for (j, (slot, &sj)) in out.iter_mut().zip(&sums).enumerate() {
        let d = fused_tail(sj, &rows8[j * cols + body..(j + 1) * cols], xt);
        *slot = if add { *slot + d } else { d };
    }
}

/// AVX-512 4-row × 4-vector tile of [`dot_fused_scalar`] — the
/// register-blocked heart of the batched GEMM. Each of the sixteen
/// accumulators is one zmm register holding one `(row, x_i)` cell, so
/// every 16-element chunk costs four weight loads plus four input
/// loads for sixteen fused multiply-adds: a 2:1 FMA-to-load ratio that
/// keeps the tile arithmetic-bound where the one-vector kernels above
/// are load-bound (their 8 weight loads feed only 8 FMAs). On cores
/// that double-pump 512-bit ops this is the difference between ~8 and
/// ~16 multiply-adds per cycle.
///
/// Each cell's reduction order is exactly [`dot_fused_scalar`]'s: the
/// zmm accumulator *is* the sixteen lanes, the 256-bit half-split add
/// is `m[k] = acc[k] + acc[8 + k]`, and the horizontal-add fold below
/// computes `((m0 + m1) + (m2 + m3)) + ((m4 + m5) + (m6 + m7))`
/// per cell — `hadd(hadd(a, b), hadd(c, d))` pairs lanes in precisely
/// that tree — before the sequential fused tail. Cell values therefore
/// stay bitwise independent of tile position and batch size.
///
/// `rows4` must hold at least `4 * cols` values, `x4` exactly
/// `4 * cols` (four batch vectors, row-major); cell `(r, i)` lands in
/// `out[i * stride + r]`, so `out` must reach `3 * stride + 4`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq")]
unsafe fn dot4x4_fused_avx512(
    rows4: &[f32],
    cols: usize,
    x4: &[f32],
    out: &mut [f32],
    stride: usize,
    add: bool,
) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_castps256_ps128, _mm256_extractf128_ps, _mm256_hadd_ps,
        _mm256_setzero_ps, _mm512_castps512_ps256, _mm512_extractf32x8_ps, _mm512_fmadd_ps,
        _mm512_loadu_ps, _mm512_setzero_ps, _mm_add_ps, _mm_loadu_ps, _mm_storeu_ps,
    };
    let body = cols / 16 * 16;
    debug_assert!(out.len() > 3 * stride + 3);
    let rp = rows4.as_ptr();
    let xp = x4.as_ptr();
    let mut acc = [[_mm512_setzero_ps(); 4]; 4];
    let mut c = 0;
    while c < body {
        // SAFETY: `c + 16 <= body <= cols` keeps every load inside its
        // row of `rows4` / `x4`.
        let vx = [
            unsafe { _mm512_loadu_ps(xp.add(c)) },
            unsafe { _mm512_loadu_ps(xp.add(cols + c)) },
            unsafe { _mm512_loadu_ps(xp.add(2 * cols + c)) },
            unsafe { _mm512_loadu_ps(xp.add(3 * cols + c)) },
        ];
        for (r, row_acc) in acc.iter_mut().enumerate() {
            let vw = unsafe { _mm512_loadu_ps(rp.add(r * cols + c)) };
            for (cell, &x) in row_acc.iter_mut().zip(&vx) {
                *cell = _mm512_fmadd_ps(vw, x, *cell);
            }
        }
        c += 16;
    }
    for i in 0..4 {
        let mut m = [_mm256_setzero_ps(); 4];
        for (mr, row_acc) in m.iter_mut().zip(&acc) {
            let z = row_acc[i];
            *mr = _mm256_add_ps(_mm512_castps512_ps256(z), _mm512_extractf32x8_ps::<1>(z));
        }
        // hadd(hadd(m0, m1), hadd(m2, m3)) leaves row r's pairwise
        // lane sums ((l0 + l1) + (l2 + l3)) in low-half lane r and
        // ((l4 + l5) + (l6 + l7)) in high-half lane r; the final
        // 128-bit add completes the shared reduction tree per row.
        let t01 = _mm256_hadd_ps(m[0], m[1]);
        let t23 = _mm256_hadd_ps(m[2], m[3]);
        let t = _mm256_hadd_ps(t01, t23);
        let mut s4 = _mm_add_ps(_mm256_castps256_ps128(t), _mm256_extractf128_ps::<1>(t));
        if body == cols {
            // Tail-free columns (the common 16-multiple case): the four
            // row sums for vector `i` are exactly the four contiguous
            // output cells `out[i * stride ..][..4]`, so finish with one
            // 128-bit read-modify-write instead of four scalar slots.
            // SAFETY: the documented contract guarantees
            // `out.len() > 3 * stride + 3`.
            let o = unsafe { out.as_mut_ptr().add(i * stride) };
            if add {
                s4 = _mm_add_ps(unsafe { _mm_loadu_ps(o) }, s4);
            }
            unsafe { _mm_storeu_ps(o, s4) };
        } else {
            let mut sums = [0.0f32; 4];
            // SAFETY: `sums` is a 16-byte buffer; unaligned store is
            // allowed.
            unsafe { _mm_storeu_ps(sums.as_mut_ptr(), s4) };
            let xt = &x4[i * cols + body..(i + 1) * cols];
            for (r, &sr) in sums.iter().enumerate() {
                let d = fused_tail(sr, &rows4[r * cols + body..(r + 1) * cols], xt);
                let slot = &mut out[i * stride + r];
                *slot = if add { *slot + d } else { d };
            }
        }
    }
}

/// AVX2+FMA single-row instantiation of [`dot_fused_scalar`]: two ymm
/// registers carry accumulator lanes `0..8` and `8..16`, and the fold
/// `lo + hi` reproduces `m[k] = acc[k] + acc[8 + k]` exactly.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot1_fused_fma(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    let cols = a.len().min(b.len());
    let body = cols / 16 * 16;
    let mut lo = _mm256_setzero_ps();
    let mut hi = _mm256_setzero_ps();
    let mut c = 0;
    while c < body {
        // SAFETY: `c + 16 <= body <= a.len(), b.len()`.
        let va0 = unsafe { _mm256_loadu_ps(a.as_ptr().add(c)) };
        let vb0 = unsafe { _mm256_loadu_ps(b.as_ptr().add(c)) };
        let va1 = unsafe { _mm256_loadu_ps(a.as_ptr().add(c + 8)) };
        let vb1 = unsafe { _mm256_loadu_ps(b.as_ptr().add(c + 8)) };
        lo = _mm256_fmadd_ps(va0, vb0, lo);
        hi = _mm256_fmadd_ps(va1, vb1, hi);
        c += 16;
    }
    let m = _mm256_add_ps(lo, hi);
    let mut lanes = [0.0f32; 8];
    // SAFETY: `lanes` is a 32-byte buffer; unaligned store is allowed.
    unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), m) };
    let s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    fused_tail(s, &a[body..cols], &b[body..cols])
}

/// AVX2+FMA eight-row instantiation of [`dot_fused_scalar`]: rows in
/// pairs share the input chunk loads (sixteen ymm accumulators for the
/// group would not fit alongside them), folds feed the shared transpose
/// reduction. Bitwise identical to eight [`dot1_fused_fma`] calls.
///
/// `rows8` must hold at least `8 * cols` values and `out` exactly 8.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot8_fused_fma(rows8: &[f32], cols: usize, x: &[f32], out: &mut [f32], add: bool) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    let body = cols / 16 * 16;
    let xp = x.as_ptr();
    let mut m = [_mm256_setzero_ps(); 8];
    for j in (0..8).step_by(2) {
        let ra = rows8[j * cols..].as_ptr();
        let rb = rows8[(j + 1) * cols..].as_ptr();
        let (mut a_lo, mut a_hi) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        let (mut b_lo, mut b_hi) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        let mut c = 0;
        while c < body {
            // SAFETY: `c + 16 <= body <= cols`, so the loads stay
            // inside row `j`, row `j + 1` and `x`.
            let vx0 = unsafe { _mm256_loadu_ps(xp.add(c)) };
            let vx1 = unsafe { _mm256_loadu_ps(xp.add(c + 8)) };
            let va0 = unsafe { _mm256_loadu_ps(ra.add(c)) };
            let va1 = unsafe { _mm256_loadu_ps(ra.add(c + 8)) };
            let vb0 = unsafe { _mm256_loadu_ps(rb.add(c)) };
            let vb1 = unsafe { _mm256_loadu_ps(rb.add(c + 8)) };
            a_lo = _mm256_fmadd_ps(va0, vx0, a_lo);
            a_hi = _mm256_fmadd_ps(va1, vx1, a_hi);
            b_lo = _mm256_fmadd_ps(vb0, vx0, b_lo);
            b_hi = _mm256_fmadd_ps(vb1, vx1, b_hi);
            c += 16;
        }
        m[j] = _mm256_add_ps(a_lo, a_hi);
        m[j + 1] = _mm256_add_ps(b_lo, b_hi);
    }
    // SAFETY: same AVX2 context.
    let s = unsafe { transpose8_sum_avx2(m) };
    let mut sums = [0.0f32; 8];
    // SAFETY: `sums` is a 32-byte buffer; unaligned store is allowed.
    unsafe { _mm256_storeu_ps(sums.as_mut_ptr(), s) };
    let xt = &x[body..cols];
    for (j, (slot, &sj)) in out.iter_mut().zip(&sums).enumerate() {
        let d = fused_tail(sj, &rows8[j * cols + body..(j + 1) * cols], xt);
        *slot = if add { *slot + d } else { d };
    }
}

/// NEON single-row instantiation of [`dot_fused_scalar`]: accumulator
/// lanes `4j..4j + 4` live in four-wide register `j` (`j < 4`), each
/// updated with `vfmaq_f32` — the same correctly rounded IEEE fused
/// multiply-add `f32::mul_add` lowers to on aarch64. The scalar fold
/// `m[k] = acc[k] + acc[8 + k]` maps to the register adds
/// `acc0 + acc2` (folded lanes 0..4) and `acc1 + acc3` (folded lanes
/// 4..8), and the pairwise tree then runs over those eight lanes in the
/// shared order, so every result is bitwise identical to the portable
/// kernel — exactly the relationship [`dot_neon`] has with [`dot`].
#[cfg(target_arch = "aarch64")]
#[inline]
#[target_feature(enable = "neon")]
unsafe fn dot1_fused_neon(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::aarch64::{vaddq_f32, vdupq_n_f32, vfmaq_f32, vgetq_lane_f32, vld1q_f32};
    let cols = a.len().min(b.len());
    let body = cols / 16 * 16;
    let mut acc = [vdupq_n_f32(0.0); 4];
    let mut c = 0;
    while c < body {
        for (j, slot) in acc.iter_mut().enumerate() {
            // SAFETY: `c + 16 <= body <= a.len(), b.len()`, so offsets
            // `c + 4j..c + 4j + 4` for `j < 4` are in bounds.
            let va = unsafe { vld1q_f32(a.as_ptr().add(c + 4 * j)) };
            let vb = unsafe { vld1q_f32(b.as_ptr().add(c + 4 * j)) };
            *slot = vfmaq_f32(*slot, va, vb);
        }
        c += 16;
    }
    let mlo = vaddq_f32(acc[0], acc[2]);
    let mhi = vaddq_f32(acc[1], acc[3]);
    let s = ((vgetq_lane_f32::<0>(mlo) + vgetq_lane_f32::<1>(mlo))
        + (vgetq_lane_f32::<2>(mlo) + vgetq_lane_f32::<3>(mlo)))
        + ((vgetq_lane_f32::<0>(mhi) + vgetq_lane_f32::<1>(mhi))
            + (vgetq_lane_f32::<2>(mhi) + vgetq_lane_f32::<3>(mhi)));
    fused_tail(s, &a[body..cols], &b[body..cols])
}

/// Blocked loop of [`Matrix::matmul_nt_fused_to`], mirroring
/// [`matmul_nt_rows`]'s panel structure with the fused kernels. Narrow
/// inputs keep the column-streaming layout (its per-element overhead is
/// already minimal and the fused kernels' 16-lane body never engages);
/// on x86_64 full eight-row groups take the grouped kernels and
/// leftovers the single-row ones, all bitwise identical per element;
/// aarch64 runs the per-row [`dot1_fused_neon`] loop. Other
/// architectures use the portable [`dot_fused_scalar`].
#[inline]
fn matmul_nt_fused_rows(
    data: &[f32],
    rows: usize,
    cols: usize,
    x: &[f32],
    out: &mut [f32],
    add: bool,
) {
    if cols < NARROW_COLS {
        matmul_nt_narrow(data, rows, cols, x, out, add);
        return;
    }
    const ROW_BLOCK: usize = 64;
    #[cfg(target_arch = "x86_64")]
    {
        let avx512 = std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq");
        let fma = std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma");
        if avx512 || fma {
            let n = x.len() / cols;
            let mut r0 = 0;
            while r0 < rows {
                let r1 = (r0 + ROW_BLOCK).min(rows);
                let panel = &data[r0 * cols..r1 * cols];
                let pr = r1 - r0;
                let mut i0 = 0;
                if avx512 {
                    // Register-blocked core: 4 batch vectors × 4 panel
                    // rows per tile, leftovers below.
                    while i0 + 4 <= n {
                        let x4 = &x[i0 * cols..(i0 + 4) * cols];
                        let tiled = pr / 4 * 4;
                        let mut g = 0;
                        while g < tiled {
                            let out4 = &mut out[i0 * rows + r0 + g..];
                            // SAFETY: feature support established
                            // above; `panel[g * cols..]` holds at least
                            // four rows and `out4` reaches the last
                            // tile cell `3 * rows + 3`.
                            unsafe {
                                dot4x4_fused_avx512(&panel[g * cols..], cols, x4, out4, rows, add);
                            }
                            g += 4;
                        }
                        for r in tiled..pr {
                            let row = &panel[r * cols..(r + 1) * cols];
                            for i in 0..4 {
                                // SAFETY: feature support established above.
                                let d = unsafe {
                                    dot1_fused_avx512(row, &x4[i * cols..(i + 1) * cols])
                                };
                                let slot = &mut out[(i0 + i) * rows + r0 + r];
                                *slot = if add { *slot + d } else { d };
                            }
                        }
                        i0 += 4;
                    }
                }
                // Leftover batch vectors (all of them without AVX-512)
                // go through the one-vector eight-row kernels.
                let grouped = pr / 8 * 8;
                for i in i0..n {
                    let xi = &x[i * cols..(i + 1) * cols];
                    let oi = &mut out[i * rows + r0..i * rows + r1];
                    let mut g = 0;
                    while g < grouped {
                        // SAFETY: feature support established above;
                        // `panel[g * cols..]` holds at least eight rows.
                        unsafe {
                            if avx512 {
                                dot8_fused_avx512(
                                    &panel[g * cols..],
                                    cols,
                                    xi,
                                    &mut oi[g..g + 8],
                                    add,
                                );
                            } else {
                                dot8_fused_fma(
                                    &panel[g * cols..],
                                    cols,
                                    xi,
                                    &mut oi[g..g + 8],
                                    add,
                                );
                            }
                        }
                        g += 8;
                    }
                    for (slot, row) in oi[grouped..]
                        .iter_mut()
                        .zip(panel[grouped * cols..].chunks_exact(cols))
                    {
                        // SAFETY: feature support established above.
                        let d = unsafe {
                            if avx512 {
                                dot1_fused_avx512(row, xi)
                            } else {
                                dot1_fused_fma(row, xi)
                            }
                        };
                        *slot = if add { *slot + d } else { d };
                    }
                }
                r0 = r1;
            }
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        // SAFETY: guarded by the runtime NEON check above.
        unsafe { matmul_nt_fused_rows_neon(data, rows, cols, x, out, add) };
        return;
    }
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + ROW_BLOCK).min(rows);
        let panel = &data[r0 * cols..r1 * cols];
        for (xi, oi) in x.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
            for (slot, row) in oi[r0..r1].iter_mut().zip(panel.chunks_exact(cols)) {
                let d = dot_fused_scalar(row, xi);
                *slot = if add { *slot + d } else { d };
            }
        }
        r0 = r1;
    }
}

/// NEON instantiation of [`matmul_nt_fused_rows`]'s fallback loop,
/// dispatched once per call so [`dot1_fused_neon`] inlines into the
/// panel walk. Element-for-element bitwise identical to the portable
/// [`dot_fused_scalar`] path (and therefore to the x86_64 kernels).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn matmul_nt_fused_rows_neon(
    data: &[f32],
    rows: usize,
    cols: usize,
    x: &[f32],
    out: &mut [f32],
    add: bool,
) {
    const ROW_BLOCK: usize = 64;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + ROW_BLOCK).min(rows);
        let panel = &data[r0 * cols..r1 * cols];
        for (xi, oi) in x.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
            for (slot, row) in oi[r0..r1].iter_mut().zip(panel.chunks_exact(cols)) {
                // SAFETY: the caller established NEON support.
                let d = unsafe { dot1_fused_neon(row, xi) };
                *slot = if add { *slot + d } else { d };
            }
        }
        r0 = r1;
    }
}

/// NEON instantiation of [`matmul_nt_rows`]'s loop.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn matmul_nt_rows_neon(
    data: &[f32],
    rows: usize,
    cols: usize,
    x: &[f32],
    out: &mut [f32],
    add: bool,
) {
    const ROW_BLOCK: usize = 64;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + ROW_BLOCK).min(rows);
        let panel = &data[r0 * cols..r1 * cols];
        for (xi, oi) in x.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
            for (slot, row) in oi[r0..r1].iter_mut().zip(panel.chunks_exact(cols)) {
                // SAFETY: the caller established NEON support.
                let d = unsafe { dot_neon(row, xi) };
                *slot = if add { *slot + d } else { d };
            }
        }
        r0 = r1;
    }
}

/// A dense row-major `f32` matrix.
///
/// # Example
///
/// ```
/// use thrubarrier_nn::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let v = m.matvec(&[1.0, 1.0]);
/// assert_eq!(v, vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Xavier/Glorot-uniform initialization: entries uniform in
    /// `[-s, s]` with `s = sqrt(6 / (rows + cols))`.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let s = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-s..=s)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable access to the raw data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Matrix–vector product written into a caller-provided buffer —
    /// the allocation-free form recurrent loops stream through.
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == self.cols()` and
    /// `out.len() == self.rows()`.
    pub fn matvec_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        if self.cols == 0 {
            out.iter_mut().for_each(|v| *v = 0.0);
            return;
        }
        matvec_rows(&self.data, self.cols, x, out, false);
    }

    /// Accumulating matrix–vector product `out += self * x` — the
    /// recurrent half `z += U·h` of a fused gate pre-activation, added
    /// onto the time-batched input projection without a temporary.
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == self.cols()` and
    /// `out.len() == self.rows()`.
    pub fn matvec_add_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        if self.cols == 0 {
            return;
        }
        matvec_rows(&self.data, self.cols, x, out, true);
    }

    /// Time-batched product `C = X · selfᵀ`: `x` holds `n` row-major
    /// rows of `self.cols()` values (one input vector per timestep) and
    /// row `i` of the result is `self · x_i`. Computing every timestep's
    /// input projection in one pass keeps the weight matrix hot in cache
    /// across the whole utterance instead of re-streaming it per step.
    ///
    /// Row `i` equals [`Matrix::matvec`] of `x_i` up to rounding: for
    /// fewer than 32 columns a column-streaming layout with a different
    /// (but still fixed and deterministic) summation order is used.
    /// Wider matrices go through the shared dot kernel and match
    /// `matvec` bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n * self.cols()`.
    pub fn matmul_nt(&self, x: &[f32], n: usize) -> Vec<f32> {
        let mut out = Vec::new();
        self.matmul_nt_into(x, n, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] into a reusable buffer (`out` is resized to
    /// `n * self.rows()`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n * self.cols()`.
    pub fn matmul_nt_into(&self, x: &[f32], n: usize, out: &mut Vec<f32>) {
        out.clear();
        out.resize(n * self.rows, 0.0);
        self.matmul_nt_to(x, n, out, false);
    }

    /// [`Matrix::matmul_nt`] into an exact-size slice, with `add`
    /// selecting accumulation (`out += X · selfᵀ`) versus overwrite.
    ///
    /// The accumulating form is the batched generalization of
    /// [`Matrix::matvec_add_into`]: with 32 or more columns every output
    /// element goes through the shared dot kernel followed by a single
    /// `+` onto the existing value, so a batch of rows matches the
    /// per-row accumulating products bitwise. This is the per-timestep
    /// recurrent step `Z += H · Uᵀ` of the packed-batch engine.
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == n * self.cols()` and
    /// `out.len() == n * self.rows()`.
    pub fn matmul_nt_to(&self, x: &[f32], n: usize, out: &mut [f32], add: bool) {
        assert_eq!(x.len(), n * self.cols, "matmul_nt dimension mismatch");
        assert_eq!(out.len(), n * self.rows, "matmul_nt output length mismatch");
        if self.cols == 0 || self.rows == 0 {
            if !add {
                out.iter_mut().for_each(|v| *v = 0.0);
            }
            return;
        }
        matmul_nt_rows(&self.data, self.rows, self.cols, x, out, add);
    }

    /// [`Matrix::matmul_nt_to`] with *fused* multiply-add semantics —
    /// the throughput kernel behind the packed-batch engines' forward
    /// GEMMs (recurrent `Z += H · Uᵀ`, cached input projections and the
    /// flattened dense head).
    ///
    /// Each dot product follows [`dot_fused_scalar`]: sixteen
    /// accumulator lanes updated with single-rounding fused
    /// multiply-adds, halving the floating-point instruction count of
    /// the unfused [`dot`] semantics. On hardware without FMA execution
    /// units that halving is irrelevant, but wherever FMA exists it is
    /// the difference between a batched GEMM that merely matches the
    /// per-sequence engine's arithmetic throughput and one that beats
    /// it. The cost is a deterministic but *different* rounding: the
    /// portable scalar path (`f32::mul_add` — a correctly rounded IEEE
    /// fma), AVX2+FMA and AVX-512 kernels all agree bitwise with each
    /// other, and the result stays independent of batch size and row
    /// position, but outputs differ from [`Matrix::matmul_nt_to`] by
    /// ~1e-7 relative error. Gradient paths and the per-sequence
    /// engines therefore stay on the unfused kernels, and batched
    /// outputs match sequential ones within tolerance rather than
    /// bitwise.
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == n * self.cols()` and
    /// `out.len() == n * self.rows()`.
    pub fn matmul_nt_fused_to(&self, x: &[f32], n: usize, out: &mut [f32], add: bool) {
        assert_eq!(x.len(), n * self.cols, "matmul_nt dimension mismatch");
        assert_eq!(out.len(), n * self.rows, "matmul_nt output length mismatch");
        if self.cols == 0 || self.rows == 0 {
            if !add {
                out.iter_mut().for_each(|v| *v = 0.0);
            }
            return;
        }
        matmul_nt_fused_rows(&self.data, self.rows, self.cols, x, out, add);
    }

    /// Batched transposed product `C = X · self`: `x` holds `n`
    /// row-major rows of `self.rows()` values and row `i` of `out` is
    /// `selfᵀ · x_i` — the batched form of
    /// [`Matrix::matvec_transposed_into`] (each output row computed with
    /// the same accumulation order, so rows match it bitwise). Batched
    /// BPTT uses this to chain a whole timestep block's gate gradients
    /// back through the recurrent weights in one call.
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == n * self.rows()` and
    /// `out.len() == n * self.cols()`.
    pub fn matmul_t_to(&self, x: &[f32], n: usize, out: &mut [f32]) {
        assert_eq!(x.len(), n * self.rows, "matmul_t dimension mismatch");
        assert_eq!(out.len(), n * self.cols, "matmul_t output length mismatch");
        if self.rows == 0 {
            out.iter_mut().for_each(|v| *v = 0.0);
            return;
        }
        for (xi, oi) in x
            .chunks_exact(self.rows)
            .zip(out.chunks_exact_mut(self.cols.max(1)))
        {
            self.matvec_transposed_into(xi, oi);
        }
    }

    /// Transposed matrix–vector product `selfᵀ * x` — used in
    /// backpropagation without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        self.matvec_transposed_into(x, &mut out);
        out
    }

    /// [`Matrix::matvec_transposed`] written into a caller-provided
    /// buffer (overwritten, not accumulated).
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == self.rows()` and
    /// `out.len() == self.cols()`.
    pub fn matvec_transposed_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "matvec_transposed dimension mismatch");
        assert_eq!(
            out.len(),
            self.cols,
            "matvec_transposed output length mismatch"
        );
        out.iter_mut().for_each(|v| *v = 0.0);
        for (&xr, row) in x.iter().zip(self.data.chunks_exact(self.cols.max(1))) {
            for (o, &w) in out.iter_mut().zip(row) {
                *o += w * xr;
            }
        }
    }

    /// Batched gradient accumulation `self += Aᵀ · B`, where `a` holds
    /// `n` row-major rows of `self.rows()` values and `b` holds `n`
    /// row-major rows of `self.cols()` values. Equivalent to one
    /// [`Matrix::add_outer`] per row pair, but expressed as a single
    /// GEMM over the whole sequence — this is how BPTT turns its
    /// per-timestep rank-1 weight updates into one batched product.
    ///
    /// # Panics
    ///
    /// Panics unless `a.len() == n * self.rows()` and
    /// `b.len() == n * self.cols()`.
    pub fn add_tn_product(&mut self, a: &[f32], b: &[f32], n: usize) {
        assert_eq!(a.len(), n * self.rows, "add_tn_product row mismatch");
        assert_eq!(b.len(), n * self.cols, "add_tn_product col mismatch");
        if self.cols == 0 || self.rows == 0 {
            return;
        }
        for (ai, bi) in a.chunks_exact(self.rows).zip(b.chunks_exact(self.cols)) {
            for (&ar, drow) in ai.iter().zip(self.data.chunks_exact_mut(self.cols)) {
                for (slot, &bc) in drow.iter_mut().zip(bi) {
                    *slot += ar * bc;
                }
            }
        }
    }

    /// Stacks matrices vertically (all must share a column count). Used
    /// to assemble the fused `4H x I` gate layout from per-gate blocks.
    ///
    /// # Panics
    ///
    /// Panics if the blocks disagree on column count.
    pub fn vstack(blocks: &[&Matrix]) -> Matrix {
        let cols = blocks.first().map_or(0, |m| m.cols);
        let rows = blocks.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in blocks {
            assert_eq!(m.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Accumulates the outer product `x ⊗ y` into the matrix — used for
    /// weight gradients (`dW += dgate ⊗ input`).
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == rows` and `y.len() == cols`.
    pub fn add_outer(&mut self, x: &[f32], y: &[f32]) {
        assert_eq!(x.len(), self.rows, "outer product row mismatch");
        assert_eq!(y.len(), self.cols, "outer product col mismatch");
        for (r, &xr) in x.iter().enumerate() {
            let base = r * self.cols;
            for (c, &yc) in y.iter().enumerate() {
                self.data[base + c] += xr * yc;
            }
        }
    }

    /// Sets all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of squares of all elements (for gradient-norm diagnostics),
    /// computed with the shared [`dot`] kernel's lane semantics.
    pub fn frobenius_sq(&self) -> f32 {
        dot(&self.data, &self.data)
    }
}

/// Reusable buffers for the fused-gate recurrent engines.
///
/// One scratch serves any mix of LSTM/GRU directions and sequence
/// lengths: every user resizes the buffers it needs, so capacity grows
/// to the high-water mark and is then reused allocation-free. Callers
/// that score or train many sequences should create one scratch and
/// thread it through `*_with_scratch` entry points; the convenience
/// wrappers create a fresh scratch per call.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    /// Packed input sequence, `T x input_size` row-major.
    pub(crate) x_flat: Vec<f32>,
    /// Time-batched input projections `W·x_t`, `T x gate_rows`.
    pub(crate) proj: Vec<f32>,
    /// Current step's gate pre-activations, `gate_rows`.
    pub(crate) z: Vec<f32>,
    /// Recurrent state pair (`h` then `c`), `2 * hidden`.
    pub(crate) state: Vec<f32>,
    /// Backward-pass gate gradients, `T x gate_rows`.
    pub(crate) dz: Vec<f32>,
    /// Secondary backward-pass rows (GRU `U`-side gradients), `T x gate_rows`.
    pub(crate) dz_u: Vec<f32>,
    /// Backward-pass state gradients, `4 * hidden`.
    pub(crate) dstate: Vec<f32>,
    /// Batched hidden rows / hidden gradients, `B x hidden`.
    pub(crate) bh: Vec<f32>,
    /// Batched cell rows / cell gradients, `B x hidden`.
    pub(crate) bc: Vec<f32>,
    /// Batched gate pre-activations, `B x gate_rows`.
    pub(crate) bz: Vec<f32>,
    /// Batched temporaries (state pairs, GRU `U·h` rows), sized ad hoc.
    pub(crate) bt: Vec<f32>,
}

impl GemmScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        GemmScratch::default()
    }
}

/// Packs a sequence of equal-length vectors into a flat row-major
/// buffer, optionally in reverse time order (the backward direction of
/// a bidirectional layer consumes the sequence reversed without the
/// caller cloning it).
///
/// # Panics
///
/// Panics if any vector's length differs from `width`.
pub(crate) fn pack_rows(xs: &[Vec<f32>], width: usize, reversed: bool, out: &mut Vec<f32>) {
    out.clear();
    out.reserve(xs.len() * width);
    let push = |out: &mut Vec<f32>, x: &Vec<f32>| {
        assert_eq!(x.len(), width, "input dimension mismatch");
        out.extend_from_slice(x);
    };
    if reversed {
        for x in xs.iter().rev() {
            push(out, x);
        }
    } else {
        for x in xs {
            push(out, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dispatched_dot_is_bitwise_identical_to_scalar_lanes() {
        // On a machine with AVX2 this pits the SIMD path against the
        // portable one; lengths straddle the 32-lane body, the 8-lane
        // tail pass and the sequential remainder.
        for len in [0, 1, 7, 8, 14, 31, 32, 33, 64, 97, 256] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.73).sin() * 3.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 1.19).cos() * 2.0).collect();
            let lanes = dot_scalar(&a, &b);
            let dispatched = dot(&a, &b);
            assert_eq!(dispatched.to_bits(), lanes.to_bits(), "len {len}");
        }
    }

    #[test]
    fn fused_matmul_nt_is_bitwise_identical_to_scalar_fused_lanes() {
        // Wide shapes take the AVX2-FMA / AVX-512 kernels where
        // available; every element must still reproduce the portable
        // sixteen-lane `mul_add` reference exactly. Column counts
        // straddle the 16-lane body boundary and the fused tail, row
        // counts straddle the eight-row group and the 64-row panel.
        let mut rng = StdRng::seed_from_u64(11);
        for (rows, cols, n) in [(8, 32, 1), (13, 33, 3), (70, 45, 4), (256, 64, 8)] {
            let m = Matrix::xavier(rows, cols, &mut rng);
            let x: Vec<f32> = (0..n * cols).map(|i| (i as f32 * 0.61).sin()).collect();
            for add in [false, true] {
                let mut out: Vec<f32> = (0..n * rows).map(|i| i as f32 * 0.01).collect();
                let base = out.clone();
                m.matmul_nt_fused_to(&x, n, &mut out, add);
                for t in 0..n {
                    for r in 0..rows {
                        let d = dot_fused_scalar(m.row(r), &x[t * cols..(t + 1) * cols]);
                        let want = if add { base[t * rows + r] + d } else { d };
                        assert_eq!(
                            out[t * rows + r].to_bits(),
                            want.to_bits(),
                            "rows {rows} cols {cols} n {n} add {add} t {t} r {r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_matmul_nt_is_batch_size_invariant() {
        // Row `t` of a batched product must be bitwise the same as the
        // one-row product of `x_t` alone — the property that makes
        // batched inference scores independent of batch composition.
        let mut rng = StdRng::seed_from_u64(12);
        let (rows, cols, n) = (33, 64, 6);
        let m = Matrix::xavier(rows, cols, &mut rng);
        let x: Vec<f32> = (0..n * cols).map(|i| (i as f32 * 0.23).cos()).collect();
        let mut batched = vec![0.0f32; n * rows];
        m.matmul_nt_fused_to(&x, n, &mut batched, false);
        for t in 0..n {
            let mut single = vec![0.0f32; rows];
            m.matmul_nt_fused_to(&x[t * cols..(t + 1) * cols], 1, &mut single, false);
            for r in 0..rows {
                assert_eq!(
                    batched[t * rows + r].to_bits(),
                    single[r].to_bits(),
                    "t {t} r {r}"
                );
            }
        }
    }

    #[test]
    fn fused_matmul_nt_matches_unfused_up_to_rounding() {
        let mut rng = StdRng::seed_from_u64(13);
        let (rows, cols, n) = (70, 45, 5);
        let m = Matrix::xavier(rows, cols, &mut rng);
        let x: Vec<f32> = (0..n * cols).map(|i| (i as f32 * 0.47).sin()).collect();
        let mut fused = vec![0.0f32; n * rows];
        let mut plain = vec![0.0f32; n * rows];
        m.matmul_nt_fused_to(&x, n, &mut fused, false);
        m.matmul_nt_to(&x, n, &mut plain, false);
        for (i, (a, b)) in fused.iter().zip(&plain).enumerate() {
            assert!((a - b).abs() < 1e-4 * b.abs().max(1.0), "{i}: {a} vs {b}");
        }
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, -1.0, 1.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 0.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = [1.0, 0.5, -1.0];
        let got = m.matvec_transposed(&x);
        // Explicit: columns of m dotted with x.
        assert_eq!(got, vec![1.0 + 1.5 - 5.0, 2.0 + 2.0 - 6.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[1.0, 0.0, -1.0]);
        m.add_outer(&[1.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(m.row(0), &[2.0, 1.0, 0.0]);
        assert_eq!(m.row(1), &[2.0, 0.0, -2.0]);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Matrix::xavier(10, 20, &mut rng);
        let s = (6.0f32 / 30.0).sqrt();
        assert!(m.data().iter().all(|&v| v.abs() <= s + 1e-6));
        // Not all zero.
        assert!(m.frobenius_sq() > 0.0);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_rejects_wrong_length() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row lengths")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[&[1.0, 2.0], &[1.0]]);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = Matrix::from_rows(&[&[1.0], &[2.0]]);
        m.fill_zero();
        assert_eq!(m.data(), &[0.0, 0.0]);
    }

    #[test]
    fn wide_matmul_nt_matches_per_step_matvec_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        // Odd sizes exercise the dot-product remainder and row-block
        // boundaries (rows > ROW_BLOCK); 45 columns engage the 32-lane
        // body plus the tail passes.
        let m = Matrix::xavier(70, 45, &mut rng);
        let n = 9;
        let x: Vec<f32> = (0..n * 45).map(|i| (i as f32 * 0.37).sin()).collect();
        let batched = m.matmul_nt(&x, n);
        assert_eq!(batched.len(), n * 70);
        for t in 0..n {
            let single = m.matvec(&x[t * 45..(t + 1) * 45]);
            assert_eq!(&batched[t * 70..(t + 1) * 70], single.as_slice());
        }
    }

    #[test]
    fn narrow_matmul_nt_matches_matvec_up_to_rounding() {
        let mut rng = StdRng::seed_from_u64(8);
        // 13 columns take the column-streaming path, whose summation
        // order differs from the dot kernel's.
        let m = Matrix::xavier(70, 13, &mut rng);
        let n = 9;
        let x: Vec<f32> = (0..n * 13).map(|i| (i as f32 * 0.37).sin()).collect();
        let batched = m.matmul_nt(&x, n);
        for t in 0..n {
            let single = m.matvec(&x[t * 13..(t + 1) * 13]);
            for (a, b) in batched[t * 70..(t + 1) * 70].iter().zip(&single) {
                assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn narrow_matmul_nt_accumulates_in_column_order() {
        // Pin the narrow path's documented semantics: out[t][r] is the
        // plain left-to-right fold over columns, whichever instruction
        // set computes it.
        let mut rng = StdRng::seed_from_u64(9);
        let m = Matrix::xavier(19, 5, &mut rng);
        let n = 3;
        let x: Vec<f32> = (0..n * 5).map(|i| (i as f32 * 0.53).cos()).collect();
        let batched = m.matmul_nt(&x, n);
        for t in 0..n {
            for r in 0..19 {
                let mut s = 0.0f32;
                for c in 0..5 {
                    s += m.get(r, c) * x[t * 5 + c];
                }
                assert_eq!(batched[t * 19 + r].to_bits(), s.to_bits(), "t {t} r {r}");
            }
        }
    }

    #[test]
    fn matvec_add_into_accumulates() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut out = vec![10.0, 20.0];
        m.matvec_add_into(&[1.0, 1.0], &mut out);
        assert_eq!(out, vec![13.0, 27.0]);
    }

    #[test]
    fn matvec_transposed_into_overwrites() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut out = vec![99.0, 99.0];
        m.matvec_transposed_into(&[1.0, 0.5, -1.0], &mut out);
        assert_eq!(out, m.matvec_transposed(&[1.0, 0.5, -1.0]).as_slice());
    }

    #[test]
    fn add_tn_product_matches_per_row_outer() {
        let mut batched = Matrix::zeros(5, 3);
        let mut looped = Matrix::zeros(5, 3);
        let n = 4;
        let a: Vec<f32> = (0..n * 5).map(|i| (i as f32 * 0.21).cos()).collect();
        let b: Vec<f32> = (0..n * 3).map(|i| (i as f32 * 0.43).sin()).collect();
        batched.add_tn_product(&a, &b, n);
        for t in 0..n {
            looped.add_outer(&a[t * 5..(t + 1) * 5], &b[t * 3..(t + 1) * 3]);
        }
        for (x, y) in batched.data().iter().zip(looped.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = Matrix::vstack(&[&a, &b]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 2);
        assert_eq!(s.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "vstack column mismatch")]
    fn vstack_rejects_mismatched_columns() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        Matrix::vstack(&[&a, &b]);
    }

    #[test]
    fn pack_rows_supports_reversal() {
        let xs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let mut flat = Vec::new();
        pack_rows(&xs, 2, false, &mut flat);
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0]);
        pack_rows(&xs, 2, true, &mut flat);
        assert_eq!(flat, vec![3.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn matmul_nt_to_accumulate_matches_matvec_add_into_bitwise() {
        // The batched recurrent step must be a drop-in for the
        // per-sequence accumulating mat-vec: with >= 32 columns both
        // sides go dot-kernel + single add, so rows agree bitwise.
        let mut rng = StdRng::seed_from_u64(11);
        let m = Matrix::xavier(70, 45, &mut rng);
        let n = 5;
        let x: Vec<f32> = (0..n * 45).map(|i| (i as f32 * 0.29).sin()).collect();
        let mut batched: Vec<f32> = (0..n * 70).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut looped = batched.clone();
        m.matmul_nt_to(&x, n, &mut batched, true);
        for t in 0..n {
            m.matvec_add_into(&x[t * 45..(t + 1) * 45], &mut looped[t * 70..(t + 1) * 70]);
        }
        for (a, b) in batched.iter().zip(&looped) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matmul_nt_to_overwrite_matches_matmul_nt() {
        let mut rng = StdRng::seed_from_u64(12);
        let m = Matrix::xavier(17, 33, &mut rng);
        let n = 4;
        let x: Vec<f32> = (0..n * 33).map(|i| (i as f32 * 0.41).sin()).collect();
        let mut out = vec![f32::NAN; n * 17];
        m.matmul_nt_to(&x, n, &mut out, false);
        assert_eq!(out, m.matmul_nt(&x, n));
    }

    #[test]
    fn matmul_t_to_matches_per_row_transposed_matvec_bitwise() {
        let mut rng = StdRng::seed_from_u64(13);
        let m = Matrix::xavier(40, 9, &mut rng);
        let n = 6;
        let x: Vec<f32> = (0..n * 40).map(|i| (i as f32 * 0.33).cos()).collect();
        let mut out = vec![f32::NAN; n * 9];
        m.matmul_t_to(&x, n, &mut out);
        for t in 0..n {
            let single = m.matvec_transposed(&x[t * 40..(t + 1) * 40]);
            for (a, b) in out[t * 9..(t + 1) * 9].iter().zip(&single) {
                assert_eq!(a.to_bits(), b.to_bits(), "t {t}");
            }
        }
    }
}
