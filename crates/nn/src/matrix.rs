//! Dense row-major matrix with the operations the recurrent layers need.
//!
//! The hot paths of the BRNN phoneme detector are expressed as three
//! kernels here:
//!
//! * [`Matrix::matmul_nt`] — a time-batched `C = X · selfᵀ` product that
//!   computes the input projections `W·x_t` of *all* timesteps of an
//!   utterance in one cache-blocked GEMM before the sequential
//!   recurrence begins,
//! * [`Matrix::matvec_add_into`] — the per-step recurrent half `z += U·h`
//!   accumulated into a caller-provided buffer (no allocation),
//! * [`Matrix::add_tn_product`] — the batched weight-gradient update
//!   `dW += dZᵀ · X` that replaces one rank-1 `add_outer` per timestep in
//!   backpropagation through time.
//!
//! All kernels share one unrolled dot product so the training and
//! inference paths are bitwise identical. [`GemmScratch`] owns the
//! buffers the recurrent engines stream through, so a caller that scores
//! or trains many sequences reuses one set of allocations.

use rand::Rng;

/// Thirty-two-lane dot product — the shared inner kernel of every
/// matrix product in this module. Lane `k` sums elements `32i + k`, the
/// lanes are folded with a fixed reduction tree, and the tail shorter
/// than 32 is handled by an eight-lane pass plus a sequential
/// remainder. The *lane assignment* (not the vector width of the
/// machine it runs on) defines the summation order, so the scalar and
/// SIMD implementations below are bitwise identical and every caller —
/// forward, backward, inference — stays bitwise consistent with the
/// others. Thirty-two lanes means four independent 8-wide accumulator
/// chains, enough instruction-level parallelism to hide the
/// floating-point add latency that a single chain would serialize on.
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        return unsafe { dot_avx2(a, b) };
    }
    dot_scalar(a, b)
}

/// Portable implementation of [`dot`]'s lane semantics.
#[inline]
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 32];
    let mut ca = a.chunks_exact(32);
    let mut cb = b.chunks_exact(32);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for k in 0..32 {
            acc[k] += xa[k] * xb[k];
        }
    }
    let mut m = [0.0f32; 8];
    for k in 0..8 {
        m[k] = (acc[k] + acc[8 + k]) + (acc[16 + k] + acc[24 + k]);
    }
    let s = ((m[0] + m[1]) + (m[2] + m[3])) + ((m[4] + m[5]) + (m[6] + m[7]));
    s + dot_tail(ca.remainder(), cb.remainder())
}

/// Eight-lane pass over the sub-32 tail, shared by both [`dot`]
/// implementations so their results agree bitwise.
#[inline]
fn dot_tail(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for k in 0..8 {
            acc[k] += xa[k] * xb[k];
        }
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (xa, xb) in ca.remainder().iter().zip(cb.remainder()) {
        s += xa * xb;
    }
    s
}

/// AVX2 implementation of [`dot`]'s lane semantics: lane `32i + 8j + k`
/// lives in lane `k` of accumulator register `j`, the registers are
/// folded pairwise (matching `dot_scalar`'s tree), and multiplies and
/// adds stay separate instructions (no FMA contraction), so the result
/// is bitwise identical to the portable path. Marked `#[inline]` so the
/// row-loop kernels below (which share the `avx2` feature context)
/// inline it — a per-row function call would pay call overhead plus an
/// AVX-to-SSE `vzeroupper` transition on every row.
#[cfg(target_arch = "x86_64")]
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    let mut acc = [_mm256_setzero_ps(); 4];
    let mut ca = a.chunks_exact(32);
    let mut cb = b.chunks_exact(32);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for (j, slot) in acc.iter_mut().enumerate() {
            // SAFETY: `xa`/`xb` are exactly 32 elements, so offsets
            // `8j..8j + 8` for `j < 4` are in bounds.
            let va = unsafe { _mm256_loadu_ps(xa.as_ptr().add(8 * j)) };
            let vb = unsafe { _mm256_loadu_ps(xb.as_ptr().add(8 * j)) };
            *slot = _mm256_add_ps(*slot, _mm256_mul_ps(va, vb));
        }
    }
    let m = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
    let mut lanes = [0.0f32; 8];
    // SAFETY: `lanes` is a 32-byte buffer; unaligned store is allowed.
    unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), m) };
    let s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    s + dot_tail(ca.remainder(), cb.remainder())
}

/// Row loop of a matrix–vector product (`add` selects `out[r] += …`
/// versus `out[r] = …`), dispatched once per call so the SIMD dot
/// kernel inlines into the loop instead of being re-entered per row.
#[inline]
fn matvec_rows(data: &[f32], cols: usize, x: &[f32], out: &mut [f32], add: bool) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { matvec_rows_avx2(data, cols, x, out, add) };
        return;
    }
    for (slot, row) in out.iter_mut().zip(data.chunks_exact(cols)) {
        let d = dot_scalar(row, x);
        *slot = if add { *slot + d } else { d };
    }
}

/// AVX2 instantiation of [`matvec_rows`]'s loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matvec_rows_avx2(data: &[f32], cols: usize, x: &[f32], out: &mut [f32], add: bool) {
    for (slot, row) in out.iter_mut().zip(data.chunks_exact(cols)) {
        // SAFETY: the caller established AVX2 support.
        let d = unsafe { dot_avx2(row, x) };
        *slot = if add { *slot + d } else { d };
    }
}

/// Column counts below this use the column-streaming layout in
/// [`matmul_nt_narrow`]: the shared dot kernel's 32-lane body never
/// engages on such short rows, leaving its reduction tree and tail
/// handling as pure overhead per output element.
const NARROW_COLS: usize = 32;

/// Blocked loop of the time-batched `C = X · Wᵀ` product: each
/// ~L1-sized panel of weight rows is reused across every timestep
/// before moving to the next panel. Dispatched once per call, like
/// [`matvec_rows`].
#[inline]
fn matmul_nt_rows(data: &[f32], rows: usize, cols: usize, x: &[f32], out: &mut [f32]) {
    if cols < NARROW_COLS {
        matmul_nt_narrow(data, rows, cols, x, out);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { matmul_nt_rows_avx2(data, rows, cols, x, out) };
        return;
    }
    const ROW_BLOCK: usize = 64;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + ROW_BLOCK).min(rows);
        let panel = &data[r0 * cols..r1 * cols];
        for (xi, oi) in x.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
            for (slot, row) in oi[r0..r1].iter_mut().zip(panel.chunks_exact(cols)) {
                *slot = dot_scalar(row, xi);
            }
        }
        r0 = r1;
    }
}

/// Narrow-input variant of [`matmul_nt_rows`]: the weight panel is
/// transposed once so each input column is contiguous, then every
/// timestep accumulates `out_t += x[t][c] · w_col_c` column by column —
/// SIMD lanes span *output rows* and the (short) sum over the input
/// dimension runs sequentially. The summation order therefore differs
/// from the dot kernel's lane order, which is why [`Matrix::matmul_nt`]
/// is documented as matching [`Matrix::matvec`] only up to rounding;
/// training and inference both project inputs through this same path,
/// so they still agree bitwise with each other.
fn matmul_nt_narrow(data: &[f32], rows: usize, cols: usize, x: &[f32], out: &mut [f32]) {
    let mut wt = vec![0.0f32; cols * rows];
    for (r, row) in data.chunks_exact(cols).enumerate() {
        for (c, &v) in row.iter().enumerate() {
            wt[c * rows + r] = v;
        }
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe { matmul_nt_narrow_avx2(&wt, rows, cols, x, out) };
        return;
    }
    for (xi, oi) in x.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
        for (c, &xc) in xi.iter().enumerate() {
            let col = &wt[c * rows..(c + 1) * rows];
            for (o, &w) in oi.iter_mut().zip(col) {
                *o += w * xc;
            }
        }
    }
}

/// AVX2 instantiation of [`matmul_nt_narrow`]'s accumulation, taking
/// the already-transposed panel. Per output element the operation
/// sequence (sequential multiply-adds over columns, starting from zero)
/// matches the portable loop exactly, so results are bitwise identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_nt_narrow_avx2(wt: &[f32], rows: usize, cols: usize, x: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };
    let blocked = rows / 8 * 8;
    for (xi, oi) in x.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
        let mut r = 0;
        while r < blocked {
            let mut acc = _mm256_setzero_ps();
            for (c, &xc) in xi.iter().enumerate() {
                // SAFETY: `c * rows + r + 8 <= cols * rows` because
                // `r + 8 <= blocked <= rows` and `c < cols`.
                let w = unsafe { _mm256_loadu_ps(wt.as_ptr().add(c * rows + r)) };
                acc = _mm256_add_ps(acc, _mm256_mul_ps(w, _mm256_set1_ps(xc)));
            }
            // SAFETY: `r + 8 <= blocked <= rows == oi.len()`.
            unsafe { _mm256_storeu_ps(oi.as_mut_ptr().add(r), acc) };
            r += 8;
        }
        for (r, slot) in oi.iter_mut().enumerate().skip(blocked) {
            let mut s = 0.0f32;
            for (c, &xc) in xi.iter().enumerate() {
                s += wt[c * rows + r] * xc;
            }
            *slot = s;
        }
    }
}

/// AVX2 instantiation of [`matmul_nt_rows`]'s loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_nt_rows_avx2(data: &[f32], rows: usize, cols: usize, x: &[f32], out: &mut [f32]) {
    const ROW_BLOCK: usize = 64;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + ROW_BLOCK).min(rows);
        let panel = &data[r0 * cols..r1 * cols];
        for (xi, oi) in x.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
            for (slot, row) in oi[r0..r1].iter_mut().zip(panel.chunks_exact(cols)) {
                // SAFETY: the caller established AVX2 support.
                *slot = unsafe { dot_avx2(row, xi) };
            }
        }
        r0 = r1;
    }
}

/// A dense row-major `f32` matrix.
///
/// # Example
///
/// ```
/// use thrubarrier_nn::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let v = m.matvec(&[1.0, 1.0]);
/// assert_eq!(v, vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Xavier/Glorot-uniform initialization: entries uniform in
    /// `[-s, s]` with `s = sqrt(6 / (rows + cols))`.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let s = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-s..=s)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable access to the raw data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Matrix–vector product written into a caller-provided buffer —
    /// the allocation-free form recurrent loops stream through.
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == self.cols()` and
    /// `out.len() == self.rows()`.
    pub fn matvec_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        if self.cols == 0 {
            out.iter_mut().for_each(|v| *v = 0.0);
            return;
        }
        matvec_rows(&self.data, self.cols, x, out, false);
    }

    /// Accumulating matrix–vector product `out += self * x` — the
    /// recurrent half `z += U·h` of a fused gate pre-activation, added
    /// onto the time-batched input projection without a temporary.
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == self.cols()` and
    /// `out.len() == self.rows()`.
    pub fn matvec_add_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        if self.cols == 0 {
            return;
        }
        matvec_rows(&self.data, self.cols, x, out, true);
    }

    /// Time-batched product `C = X · selfᵀ`: `x` holds `n` row-major
    /// rows of `self.cols()` values (one input vector per timestep) and
    /// row `i` of the result is `self · x_i`. Computing every timestep's
    /// input projection in one pass keeps the weight matrix hot in cache
    /// across the whole utterance instead of re-streaming it per step.
    ///
    /// Row `i` equals [`Matrix::matvec`] of `x_i` up to rounding: for
    /// fewer than 32 columns a column-streaming layout with a different
    /// (but still fixed and deterministic) summation order is used.
    /// Wider matrices go through the shared dot kernel and match
    /// `matvec` bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n * self.cols()`.
    pub fn matmul_nt(&self, x: &[f32], n: usize) -> Vec<f32> {
        let mut out = Vec::new();
        self.matmul_nt_into(x, n, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] into a reusable buffer (`out` is resized to
    /// `n * self.rows()`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n * self.cols()`.
    pub fn matmul_nt_into(&self, x: &[f32], n: usize, out: &mut Vec<f32>) {
        assert_eq!(x.len(), n * self.cols, "matmul_nt dimension mismatch");
        out.clear();
        out.resize(n * self.rows, 0.0);
        if self.cols == 0 || self.rows == 0 {
            return;
        }
        matmul_nt_rows(&self.data, self.rows, self.cols, x, out);
    }

    /// Transposed matrix–vector product `selfᵀ * x` — used in
    /// backpropagation without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        self.matvec_transposed_into(x, &mut out);
        out
    }

    /// [`Matrix::matvec_transposed`] written into a caller-provided
    /// buffer (overwritten, not accumulated).
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == self.rows()` and
    /// `out.len() == self.cols()`.
    pub fn matvec_transposed_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "matvec_transposed dimension mismatch");
        assert_eq!(
            out.len(),
            self.cols,
            "matvec_transposed output length mismatch"
        );
        out.iter_mut().for_each(|v| *v = 0.0);
        for (&xr, row) in x.iter().zip(self.data.chunks_exact(self.cols.max(1))) {
            for (o, &w) in out.iter_mut().zip(row) {
                *o += w * xr;
            }
        }
    }

    /// Batched gradient accumulation `self += Aᵀ · B`, where `a` holds
    /// `n` row-major rows of `self.rows()` values and `b` holds `n`
    /// row-major rows of `self.cols()` values. Equivalent to one
    /// [`Matrix::add_outer`] per row pair, but expressed as a single
    /// GEMM over the whole sequence — this is how BPTT turns its
    /// per-timestep rank-1 weight updates into one batched product.
    ///
    /// # Panics
    ///
    /// Panics unless `a.len() == n * self.rows()` and
    /// `b.len() == n * self.cols()`.
    pub fn add_tn_product(&mut self, a: &[f32], b: &[f32], n: usize) {
        assert_eq!(a.len(), n * self.rows, "add_tn_product row mismatch");
        assert_eq!(b.len(), n * self.cols, "add_tn_product col mismatch");
        if self.cols == 0 || self.rows == 0 {
            return;
        }
        for (ai, bi) in a.chunks_exact(self.rows).zip(b.chunks_exact(self.cols)) {
            for (&ar, drow) in ai.iter().zip(self.data.chunks_exact_mut(self.cols)) {
                for (slot, &bc) in drow.iter_mut().zip(bi) {
                    *slot += ar * bc;
                }
            }
        }
    }

    /// Stacks matrices vertically (all must share a column count). Used
    /// to assemble the fused `4H x I` gate layout from per-gate blocks.
    ///
    /// # Panics
    ///
    /// Panics if the blocks disagree on column count.
    pub fn vstack(blocks: &[&Matrix]) -> Matrix {
        let cols = blocks.first().map_or(0, |m| m.cols);
        let rows = blocks.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in blocks {
            assert_eq!(m.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Accumulates the outer product `x ⊗ y` into the matrix — used for
    /// weight gradients (`dW += dgate ⊗ input`).
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == rows` and `y.len() == cols`.
    pub fn add_outer(&mut self, x: &[f32], y: &[f32]) {
        assert_eq!(x.len(), self.rows, "outer product row mismatch");
        assert_eq!(y.len(), self.cols, "outer product col mismatch");
        for (r, &xr) in x.iter().enumerate() {
            let base = r * self.cols;
            for (c, &yc) in y.iter().enumerate() {
                self.data[base + c] += xr * yc;
            }
        }
    }

    /// Sets all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of squares of all elements (for gradient-norm diagnostics),
    /// computed with the shared [`dot`] kernel's lane semantics.
    pub fn frobenius_sq(&self) -> f32 {
        dot(&self.data, &self.data)
    }
}

/// Reusable buffers for the fused-gate recurrent engines.
///
/// One scratch serves any mix of LSTM/GRU directions and sequence
/// lengths: every user resizes the buffers it needs, so capacity grows
/// to the high-water mark and is then reused allocation-free. Callers
/// that score or train many sequences should create one scratch and
/// thread it through `*_with_scratch` entry points; the convenience
/// wrappers create a fresh scratch per call.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    /// Packed input sequence, `T x input_size` row-major.
    pub(crate) x_flat: Vec<f32>,
    /// Time-batched input projections `W·x_t`, `T x gate_rows`.
    pub(crate) proj: Vec<f32>,
    /// Current step's gate pre-activations, `gate_rows`.
    pub(crate) z: Vec<f32>,
    /// Recurrent state pair (`h` then `c`), `2 * hidden`.
    pub(crate) state: Vec<f32>,
    /// Backward-pass gate gradients, `T x gate_rows`.
    pub(crate) dz: Vec<f32>,
    /// Secondary backward-pass rows (GRU `U`-side gradients), `T x gate_rows`.
    pub(crate) dz_u: Vec<f32>,
    /// Backward-pass state gradients, `4 * hidden`.
    pub(crate) dstate: Vec<f32>,
}

impl GemmScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        GemmScratch::default()
    }
}

/// Packs a sequence of equal-length vectors into a flat row-major
/// buffer, optionally in reverse time order (the backward direction of
/// a bidirectional layer consumes the sequence reversed without the
/// caller cloning it).
///
/// # Panics
///
/// Panics if any vector's length differs from `width`.
pub(crate) fn pack_rows(xs: &[Vec<f32>], width: usize, reversed: bool, out: &mut Vec<f32>) {
    out.clear();
    out.reserve(xs.len() * width);
    let push = |out: &mut Vec<f32>, x: &Vec<f32>| {
        assert_eq!(x.len(), width, "input dimension mismatch");
        out.extend_from_slice(x);
    };
    if reversed {
        for x in xs.iter().rev() {
            push(out, x);
        }
    } else {
        for x in xs {
            push(out, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dispatched_dot_is_bitwise_identical_to_scalar_lanes() {
        // On a machine with AVX2 this pits the SIMD path against the
        // portable one; lengths straddle the 32-lane body, the 8-lane
        // tail pass and the sequential remainder.
        for len in [0, 1, 7, 8, 14, 31, 32, 33, 64, 97, 256] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.73).sin() * 3.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 1.19).cos() * 2.0).collect();
            let lanes = dot_scalar(&a, &b);
            let dispatched = dot(&a, &b);
            assert_eq!(dispatched.to_bits(), lanes.to_bits(), "len {len}");
        }
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, -1.0, 1.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 0.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let x = [1.0, 0.5, -1.0];
        let got = m.matvec_transposed(&x);
        // Explicit: columns of m dotted with x.
        assert_eq!(got, vec![1.0 + 1.5 - 5.0, 2.0 + 2.0 - 6.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[1.0, 0.0, -1.0]);
        m.add_outer(&[1.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(m.row(0), &[2.0, 1.0, 0.0]);
        assert_eq!(m.row(1), &[2.0, 0.0, -2.0]);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = Matrix::xavier(10, 20, &mut rng);
        let s = (6.0f32 / 30.0).sqrt();
        assert!(m.data().iter().all(|&v| v.abs() <= s + 1e-6));
        // Not all zero.
        assert!(m.frobenius_sq() > 0.0);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_rejects_wrong_length() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row lengths")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[&[1.0, 2.0], &[1.0]]);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = Matrix::from_rows(&[&[1.0], &[2.0]]);
        m.fill_zero();
        assert_eq!(m.data(), &[0.0, 0.0]);
    }

    #[test]
    fn wide_matmul_nt_matches_per_step_matvec_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        // Odd sizes exercise the dot-product remainder and row-block
        // boundaries (rows > ROW_BLOCK); 45 columns engage the 32-lane
        // body plus the tail passes.
        let m = Matrix::xavier(70, 45, &mut rng);
        let n = 9;
        let x: Vec<f32> = (0..n * 45).map(|i| (i as f32 * 0.37).sin()).collect();
        let batched = m.matmul_nt(&x, n);
        assert_eq!(batched.len(), n * 70);
        for t in 0..n {
            let single = m.matvec(&x[t * 45..(t + 1) * 45]);
            assert_eq!(&batched[t * 70..(t + 1) * 70], single.as_slice());
        }
    }

    #[test]
    fn narrow_matmul_nt_matches_matvec_up_to_rounding() {
        let mut rng = StdRng::seed_from_u64(8);
        // 13 columns take the column-streaming path, whose summation
        // order differs from the dot kernel's.
        let m = Matrix::xavier(70, 13, &mut rng);
        let n = 9;
        let x: Vec<f32> = (0..n * 13).map(|i| (i as f32 * 0.37).sin()).collect();
        let batched = m.matmul_nt(&x, n);
        for t in 0..n {
            let single = m.matvec(&x[t * 13..(t + 1) * 13]);
            for (a, b) in batched[t * 70..(t + 1) * 70].iter().zip(&single) {
                assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn narrow_matmul_nt_accumulates_in_column_order() {
        // Pin the narrow path's documented semantics: out[t][r] is the
        // plain left-to-right fold over columns, whichever instruction
        // set computes it.
        let mut rng = StdRng::seed_from_u64(9);
        let m = Matrix::xavier(19, 5, &mut rng);
        let n = 3;
        let x: Vec<f32> = (0..n * 5).map(|i| (i as f32 * 0.53).cos()).collect();
        let batched = m.matmul_nt(&x, n);
        for t in 0..n {
            for r in 0..19 {
                let mut s = 0.0f32;
                for c in 0..5 {
                    s += m.get(r, c) * x[t * 5 + c];
                }
                assert_eq!(batched[t * 19 + r].to_bits(), s.to_bits(), "t {t} r {r}");
            }
        }
    }

    #[test]
    fn matvec_add_into_accumulates() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut out = vec![10.0, 20.0];
        m.matvec_add_into(&[1.0, 1.0], &mut out);
        assert_eq!(out, vec![13.0, 27.0]);
    }

    #[test]
    fn matvec_transposed_into_overwrites() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut out = vec![99.0, 99.0];
        m.matvec_transposed_into(&[1.0, 0.5, -1.0], &mut out);
        assert_eq!(out, m.matvec_transposed(&[1.0, 0.5, -1.0]).as_slice());
    }

    #[test]
    fn add_tn_product_matches_per_row_outer() {
        let mut batched = Matrix::zeros(5, 3);
        let mut looped = Matrix::zeros(5, 3);
        let n = 4;
        let a: Vec<f32> = (0..n * 5).map(|i| (i as f32 * 0.21).cos()).collect();
        let b: Vec<f32> = (0..n * 3).map(|i| (i as f32 * 0.43).sin()).collect();
        batched.add_tn_product(&a, &b, n);
        for t in 0..n {
            looped.add_outer(&a[t * 5..(t + 1) * 5], &b[t * 3..(t + 1) * 3]);
        }
        for (x, y) in batched.data().iter().zip(looped.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = Matrix::vstack(&[&a, &b]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 2);
        assert_eq!(s.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "vstack column mismatch")]
    fn vstack_rejects_mismatched_columns() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        Matrix::vstack(&[&a, &b]);
    }

    #[test]
    fn pack_rows_supports_reversal() {
        let xs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let mut flat = Vec::new();
        pack_rows(&xs, 2, false, &mut flat);
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0]);
        pack_rows(&xs, 2, true, &mut flat);
        assert_eq!(flat, vec![3.0, 4.0, 1.0, 2.0]);
    }
}
