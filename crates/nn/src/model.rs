//! The assembled BRNN classifier: BiLSTM → dense → softmax.
//!
//! This is the architecture of the paper's barrier-effect-sensitive
//! phoneme detector (Sec. V-B): a bidirectional LSTM (64 units per
//! direction in the paper), a dense layer with one neuron per class, and
//! softmax cross-entropy trained with ADAM.

use crate::dense::Dense;
use crate::loss;
use crate::lstm::BiLstm;
use crate::matrix::GemmScratch;
use crate::param::AdamConfig;
use rand::Rng;

/// Training hyper-parameters for [`BrnnClassifier::train_step`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrainConfig {
    /// ADAM optimizer settings.
    pub adam: AdamConfig,
}

/// Per-frame sequence classifier: BiLSTM followed by a dense softmax
/// layer.
#[derive(Debug, Clone)]
pub struct BrnnClassifier {
    rnn: BiLstm,
    head: Dense,
    step: u64,
}

impl BrnnClassifier {
    /// Creates a classifier with `input_size` features per frame,
    /// `hidden_size` LSTM units per direction and `n_classes` outputs.
    pub fn new<R: Rng + ?Sized>(
        input_size: usize,
        hidden_size: usize,
        n_classes: usize,
        rng: &mut R,
    ) -> Self {
        BrnnClassifier {
            rnn: BiLstm::new(input_size, hidden_size, rng),
            head: Dense::new(hidden_size, n_classes, rng),
            step: 0,
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.head.output_size()
    }

    /// Number of optimizer steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Per-frame logits for a sequence (inference path: no backward
    /// caches are recorded).
    pub fn logits(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut scratch = GemmScratch::new();
        self.logits_with_scratch(xs, &mut scratch)
    }

    /// [`BrnnClassifier::logits`] streaming through a reusable
    /// [`GemmScratch`] — the per-verification hot path of the online
    /// detector.
    pub fn logits_with_scratch(&self, xs: &[Vec<f32>], scratch: &mut GemmScratch) -> Vec<Vec<f32>> {
        let hs = self.rnn.hidden_states_with_scratch(xs, scratch);
        hs.iter().map(|h| self.head.apply(h)).collect()
    }

    /// Per-frame class probabilities.
    pub fn predict_proba(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut scratch = GemmScratch::new();
        self.predict_proba_with_scratch(xs, &mut scratch)
    }

    /// [`BrnnClassifier::predict_proba`] with caller-provided scratch.
    pub fn predict_proba_with_scratch(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<f32>> {
        self.logits_with_scratch(xs, scratch)
            .iter()
            .map(|l| loss::softmax(l))
            .collect()
    }

    /// Per-frame argmax class predictions.
    pub fn predict(&self, xs: &[Vec<f32>]) -> Vec<usize> {
        let mut scratch = GemmScratch::new();
        self.predict_with_scratch(xs, &mut scratch)
    }

    /// [`BrnnClassifier::predict`] with caller-provided scratch.
    pub fn predict_with_scratch(&self, xs: &[Vec<f32>], scratch: &mut GemmScratch) -> Vec<usize> {
        self.logits_with_scratch(xs, scratch)
            .iter()
            .map(|l| {
                l.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// One optimizer step over a mini-batch of `(sequence, labels)`
    /// pairs. Returns the mean loss over the batch.
    ///
    /// # Panics
    ///
    /// Panics if any sequence and its labels differ in length.
    pub fn train_step(&mut self, batch: &[(&[Vec<f32>], &[usize])], cfg: &TrainConfig) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        for p in self.rnn.params_mut() {
            p.zero_grad();
        }
        for p in self.head.params_mut() {
            p.zero_grad();
        }
        let mut total = 0.0f32;
        let scale = 1.0 / batch.len() as f32;
        let mut scratch = GemmScratch::new();
        for (xs, ys) in batch {
            assert_eq!(xs.len(), ys.len(), "sequence/label length mismatch");
            if xs.is_empty() {
                continue;
            }
            let (hs, rnn_cache) = self.rnn.forward_with_scratch(xs, &mut scratch);
            let (logits, head_cache) = self.head.forward(&hs);
            let (l, mut dlogits) = loss::sequence_cross_entropy(&logits, ys);
            total += l;
            for frame in &mut dlogits {
                for d in frame {
                    *d *= scale;
                }
            }
            let dhs = self.head.backward(&head_cache, &dlogits);
            self.rnn
                .backward_with_scratch(&rnn_cache, &dhs, &mut scratch);
        }
        self.step += 1;
        let step = self.step;
        for p in self.rnn.params_mut() {
            p.adam_step(&cfg.adam, step);
        }
        for p in self.head.params_mut() {
            p.adam_step(&cfg.adam, step);
        }
        total * scale
    }

    /// The eight parameter matrices in serialization order:
    /// forward LSTM (W, U, b), backward LSTM (W, U, b), head (W, b).
    pub(crate) fn parameter_matrices(&self) -> Vec<&crate::matrix::Matrix> {
        vec![
            &self.rnn.fwd.w.value,
            &self.rnn.fwd.u.value,
            &self.rnn.fwd.b.value,
            &self.rnn.bwd.w.value,
            &self.rnn.bwd.u.value,
            &self.rnn.bwd.b.value,
            &self.head.w.value,
            &self.head.b.value,
        ]
    }

    /// Rebuilds a classifier from matrices in serialization order.
    pub(crate) fn from_parameter_matrices(
        mats: Vec<crate::matrix::Matrix>,
    ) -> Result<Self, String> {
        let [fw, fu, fb, bw, bu, bb, hw, hb]: [crate::matrix::Matrix; 8] = mats
            .try_into()
            .map_err(|_| "expected exactly 8 matrices".to_string())?;
        let fwd = crate::lstm::Lstm::from_weights(fw, fu, fb)?;
        let bwd = crate::lstm::Lstm::from_weights(bw, bu, bb)?;
        if fwd.hidden_size() != bwd.hidden_size() || fwd.input_size() != bwd.input_size() {
            return Err("forward/backward direction shapes disagree".into());
        }
        let head = crate::dense::Dense::from_weights(hw, hb)?;
        if head.input_size() != fwd.hidden_size() {
            return Err("head input does not match hidden size".into());
        }
        Ok(BrnnClassifier {
            rnn: crate::lstm::BiLstm { fwd, bwd },
            head,
            step: 0,
        })
    }

    /// Frame-level accuracy over a labelled set of sequences.
    pub fn accuracy(&self, data: &[(Vec<Vec<f32>>, Vec<usize>)]) -> f32 {
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut scratch = GemmScratch::new();
        for (xs, ys) in data {
            let preds = self.predict_with_scratch(xs, &mut scratch);
            correct += preds.iter().zip(ys).filter(|(p, y)| p == y).count();
            total += ys.len();
        }
        if total == 0 {
            0.0
        } else {
            correct as f32 / total as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Sequences where the label of each frame is decided by feature 0 of
    /// that frame — learnable without temporal context.
    fn framewise_dataset(n: usize, t_len: usize, seed: u64) -> Vec<(Vec<Vec<f32>>, Vec<usize>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut xs = Vec::with_capacity(t_len);
                let mut ys = Vec::with_capacity(t_len);
                for _ in 0..t_len {
                    let cls = rng.gen_bool(0.5) as usize;
                    let base = if cls == 1 { 0.8 } else { -0.8 };
                    xs.push(vec![
                        base + rng.gen_range(-0.2..0.2),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ]);
                    ys.push(cls);
                }
                (xs, ys)
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let mut rng = StdRng::seed_from_u64(100);
        let mut model = BrnnClassifier::new(3, 8, 2, &mut rng);
        let data = framewise_dataset(16, 10, 101);
        let cfg = TrainConfig {
            adam: crate::param::AdamConfig {
                lr: 0.01,
                ..Default::default()
            },
        };
        let batch: Vec<(&[Vec<f32>], &[usize])> = data
            .iter()
            .map(|(x, y)| (x.as_slice(), y.as_slice()))
            .collect();
        let first = model.train_step(&batch, &cfg);
        let mut last = first;
        for _ in 0..80 {
            last = model.train_step(&batch, &cfg);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
        let test = framewise_dataset(8, 10, 202);
        assert!(model.accuracy(&test) > 0.9, "acc {}", model.accuracy(&test));
    }

    #[test]
    fn learns_temporal_pattern_requiring_context() {
        // Label of every frame = whether the *sequence* contains a spike
        // anywhere; only a bidirectional/recurrent model can label early
        // frames correctly.
        let mut rng = StdRng::seed_from_u64(7);
        let mut data: Vec<(Vec<Vec<f32>>, Vec<usize>)> = Vec::new();
        for i in 0..24 {
            let spike = i % 2 == 0;
            let t_len = 8;
            let mut xs = vec![vec![0.0f32, 0.1]; t_len];
            if spike {
                xs[t_len - 2][0] = 1.0; // late spike
            }
            let ys = vec![spike as usize; t_len];
            data.push((xs, ys));
        }
        let mut model = BrnnClassifier::new(2, 8, 2, &mut rng);
        let cfg = TrainConfig {
            adam: crate::param::AdamConfig {
                lr: 0.02,
                ..Default::default()
            },
        };
        let batch: Vec<(&[Vec<f32>], &[usize])> = data
            .iter()
            .map(|(x, y)| (x.as_slice(), y.as_slice()))
            .collect();
        for _ in 0..150 {
            model.train_step(&batch, &cfg);
        }
        // Accuracy must be high *including the early frames*, which
        // requires propagating the late spike backwards.
        assert!(
            model.accuracy(&data) > 0.95,
            "acc {}",
            model.accuracy(&data)
        );
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = BrnnClassifier::new(2, 4, 2, &mut rng);
        assert_eq!(model.train_step(&[], &TrainConfig::default()), 0.0);
        assert_eq!(model.steps_taken(), 0);
    }

    #[test]
    fn predictions_have_sequence_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = BrnnClassifier::new(2, 4, 3, &mut rng);
        let xs = vec![vec![0.0, 0.0]; 5];
        assert_eq!(model.predict(&xs).len(), 5);
        let probs = model.predict_proba(&xs);
        assert!(probs
            .iter()
            .all(|p| (p.iter().sum::<f32>() - 1.0).abs() < 1e-5));
    }

    #[test]
    fn accuracy_of_empty_set_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = BrnnClassifier::new(2, 4, 2, &mut rng);
        assert_eq!(model.accuracy(&[]), 0.0);
    }
}
