//! The assembled BRNN classifier: BiLSTM → dense → softmax.
//!
//! This is the architecture of the paper's barrier-effect-sensitive
//! phoneme detector (Sec. V-B): a bidirectional LSTM (64 units per
//! direction in the paper), a dense layer with one neuron per class, and
//! softmax cross-entropy trained with ADAM.

use crate::batch::{fingerprint_of, BatchWorkspace};
use crate::dense::Dense;
use crate::loss;
use crate::lstm::BiLstm;
use crate::matrix::GemmScratch;
use crate::param::AdamConfig;
use rand::Rng;
use std::collections::HashMap;

/// Upper bound on cached packed-batch workspaces; a training corpus
/// split into minibatches keeps one workspace per distinct batch, and
/// the map resets if a caller streams unbounded novel batches through.
const MAX_TRAIN_WORKSPACES: usize = 64;

/// Training hyper-parameters for [`BrnnClassifier::train_step`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrainConfig {
    /// ADAM optimizer settings.
    pub adam: AdamConfig,
}

/// Per-frame sequence classifier: BiLSTM followed by a dense softmax
/// layer.
#[derive(Debug, Clone)]
pub struct BrnnClassifier {
    rnn: BiLstm,
    head: Dense,
    step: u64,
    /// Packed-batch workspaces keyed by corpus fingerprint: a training
    /// loop that revisits the same minibatches every epoch re-packs
    /// nothing and re-allocates nothing — only the `W·X` projections
    /// are recomputed after each optimizer step (their cache is keyed
    /// by weight version, see [`crate::batch`]).
    train_ws: HashMap<u64, BatchWorkspace>,
    scratch: GemmScratch,
}

impl BrnnClassifier {
    /// Creates a classifier with `input_size` features per frame,
    /// `hidden_size` LSTM units per direction and `n_classes` outputs.
    pub fn new<R: Rng + ?Sized>(
        input_size: usize,
        hidden_size: usize,
        n_classes: usize,
        rng: &mut R,
    ) -> Self {
        BrnnClassifier {
            rnn: BiLstm::new(input_size, hidden_size, rng),
            head: Dense::new(hidden_size, n_classes, rng),
            step: 0,
            train_ws: HashMap::new(),
            scratch: GemmScratch::new(),
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.head.output_size()
    }

    /// Number of optimizer steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Per-frame logits for a sequence (inference path: no backward
    /// caches are recorded).
    pub fn logits(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut scratch = GemmScratch::new();
        self.logits_with_scratch(xs, &mut scratch)
    }

    /// [`BrnnClassifier::logits`] streaming through a reusable
    /// [`GemmScratch`] — the per-verification hot path of the online
    /// detector.
    pub fn logits_with_scratch(&self, xs: &[Vec<f32>], scratch: &mut GemmScratch) -> Vec<Vec<f32>> {
        let _span = thrubarrier_obs::span!("nn.predict");
        let hs = self.rnn.hidden_states_with_scratch(xs, scratch);
        hs.iter().map(|h| self.head.apply(h)).collect()
    }

    /// Per-frame class probabilities.
    pub fn predict_proba(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut scratch = GemmScratch::new();
        self.predict_proba_with_scratch(xs, &mut scratch)
    }

    /// [`BrnnClassifier::predict_proba`] with caller-provided scratch.
    pub fn predict_proba_with_scratch(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<f32>> {
        self.logits_with_scratch(xs, scratch)
            .iter()
            .map(|l| loss::softmax(l))
            .collect()
    }

    /// Per-frame argmax class predictions.
    pub fn predict(&self, xs: &[Vec<f32>]) -> Vec<usize> {
        let mut scratch = GemmScratch::new();
        self.predict_with_scratch(xs, &mut scratch)
    }

    /// [`BrnnClassifier::predict`] with caller-provided scratch.
    pub fn predict_with_scratch(&self, xs: &[Vec<f32>], scratch: &mut GemmScratch) -> Vec<usize> {
        self.logits_with_scratch(xs, scratch)
            .iter()
            .map(|l| {
                l.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// One optimizer step over a mini-batch of `(sequence, labels)`
    /// pairs, run through the packed-batch GEMM engine: all sequences
    /// advance together so the recurrent products carry the batch
    /// dimension, the head runs as one flat GEMM over every frame, and
    /// BPTT is batched the same way. Returns the mean loss over the
    /// batch.
    ///
    /// Repeated steps over the same minibatch (a training loop's
    /// epochs) reuse the packed layout and every buffer via the
    /// internal workspace cache; the `W·X` projections are recomputed
    /// only because the optimizer stepped the weights.
    ///
    /// # Panics
    ///
    /// Panics if any sequence and its labels differ in length.
    pub fn train_step(&mut self, batch: &[(&[Vec<f32>], &[usize])], cfg: &TrainConfig) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let _span = thrubarrier_obs::span!("nn.train_step");
        for (xs, ys) in batch {
            assert_eq!(xs.len(), ys.len(), "sequence/label length mismatch");
        }
        for p in self.rnn.params_mut() {
            p.zero_grad();
        }
        for p in self.head.params_mut() {
            p.zero_grad();
        }
        let scale = 1.0 / batch.len() as f32;
        let seqs: Vec<&[Vec<f32>]> = batch.iter().map(|(xs, _)| *xs).collect();
        let fp = fingerprint_of(&seqs, self.rnn.fwd.input_size());
        if self.train_ws.len() >= MAX_TRAIN_WORKSPACES && !self.train_ws.contains_key(&fp) {
            self.train_ws.clear();
        }
        let total = {
            let BrnnClassifier {
                rnn,
                head,
                train_ws,
                scratch,
                ..
            } = self;
            let ws = train_ws.entry(fp).or_default();
            let hs = rnn.forward_batch(&seqs, ws, scratch);
            let hl = rnn.hidden_size();
            let nc = head.output_size();
            let n_frames: usize = hs.iter().map(|s| s.len()).sum();
            let mut hs_flat = Vec::with_capacity(n_frames * hl);
            for seq in &hs {
                for h in seq {
                    hs_flat.extend_from_slice(h);
                }
            }
            let mut logits = Vec::new();
            head.forward_flat(&hs_flat, n_frames, &mut logits);
            // Per-frame loss with the same numerics as the sequential
            // path: each frame's gradient is divided by its sequence
            // length, then scaled by 1/B; per-sequence means are summed
            // in batch order.
            let mut total = 0.0f32;
            let mut dl_flat = vec![0.0f32; n_frames * nc];
            let mut row = 0usize;
            for (xs, ys) in batch {
                if xs.is_empty() {
                    continue;
                }
                let n = xs.len() as f32;
                let mut seq_total = 0.0f32;
                for &y in ys.iter() {
                    let (l, dl) = loss::softmax_cross_entropy(&logits[row * nc..(row + 1) * nc], y);
                    seq_total += l;
                    for (slot, d) in dl_flat[row * nc..(row + 1) * nc].iter_mut().zip(dl) {
                        *slot = (d / n) * scale;
                    }
                    row += 1;
                }
                total += seq_total / n;
            }
            let mut dh_flat = Vec::new();
            head.backward_flat(&hs_flat, &dl_flat, n_frames, &mut dh_flat);
            let mut dhs: Vec<&[f32]> = Vec::with_capacity(batch.len());
            let mut off = 0usize;
            for (xs, _) in batch {
                dhs.push(&dh_flat[off * hl..(off + xs.len()) * hl]);
                off += xs.len();
            }
            rnn.backward_batch(ws, &dhs, scratch);
            total
        };
        self.step += 1;
        let step = self.step;
        for p in self.rnn.params_mut() {
            p.adam_step(&cfg.adam, step);
        }
        for p in self.head.params_mut() {
            p.adam_step(&cfg.adam, step);
        }
        total * scale
    }

    /// The pre-minibatch reference implementation of
    /// [`BrnnClassifier::train_step`]: one sequence at a time through
    /// the per-utterance engine. Kept as the parity baseline for the
    /// batched path (tests assert both reach the same loss) and as the
    /// `pre` side of the training benchmark.
    pub fn train_step_sequential(
        &mut self,
        batch: &[(&[Vec<f32>], &[usize])],
        cfg: &TrainConfig,
    ) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        for p in self.rnn.params_mut() {
            p.zero_grad();
        }
        for p in self.head.params_mut() {
            p.zero_grad();
        }
        let mut total = 0.0f32;
        let scale = 1.0 / batch.len() as f32;
        let mut scratch = GemmScratch::new();
        for (xs, ys) in batch {
            assert_eq!(xs.len(), ys.len(), "sequence/label length mismatch");
            if xs.is_empty() {
                continue;
            }
            let (hs, rnn_cache) = self.rnn.forward_with_scratch(xs, &mut scratch);
            let (logits, head_cache) = self.head.forward(&hs);
            let (l, mut dlogits) = loss::sequence_cross_entropy(&logits, ys);
            total += l;
            for frame in &mut dlogits {
                for d in frame {
                    *d *= scale;
                }
            }
            let dhs = self.head.backward(&head_cache, &dlogits);
            self.rnn
                .backward_with_scratch(&rnn_cache, &dhs, &mut scratch);
        }
        self.step += 1;
        let step = self.step;
        for p in self.rnn.params_mut() {
            p.adam_step(&cfg.adam, step);
        }
        for p in self.head.params_mut() {
            p.adam_step(&cfg.adam, step);
        }
        total * scale
    }

    /// Per-frame argmax predictions for a whole batch of sequences
    /// through the packed-batch inference engine: the recurrent steps
    /// run as fused-FMA cross-utterance GEMMs into the workspace's flat
    /// packed hidden-state buffer, the head runs one flat GEMM straight
    /// over that buffer (no per-frame vectors are materialized
    /// anywhere), and the argmax labels are scattered back to caller
    /// order. Results agree with per-sequence
    /// [`BrnnClassifier::predict`] within fused-multiply-add rounding
    /// of the logits (so argmax labels can in principle differ on
    /// exactly tied frames, but not in practice).
    pub fn predict_batch(
        &self,
        seqs: &[&[Vec<f32>]],
        ws: &mut BatchWorkspace,
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<usize>> {
        let mut logits = Vec::new();
        self.predict_batch_into(seqs, ws, scratch, &mut logits)
    }

    /// [`BrnnClassifier::predict_batch`] with a caller-owned flat logits
    /// buffer, so long-lived callers (the scoring service engine) reuse
    /// one allocation across drains instead of growing a fresh vector
    /// per batch. The buffer is cleared and refilled; its contents
    /// between calls are not meaningful to callers.
    pub fn predict_batch_into(
        &self,
        seqs: &[&[Vec<f32>]],
        ws: &mut BatchWorkspace,
        scratch: &mut GemmScratch,
        logits: &mut Vec<f32>,
    ) -> Vec<Vec<usize>> {
        let _span = thrubarrier_obs::span!("nn.predict_batch");
        self.rnn.hidden_states_batch_flat(seqs, ws, scratch);
        let nc = self.head.output_size();
        let pack = &ws.pack;
        self.head.forward_flat(&ws.flat, pack.total_rows(), logits);
        let mut out: Vec<Vec<usize>> = seqs.iter().map(|s| Vec::with_capacity(s.len())).collect();
        for (b, (&i, &len)) in pack.order().iter().zip(pack.lens()).enumerate() {
            out[i].extend((0..len).map(|t| {
                let row = pack.offset(t) + b;
                logits[row * nc..(row + 1) * nc]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            }));
        }
        out
    }

    /// The eight parameter matrices in serialization order:
    /// forward LSTM (W, U, b), backward LSTM (W, U, b), head (W, b).
    pub(crate) fn parameter_matrices(&self) -> Vec<&crate::matrix::Matrix> {
        vec![
            &self.rnn.fwd.w.value,
            &self.rnn.fwd.u.value,
            &self.rnn.fwd.b.value,
            &self.rnn.bwd.w.value,
            &self.rnn.bwd.u.value,
            &self.rnn.bwd.b.value,
            &self.head.w.value,
            &self.head.b.value,
        ]
    }

    /// Rebuilds a classifier from matrices in serialization order.
    pub(crate) fn from_parameter_matrices(
        mats: Vec<crate::matrix::Matrix>,
    ) -> Result<Self, String> {
        let [fw, fu, fb, bw, bu, bb, hw, hb]: [crate::matrix::Matrix; 8] = mats
            .try_into()
            .map_err(|_| "expected exactly 8 matrices".to_string())?;
        let fwd = crate::lstm::Lstm::from_weights(fw, fu, fb)?;
        let bwd = crate::lstm::Lstm::from_weights(bw, bu, bb)?;
        if fwd.hidden_size() != bwd.hidden_size() || fwd.input_size() != bwd.input_size() {
            return Err("forward/backward direction shapes disagree".into());
        }
        let head = crate::dense::Dense::from_weights(hw, hb)?;
        if head.input_size() != fwd.hidden_size() {
            return Err("head input does not match hidden size".into());
        }
        Ok(BrnnClassifier {
            rnn: crate::lstm::BiLstm { fwd, bwd },
            head,
            step: 0,
            train_ws: HashMap::new(),
            scratch: GemmScratch::new(),
        })
    }

    /// Frame-level accuracy over a labelled set of sequences.
    pub fn accuracy(&self, data: &[(Vec<Vec<f32>>, Vec<usize>)]) -> f32 {
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut scratch = GemmScratch::new();
        for (xs, ys) in data {
            let preds = self.predict_with_scratch(xs, &mut scratch);
            correct += preds.iter().zip(ys).filter(|(p, y)| p == y).count();
            total += ys.len();
        }
        if total == 0 {
            0.0
        } else {
            correct as f32 / total as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Sequences where the label of each frame is decided by feature 0 of
    /// that frame — learnable without temporal context.
    fn framewise_dataset(n: usize, t_len: usize, seed: u64) -> Vec<(Vec<Vec<f32>>, Vec<usize>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut xs = Vec::with_capacity(t_len);
                let mut ys = Vec::with_capacity(t_len);
                for _ in 0..t_len {
                    let cls = rng.gen_bool(0.5) as usize;
                    let base = if cls == 1 { 0.8 } else { -0.8 };
                    xs.push(vec![
                        base + rng.gen_range(-0.2..0.2),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ]);
                    ys.push(cls);
                }
                (xs, ys)
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let mut rng = StdRng::seed_from_u64(100);
        let mut model = BrnnClassifier::new(3, 8, 2, &mut rng);
        let data = framewise_dataset(16, 10, 101);
        let cfg = TrainConfig {
            adam: crate::param::AdamConfig {
                lr: 0.01,
                ..Default::default()
            },
        };
        let batch: Vec<(&[Vec<f32>], &[usize])> = data
            .iter()
            .map(|(x, y)| (x.as_slice(), y.as_slice()))
            .collect();
        let first = model.train_step(&batch, &cfg);
        let mut last = first;
        for _ in 0..80 {
            last = model.train_step(&batch, &cfg);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
        let test = framewise_dataset(8, 10, 202);
        assert!(model.accuracy(&test) > 0.9, "acc {}", model.accuracy(&test));
    }

    #[test]
    fn learns_temporal_pattern_requiring_context() {
        // Label of every frame = whether the *sequence* contains a spike
        // anywhere; only a bidirectional/recurrent model can label early
        // frames correctly.
        let mut rng = StdRng::seed_from_u64(7);
        let mut data: Vec<(Vec<Vec<f32>>, Vec<usize>)> = Vec::new();
        for i in 0..24 {
            let spike = i % 2 == 0;
            let t_len = 8;
            let mut xs = vec![vec![0.0f32, 0.1]; t_len];
            if spike {
                xs[t_len - 2][0] = 1.0; // late spike
            }
            let ys = vec![spike as usize; t_len];
            data.push((xs, ys));
        }
        let mut model = BrnnClassifier::new(2, 8, 2, &mut rng);
        let cfg = TrainConfig {
            adam: crate::param::AdamConfig {
                lr: 0.02,
                ..Default::default()
            },
        };
        let batch: Vec<(&[Vec<f32>], &[usize])> = data
            .iter()
            .map(|(x, y)| (x.as_slice(), y.as_slice()))
            .collect();
        for _ in 0..150 {
            model.train_step(&batch, &cfg);
        }
        // Accuracy must be high *including the early frames*, which
        // requires propagating the late spike backwards.
        assert!(
            model.accuracy(&data) > 0.95,
            "acc {}",
            model.accuracy(&data)
        );
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = BrnnClassifier::new(2, 4, 2, &mut rng);
        assert_eq!(model.train_step(&[], &TrainConfig::default()), 0.0);
        assert_eq!(model.steps_taken(), 0);
    }

    #[test]
    fn predictions_have_sequence_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = BrnnClassifier::new(2, 4, 3, &mut rng);
        let xs = vec![vec![0.0, 0.0]; 5];
        assert_eq!(model.predict(&xs).len(), 5);
        let probs = model.predict_proba(&xs);
        assert!(probs
            .iter()
            .all(|p| (p.iter().sum::<f32>() - 1.0).abs() < 1e-5));
    }

    #[test]
    fn accuracy_of_empty_set_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = BrnnClassifier::new(2, 4, 2, &mut rng);
        assert_eq!(model.accuracy(&[]), 0.0);
    }

    #[test]
    fn batched_train_step_matches_sequential_loss_trajectory() {
        // Same seed, same data: the batched engine must follow the
        // sequential reference — bitwise on the first loss at a wide
        // hidden size, and to tight tolerance over several steps.
        let mut rng = StdRng::seed_from_u64(301);
        let base = BrnnClassifier::new(3, 32, 2, &mut rng);
        let data = framewise_dataset(6, 7, 302);
        let batch: Vec<(&[Vec<f32>], &[usize])> = data
            .iter()
            .map(|(x, y)| (x.as_slice(), y.as_slice()))
            .collect();
        let cfg = TrainConfig::default();
        let mut seq_model = base.clone();
        let mut bat_model = base.clone();
        let first_seq = seq_model.train_step_sequential(&batch, &cfg);
        let first_bat = bat_model.train_step(&batch, &cfg);
        assert_eq!(first_seq.to_bits(), first_bat.to_bits());
        for _ in 0..5 {
            let ls = seq_model.train_step_sequential(&batch, &cfg);
            let lb = bat_model.train_step(&batch, &cfg);
            assert!((ls - lb).abs() < 1e-4 * ls.abs().max(1.0), "{ls} vs {lb}");
        }
    }

    #[test]
    fn batched_training_handles_mixed_lengths_and_reaches_high_accuracy() {
        let mut rng = StdRng::seed_from_u64(310);
        let mut model = BrnnClassifier::new(3, 8, 2, &mut rng);
        let mut data = framewise_dataset(8, 10, 311);
        data.extend(framewise_dataset(4, 4, 312));
        data.extend(framewise_dataset(4, 7, 313));
        let cfg = TrainConfig {
            adam: crate::param::AdamConfig {
                lr: 0.01,
                ..Default::default()
            },
        };
        let batch: Vec<(&[Vec<f32>], &[usize])> = data
            .iter()
            .map(|(x, y)| (x.as_slice(), y.as_slice()))
            .collect();
        let first = model.train_step(&batch, &cfg);
        let mut last = first;
        for _ in 0..80 {
            last = model.train_step(&batch, &cfg);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
        assert_eq!(model.train_ws.len(), 1, "one cached workspace per batch");
        let test = framewise_dataset(8, 10, 404);
        assert!(model.accuracy(&test) > 0.9, "acc {}", model.accuracy(&test));
    }

    #[test]
    fn predict_batch_matches_per_sequence_predict() {
        let mut rng = StdRng::seed_from_u64(320);
        let model = BrnnClassifier::new(3, 32, 2, &mut rng);
        let mut data = framewise_dataset(3, 9, 321);
        data.extend(framewise_dataset(2, 4, 322));
        let seqs: Vec<&[Vec<f32>]> = data.iter().map(|(x, _)| x.as_slice()).collect();
        let mut ws = BatchWorkspace::new();
        let mut scratch = GemmScratch::new();
        let batched = model.predict_batch(&seqs, &mut ws, &mut scratch);
        for (i, (xs, _)) in data.iter().enumerate() {
            assert_eq!(batched[i], model.predict(xs), "seq {i}");
        }
    }

    #[test]
    fn workspace_cache_is_bounded() {
        let mut rng = StdRng::seed_from_u64(330);
        let mut model = BrnnClassifier::new(2, 4, 2, &mut rng);
        let cfg = TrainConfig::default();
        for i in 0..(MAX_TRAIN_WORKSPACES + 3) {
            let xs = vec![vec![i as f32, 0.5]; 3];
            let ys = vec![0usize; 3];
            model.train_step(&[(&xs, &ys)], &cfg);
            assert!(model.train_ws.len() <= MAX_TRAIN_WORKSPACES);
        }
    }
}
