//! GRU and bidirectional GRU layers with backpropagation through time.
//!
//! The paper's reference [Shewalkar et al., JAISCR'19] compares RNN,
//! LSTM and GRU for speech tasks; this module lets the workspace run the
//! same architecture comparison for the phoneme detector (see the
//! `detector_architectures` extension experiment). Gate layout is
//! `[z, r, n]` (update, reset, candidate).

use crate::matrix::Matrix;
use crate::param::Param;
use rand::Rng;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A single-direction GRU layer.
#[derive(Debug, Clone)]
pub struct Gru {
    /// Input weights, `3H x D`.
    pub w: Param,
    /// Recurrent weights, `3H x H`.
    pub u: Param,
    /// Bias, `3H x 1`.
    pub b: Param,
    input_size: usize,
    hidden_size: usize,
}

#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    n: Vec<f32>,
    un_h: Vec<f32>,
}

/// Forward-pass cache for a sequence.
#[derive(Debug, Clone)]
pub struct GruCache {
    steps: Vec<StepCache>,
}

impl Gru {
    /// Creates a GRU with Xavier-initialized weights.
    pub fn new<R: Rng + ?Sized>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        Gru {
            w: Param::new(Matrix::xavier(3 * hidden_size, input_size, rng)),
            u: Param::new(Matrix::xavier(3 * hidden_size, hidden_size, rng)),
            b: Param::new(Matrix::zeros(3 * hidden_size, 1)),
            input_size,
            hidden_size,
        }
    }

    /// Input dimension.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden dimension.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Runs the layer over a sequence.
    ///
    /// # Panics
    ///
    /// Panics if an input vector's length differs from the input size.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, GruCache) {
        let hs = self.hidden_size;
        let mut h = vec![0.0f32; hs];
        let mut outputs = Vec::with_capacity(xs.len());
        let mut steps = Vec::with_capacity(xs.len());
        for x in xs {
            assert_eq!(x.len(), self.input_size, "input dimension mismatch");
            let wx = self.w.value.matvec(x);
            let uh = self.u.value.matvec(&h);
            let b = self.b.value.data();
            let mut z = vec![0.0f32; hs];
            let mut r = vec![0.0f32; hs];
            for k in 0..hs {
                z[k] = sigmoid(wx[k] + uh[k] + b[k]);
                r[k] = sigmoid(wx[hs + k] + uh[hs + k] + b[hs + k]);
            }
            let un_h: Vec<f32> = (0..hs).map(|k| uh[2 * hs + k]).collect();
            let mut n = vec![0.0f32; hs];
            for k in 0..hs {
                n[k] = (wx[2 * hs + k] + r[k] * un_h[k] + b[2 * hs + k]).tanh();
            }
            let h_prev = h.clone();
            for k in 0..hs {
                h[k] = (1.0 - z[k]) * n[k] + z[k] * h_prev[k];
            }
            outputs.push(h.clone());
            steps.push(StepCache {
                x: x.clone(),
                h_prev,
                z,
                r,
                n,
                un_h,
            });
        }
        (outputs, GruCache { steps })
    }

    /// Backpropagates through time, accumulating parameter gradients and
    /// returning input gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dhs.len()` differs from the cached sequence length.
    pub fn backward(&mut self, cache: &GruCache, dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(dhs.len(), cache.steps.len(), "gradient length mismatch");
        let hs = self.hidden_size;
        let mut dxs = vec![vec![0.0f32; self.input_size]; dhs.len()];
        let mut dh_next = vec![0.0f32; hs];
        for t in (0..cache.steps.len()).rev() {
            let s = &cache.steps[t];
            let mut dh: Vec<f32> = dhs[t].clone();
            for (a, b) in dh.iter_mut().zip(&dh_next) {
                *a += b;
            }
            let mut dz_pre = vec![0.0f32; hs];
            let mut dr_pre = vec![0.0f32; hs];
            let mut dn_pre = vec![0.0f32; hs];
            let mut dh_prev = vec![0.0f32; hs];
            for k in 0..hs {
                let dz = dh[k] * (s.h_prev[k] - s.n[k]);
                let dn = dh[k] * (1.0 - s.z[k]);
                dh_prev[k] += dh[k] * s.z[k];
                dz_pre[k] = dz * s.z[k] * (1.0 - s.z[k]);
                dn_pre[k] = dn * (1.0 - s.n[k] * s.n[k]);
                let dr = dn_pre[k] * s.un_h[k];
                dr_pre[k] = dr * s.r[k] * (1.0 - s.r[k]);
            }
            // Stack gate pre-activation gradients: [z, r, n].
            let mut dgates = vec![0.0f32; 3 * hs];
            dgates[..hs].copy_from_slice(&dz_pre);
            dgates[hs..2 * hs].copy_from_slice(&dr_pre);
            dgates[2 * hs..].copy_from_slice(&dn_pre);
            self.w.grad.add_outer(&dgates, &s.x);
            for (slot, &d) in self.b.grad.data_mut().iter_mut().zip(&dgates) {
                *slot += d;
            }
            // U gradients: z and r rows see h_prev directly; the n rows
            // see h_prev through the reset gate.
            let mut du_rows = vec![0.0f32; 3 * hs];
            du_rows[..hs].copy_from_slice(&dz_pre);
            du_rows[hs..2 * hs].copy_from_slice(&dr_pre);
            for k in 0..hs {
                du_rows[2 * hs + k] = dn_pre[k] * s.r[k];
            }
            self.u.grad.add_outer(&du_rows, &s.h_prev);
            dxs[t] = self.w.value.matvec_transposed(&dgates);
            let dh_through_u = self.u.value.matvec_transposed(&du_rows);
            for (a, b) in dh_prev.iter_mut().zip(&dh_through_u) {
                *a += b;
            }
            dh_next = dh_prev;
        }
        dxs
    }

    /// The layer's trainable parameters.
    pub fn params_mut(&mut self) -> [&mut Param; 3] {
        [&mut self.w, &mut self.u, &mut self.b]
    }
}

/// Bidirectional GRU: forward and backward hidden states are summed,
/// mirroring [`crate::lstm::BiLstm`].
#[derive(Debug, Clone)]
pub struct BiGru {
    /// Forward-direction layer.
    pub fwd: Gru,
    /// Backward-direction layer.
    pub bwd: Gru,
}

/// Forward cache for [`BiGru`].
#[derive(Debug, Clone)]
pub struct BiGruCache {
    fwd: GruCache,
    bwd: GruCache,
}

impl BiGru {
    /// Creates a bidirectional GRU.
    pub fn new<R: Rng + ?Sized>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        BiGru {
            fwd: Gru::new(input_size, hidden_size, rng),
            bwd: Gru::new(input_size, hidden_size, rng),
        }
    }

    /// Hidden dimension of the summed output.
    pub fn hidden_size(&self) -> usize {
        self.fwd.hidden_size()
    }

    /// Runs both directions and sums per-timestep states.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, BiGruCache) {
        let (hf, cf) = self.fwd.forward(xs);
        let rev: Vec<Vec<f32>> = xs.iter().rev().cloned().collect();
        let (hb, cb) = self.bwd.forward(&rev);
        let t_len = xs.len();
        let out = (0..t_len)
            .map(|t| {
                hf[t]
                    .iter()
                    .zip(&hb[t_len - 1 - t])
                    .map(|(a, b)| a + b)
                    .collect()
            })
            .collect();
        (out, BiGruCache { fwd: cf, bwd: cb })
    }

    /// Backpropagates both directions.
    pub fn backward(&mut self, cache: &BiGruCache, dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let t_len = dhs.len();
        let dx_f = self.fwd.backward(&cache.fwd, dhs);
        let rev_dhs: Vec<Vec<f32>> = dhs.iter().rev().cloned().collect();
        let dx_b = self.bwd.backward(&cache.bwd, &rev_dhs);
        let mut dxs = dx_f;
        for t in 0..t_len {
            for (a, b) in dxs[t].iter_mut().zip(&dx_b[t_len - 1 - t]) {
                *a += b;
            }
        }
        dxs
    }

    /// All trainable parameters of both directions.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let (f, b) = (&mut self.fwd, &mut self.bwd);
        vec![&mut f.w, &mut f.u, &mut f.b, &mut b.w, &mut b.u, &mut b.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_inputs(t_len: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..t_len)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let gru = Gru::new(3, 5, &mut rng);
        let xs = toy_inputs(7, 3, 2);
        let (hs, _) = gru.forward(&xs);
        assert_eq!(hs.len(), 7);
        for h in &hs {
            assert_eq!(h.len(), 5);
            for &v in h {
                assert!(v.abs() <= 1.0);
            }
        }
    }

    #[test]
    fn gru_gradients_match_finite_differences() {
        let (d, h, t_len) = (3usize, 4usize, 5usize);
        let mut rng = StdRng::seed_from_u64(42);
        let mut gru = Gru::new(d, h, &mut rng);
        let xs = toy_inputs(t_len, d, 43);
        let loss = |g: &Gru| -> f32 { g.forward(&xs).0.iter().flatten().sum() };
        let (_, cache) = gru.forward(&xs);
        let dhs = vec![vec![1.0f32; h]; t_len];
        let dxs = gru.backward(&cache, &dhs);

        let eps = 1e-3f32;
        for (pidx, k) in [(0usize, 0usize), (0, 7), (1, 3), (1, 11), (2, 2), (2, 9)] {
            let analytic = match pidx {
                0 => gru.w.grad.data()[k],
                1 => gru.u.grad.data()[k],
                _ => gru.b.grad.data()[k],
            };
            let mut g2 = gru.clone();
            {
                let p = match pidx {
                    0 => &mut g2.w,
                    1 => &mut g2.u,
                    _ => &mut g2.b,
                };
                p.value.data_mut()[k] += eps;
            }
            let up = loss(&g2);
            {
                let p = match pidx {
                    0 => &mut g2.w,
                    1 => &mut g2.u,
                    _ => &mut g2.b,
                };
                p.value.data_mut()[k] -= 2.0 * eps;
            }
            let down = loss(&g2);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                "param {pidx}[{k}]: analytic {analytic} vs numeric {numeric}"
            );
        }
        // Input gradients.
        for t in [0usize, 2, 4] {
            for j in 0..d {
                let mut xs2 = xs.clone();
                xs2[t][j] += eps;
                let up: f32 = gru.forward(&xs2).0.iter().flatten().sum();
                xs2[t][j] -= 2.0 * eps;
                let down: f32 = gru.forward(&xs2).0.iter().flatten().sum();
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (dxs[t][j] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                    "dx[{t}][{j}]"
                );
            }
        }
    }

    #[test]
    fn bigru_sees_future_context() {
        let mut rng = StdRng::seed_from_u64(21);
        let bi = BiGru::new(2, 4, &mut rng);
        let a = vec![vec![0.1, 0.2]; 6];
        let mut b = a.clone();
        b[5] = vec![0.9, -0.9];
        let (ha, _) = bi.forward(&a);
        let (hb, _) = bi.forward(&b);
        let d0: f32 = ha[0].iter().zip(&hb[0]).map(|(x, y)| (x - y).abs()).sum();
        assert!(d0 > 1e-4);
    }

    #[test]
    fn bigru_gradcheck_on_inputs() {
        let (d, h, t_len) = (2usize, 3usize, 4usize);
        let mut rng = StdRng::seed_from_u64(77);
        let mut bi = BiGru::new(d, h, &mut rng);
        let xs = toy_inputs(t_len, d, 78);
        let (_, cache) = bi.forward(&xs);
        let dhs = vec![vec![1.0f32; h]; t_len];
        let dxs = bi.backward(&cache, &dhs);
        let eps = 1e-3f32;
        for t in 0..t_len {
            for j in 0..d {
                let mut xs2 = xs.clone();
                xs2[t][j] += eps;
                let up: f32 = bi.forward(&xs2).0.iter().flatten().sum();
                xs2[t][j] -= 2.0 * eps;
                let down: f32 = bi.forward(&xs2).0.iter().flatten().sum();
                let numeric = (up - down) / (2.0 * eps);
                assert!((dxs[t][j] - numeric).abs() < 2e-2 * numeric.abs().max(1.0));
            }
        }
    }

    #[test]
    fn empty_sequence_is_ok() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gru = Gru::new(3, 5, &mut rng);
        let (hs, cache) = gru.forward(&[]);
        assert!(hs.is_empty());
        assert!(gru.backward(&cache, &[]).is_empty());
    }
}
