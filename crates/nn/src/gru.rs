//! GRU and bidirectional GRU layers with backpropagation through time.
//!
//! The paper's reference [Shewalkar et al., JAISCR'19] compares RNN,
//! LSTM and GRU for speech tasks; this module lets the workspace run the
//! same architecture comparison for the phoneme detector (see the
//! `detector_architectures` extension experiment). Gate layout is
//! `[z, r, n]` (update, reset, candidate).
//!
//! The compute engine mirrors [`crate::lstm`]: fused `3H x D` / `3H x H`
//! weight matrices, one time-batched [`Matrix::matmul_nt`] GEMM for all
//! input projections `W·x_t` before the recurrence, flat row-major
//! activation caches, and batched `dW += dZᵀ·X` gradient GEMMs. The GRU
//! keeps *two* flat gradient buffers because the candidate gate's
//! recurrent gradient is scaled by the reset gate, so the `U`-side gate
//! matrix differs from the `W`-side one.

use crate::act::{sigmoid, sigmoid_slice, tanh, tanh_slice};
use crate::batch::{BatchWorkspace, DirCache, PackedBatch};
use crate::matrix::{pack_rows, GemmScratch, Matrix};
use crate::param::Param;
use rand::Rng;

/// A single-direction GRU layer.
#[derive(Debug, Clone)]
pub struct Gru {
    /// Input weights, fused `3H x D` (`[z, r, n]` gate blocks stacked).
    pub w: Param,
    /// Recurrent weights, fused `3H x H`.
    pub u: Param,
    /// Bias, fused `3H x 1`.
    pub b: Param,
    input_size: usize,
    hidden_size: usize,
}

/// Forward-pass activations for a whole sequence, stored as flat
/// row-major buffers (`T` rows each).
#[derive(Debug, Clone)]
pub struct GruCache {
    t: usize,
    /// Packed inputs, `T x D` (processing order).
    x: Vec<f32>,
    /// Hidden state entering each step, `T x H`.
    h_prev: Vec<f32>,
    /// Activated gates `[z, r, n]` per step, `T x 3H`.
    gates: Vec<f32>,
    /// The candidate gate's recurrent pre-activation `(U·h)_n`, `T x H`
    /// (needed to route gradients through the reset gate).
    un_h: Vec<f32>,
}

impl Gru {
    /// Creates a GRU with Xavier-initialized weights.
    pub fn new<R: Rng + ?Sized>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        Gru {
            w: Param::new(Matrix::xavier(3 * hidden_size, input_size, rng)),
            u: Param::new(Matrix::xavier(3 * hidden_size, hidden_size, rng)),
            b: Param::new(Matrix::zeros(3 * hidden_size, 1)),
            input_size,
            hidden_size,
        }
    }

    /// Input dimension.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden dimension.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Runs the layer over a sequence.
    ///
    /// # Panics
    ///
    /// Panics if an input vector's length differs from the input size.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, GruCache) {
        let mut scratch = GemmScratch::new();
        self.forward_with_scratch(xs, &mut scratch)
    }

    /// [`Gru::forward`] streaming through a reusable [`GemmScratch`].
    pub fn forward_with_scratch(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> (Vec<Vec<f32>>, GruCache) {
        self.forward_dir(xs, false, scratch)
    }

    /// Direction-aware forward pass (`reversed` consumes the sequence in
    /// reverse time order without cloning it).
    pub(crate) fn forward_dir(
        &self,
        xs: &[Vec<f32>],
        reversed: bool,
        scratch: &mut GemmScratch,
    ) -> (Vec<Vec<f32>>, GruCache) {
        let t_len = xs.len();
        let hl = self.hidden_size;
        let mut cache = GruCache {
            t: t_len,
            x: Vec::new(),
            h_prev: vec![0.0; t_len * hl],
            gates: vec![0.0; t_len * 3 * hl],
            un_h: vec![0.0; t_len * hl],
        };
        pack_rows(xs, self.input_size, reversed, &mut cache.x);
        self.w
            .value
            .matmul_nt_into(&cache.x, t_len, &mut scratch.proj);
        scratch.z.clear();
        scratch.z.resize(3 * hl, 0.0);
        scratch.state.clear();
        scratch.state.resize(hl, 0.0);
        let h = &mut scratch.state[..];
        let bias = self.b.value.data();
        let mut outputs = Vec::with_capacity(t_len);
        for t in 0..t_len {
            cache.h_prev[t * hl..(t + 1) * hl].copy_from_slice(h);
            // uh = U·h_{t-1}; the n-block is kept *separate* from the
            // input projection because it is gated by r before entering
            // tanh.
            self.u.value.matvec_into(h, &mut scratch.z);
            let uh = &scratch.z;
            let wx = &scratch.proj[t * 3 * hl..(t + 1) * 3 * hl];
            let gates = &mut cache.gates[t * 3 * hl..(t + 1) * 3 * hl];
            let un_h = &mut cache.un_h[t * hl..(t + 1) * hl];
            for k in 0..hl {
                gates[k] = sigmoid(wx[k] + uh[k] + bias[k]);
                gates[hl + k] = sigmoid(wx[hl + k] + uh[hl + k] + bias[hl + k]);
                un_h[k] = uh[2 * hl + k];
            }
            for k in 0..hl {
                gates[2 * hl + k] =
                    tanh(wx[2 * hl + k] + gates[hl + k] * un_h[k] + bias[2 * hl + k]);
            }
            for k in 0..hl {
                h[k] = (1.0 - gates[k]) * gates[2 * hl + k] + gates[k] * h[k];
            }
            outputs.push(h.to_vec());
        }
        (outputs, cache)
    }

    /// Backpropagates through time, accumulating parameter gradients and
    /// returning input gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dhs.len()` differs from the cached sequence length.
    pub fn backward(&mut self, cache: &GruCache, dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut scratch = GemmScratch::new();
        self.backward_with_scratch(cache, dhs, &mut scratch)
    }

    /// [`Gru::backward`] streaming through a reusable [`GemmScratch`].
    pub fn backward_with_scratch(
        &mut self,
        cache: &GruCache,
        dhs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<f32>> {
        assert_eq!(dhs.len(), cache.t, "gradient length mismatch");
        let hl = self.hidden_size;
        let t_len = cache.t;
        let mut dxs = vec![vec![0.0f32; self.input_size]; t_len];
        let GemmScratch {
            dz, dz_u, dstate, ..
        } = scratch;
        dz.clear();
        dz.resize(t_len * 3 * hl, 0.0);
        dz_u.clear();
        dz_u.resize(t_len * 3 * hl, 0.0);
        dstate.clear();
        dstate.resize(3 * hl, 0.0);
        let (dh_next, rest) = dstate.split_at_mut(hl);
        let (dh, dtmp) = rest.split_at_mut(hl);
        for t in (0..t_len).rev() {
            let gates = &cache.gates[t * 3 * hl..(t + 1) * 3 * hl];
            let (gz, gr, gn) = (&gates[..hl], &gates[hl..2 * hl], &gates[2 * hl..]);
            let h_prev = &cache.h_prev[t * hl..(t + 1) * hl];
            let un_h = &cache.un_h[t * hl..(t + 1) * hl];
            let dz_t = &mut dz[t * 3 * hl..(t + 1) * 3 * hl];
            let du_t = &mut dz_u[t * 3 * hl..(t + 1) * 3 * hl];
            for k in 0..hl {
                dh[k] = dhs[t][k] + dh_next[k];
                let d_z = dh[k] * (h_prev[k] - gn[k]);
                let d_n = dh[k] * (1.0 - gz[k]);
                let dz_pre = d_z * gz[k] * (1.0 - gz[k]);
                let dn_pre = d_n * (1.0 - gn[k] * gn[k]);
                let d_r = dn_pre * un_h[k];
                let dr_pre = d_r * gr[k] * (1.0 - gr[k]);
                dz_t[k] = dz_pre;
                dz_t[hl + k] = dr_pre;
                dz_t[2 * hl + k] = dn_pre;
                // U-side rows: z and r see h_prev directly; the n rows
                // see h_prev through the reset gate.
                du_t[k] = dz_pre;
                du_t[hl + k] = dr_pre;
                du_t[2 * hl + k] = dn_pre * gr[k];
            }
            self.w.value.matvec_transposed_into(dz_t, &mut dxs[t]);
            self.u.value.matvec_transposed_into(du_t, dtmp);
            for k in 0..hl {
                dh_next[k] = dh[k] * gz[k] + dtmp[k];
            }
        }
        // Weight gradients as batched GEMMs over the whole sequence.
        self.w.grad.add_tn_product(dz, &cache.x, t_len);
        self.u.grad.add_tn_product(dz_u, &cache.h_prev, t_len);
        let bg = self.b.grad.data_mut();
        for row in dz.chunks_exact(3 * hl) {
            for (slot, &d) in bg.iter_mut().zip(row) {
                *slot += d;
            }
        }
        dxs
    }

    /// Fills `dir.proj` with the pack's input projections, keyed by the
    /// weight versions so successive passes over an unchanged model
    /// re-use it. Unlike the LSTM cache, `proj` stays bare `W·x`: the
    /// GRU cell adds `wx + uh + bias` in that association order, so
    /// folding the bias in here would change the sums bitwise.
    fn fill_proj(&self, pack: &PackedBatch, dir: &mut DirCache, reversed: bool) {
        let gr = 3 * self.hidden_size;
        let total = pack.total_rows();
        let key = (self.w.version(), self.b.version());
        if dir.proj_key == Some(key) {
            thrubarrier_obs::counter!("nn.proj_cache.hit").incr();
        } else {
            thrubarrier_obs::counter!("nn.proj_cache.miss").incr();
            dir.proj.clear();
            dir.proj.resize(total * gr, 0.0);
            self.w
                .value
                .matmul_nt_to(pack.x(reversed), total, &mut dir.proj, false);
            dir.proj_key = Some(key);
        }
    }

    /// Batched forward pass over a packed minibatch, mirroring
    /// [`crate::lstm::Lstm::forward_batch_dir`]: the recurrent `U·h` of
    /// every active sequence runs as one `3H×H × H×nb` GEMM per step
    /// and the input projections come from the epoch-persistent
    /// `dir.proj` cache. Hidden states are *added* into `out[seq][t]`
    /// (index-reversed when `reversed`); activations are cached in
    /// `dir` for [`Gru::backward_batch_dir`].
    pub(crate) fn forward_batch_dir(
        &self,
        pack: &PackedBatch,
        dir: &mut DirCache,
        reversed: bool,
        scratch: &mut GemmScratch,
        out: &mut [Vec<Vec<f32>>],
    ) {
        let hl = self.hidden_size;
        let gr = 3 * hl;
        assert_eq!(pack.width(), self.input_size, "input dimension mismatch");
        let total = pack.total_rows();
        self.fill_proj(pack, dir, reversed);
        dir.h_prev.clear();
        dir.h_prev.resize(total * hl, 0.0);
        dir.gates.clear();
        dir.gates.resize(total * gr, 0.0);
        dir.aux.clear();
        dir.aux.resize(total * hl, 0.0);
        let nb0 = if pack.max_len() == 0 {
            0
        } else {
            pack.active(0)
        };
        let GemmScratch { bh, bt, .. } = scratch;
        bh.clear();
        bh.resize(nb0 * hl, 0.0);
        bt.clear();
        bt.resize(nb0 * gr, 0.0);
        let bias = self.b.value.data();
        for t in 0..pack.max_len() {
            let nb = pack.active(t);
            let off = pack.offset(t);
            dir.h_prev[off * hl..(off + nb) * hl].copy_from_slice(&bh[..nb * hl]);
            // uh = U·h_{t-1} for all active rows; the n-block stays
            // separate from the input projection because it is gated by
            // r before entering tanh.
            self.u
                .value
                .matmul_nt_to(&bh[..nb * hl], nb, &mut bt[..nb * gr], false);
            for b in 0..nb {
                let r = off + b;
                let uh = &bt[b * gr..(b + 1) * gr];
                let wx = &dir.proj[r * gr..(r + 1) * gr];
                let gates = &mut dir.gates[r * gr..(r + 1) * gr];
                let un_h = &mut dir.aux[r * hl..(r + 1) * hl];
                let h = &mut bh[b * hl..(b + 1) * hl];
                for k in 0..hl {
                    gates[k] = sigmoid(wx[k] + uh[k] + bias[k]);
                    gates[hl + k] = sigmoid(wx[hl + k] + uh[hl + k] + bias[hl + k]);
                    un_h[k] = uh[2 * hl + k];
                }
                for k in 0..hl {
                    gates[2 * hl + k] =
                        tanh(wx[2 * hl + k] + gates[hl + k] * un_h[k] + bias[2 * hl + k]);
                }
                for k in 0..hl {
                    h[k] = (1.0 - gates[k]) * gates[2 * hl + k] + gates[k] * h[k];
                }
            }
            for b in 0..nb {
                let pos = if reversed { pack.lens()[b] - 1 - t } else { t };
                let dst = &mut out[pack.order()[b]][pos];
                for (o, &v) in dst.iter_mut().zip(&bh[b * hl..(b + 1) * hl]) {
                    *o += v;
                }
            }
        }
    }

    /// Batched *inference* forward pass writing straight into the flat
    /// packed output buffer `flat` (`total_rows x H`, packed-row
    /// order), mirroring [`crate::lstm::Lstm::infer_batch_dir_flat`]:
    /// the recurrent `U·h` GEMM runs on the fused-FMA kernels of
    /// [`Matrix::matmul_nt_fused_to`] and the gate activations go
    /// through the slice kernels (bitwise identical per element to the
    /// scalar calls of the sequential cell), so outputs match the
    /// sequential engine within fused-multiply-add rounding instead of
    /// bitwise while staying deterministic and bitwise batch-size
    /// invariant. No per-step caches are recorded and no per-frame
    /// vectors are allocated.
    pub(crate) fn infer_batch_dir_flat(
        &self,
        pack: &PackedBatch,
        dir: &mut DirCache,
        reversed: bool,
        scratch: &mut GemmScratch,
        flat: &mut [f32],
        accumulate: bool,
    ) {
        let hl = self.hidden_size;
        let gr = 3 * hl;
        assert_eq!(pack.width(), self.input_size, "input dimension mismatch");
        assert_eq!(flat.len(), pack.total_rows() * hl, "flat output length");
        self.fill_proj(pack, dir, reversed);
        let nb0 = if pack.max_len() == 0 {
            0
        } else {
            pack.active(0)
        };
        let GemmScratch { bh, bt, bz, .. } = scratch;
        bh.clear();
        bh.resize(nb0 * hl, 0.0);
        bt.clear();
        bt.resize(nb0 * gr, 0.0);
        bz.clear();
        bz.resize(nb0 * gr, 0.0);
        let bias = self.b.value.data();
        for t in 0..pack.max_len() {
            let nb = pack.active(t);
            let off = pack.offset(t);
            self.u
                .value
                .matmul_nt_fused_to(&bh[..nb * hl], nb, &mut bt[..nb * gr], false);
            for b in 0..nb {
                let r = off + b;
                let uh = &bt[b * gr..(b + 1) * gr];
                let wx = &dir.proj[r * gr..(r + 1) * gr];
                let g = &mut bz[b * gr..(b + 1) * gr];
                let h = &mut bh[b * hl..(b + 1) * hl];
                // Pre-activations keep the sequential cell's
                // `wx + uh + bias` association order; the slice kernels
                // then activate them bitwise like the scalar calls.
                for k in 0..2 * hl {
                    g[k] = wx[k] + uh[k] + bias[k];
                }
                sigmoid_slice(&mut g[..2 * hl]);
                for k in 0..hl {
                    g[2 * hl + k] = wx[2 * hl + k] + g[hl + k] * uh[2 * hl + k] + bias[2 * hl + k];
                }
                tanh_slice(&mut g[2 * hl..]);
                for k in 0..hl {
                    h[k] = (1.0 - g[k]) * g[2 * hl + k] + g[k] * h[k];
                }
            }
            if !reversed && !accumulate {
                // Step t's rows are exactly the packed rows at its
                // offset: one block copy replaces the per-row scatter.
                flat[off * hl..(off + nb) * hl].copy_from_slice(&bh[..nb * hl]);
            } else {
                for b in 0..nb {
                    let pos = if reversed { pack.lens()[b] - 1 - t } else { t };
                    // Row `b` is active at `pos` too (`pos < lens[b]`),
                    // so it owns packed row `offset(pos) + b`.
                    let row = pack.offset(pos) + b;
                    let src = &bh[b * hl..(b + 1) * hl];
                    let dst = &mut flat[row * hl..(row + 1) * hl];
                    if accumulate {
                        for (o, &v) in dst.iter_mut().zip(src) {
                            *o += v;
                        }
                    } else {
                        dst.copy_from_slice(src);
                    }
                }
            }
        }
    }

    /// Batched BPTT over a packed minibatch; `dhs[i]` is caller
    /// sequence `i`'s flat output gradient (`len_i x H` row-major,
    /// natural time order). Accumulates parameter gradients only —
    /// input gradients are skipped as in
    /// [`crate::lstm::Lstm::backward_batch_dir`].
    pub(crate) fn backward_batch_dir(
        &mut self,
        pack: &PackedBatch,
        dir: &DirCache,
        reversed: bool,
        dhs: &[&[f32]],
        scratch: &mut GemmScratch,
    ) {
        let hl = self.hidden_size;
        let gr = 3 * hl;
        let total = pack.total_rows();
        let nb0 = if pack.max_len() == 0 {
            0
        } else {
            pack.active(0)
        };
        let GemmScratch {
            dz, dz_u, bh, bc, ..
        } = scratch;
        dz.clear();
        dz.resize(total * gr, 0.0);
        dz_u.clear();
        dz_u.resize(total * gr, 0.0);
        // bh holds dh_next rows (zero for sequences joining the reverse
        // traversal at their final step), bc the Uᵀ·dU temporaries.
        bh.clear();
        bh.resize(nb0 * hl, 0.0);
        bc.clear();
        bc.resize(nb0 * hl, 0.0);
        for t in (0..pack.max_len()).rev() {
            let nb = pack.active(t);
            let off = pack.offset(t);
            for b in 0..nb {
                let r = off + b;
                let gates = &dir.gates[r * gr..(r + 1) * gr];
                let (gz, grt, gn) = (&gates[..hl], &gates[hl..2 * hl], &gates[2 * hl..]);
                let h_prev = &dir.h_prev[r * hl..(r + 1) * hl];
                let un_h = &dir.aux[r * hl..(r + 1) * hl];
                let dz_t = &mut dz[r * gr..(r + 1) * gr];
                let du_t = &mut dz_u[r * gr..(r + 1) * gr];
                let pos = if reversed { pack.lens()[b] - 1 - t } else { t };
                let dh_seq = &dhs[pack.order()[b]][pos * hl..(pos + 1) * hl];
                let dh_next = &mut bh[b * hl..(b + 1) * hl];
                for k in 0..hl {
                    let dh = dh_seq[k] + dh_next[k];
                    let d_z = dh * (h_prev[k] - gn[k]);
                    let d_n = dh * (1.0 - gz[k]);
                    let dz_pre = d_z * gz[k] * (1.0 - gz[k]);
                    let dn_pre = d_n * (1.0 - gn[k] * gn[k]);
                    let d_r = dn_pre * un_h[k];
                    let dr_pre = d_r * grt[k] * (1.0 - grt[k]);
                    dz_t[k] = dz_pre;
                    dz_t[hl + k] = dr_pre;
                    dz_t[2 * hl + k] = dn_pre;
                    du_t[k] = dz_pre;
                    du_t[hl + k] = dr_pre;
                    du_t[2 * hl + k] = dn_pre * grt[k];
                    // Direct-path half of dh_next; the Uᵀ half joins
                    // after the step's transposed GEMM below.
                    dh_next[k] = dh * gz[k];
                }
            }
            self.u
                .value
                .matmul_t_to(&dz_u[off * gr..(off + nb) * gr], nb, &mut bc[..nb * hl]);
            for (slot, &d) in bh[..nb * hl].iter_mut().zip(&bc[..nb * hl]) {
                *slot += d;
            }
        }
        self.w.grad.add_tn_product(dz, pack.x(reversed), total);
        self.u.grad.add_tn_product(dz_u, &dir.h_prev, total);
        let bg = self.b.grad.data_mut();
        for row in dz.chunks_exact(gr) {
            for (slot, &d) in bg.iter_mut().zip(row) {
                *slot += d;
            }
        }
    }

    /// The layer's trainable parameters.
    pub fn params_mut(&mut self) -> [&mut Param; 3] {
        [&mut self.w, &mut self.u, &mut self.b]
    }
}

/// Bidirectional GRU: forward and backward hidden states are summed,
/// mirroring [`crate::lstm::BiLstm`].
#[derive(Debug, Clone)]
pub struct BiGru {
    /// Forward-direction layer.
    pub fwd: Gru,
    /// Backward-direction layer.
    pub bwd: Gru,
}

/// Forward cache for [`BiGru`].
#[derive(Debug, Clone)]
pub struct BiGruCache {
    fwd: GruCache,
    bwd: GruCache,
}

impl BiGru {
    /// Creates a bidirectional GRU.
    pub fn new<R: Rng + ?Sized>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        BiGru {
            fwd: Gru::new(input_size, hidden_size, rng),
            bwd: Gru::new(input_size, hidden_size, rng),
        }
    }

    /// Hidden dimension of the summed output.
    pub fn hidden_size(&self) -> usize {
        self.fwd.hidden_size()
    }

    /// Runs both directions and sums per-timestep states.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, BiGruCache) {
        let mut scratch = GemmScratch::new();
        self.forward_with_scratch(xs, &mut scratch)
    }

    /// [`BiGru::forward`] streaming through a reusable [`GemmScratch`].
    pub fn forward_with_scratch(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> (Vec<Vec<f32>>, BiGruCache) {
        let (mut out, cf) = self.fwd.forward_dir(xs, false, scratch);
        let (hb, cb) = self.bwd.forward_dir(xs, true, scratch);
        let t_len = xs.len();
        for (t, h) in out.iter_mut().enumerate() {
            for (a, b) in h.iter_mut().zip(&hb[t_len - 1 - t]) {
                *a += b;
            }
        }
        (out, BiGruCache { fwd: cf, bwd: cb })
    }

    /// Backpropagates both directions.
    pub fn backward(&mut self, cache: &BiGruCache, dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let t_len = dhs.len();
        let mut scratch = GemmScratch::new();
        let dx_f = self
            .fwd
            .backward_with_scratch(&cache.fwd, dhs, &mut scratch);
        let rev_dhs: Vec<Vec<f32>> = dhs.iter().rev().cloned().collect();
        let dx_b = self
            .bwd
            .backward_with_scratch(&cache.bwd, &rev_dhs, &mut scratch);
        let mut dxs = dx_f;
        for t in 0..t_len {
            for (a, b) in dxs[t].iter_mut().zip(&dx_b[t_len - 1 - t]) {
                *a += b;
            }
        }
        dxs
    }

    /// Batched forward over a minibatch of sequences (see
    /// [`crate::lstm::BiLstm::forward_batch`]): packs the batch into
    /// `ws`, runs both directions through the GEMM engine and returns
    /// summed hidden states per sequence in caller order, caching
    /// activations in `ws` for [`BiGru::backward_batch`].
    pub fn forward_batch(
        &self,
        seqs: &[&[Vec<f32>]],
        ws: &mut BatchWorkspace,
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<Vec<f32>>> {
        ws.prepare(seqs, self.fwd.input_size());
        let mut out: Vec<Vec<Vec<f32>>> = seqs
            .iter()
            .map(|s| vec![vec![0.0f32; self.hidden_size()]; s.len()])
            .collect();
        let BatchWorkspace { pack, fwd, bwd, .. } = ws;
        self.fwd
            .forward_batch_dir(pack, fwd, false, scratch, &mut out);
        self.bwd
            .forward_batch_dir(pack, bwd, true, scratch, &mut out);
        out
    }

    /// Batched inference into the workspace's flat packed buffer
    /// (`ws.flat`, `total_rows x hidden`, packed-row order): the
    /// forward direction writes, the reversed direction accumulates —
    /// the GRU mirror of
    /// [`crate::lstm::BiLstm::hidden_states_batch_flat`], with the
    /// recurrent GEMMs on the fused-FMA kernel family.
    pub(crate) fn hidden_states_batch_flat(
        &self,
        seqs: &[&[Vec<f32>]],
        ws: &mut BatchWorkspace,
        scratch: &mut GemmScratch,
    ) {
        ws.prepare(seqs, self.fwd.input_size());
        let BatchWorkspace {
            pack,
            fwd,
            bwd,
            flat,
        } = ws;
        let hl = self.hidden_size();
        flat.clear();
        flat.resize(pack.total_rows() * hl, 0.0);
        self.fwd
            .infer_batch_dir_flat(pack, fwd, false, scratch, flat, false);
        self.bwd
            .infer_batch_dir_flat(pack, bwd, true, scratch, flat, true);
    }

    /// Batched inference: summed hidden states per sequence in caller
    /// order, without recording backward-pass caches. A re-nesting
    /// wrapper around [`BiGru::hidden_states_batch_flat`] — outputs
    /// match the sequential engine within fused-multiply-add rounding
    /// and are bitwise batch-size invariant.
    pub fn hidden_states_batch(
        &self,
        seqs: &[&[Vec<f32>]],
        ws: &mut BatchWorkspace,
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<Vec<f32>>> {
        self.hidden_states_batch_flat(seqs, ws, scratch);
        let hl = self.hidden_size();
        let pack = &ws.pack;
        let mut out: Vec<Vec<Vec<f32>>> =
            seqs.iter().map(|s| Vec::with_capacity(s.len())).collect();
        for (b, (&i, &len)) in pack.order().iter().zip(pack.lens()).enumerate() {
            out[i].extend((0..len).map(|t| {
                let row = pack.offset(t) + b;
                ws.flat[row * hl..(row + 1) * hl].to_vec()
            }));
        }
        out
    }

    /// Batched BPTT through both directions; `dhs[i]` is caller
    /// sequence `i`'s flat output gradient (`len_i x H` row-major).
    /// Must follow a [`BiGru::forward_batch`] on the same workspace.
    pub fn backward_batch(
        &mut self,
        ws: &BatchWorkspace,
        dhs: &[&[f32]],
        scratch: &mut GemmScratch,
    ) {
        self.fwd
            .backward_batch_dir(&ws.pack, &ws.fwd, false, dhs, scratch);
        self.bwd
            .backward_batch_dir(&ws.pack, &ws.bwd, true, dhs, scratch);
    }

    /// All trainable parameters of both directions.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let (f, b) = (&mut self.fwd, &mut self.bwd);
        vec![&mut f.w, &mut f.u, &mut f.b, &mut b.w, &mut b.u, &mut b.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_inputs(t_len: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..t_len)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let gru = Gru::new(3, 5, &mut rng);
        let xs = toy_inputs(7, 3, 2);
        let (hs, _) = gru.forward(&xs);
        assert_eq!(hs.len(), 7);
        for h in &hs {
            assert_eq!(h.len(), 5);
            for &v in h {
                assert!(v.abs() <= 1.0);
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_calls() {
        let mut rng = StdRng::seed_from_u64(31);
        let gru = Gru::new(3, 5, &mut rng);
        let xs = toy_inputs(7, 3, 32);
        let mut scratch = GemmScratch::new();
        let (a, _) = gru.forward_with_scratch(&xs, &mut scratch);
        let (b, _) = gru.forward_with_scratch(&xs, &mut scratch);
        let (c, _) = gru.forward(&xs);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn gru_gradients_match_finite_differences() {
        let (d, h, t_len) = (3usize, 4usize, 5usize);
        let mut rng = StdRng::seed_from_u64(42);
        let mut gru = Gru::new(d, h, &mut rng);
        let xs = toy_inputs(t_len, d, 43);
        let loss = |g: &Gru| -> f32 { g.forward(&xs).0.iter().flatten().sum() };
        let (_, cache) = gru.forward(&xs);
        let dhs = vec![vec![1.0f32; h]; t_len];
        let dxs = gru.backward(&cache, &dhs);

        let eps = 1e-3f32;
        for (pidx, k) in [(0usize, 0usize), (0, 7), (1, 3), (1, 11), (2, 2), (2, 9)] {
            let analytic = match pidx {
                0 => gru.w.grad.data()[k],
                1 => gru.u.grad.data()[k],
                _ => gru.b.grad.data()[k],
            };
            let mut g2 = gru.clone();
            {
                let p = match pidx {
                    0 => &mut g2.w,
                    1 => &mut g2.u,
                    _ => &mut g2.b,
                };
                p.value.data_mut()[k] += eps;
            }
            let up = loss(&g2);
            {
                let p = match pidx {
                    0 => &mut g2.w,
                    1 => &mut g2.u,
                    _ => &mut g2.b,
                };
                p.value.data_mut()[k] -= 2.0 * eps;
            }
            let down = loss(&g2);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                "param {pidx}[{k}]: analytic {analytic} vs numeric {numeric}"
            );
        }
        // Input gradients.
        for t in [0usize, 2, 4] {
            for j in 0..d {
                let mut xs2 = xs.clone();
                xs2[t][j] += eps;
                let up: f32 = gru.forward(&xs2).0.iter().flatten().sum();
                xs2[t][j] -= 2.0 * eps;
                let down: f32 = gru.forward(&xs2).0.iter().flatten().sum();
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (dxs[t][j] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                    "dx[{t}][{j}]"
                );
            }
        }
    }

    #[test]
    fn bigru_sees_future_context() {
        let mut rng = StdRng::seed_from_u64(21);
        let bi = BiGru::new(2, 4, &mut rng);
        let a = vec![vec![0.1, 0.2]; 6];
        let mut b = a.clone();
        b[5] = vec![0.9, -0.9];
        let (ha, _) = bi.forward(&a);
        let (hb, _) = bi.forward(&b);
        let d0: f32 = ha[0].iter().zip(&hb[0]).map(|(x, y)| (x - y).abs()).sum();
        assert!(d0 > 1e-4);
    }

    #[test]
    fn bigru_gradcheck_on_inputs() {
        let (d, h, t_len) = (2usize, 3usize, 4usize);
        let mut rng = StdRng::seed_from_u64(77);
        let mut bi = BiGru::new(d, h, &mut rng);
        let xs = toy_inputs(t_len, d, 78);
        let (_, cache) = bi.forward(&xs);
        let dhs = vec![vec![1.0f32; h]; t_len];
        let dxs = bi.backward(&cache, &dhs);
        let eps = 1e-3f32;
        for t in 0..t_len {
            for j in 0..d {
                let mut xs2 = xs.clone();
                xs2[t][j] += eps;
                let up: f32 = bi.forward(&xs2).0.iter().flatten().sum();
                xs2[t][j] -= 2.0 * eps;
                let down: f32 = bi.forward(&xs2).0.iter().flatten().sum();
                let numeric = (up - down) / (2.0 * eps);
                assert!((dxs[t][j] - numeric).abs() < 2e-2 * numeric.abs().max(1.0));
            }
        }
    }

    #[test]
    fn empty_sequence_is_ok() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gru = Gru::new(3, 5, &mut rng);
        let (hs, cache) = gru.forward(&[]);
        assert!(hs.is_empty());
        assert!(gru.backward(&cache, &[]).is_empty());
    }

    #[test]
    fn batched_forward_is_bitwise_identical_at_wide_hidden_sizes() {
        use crate::batch::BatchWorkspace;
        // H = 34 keeps the recurrent GEMM on the wide path; mixed
        // lengths exercise the shrinking active prefix.
        let mut rng = StdRng::seed_from_u64(51);
        let bi = BiGru::new(3, 34, &mut rng);
        let seqs: Vec<Vec<Vec<f32>>> = [6usize, 1, 4, 4]
            .iter()
            .enumerate()
            .map(|(i, &len)| toy_inputs(len, 3, 500 + i as u64))
            .collect();
        let refs: Vec<&[Vec<f32>]> = seqs.iter().map(|s| s.as_slice()).collect();
        let mut ws = BatchWorkspace::new();
        let mut scratch = GemmScratch::new();
        let batched = bi.forward_batch(&refs, &mut ws, &mut scratch);
        for (i, seq) in seqs.iter().enumerate() {
            let (sequential, _) = bi.forward_with_scratch(seq, &mut scratch);
            assert_eq!(batched[i], sequential, "seq {i}");
        }
    }

    #[test]
    fn batched_inference_matches_sequential_within_rounding() {
        use crate::batch::BatchWorkspace;
        // The inference path runs the fused recurrent GEMM, so it is
        // only required to agree with the sequential engine within
        // fused-multiply-add rounding; H = 34 keeps it on the wide
        // kernel path and mixed lengths exercise the scatter/accumulate
        // flat writes of both directions.
        let mut rng = StdRng::seed_from_u64(55);
        let bi = BiGru::new(3, 34, &mut rng);
        let seqs: Vec<Vec<Vec<f32>>> = [6usize, 1, 4, 4]
            .iter()
            .enumerate()
            .map(|(i, &len)| toy_inputs(len, 3, 700 + i as u64))
            .collect();
        let refs: Vec<&[Vec<f32>]> = seqs.iter().map(|s| s.as_slice()).collect();
        let mut ws = BatchWorkspace::new();
        let mut scratch = GemmScratch::new();
        let inferred = bi.hidden_states_batch(&refs, &mut ws, &mut scratch);
        for (i, seq) in seqs.iter().enumerate() {
            let (sequential, _) = bi.forward_with_scratch(seq, &mut scratch);
            assert_eq!(inferred[i].len(), sequential.len(), "seq {i}");
            for (t, (a, b)) in inferred[i].iter().zip(&sequential).enumerate() {
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-5, "seq {i} t {t}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn batched_inference_is_bitwise_batch_size_invariant() {
        use crate::batch::BatchWorkspace;
        // The property the shared scoring service relies on: a
        // sequence's inferred states must not depend on what else is in
        // the batch.
        let mut rng = StdRng::seed_from_u64(57);
        let bi = BiGru::new(3, 34, &mut rng);
        let seqs: Vec<Vec<Vec<f32>>> = [5usize, 2, 7]
            .iter()
            .enumerate()
            .map(|(i, &len)| toy_inputs(len, 3, 800 + i as u64))
            .collect();
        let refs: Vec<&[Vec<f32>]> = seqs.iter().map(|s| s.as_slice()).collect();
        let mut ws = BatchWorkspace::new();
        let mut scratch = GemmScratch::new();
        let together = bi.hidden_states_batch(&refs, &mut ws, &mut scratch);
        for (i, seq) in seqs.iter().enumerate() {
            let mut solo_ws = BatchWorkspace::new();
            let alone = bi.hidden_states_batch(&[seq.as_slice()], &mut solo_ws, &mut scratch);
            assert_eq!(together[i], alone[0], "seq {i}");
        }
    }

    #[test]
    fn batched_backward_matches_sequential_gradients() {
        use crate::batch::BatchWorkspace;
        let (d, h) = (3usize, 4usize);
        let mut rng = StdRng::seed_from_u64(53);
        let bi = BiGru::new(d, h, &mut rng);
        let seqs: Vec<Vec<Vec<f32>>> = [3usize, 5, 2]
            .iter()
            .enumerate()
            .map(|(i, &len)| toy_inputs(len, d, 600 + i as u64))
            .collect();
        let refs: Vec<&[Vec<f32>]> = seqs.iter().map(|s| s.as_slice()).collect();
        let mut scratch = GemmScratch::new();

        let mut seq_model = bi.clone();
        for seq in &seqs {
            let (_, cache) = seq_model.forward_with_scratch(seq, &mut scratch);
            let dhs = vec![vec![1.0f32; h]; seq.len()];
            seq_model.backward(&cache, &dhs);
        }

        let mut bat_model = bi.clone();
        let mut ws = BatchWorkspace::new();
        bat_model.forward_batch(&refs, &mut ws, &mut scratch);
        let flat: Vec<Vec<f32>> = seqs.iter().map(|s| vec![1.0f32; s.len() * h]).collect();
        let dhs: Vec<&[f32]> = flat.iter().map(|v| v.as_slice()).collect();
        bat_model.backward_batch(&ws, &dhs, &mut scratch);

        for (ps, pb) in [
            (&seq_model.fwd.w, &bat_model.fwd.w),
            (&seq_model.fwd.u, &bat_model.fwd.u),
            (&seq_model.fwd.b, &bat_model.fwd.b),
            (&seq_model.bwd.w, &bat_model.bwd.w),
            (&seq_model.bwd.u, &bat_model.bwd.u),
            (&seq_model.bwd.b, &bat_model.bwd.b),
        ] {
            for (a, b) in ps.grad.data().iter().zip(pb.grad.data()) {
                assert!((a - b).abs() < 1e-4 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }
}
