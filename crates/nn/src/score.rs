//! Shared BRNN scoring service: one GEMM engine thread for all
//! evaluation workers.
//!
//! Per-worker batching (each eval thread packing its own group of
//! `batch_size` phoneme segments) leaves the packed-batch GEMMs
//! narrower than they could be: with 8 workers the engine sees eight
//! batch-8 packs instead of one batch-64 pack, so each recurrent step
//! pays eight small fused GEMM dispatches where one wide GEMM would
//! amortize the weight-matrix traversal across every in-flight
//! utterance. This module centralizes inference in a single engine
//! thread:
//!
//! * Workers [`submit`](ScoreClient::submit) feature sequences over an
//!   unbounded MPSC channel and block on a per-request reply channel.
//! * The engine drains the queue with an **adaptive cut**: it blocks
//!   for the first request, then keeps pulling with `try_recv` until
//!   either `max_batch` segments are in hand or the queue is empty —
//!   under load the batch grows to the cap, at low concurrency a lone
//!   request is scored immediately instead of waiting for company.
//! * Each drain runs the fused-FMA packed-batch inference path once
//!   ([`BrnnClassifier::predict_batch_into`]) with a persistent
//!   [`BatchWorkspace`], [`GemmScratch`] and flat logits buffer, so
//!   packing storage, projection caches and the output buffer are
//!   reused across drains.
//! * Scores return to each submitter over its own oneshot-style
//!   channel, in the submitter's order.
//!
//! Because the fused inference kernels are bitwise batch-size
//! invariant (pinned 16-lane summation order regardless of how many
//! utterances share the pack) and the head GEMM is row-independent,
//! the labels produced here are **bitwise identical** to inline
//! per-worker scoring for any interleaving of submissions across any
//! number of threads.
//!
//! Shutdown is by sender drop: when the [`ScoreService`] handle and
//! every [`ScoreClient`] are gone, the engine's blocking `recv` fails
//! and the thread exits; dropping the service joins it.

use std::sync::mpsc::{self, Receiver, Sender};
use std::thread::JoinHandle;

use crate::batch::BatchWorkspace;
use crate::matrix::GemmScratch;
use crate::model::BrnnClassifier;

/// Default drain cut. Eight workers each keeping a group of eight
/// segments in flight saturate this exactly; larger caps only add
/// latency to the first submitter in a drain.
pub const DEFAULT_MAX_BATCH: usize = 64;

/// One queued scoring request: a feature sequence (frames of MFCC
/// features) and the channel its per-frame labels go back on.
struct Request {
    seq: Vec<Vec<f32>>,
    reply: Sender<Vec<usize>>,
    latency: thrubarrier_obs::Timer,
}

/// Owning handle for the shared scoring engine thread.
///
/// Create one per evaluation run with [`ScoreService::spawn`], hand
/// [`ScoreClient`]s to worker threads, and drop the service after the
/// workers finish. Dropping joins the engine thread; the join blocks
/// until every client has been dropped, so keep the service alive
/// strictly longer than its clients (declare it first, or drop clients
/// explicitly).
#[derive(Debug)]
pub struct ScoreService {
    tx: Option<Sender<Request>>,
    engine: Option<JoinHandle<()>>,
}

impl ScoreService {
    /// Spawns the engine thread around `model`. `max_batch` caps how
    /// many queued segments one drain coalesces (clamped to at least
    /// 1); [`DEFAULT_MAX_BATCH`] suits the default eval harness.
    pub fn spawn(model: BrnnClassifier, max_batch: usize) -> Self {
        let (tx, rx) = mpsc::channel::<Request>();
        let cap = max_batch.max(1);
        let engine = std::thread::Builder::new()
            .name("brnn-score-engine".into())
            .spawn(move || engine_loop(&model, &rx, cap))
            .expect("spawn scoring engine thread");
        ScoreService {
            tx: Some(tx),
            engine: Some(engine),
        }
    }

    /// A new submission handle. Clients are cheap (one channel sender)
    /// and cloneable; one per worker thread is typical.
    pub fn client(&self) -> ScoreClient {
        ScoreClient {
            tx: self
                .tx
                .as_ref()
                .expect("service handle retains its sender until drop")
                .clone(),
        }
    }
}

impl Drop for ScoreService {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
    }
}

/// Submission handle for worker threads: sends feature sequences to
/// the engine and waits on per-request reply channels.
#[derive(Debug, Clone)]
pub struct ScoreClient {
    tx: Sender<Request>,
}

impl ScoreClient {
    /// Queues one feature sequence for scoring and returns immediately
    /// with a ticket; redeem it with [`PendingScore::wait`]. Submitting
    /// a whole group before waiting on any ticket lets the engine
    /// coalesce the group into one drain.
    ///
    /// # Panics
    /// If the engine thread is gone (service dropped or engine
    /// panicked).
    pub fn submit(&self, seq: Vec<Vec<f32>>) -> PendingScore {
        let (reply, rx) = mpsc::channel();
        thrubarrier_obs::gauge!("nn.score.queue_depth").incr();
        self.tx
            .send(Request {
                seq,
                reply,
                latency: thrubarrier_obs::Timer::start(),
            })
            .expect("scoring engine is running");
        PendingScore { rx }
    }

    /// Scores a group of sequences: submits them all, then waits for
    /// each. Labels come back in caller order, bitwise identical to
    /// inline [`BrnnClassifier::predict_batch`] on the same group.
    /// Takes the sequences by value — the engine thread needs owned
    /// data, and callers (the segmentation front-end) have just
    /// featurized them anyway, so nothing is copied.
    pub fn classify_batch(&self, seqs: Vec<Vec<Vec<f32>>>) -> Vec<Vec<usize>> {
        let tickets: Vec<PendingScore> = seqs.into_iter().map(|s| self.submit(s)).collect();
        tickets.into_iter().map(PendingScore::wait).collect()
    }
}

/// Ticket for one submitted sequence; [`wait`](PendingScore::wait)
/// blocks until the engine's next drain scores it.
#[derive(Debug)]
pub struct PendingScore {
    rx: Receiver<Vec<usize>>,
}

impl PendingScore {
    /// Blocks for the per-frame argmax labels of the submitted
    /// sequence.
    ///
    /// # Panics
    /// If the engine dropped the request without replying (it
    /// panicked mid-drain).
    pub fn wait(self) -> Vec<usize> {
        self.rx
            .recv()
            .expect("scoring engine replies to every request")
    }
}

/// Engine body: block for the first request, drain opportunistically
/// up to `max_batch`, score the coalesced pack once, reply, repeat.
/// Exits when every sender is gone.
fn engine_loop(model: &BrnnClassifier, rx: &Receiver<Request>, max_batch: usize) {
    thrubarrier_obs::label_thread("score-engine");
    let mut ws = BatchWorkspace::new();
    let mut scratch = GemmScratch::new();
    let mut logits = Vec::new();
    let mut pending: Vec<Request> = Vec::with_capacity(max_batch);
    while let Ok(first) = rx.recv() {
        pending.push(first);
        while pending.len() < max_batch {
            // Adaptive cut: stop at the cap or as soon as the queue is
            // momentarily empty (Disconnected also lands here — this
            // drain still completes, the outer recv then exits).
            match rx.try_recv() {
                Ok(req) => pending.push(req),
                Err(_) => break,
            }
        }
        let _span = thrubarrier_obs::span!("nn.score.drain");
        thrubarrier_obs::gauge!("nn.score.queue_depth").add(-(pending.len() as i64));
        thrubarrier_obs::histogram!("nn.score.batch_size").record(pending.len() as u64);
        let seqs: Vec<&[Vec<f32>]> = pending.iter().map(|r| r.seq.as_slice()).collect();
        let labels = model.predict_batch_into(&seqs, &mut ws, &mut scratch, &mut logits);
        let latency = thrubarrier_obs::histogram!("nn.score.request_latency_ns");
        for (req, out) in pending.drain(..).zip(labels) {
            req.latency.observe(latency);
            // A submitter that dropped its ticket just discards the
            // reply; that is not an engine error.
            let _ = req.reply.send(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn tiny_model(seed: u64) -> BrnnClassifier {
        let mut rng = StdRng::seed_from_u64(seed);
        BrnnClassifier::new(13, 24, 3, &mut rng)
    }

    fn random_seqs(seed: u64, n: usize) -> Vec<Vec<Vec<f32>>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let len = rng.gen_range(1..10);
                (0..len)
                    .map(|_| (0..13).map(|_| rng.gen_range(-1.0..1.0)).collect())
                    .collect()
            })
            .collect()
    }

    fn inline_labels(model: &BrnnClassifier, seqs: &[Vec<Vec<f32>>]) -> Vec<Vec<usize>> {
        let mut ws = BatchWorkspace::new();
        let mut scratch = GemmScratch::new();
        seqs.iter()
            .map(|s| {
                model
                    .predict_batch(&[s.as_slice()], &mut ws, &mut scratch)
                    .remove(0)
            })
            .collect()
    }

    #[test]
    fn service_scores_are_identical_to_inline_across_thread_counts() {
        let model = tiny_model(41);
        let seqs = random_seqs(42, 48);
        let expect = inline_labels(&model, &seqs);
        for threads in [1usize, 4, 8] {
            let service = ScoreService::spawn(model.clone(), DEFAULT_MAX_BATCH);
            let mut got: Vec<Vec<Vec<usize>>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        let client = service.client();
                        let mine: Vec<&Vec<Vec<f32>>> =
                            seqs.iter().skip(w).step_by(threads).collect();
                        scope.spawn(move || {
                            // Submit the whole slice first so drains
                            // interleave requests from many workers.
                            let tickets: Vec<PendingScore> =
                                mine.iter().map(|s| client.submit((*s).clone())).collect();
                            tickets
                                .into_iter()
                                .map(PendingScore::wait)
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                got = handles.into_iter().map(|h| h.join().unwrap()).collect();
            });
            for (w, labels) in got.iter().enumerate() {
                let expected: Vec<&Vec<usize>> = expect.iter().skip(w).step_by(threads).collect();
                assert_eq!(labels.len(), expected.len());
                for (a, b) in labels.iter().zip(expected) {
                    assert_eq!(a, b, "service labels diverged at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn classify_batch_matches_inline_batch_scoring() {
        let model = tiny_model(7);
        let seqs = random_seqs(8, 10);
        let views: Vec<&[Vec<f32>]> = seqs.iter().map(|s| s.as_slice()).collect();
        let mut ws = BatchWorkspace::new();
        let mut scratch = GemmScratch::new();
        let inline = model.predict_batch(&views, &mut ws, &mut scratch);
        let service = ScoreService::spawn(model, 4);
        let client = service.client();
        assert_eq!(client.classify_batch(seqs), inline);
    }

    #[test]
    fn engine_exits_cleanly_when_all_senders_drop() {
        let service = ScoreService::spawn(tiny_model(3), 8);
        let clients: Vec<ScoreClient> = (0..4).map(|_| service.client()).collect();
        let ticket = clients[0].submit(random_seqs(4, 1).remove(0));
        assert!(!ticket.wait().is_empty());
        drop(clients);
        // Drop joins the engine; returning from this test at all is the
        // assertion that the join did not hang.
        drop(service);
    }
}
