//! LSTM and bidirectional LSTM layers with backpropagation through time.
//!
//! Gate layout follows the common stacked convention `[i, f, g, o]`
//! (input, forget, cell-candidate, output). The bidirectional wrapper
//! *sums* the forward and backward hidden states, matching the paper's
//! `h_t = h→_t + h←_t` (Sec. V-B, Eq. 4).
//!
//! # Fused-gate compute engine
//!
//! The four per-gate weight matrices live concatenated in single fused
//! `4H x I` (input) and `4H x H` (recurrent) row-major matrices, so one
//! blocked product serves all gates. Per sequence the engine does:
//!
//! 1. **Time-batched input projections** — `W·x_t` for *all* timesteps
//!    in one [`Matrix::matmul_nt`] GEMM before the recurrence starts;
//!    the sequential loop then only adds the `U·h_{t-1}` half per step
//!    ([`Matrix::matvec_add_into`], no temporaries).
//! 2. **Flat activation caches** — the backward pass reads gate
//!    activations and pre-states from contiguous `T x 4H` / `T x H`
//!    buffers instead of one heap allocation per step.
//! 3. **Batched weight gradients** — BPTT accumulates all per-step gate
//!    gradients into one `T x 4H` buffer and applies `dW += dZᵀ·X` /
//!    `dU += dZᵀ·H_prev` as single [`Matrix::add_tn_product`] GEMMs.
//!
//! All entry points have `*_with_scratch` variants that stream through a
//! caller-provided [`GemmScratch`]; the plain variants allocate a fresh
//! scratch per call. Inference-only traversal ([`BiLstm::hidden_states_with_scratch`])
//! skips the activation caches entirely.

use crate::act::{gates_fused, tanh_slice};
use crate::batch::{BatchWorkspace, DirCache, PackedBatch};
use crate::matrix::{pack_rows, GemmScratch, Matrix};
use crate::param::Param;
use rand::Rng;

/// A single-direction LSTM layer.
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input weights, fused `4H x D` (`[i, f, g, o]` gate blocks stacked).
    pub w: Param,
    /// Recurrent weights, fused `4H x H`.
    pub u: Param,
    /// Bias, fused `4H x 1`.
    pub b: Param,
    input_size: usize,
    hidden_size: usize,
}

/// Forward-pass activations for a whole sequence, stored as flat
/// row-major buffers (`T` rows each) — what [`Lstm::backward`] replays.
#[derive(Debug, Clone)]
pub struct LstmCache {
    t: usize,
    /// Packed inputs, `T x D` (in processing order; reversed for the
    /// backward direction of a [`BiLstm`]).
    x: Vec<f32>,
    /// Hidden state entering each step, `T x H`.
    h_prev: Vec<f32>,
    /// Cell state entering each step, `T x H`.
    c_prev: Vec<f32>,
    /// Activated gates `[i, f, g, o]` per step, `T x 4H`.
    gates: Vec<f32>,
    /// `tanh(c_t)` per step, `T x H`.
    tanh_c: Vec<f32>,
}

/// Applies one LSTM cell update. `z` holds the fused pre-activations,
/// `gates` receives the activated `[i, f, g, o]` blocks, and `c`/`h` are
/// updated in place (their pre-step values must already be stashed).
/// The activations run block-wise through the slice kernels in
/// [`crate::act`], which are SIMD on capable machines (the cell is
/// otherwise bound by the rational kernel's division throughput); the
/// remaining state arithmetic is plain element-wise code the compiler
/// vectorizes on its own.
#[inline]
fn lstm_cell(z: &[f32], gates: &mut [f32], c: &mut [f32], h: &mut [f32], tanh_c: &mut [f32]) {
    let hl = h.len();
    gates.copy_from_slice(z);
    gates_fused(gates, hl);
    let (gi, rest) = gates.split_at(hl);
    let (gf, rest) = rest.split_at(hl);
    let (gg, go) = rest.split_at(hl);
    for k in 0..hl {
        c[k] = gf[k] * c[k] + gi[k] * gg[k];
    }
    tanh_c.copy_from_slice(c);
    tanh_slice(tanh_c);
    for k in 0..hl {
        h[k] = go[k] * tanh_c[k];
    }
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights. The forget-gate
    /// bias is initialized to `1.0` (standard practice to ease gradient
    /// flow early in training).
    pub fn new<R: Rng + ?Sized>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        let w = Matrix::xavier(4 * hidden_size, input_size, rng);
        let u = Matrix::xavier(4 * hidden_size, hidden_size, rng);
        let mut b = Matrix::zeros(4 * hidden_size, 1);
        for h in 0..hidden_size {
            b.set(hidden_size + h, 0, 1.0); // forget gate bias
        }
        Lstm {
            w: Param::new(w),
            u: Param::new(u),
            b: Param::new(b),
            input_size,
            hidden_size,
        }
    }

    /// Reconstructs an LSTM from explicit fused weight matrices (e.g.
    /// loaded from disk).
    ///
    /// # Errors
    ///
    /// Returns a message when the shapes are inconsistent.
    pub fn from_weights(w: Matrix, u: Matrix, b: Matrix) -> Result<Self, String> {
        let four_h = w.rows();
        if four_h == 0 || !four_h.is_multiple_of(4) {
            return Err(format!("gate dimension {four_h} is not 4*H"));
        }
        let hidden_size = four_h / 4;
        let input_size = w.cols();
        if u.rows() != four_h || u.cols() != hidden_size {
            return Err(format!(
                "recurrent weights {}x{} do not match hidden size {hidden_size}",
                u.rows(),
                u.cols()
            ));
        }
        if b.rows() != four_h || b.cols() != 1 {
            return Err(format!("bias {}x{} does not match", b.rows(), b.cols()));
        }
        Ok(Lstm {
            w: Param::new(w),
            u: Param::new(u),
            b: Param::new(b),
            input_size,
            hidden_size,
        })
    }

    /// Assembles an LSTM from *per-gate* weight blocks in `[i, f, g, o]`
    /// order — the legacy four-matrix layout. Each `w[g]` is `H x D`,
    /// each `u[g]` is `H x H`, each `b[g]` is `H x 1`; they are stacked
    /// into the fused `4H x *` matrices this engine computes with.
    ///
    /// # Errors
    ///
    /// Returns a message when the stacked shapes are inconsistent.
    pub fn from_gate_weights(
        w: [Matrix; 4],
        u: [Matrix; 4],
        b: [Matrix; 4],
    ) -> Result<Self, String> {
        let fused_w = Matrix::vstack(&[&w[0], &w[1], &w[2], &w[3]]);
        let fused_u = Matrix::vstack(&[&u[0], &u[1], &u[2], &u[3]]);
        let fused_b = Matrix::vstack(&[&b[0], &b[1], &b[2], &b[3]]);
        Lstm::from_weights(fused_w, fused_u, fused_b)
    }

    /// Input dimension.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden dimension.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Runs the layer over a sequence, returning hidden states for every
    /// timestep and the cache needed by [`Lstm::backward`].
    ///
    /// # Panics
    ///
    /// Panics if any input vector's length differs from the configured
    /// input size.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, LstmCache) {
        let mut scratch = GemmScratch::new();
        self.forward_with_scratch(xs, &mut scratch)
    }

    /// [`Lstm::forward`] streaming through a reusable [`GemmScratch`].
    pub fn forward_with_scratch(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> (Vec<Vec<f32>>, LstmCache) {
        self.forward_dir(xs, false, scratch)
    }

    /// Direction-aware forward pass: with `reversed` the sequence is
    /// consumed (and cached) in reverse time order without cloning it.
    pub(crate) fn forward_dir(
        &self,
        xs: &[Vec<f32>],
        reversed: bool,
        scratch: &mut GemmScratch,
    ) -> (Vec<Vec<f32>>, LstmCache) {
        let t_len = xs.len();
        let hl = self.hidden_size;
        let mut cache = LstmCache {
            t: t_len,
            x: Vec::new(),
            h_prev: vec![0.0; t_len * hl],
            c_prev: vec![0.0; t_len * hl],
            gates: vec![0.0; t_len * 4 * hl],
            tanh_c: vec![0.0; t_len * hl],
        };
        pack_rows(xs, self.input_size, reversed, &mut cache.x);
        // One GEMM for every timestep's input projection; the loop below
        // only does the recurrent half.
        self.w
            .value
            .matmul_nt_into(&cache.x, t_len, &mut scratch.proj);
        scratch.z.clear();
        scratch.z.resize(4 * hl, 0.0);
        scratch.state.clear();
        scratch.state.resize(2 * hl, 0.0);
        let (h, c) = scratch.state.split_at_mut(hl);
        let bias = self.b.value.data();
        let mut outputs = Vec::with_capacity(t_len);
        for t in 0..t_len {
            cache.h_prev[t * hl..(t + 1) * hl].copy_from_slice(h);
            cache.c_prev[t * hl..(t + 1) * hl].copy_from_slice(c);
            for ((z, &p), &bv) in scratch
                .z
                .iter_mut()
                .zip(&scratch.proj[t * 4 * hl..(t + 1) * 4 * hl])
                .zip(bias)
            {
                *z = p + bv;
            }
            self.u.value.matvec_add_into(h, &mut scratch.z);
            lstm_cell(
                &scratch.z,
                &mut cache.gates[t * 4 * hl..(t + 1) * 4 * hl],
                c,
                h,
                &mut cache.tanh_c[t * hl..(t + 1) * hl],
            );
            outputs.push(h.to_vec());
        }
        (outputs, cache)
    }

    /// Inference-only traversal: runs the recurrence and *adds* each
    /// hidden state into `out` (index-reversed when `reversed`), without
    /// recording any backward-pass state. `out` must hold `xs.len()`
    /// vectors of `hidden_size` values.
    pub(crate) fn infer_add(
        &self,
        xs: &[Vec<f32>],
        reversed: bool,
        scratch: &mut GemmScratch,
        out: &mut [Vec<f32>],
    ) {
        let t_len = xs.len();
        assert_eq!(out.len(), t_len, "output length mismatch");
        let hl = self.hidden_size;
        pack_rows(xs, self.input_size, reversed, &mut scratch.x_flat);
        self.w
            .value
            .matmul_nt_into(&scratch.x_flat, t_len, &mut scratch.proj);
        scratch.z.clear();
        scratch.z.resize(4 * hl, 0.0);
        scratch.state.clear();
        scratch.state.resize(2 * hl, 0.0);
        let (h, c) = scratch.state.split_at_mut(hl);
        let bias = self.b.value.data();
        for t in 0..t_len {
            for ((z, &p), &bv) in scratch
                .z
                .iter_mut()
                .zip(&scratch.proj[t * 4 * hl..(t + 1) * 4 * hl])
                .zip(bias)
            {
                *z = p + bv;
            }
            self.u.value.matvec_add_into(h, &mut scratch.z);
            // Activate in place — no backward pass, so nothing is cached.
            gates_fused(&mut scratch.z, hl);
            let (gi, rest) = scratch.z.split_at(hl);
            let (gf, rest) = rest.split_at(hl);
            let (gg, go) = rest.split_at(hl);
            for k in 0..hl {
                c[k] = gf[k] * c[k] + gi[k] * gg[k];
            }
            h.copy_from_slice(c);
            tanh_slice(h);
            for k in 0..hl {
                h[k] *= go[k];
            }
            let slot = if reversed { t_len - 1 - t } else { t };
            for (o, &v) in out[slot].iter_mut().zip(h.iter()) {
                *o += v;
            }
        }
    }

    /// Hidden states only (no backward-pass cache) — the inference fast
    /// path used when gradients are not needed.
    pub fn hidden_states_with_scratch(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<f32>> {
        let mut out = vec![vec![0.0f32; self.hidden_size]; xs.len()];
        self.infer_add(xs, false, scratch, &mut out);
        out
    }

    /// Backpropagates through time. `dhs` holds the loss gradient with
    /// respect to each output hidden state. Parameter gradients are
    /// *accumulated* into `self.{w,u,b}.grad`; the gradient with respect
    /// to each input vector is returned.
    ///
    /// # Panics
    ///
    /// Panics if `dhs.len()` differs from the cached sequence length.
    pub fn backward(&mut self, cache: &LstmCache, dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut scratch = GemmScratch::new();
        self.backward_with_scratch(cache, dhs, &mut scratch)
    }

    /// [`Lstm::backward`] streaming through a reusable [`GemmScratch`].
    pub fn backward_with_scratch(
        &mut self,
        cache: &LstmCache,
        dhs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<f32>> {
        assert_eq!(dhs.len(), cache.t, "gradient length mismatch");
        let hl = self.hidden_size;
        let t_len = cache.t;
        let mut dxs = vec![vec![0.0f32; self.input_size]; t_len];
        let GemmScratch { dz, dstate, .. } = scratch;
        dz.clear();
        dz.resize(t_len * 4 * hl, 0.0);
        dstate.clear();
        dstate.resize(4 * hl, 0.0);
        let (dh_next, rest) = dstate.split_at_mut(hl);
        let (dc_next, rest) = rest.split_at_mut(hl);
        let (dh, dc) = rest.split_at_mut(hl);
        for t in (0..t_len).rev() {
            let gates = &cache.gates[t * 4 * hl..(t + 1) * 4 * hl];
            let (gi, gf, gg, go) = (
                &gates[..hl],
                &gates[hl..2 * hl],
                &gates[2 * hl..3 * hl],
                &gates[3 * hl..],
            );
            let tanh_c = &cache.tanh_c[t * hl..(t + 1) * hl];
            let c_prev = &cache.c_prev[t * hl..(t + 1) * hl];
            let dz_t = &mut dz[t * 4 * hl..(t + 1) * 4 * hl];
            for k in 0..hl {
                // Total gradient flowing into h_t, then into c_t via
                // h = o * tanh(c).
                dh[k] = dhs[t][k] + dh_next[k];
                dc[k] = dc_next[k] + dh[k] * go[k] * (1.0 - tanh_c[k] * tanh_c[k]);
                let d_o = dh[k] * tanh_c[k];
                let d_i = dc[k] * gg[k];
                let d_f = dc[k] * c_prev[k];
                let d_g = dc[k] * gi[k];
                dz_t[k] = d_i * gi[k] * (1.0 - gi[k]);
                dz_t[hl + k] = d_f * gf[k] * (1.0 - gf[k]);
                dz_t[2 * hl + k] = d_g * (1.0 - gg[k] * gg[k]);
                dz_t[3 * hl + k] = d_o * go[k] * (1.0 - go[k]);
            }
            self.w.value.matvec_transposed_into(dz_t, &mut dxs[t]);
            self.u.value.matvec_transposed_into(dz_t, dh_next);
            for k in 0..hl {
                dc_next[k] = dc[k] * gf[k];
            }
        }
        // Weight gradients as two batched GEMMs over the whole sequence
        // instead of one rank-1 update per timestep.
        self.w.grad.add_tn_product(dz, &cache.x, t_len);
        self.u.grad.add_tn_product(dz, &cache.h_prev, t_len);
        let bg = self.b.grad.data_mut();
        for row in dz.chunks_exact(4 * hl) {
            for (slot, &d) in bg.iter_mut().zip(row) {
                *slot += d;
            }
        }
        dxs
    }

    /// Fills (or reuses) the epoch-persistent projection cache for one
    /// direction: `dir.proj` row `r` becomes `W·x_r + b`, keyed by the
    /// `(W, b)` parameter versions. The bias is folded in here once so
    /// every step of every forward pass starts from a plain row copy
    /// instead of an elementwise add; because the fold computes exactly
    /// the `p + b` sums the per-step loops used to, gate pre-activations
    /// are bitwise unchanged.
    fn fill_proj(&self, pack: &PackedBatch, dir: &mut DirCache, reversed: bool) {
        let gr = 4 * self.hidden_size;
        let key = (self.w.version(), self.b.version());
        if dir.proj_key == Some(key) {
            thrubarrier_obs::counter!("nn.proj_cache.hit").incr();
            return;
        }
        thrubarrier_obs::counter!("nn.proj_cache.miss").incr();
        let total = pack.total_rows();
        dir.proj.clear();
        dir.proj.resize(total * gr, 0.0);
        self.w
            .value
            .matmul_nt_to(pack.x(reversed), total, &mut dir.proj, false);
        let bias = self.b.value.data();
        for row in dir.proj.chunks_exact_mut(gr) {
            for (p, &bv) in row.iter_mut().zip(bias) {
                *p += bv;
            }
        }
        dir.proj_key = Some(key);
    }

    /// Batched *training* forward pass over a packed minibatch (see
    /// [`crate::batch`]). Each step runs the recurrent half as one
    /// `4H×H × H×nb` GEMM over the step's active rows; the input
    /// projections for the *whole batch* come from the epoch-persistent
    /// cache of [`Lstm::fill_proj`]. Hidden states are *added* into
    /// `out[seq][t]` (index-reversed when `reversed`); per-row
    /// activations go through the same [`lstm_cell`] as the sequential
    /// path and are cached in `dir` for [`Lstm::backward_batch_dir`].
    ///
    /// Every row of every step on the wide GEMM path (>= 32 columns) is
    /// bitwise identical to the per-sequence engine: the projection
    /// rows share the per-row fold of [`Matrix::matmul_nt`] and the
    /// recurrent rows share the dot kernel plus single add of
    /// [`Matrix::matvec_add_into`]. (The inference engine,
    /// [`Lstm::infer_batch_dir_flat`], trades this bitwise match for
    /// fused-FMA throughput.)
    pub(crate) fn forward_batch_dir(
        &self,
        pack: &PackedBatch,
        dir: &mut DirCache,
        reversed: bool,
        scratch: &mut GemmScratch,
        out: &mut [Vec<Vec<f32>>],
    ) {
        let hl = self.hidden_size;
        let gr = 4 * hl;
        assert_eq!(pack.width(), self.input_size, "input dimension mismatch");
        let total = pack.total_rows();
        self.fill_proj(pack, dir, reversed);
        dir.h_prev.clear();
        dir.h_prev.resize(total * hl, 0.0);
        dir.c_prev.clear();
        dir.c_prev.resize(total * hl, 0.0);
        dir.gates.clear();
        dir.gates.resize(total * gr, 0.0);
        dir.aux.clear();
        dir.aux.resize(total * hl, 0.0);
        let nb0 = if pack.max_len() == 0 {
            0
        } else {
            pack.active(0)
        };
        let GemmScratch { bh, bc, bz, .. } = scratch;
        bh.clear();
        bh.resize(nb0 * hl, 0.0);
        bc.clear();
        bc.resize(nb0 * hl, 0.0);
        bz.clear();
        bz.resize(nb0 * gr, 0.0);
        for t in 0..pack.max_len() {
            // Active sequences are a shrinking prefix of the sorted
            // batch, so rows 0..nb of bh/bc carry exactly the states of
            // the sequences still running.
            let nb = pack.active(t);
            let off = pack.offset(t);
            dir.h_prev[off * hl..(off + nb) * hl].copy_from_slice(&bh[..nb * hl]);
            dir.c_prev[off * hl..(off + nb) * hl].copy_from_slice(&bc[..nb * hl]);
            bz[..nb * gr].copy_from_slice(&dir.proj[off * gr..(off + nb) * gr]);
            self.u
                .value
                .matmul_nt_to(&bh[..nb * hl], nb, &mut bz[..nb * gr], true);
            for b in 0..nb {
                let r = off + b;
                lstm_cell(
                    &bz[b * gr..(b + 1) * gr],
                    &mut dir.gates[r * gr..(r + 1) * gr],
                    &mut bc[b * hl..(b + 1) * hl],
                    &mut bh[b * hl..(b + 1) * hl],
                    &mut dir.aux[r * hl..(r + 1) * hl],
                );
            }
            for b in 0..nb {
                let pos = if reversed { pack.lens()[b] - 1 - t } else { t };
                let dst = &mut out[pack.order()[b]][pos];
                for (o, &v) in dst.iter_mut().zip(&bh[b * hl..(b + 1) * hl]) {
                    *o += v;
                }
            }
        }
    }

    /// Batched *inference* forward pass writing straight into the flat
    /// packed output buffer `flat` (`total_rows x hidden`, packed-row
    /// order — step `t`'s active rows contiguous at `pack.offset(t)`).
    /// The forward direction stores its step block with one contiguous
    /// copy; the reversed direction runs with `accumulate` and adds
    /// each row at its natural time position. No per-step caches are
    /// recorded, no per-frame vectors are allocated, and the recurrent
    /// GEMM takes [`Matrix::matmul_nt_fused_to`] — halving its
    /// floating-point instruction count at the price of matching the
    /// sequential engine within fused-multiply-add rounding (~1e-6 on
    /// bounded hidden states) instead of bitwise. Results stay
    /// deterministic and bitwise batch-size invariant.
    pub(crate) fn infer_batch_dir_flat(
        &self,
        pack: &PackedBatch,
        dir: &mut DirCache,
        reversed: bool,
        scratch: &mut GemmScratch,
        flat: &mut [f32],
        accumulate: bool,
    ) {
        let hl = self.hidden_size;
        let gr = 4 * hl;
        assert_eq!(pack.width(), self.input_size, "input dimension mismatch");
        assert_eq!(flat.len(), pack.total_rows() * hl, "flat output length");
        self.fill_proj(pack, dir, reversed);
        let nb0 = if pack.max_len() == 0 {
            0
        } else {
            pack.active(0)
        };
        let GemmScratch { bh, bc, bz, .. } = scratch;
        bh.clear();
        bh.resize(nb0 * hl, 0.0);
        bc.clear();
        bc.resize(nb0 * hl, 0.0);
        bz.clear();
        bz.resize(nb0 * gr, 0.0);
        for t in 0..pack.max_len() {
            let nb = pack.active(t);
            let off = pack.offset(t);
            bz[..nb * gr].copy_from_slice(&dir.proj[off * gr..(off + nb) * gr]);
            self.u
                .value
                .matmul_nt_fused_to(&bh[..nb * hl], nb, &mut bz[..nb * gr], true);
            for b in 0..nb {
                let c = &mut bc[b * hl..(b + 1) * hl];
                let h = &mut bh[b * hl..(b + 1) * hl];
                let zrow = &mut bz[b * gr..(b + 1) * gr];
                gates_fused(zrow, hl);
                let (gi, rest) = zrow.split_at(hl);
                let (gf, rest) = rest.split_at(hl);
                let (gg, go) = rest.split_at(hl);
                for k in 0..hl {
                    c[k] = gf[k] * c[k] + gi[k] * gg[k];
                }
                h.copy_from_slice(c);
                tanh_slice(h);
                for k in 0..hl {
                    h[k] *= go[k];
                }
            }
            if !reversed && !accumulate {
                // Step t's rows are exactly the packed rows at its
                // offset: one block copy replaces the per-row scatter.
                flat[off * hl..(off + nb) * hl].copy_from_slice(&bh[..nb * hl]);
            } else {
                for b in 0..nb {
                    let pos = if reversed { pack.lens()[b] - 1 - t } else { t };
                    // Row `b` is active at `pos` too (`pos < lens[b]`),
                    // so it owns packed row `offset(pos) + b`.
                    let row = pack.offset(pos) + b;
                    let src = &bh[b * hl..(b + 1) * hl];
                    let dst = &mut flat[row * hl..(row + 1) * hl];
                    if accumulate {
                        for (o, &v) in dst.iter_mut().zip(src) {
                            *o += v;
                        }
                    } else {
                        dst.copy_from_slice(src);
                    }
                }
            }
        }
    }

    /// Batched BPTT over a packed minibatch. `dhs[i]` is caller
    /// sequence `i`'s flat output gradient, `len_i x H` row-major in
    /// natural time order. Parameter gradients are accumulated into
    /// `self.{w,u,b}.grad` as three GEMMs over all packed rows.
    ///
    /// Unlike [`Lstm::backward_with_scratch`] this does not return
    /// input gradients: the classifier's inputs are data, so skipping
    /// `dX = dZ·W` saves the input-side GEMM entirely.
    pub(crate) fn backward_batch_dir(
        &mut self,
        pack: &PackedBatch,
        dir: &DirCache,
        reversed: bool,
        dhs: &[&[f32]],
        scratch: &mut GemmScratch,
    ) {
        let hl = self.hidden_size;
        let gr = 4 * hl;
        let total = pack.total_rows();
        let nb0 = if pack.max_len() == 0 {
            0
        } else {
            pack.active(0)
        };
        let GemmScratch { dz, bh, bc, .. } = scratch;
        dz.clear();
        dz.resize(total * gr, 0.0);
        // bh/bc hold dh_next/dc_next rows. A sequence joins the reverse
        // traversal at its own final step, where its rows have never
        // been written — the zero boundary condition comes for free.
        bh.clear();
        bh.resize(nb0 * hl, 0.0);
        bc.clear();
        bc.resize(nb0 * hl, 0.0);
        for t in (0..pack.max_len()).rev() {
            let nb = pack.active(t);
            let off = pack.offset(t);
            for b in 0..nb {
                let r = off + b;
                let gates = &dir.gates[r * gr..(r + 1) * gr];
                let (gi, gf, gg, go) = (
                    &gates[..hl],
                    &gates[hl..2 * hl],
                    &gates[2 * hl..3 * hl],
                    &gates[3 * hl..],
                );
                let tanh_c = &dir.aux[r * hl..(r + 1) * hl];
                let c_prev = &dir.c_prev[r * hl..(r + 1) * hl];
                let dz_t = &mut dz[r * gr..(r + 1) * gr];
                let pos = if reversed { pack.lens()[b] - 1 - t } else { t };
                let dh_seq = &dhs[pack.order()[b]][pos * hl..(pos + 1) * hl];
                let dh_next = &bh[b * hl..(b + 1) * hl];
                let dc_next = &mut bc[b * hl..(b + 1) * hl];
                for k in 0..hl {
                    let dh = dh_seq[k] + dh_next[k];
                    let dc = dc_next[k] + dh * go[k] * (1.0 - tanh_c[k] * tanh_c[k]);
                    let d_o = dh * tanh_c[k];
                    let d_i = dc * gg[k];
                    let d_f = dc * c_prev[k];
                    let d_g = dc * gi[k];
                    dz_t[k] = d_i * gi[k] * (1.0 - gi[k]);
                    dz_t[hl + k] = d_f * gf[k] * (1.0 - gf[k]);
                    dz_t[2 * hl + k] = d_g * (1.0 - gg[k] * gg[k]);
                    dz_t[3 * hl + k] = d_o * go[k] * (1.0 - go[k]);
                    dc_next[k] = dc * gf[k];
                }
            }
            // dh_next for step t-1, all active rows in one GEMM.
            self.u
                .value
                .matmul_t_to(&dz[off * gr..(off + nb) * gr], nb, &mut bh[..nb * hl]);
        }
        self.w.grad.add_tn_product(dz, pack.x(reversed), total);
        self.u.grad.add_tn_product(dz, &dir.h_prev, total);
        let bg = self.b.grad.data_mut();
        for row in dz.chunks_exact(gr) {
            for (slot, &d) in bg.iter_mut().zip(row) {
                *slot += d;
            }
        }
    }

    /// The layer's trainable parameters.
    pub fn params_mut(&mut self) -> [&mut Param; 3] {
        [&mut self.w, &mut self.u, &mut self.b]
    }
}

/// Bidirectional LSTM: a forward-direction and a backward-direction LSTM
/// whose hidden states are summed per timestep.
#[derive(Debug, Clone)]
pub struct BiLstm {
    /// Forward-direction layer.
    pub fwd: Lstm,
    /// Backward-direction layer.
    pub bwd: Lstm,
}

/// Forward cache for [`BiLstm`].
#[derive(Debug, Clone)]
pub struct BiLstmCache {
    fwd: LstmCache,
    bwd: LstmCache,
}

impl BiLstm {
    /// Creates a bidirectional LSTM (both directions sized
    /// `input_size -> hidden_size`).
    pub fn new<R: Rng + ?Sized>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        BiLstm {
            fwd: Lstm::new(input_size, hidden_size, rng),
            bwd: Lstm::new(input_size, hidden_size, rng),
        }
    }

    /// Hidden dimension of the summed output.
    pub fn hidden_size(&self) -> usize {
        self.fwd.hidden_size()
    }

    /// Runs both directions and sums their hidden states per timestep.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, BiLstmCache) {
        let mut scratch = GemmScratch::new();
        self.forward_with_scratch(xs, &mut scratch)
    }

    /// [`BiLstm::forward`] streaming through a reusable [`GemmScratch`]
    /// (both directions share it sequentially).
    pub fn forward_with_scratch(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> (Vec<Vec<f32>>, BiLstmCache) {
        let (mut out, cache_f) = self.fwd.forward_dir(xs, false, scratch);
        let (hb, cache_b) = self.bwd.forward_dir(xs, true, scratch);
        let t_len = xs.len();
        for (t, h) in out.iter_mut().enumerate() {
            for (a, b) in h.iter_mut().zip(&hb[t_len - 1 - t]) {
                *a += b;
            }
        }
        (
            out,
            BiLstmCache {
                fwd: cache_f,
                bwd: cache_b,
            },
        )
    }

    /// Summed hidden states without backward-pass caches — the inference
    /// fast path for a trained detector.
    pub fn hidden_states_with_scratch(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<f32>> {
        let mut out = vec![vec![0.0f32; self.hidden_size()]; xs.len()];
        self.fwd.infer_add(xs, false, scratch, &mut out);
        self.bwd.infer_add(xs, true, scratch, &mut out);
        out
    }

    /// Backpropagates through both directions, accumulating parameter
    /// gradients and returning input gradients.
    pub fn backward(&mut self, cache: &BiLstmCache, dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut scratch = GemmScratch::new();
        self.backward_with_scratch(cache, dhs, &mut scratch)
    }

    /// [`BiLstm::backward`] streaming through a reusable [`GemmScratch`].
    pub fn backward_with_scratch(
        &mut self,
        cache: &BiLstmCache,
        dhs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<f32>> {
        let t_len = dhs.len();
        let dx_f = self.fwd.backward_with_scratch(&cache.fwd, dhs, scratch);
        let rev_dhs: Vec<Vec<f32>> = dhs.iter().rev().cloned().collect();
        let dx_b = self
            .bwd
            .backward_with_scratch(&cache.bwd, &rev_dhs, scratch);
        let mut dxs = dx_f;
        for t in 0..t_len {
            for (a, b) in dxs[t].iter_mut().zip(&dx_b[t_len - 1 - t]) {
                *a += b;
            }
        }
        dxs
    }

    /// Batched training forward over a minibatch of sequences: packs
    /// (or re-uses the packed layout of) the batch into `ws`, runs both
    /// directions through the GEMM engine and returns the summed hidden
    /// states per sequence in *caller order*. The forward-pass caches
    /// for [`BiLstm::backward_batch`] live in `ws`.
    ///
    /// A workspace is tied to one model: its projection caches are
    /// keyed by this layer's weight versions.
    pub fn forward_batch(
        &self,
        seqs: &[&[Vec<f32>]],
        ws: &mut BatchWorkspace,
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<Vec<f32>>> {
        ws.prepare(seqs, self.fwd.input_size());
        let mut out: Vec<Vec<Vec<f32>>> = seqs
            .iter()
            .map(|s| vec![vec![0.0f32; self.hidden_size()]; s.len()])
            .collect();
        let BatchWorkspace { pack, fwd, bwd, .. } = ws;
        self.fwd
            .forward_batch_dir(pack, fwd, false, scratch, &mut out);
        self.bwd
            .forward_batch_dir(pack, bwd, true, scratch, &mut out);
        out
    }

    /// Batched inference into the workspace's flat packed buffer
    /// (`ws.flat`, `total_rows x hidden`, packed-row order): the
    /// forward direction writes, the reversed direction accumulates,
    /// and no per-frame vectors are allocated anywhere. This is the
    /// engine under [`BiLstm::hidden_states_batch`] and the batched
    /// classifier head, which runs one flat GEMM straight over the
    /// buffer. The recurrent GEMMs run on the fused-FMA kernel of
    /// [`crate::matrix::Matrix::matmul_nt_fused_to`], so outputs match
    /// the per-sequence engine within rounding rather than bitwise
    /// (the training path, [`BiLstm::forward_batch`], stays bitwise).
    pub(crate) fn hidden_states_batch_flat(
        &self,
        seqs: &[&[Vec<f32>]],
        ws: &mut BatchWorkspace,
        scratch: &mut GemmScratch,
    ) {
        ws.prepare(seqs, self.fwd.input_size());
        let BatchWorkspace {
            pack,
            fwd,
            bwd,
            flat,
        } = ws;
        let hl = self.hidden_size();
        flat.clear();
        flat.resize(pack.total_rows() * hl, 0.0);
        self.fwd
            .infer_batch_dir_flat(pack, fwd, false, scratch, flat, false);
        self.bwd
            .infer_batch_dir_flat(pack, bwd, true, scratch, flat, true);
    }

    /// Batched inference: summed hidden states per sequence in caller
    /// order, without recording backward-pass caches. A re-nesting
    /// wrapper around [`BiLstm::hidden_states_batch_flat`] — see there
    /// for the numerics (fused recurrent GEMMs, within-rounding match
    /// to the sequential engine).
    pub fn hidden_states_batch(
        &self,
        seqs: &[&[Vec<f32>]],
        ws: &mut BatchWorkspace,
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<Vec<f32>>> {
        self.hidden_states_batch_flat(seqs, ws, scratch);
        let hl = self.hidden_size();
        let pack = &ws.pack;
        let mut out: Vec<Vec<Vec<f32>>> =
            seqs.iter().map(|s| Vec::with_capacity(s.len())).collect();
        for (b, (&i, &len)) in pack.order().iter().zip(pack.lens()).enumerate() {
            out[i].extend((0..len).map(|t| {
                let row = pack.offset(t) + b;
                ws.flat[row * hl..(row + 1) * hl].to_vec()
            }));
        }
        out
    }

    /// Batched BPTT through both directions. `dhs[i]` is caller
    /// sequence `i`'s flat output gradient (`len_i x H` row-major).
    /// Must follow a [`BiLstm::forward_batch`] on the same workspace.
    /// Accumulates parameter gradients only (no input gradients — see
    /// [`Lstm::backward_batch_dir`]).
    pub fn backward_batch(
        &mut self,
        ws: &BatchWorkspace,
        dhs: &[&[f32]],
        scratch: &mut GemmScratch,
    ) {
        self.fwd
            .backward_batch_dir(&ws.pack, &ws.fwd, false, dhs, scratch);
        self.bwd
            .backward_batch_dir(&ws.pack, &ws.bwd, true, dhs, scratch);
    }

    /// All trainable parameters of both directions.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let (f, b) = (&mut self.fwd, &mut self.bwd);
        vec![&mut f.w, &mut f.u, &mut f.b, &mut b.w, &mut b.u, &mut b.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_inputs(t_len: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..t_len)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn forward_output_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(3, 5, &mut rng);
        let xs = toy_inputs(7, 3, 2);
        let (hs, _) = lstm.forward(&xs);
        assert_eq!(hs.len(), 7);
        assert!(hs.iter().all(|h| h.len() == 5));
    }

    #[test]
    fn hidden_states_are_bounded_by_one() {
        // h = o * tanh(c), both factors in (-1, 1).
        let mut rng = StdRng::seed_from_u64(3);
        let lstm = Lstm::new(4, 8, &mut rng);
        let xs = toy_inputs(20, 4, 4);
        let (hs, _) = lstm.forward(&xs);
        for h in &hs {
            for &v in h {
                assert!(v.abs() < 1.0);
            }
        }
    }

    #[test]
    fn empty_sequence_is_ok() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lstm = Lstm::new(3, 5, &mut rng);
        let (hs, cache) = lstm.forward(&[]);
        assert!(hs.is_empty());
        let dxs = lstm.backward(&cache, &[]);
        assert!(dxs.is_empty());
        let mut scratch = GemmScratch::new();
        assert!(lstm
            .hidden_states_with_scratch(&[], &mut scratch)
            .is_empty());
    }

    #[test]
    fn inference_path_matches_training_forward() {
        // The cache-free inference traversal must be bitwise identical
        // to the training forward pass (same kernels, same order).
        let mut rng = StdRng::seed_from_u64(15);
        let lstm = Lstm::new(4, 6, &mut rng);
        let xs = toy_inputs(11, 4, 16);
        let (hs, _) = lstm.forward(&xs);
        let mut scratch = GemmScratch::new();
        let inferred = lstm.hidden_states_with_scratch(&xs, &mut scratch);
        assert_eq!(hs, inferred);
    }

    #[test]
    fn scratch_is_reusable_across_shapes() {
        // One scratch serves layers of different sizes back to back.
        let mut rng = StdRng::seed_from_u64(17);
        let small = Lstm::new(2, 3, &mut rng);
        let large = Lstm::new(5, 8, &mut rng);
        let mut scratch = GemmScratch::new();
        let (a1, _) = small.forward_with_scratch(&toy_inputs(4, 2, 18), &mut scratch);
        let (b1, _) = large.forward_with_scratch(&toy_inputs(9, 5, 19), &mut scratch);
        let (a2, _) = small.forward(&toy_inputs(4, 2, 18));
        let (b2, _) = large.forward(&toy_inputs(9, 5, 19));
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn from_gate_weights_stacks_fused_layout() {
        let mut rng = StdRng::seed_from_u64(23);
        let reference = Lstm::new(3, 2, &mut rng);
        let slice_gate = |m: &Matrix, g: usize| {
            let h = 2;
            let rows: Vec<&[f32]> = (g * h..(g + 1) * h).map(|r| m.row(r)).collect();
            Matrix::from_rows(&rows)
        };
        let w = std::array::from_fn(|g| slice_gate(&reference.w.value, g));
        let u = std::array::from_fn(|g| slice_gate(&reference.u.value, g));
        let b = std::array::from_fn(|g| slice_gate(&reference.b.value, g));
        let rebuilt = Lstm::from_gate_weights(w, u, b).unwrap();
        assert_eq!(rebuilt.w.value, reference.w.value);
        assert_eq!(rebuilt.u.value, reference.u.value);
        assert_eq!(rebuilt.b.value, reference.b.value);
        let xs = toy_inputs(5, 3, 24);
        assert_eq!(rebuilt.forward(&xs).0, reference.forward(&xs).0);
    }

    /// Finite-difference gradient check for the unidirectional LSTM.
    #[test]
    fn lstm_gradients_match_finite_differences() {
        let (d, h, t_len) = (3usize, 4usize, 5usize);
        let mut rng = StdRng::seed_from_u64(42);
        let mut lstm = Lstm::new(d, h, &mut rng);
        let xs = toy_inputs(t_len, d, 43);
        // Loss = sum of all hidden activations (gradient of 1 everywhere).
        let loss = |l: &Lstm| -> f32 {
            let (hs, _) = l.forward(&xs);
            hs.iter().flatten().sum()
        };
        let (_, cache) = lstm.forward(&xs);
        let dhs = vec![vec![1.0f32; h]; t_len];
        let dxs = lstm.backward(&cache, &dhs);

        let eps = 1e-3f32;
        // Check a sample of weight entries in each parameter.
        for (pname, pidx) in [("w", 0usize), ("u", 1), ("b", 2)] {
            for k in [0usize, 1, 5] {
                let mut l2 = lstm.clone();
                let analytic = {
                    let p = match pidx {
                        0 => &lstm.w,
                        1 => &lstm.u,
                        _ => &lstm.b,
                    };
                    if k >= p.grad.data().len() {
                        continue;
                    }
                    p.grad.data()[k]
                };
                {
                    let p = match pidx {
                        0 => &mut l2.w,
                        1 => &mut l2.u,
                        _ => &mut l2.b,
                    };
                    p.value.data_mut()[k] += eps;
                }
                let up = loss(&l2);
                {
                    let p = match pidx {
                        0 => &mut l2.w,
                        1 => &mut l2.u,
                        _ => &mut l2.b,
                    };
                    p.value.data_mut()[k] -= 2.0 * eps;
                }
                let down = loss(&l2);
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 2e-2 * analytic.abs().max(1.0),
                    "{pname}[{k}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
        // Check input gradients.
        for t in [0usize, 2, 4] {
            for j in 0..d {
                let mut xs2 = xs.clone();
                xs2[t][j] += eps;
                let up: f32 = lstm.forward(&xs2).0.iter().flatten().sum();
                xs2[t][j] -= 2.0 * eps;
                let down: f32 = lstm.forward(&xs2).0.iter().flatten().sum();
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (dxs[t][j] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                    "dx[{t}][{j}]: analytic {} vs numeric {numeric}",
                    dxs[t][j]
                );
            }
        }
    }

    #[test]
    fn bilstm_output_is_sum_of_directions() {
        let mut rng = StdRng::seed_from_u64(9);
        let bi = BiLstm::new(3, 4, &mut rng);
        let xs = toy_inputs(6, 3, 10);
        let (out, _) = bi.forward(&xs);
        let (hf, _) = bi.fwd.forward(&xs);
        let rev: Vec<Vec<f32>> = xs.iter().rev().cloned().collect();
        let (hb, _) = bi.bwd.forward(&rev);
        for t in 0..6 {
            for k in 0..4 {
                assert!((out[t][k] - (hf[t][k] + hb[5 - t][k])).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bilstm_inference_matches_training_forward() {
        let mut rng = StdRng::seed_from_u64(13);
        let bi = BiLstm::new(3, 4, &mut rng);
        let xs = toy_inputs(6, 3, 14);
        let (out, _) = bi.forward(&xs);
        let mut scratch = GemmScratch::new();
        let inferred = bi.hidden_states_with_scratch(&xs, &mut scratch);
        for (a, b) in out.iter().zip(&inferred) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bilstm_sees_future_context() {
        // Construct two sequences identical up to t=2 but differing later;
        // a bidirectional network's early outputs must differ, a forward
        // LSTM's must not.
        let mut rng = StdRng::seed_from_u64(21);
        let bi = BiLstm::new(2, 4, &mut rng);
        let a = vec![vec![0.1, 0.2]; 6];
        let mut b = a.clone();
        b[5] = vec![0.9, -0.9];
        let (ha, _) = bi.forward(&a);
        let (hb, _) = bi.forward(&b);
        let d0: f32 = ha[0].iter().zip(&hb[0]).map(|(x, y)| (x - y).abs()).sum();
        assert!(d0 > 1e-4, "bidirectional output at t=0 ignored the future");
        let (fa, _) = bi.fwd.forward(&a);
        let (fb, _) = bi.fwd.forward(&b);
        let df: f32 = fa[0].iter().zip(&fb[0]).map(|(x, y)| (x - y).abs()).sum();
        assert!(df < 1e-7, "forward LSTM at t=0 cannot depend on the future");
    }

    #[test]
    fn batched_forward_matches_sequential_at_wide_hidden_sizes() {
        // H = 33 stays on the wide GEMM path (>= 32 recurrent columns)
        // while exercising the dot kernel's tail passes; mixed lengths
        // exercise the shrinking active prefix. The train path shares
        // the sequential engine's kernels and must match bitwise; the
        // inference path runs the fused recurrent GEMM and is only
        // required to agree within fused-multiply-add rounding.
        let mut rng = StdRng::seed_from_u64(31);
        let bi = BiLstm::new(3, 33, &mut rng);
        let seqs: Vec<Vec<Vec<f32>>> = [5usize, 2, 7, 1]
            .iter()
            .enumerate()
            .map(|(i, &len)| toy_inputs(len, 3, 100 + i as u64))
            .collect();
        let refs: Vec<&[Vec<f32>]> = seqs.iter().map(|s| s.as_slice()).collect();
        let mut ws = BatchWorkspace::new();
        let mut scratch = GemmScratch::new();
        let batched = bi.forward_batch(&refs, &mut ws, &mut scratch);
        let inferred = bi.hidden_states_batch(&refs, &mut ws, &mut scratch);
        for (i, seq) in seqs.iter().enumerate() {
            let (sequential, _) = bi.forward_with_scratch(seq, &mut scratch);
            assert_eq!(batched[i], sequential, "seq {i} (train path)");
            for (t, (a, b)) in inferred[i].iter().zip(&sequential).enumerate() {
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-5, "seq {i} t {t}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn batched_backward_matches_sequential_gradients() {
        let (d, h) = (3usize, 4usize);
        let mut rng = StdRng::seed_from_u64(33);
        let bi = BiLstm::new(d, h, &mut rng);
        let seqs: Vec<Vec<Vec<f32>>> = [4usize, 6, 2]
            .iter()
            .enumerate()
            .map(|(i, &len)| toy_inputs(len, d, 200 + i as u64))
            .collect();
        let refs: Vec<&[Vec<f32>]> = seqs.iter().map(|s| s.as_slice()).collect();
        let mut scratch = GemmScratch::new();

        // Sequential reference: accumulate gradients over all sequences
        // with dL/dh = 1 everywhere.
        let mut seq_model = bi.clone();
        for seq in &seqs {
            let (_, cache) = seq_model.forward_with_scratch(seq, &mut scratch);
            let dhs = vec![vec![1.0f32; h]; seq.len()];
            seq_model.backward_with_scratch(&cache, &dhs, &mut scratch);
        }

        let mut bat_model = bi.clone();
        let mut ws = BatchWorkspace::new();
        bat_model.forward_batch(&refs, &mut ws, &mut scratch);
        let flat: Vec<Vec<f32>> = seqs.iter().map(|s| vec![1.0f32; s.len() * h]).collect();
        let dhs: Vec<&[f32]> = flat.iter().map(|v| v.as_slice()).collect();
        bat_model.backward_batch(&ws, &dhs, &mut scratch);

        for (ps, pb) in [
            (&seq_model.fwd.w, &bat_model.fwd.w),
            (&seq_model.fwd.u, &bat_model.fwd.u),
            (&seq_model.fwd.b, &bat_model.fwd.b),
            (&seq_model.bwd.w, &bat_model.bwd.w),
            (&seq_model.bwd.u, &bat_model.bwd.u),
            (&seq_model.bwd.b, &bat_model.bwd.b),
        ] {
            for (a, b) in ps.grad.data().iter().zip(pb.grad.data()) {
                assert!((a - b).abs() < 1e-4 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn projection_cache_reuses_until_weights_step() {
        let mut rng = StdRng::seed_from_u64(35);
        let bi = BiLstm::new(2, 3, &mut rng);
        let seqs: Vec<Vec<Vec<f32>>> = vec![toy_inputs(3, 2, 300), toy_inputs(5, 2, 301)];
        let refs: Vec<&[Vec<f32>]> = seqs.iter().map(|s| s.as_slice()).collect();
        let mut ws = BatchWorkspace::new();
        let mut scratch = GemmScratch::new();
        let first = bi.forward_batch(&refs, &mut ws, &mut scratch);
        let key = ws.fwd.proj_key;
        assert_eq!(key, Some((bi.fwd.w.version(), bi.fwd.b.version())));
        // Same batch, same weights: projections survive and outputs repeat.
        let second = bi.forward_batch(&refs, &mut ws, &mut scratch);
        assert_eq!(ws.fwd.proj_key, key);
        assert_eq!(first, second);
        // A weight step invalidates the cache and changes the outputs.
        let mut stepped = bi.clone();
        stepped.fwd.w.grad.set(0, 0, 1.0);
        stepped
            .fwd
            .w
            .adam_step(&crate::param::AdamConfig::default(), 1);
        let third = stepped.forward_batch(&refs, &mut ws, &mut scratch);
        assert_eq!(
            ws.fwd.proj_key,
            Some((stepped.fwd.w.version(), stepped.fwd.b.version()))
        );
        assert_ne!(ws.fwd.proj_key, key);
        assert_ne!(first, third);
    }

    #[test]
    fn batched_paths_handle_empty_batches_and_sequences() {
        let mut rng = StdRng::seed_from_u64(37);
        let mut bi = BiLstm::new(2, 3, &mut rng);
        let mut ws = BatchWorkspace::new();
        let mut scratch = GemmScratch::new();
        let refs: Vec<&[Vec<f32>]> = vec![];
        assert!(bi.forward_batch(&refs, &mut ws, &mut scratch).is_empty());
        bi.backward_batch(&ws, &[], &mut scratch);
        let empty: Vec<Vec<f32>> = vec![];
        let one = toy_inputs(2, 2, 400);
        let refs: Vec<&[Vec<f32>]> = vec![&empty, &one];
        let out = bi.forward_batch(&refs, &mut ws, &mut scratch);
        assert!(out[0].is_empty());
        assert_eq!(out[1].len(), 2);
    }

    #[test]
    fn bilstm_gradcheck_on_inputs() {
        let (d, h, t_len) = (2usize, 3usize, 4usize);
        let mut rng = StdRng::seed_from_u64(77);
        let mut bi = BiLstm::new(d, h, &mut rng);
        let xs = toy_inputs(t_len, d, 78);
        let (_, cache) = bi.forward(&xs);
        let dhs = vec![vec![1.0f32; h]; t_len];
        let dxs = bi.backward(&cache, &dhs);
        let eps = 1e-3f32;
        for t in 0..t_len {
            for j in 0..d {
                let mut xs2 = xs.clone();
                xs2[t][j] += eps;
                let up: f32 = bi.forward(&xs2).0.iter().flatten().sum();
                xs2[t][j] -= 2.0 * eps;
                let down: f32 = bi.forward(&xs2).0.iter().flatten().sum();
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (dxs[t][j] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                    "dx[{t}][{j}]"
                );
            }
        }
    }
}
