//! LSTM and bidirectional LSTM layers with backpropagation through time.
//!
//! Gate layout follows the common stacked convention `[i, f, g, o]`
//! (input, forget, cell-candidate, output). The bidirectional wrapper
//! *sums* the forward and backward hidden states, matching the paper's
//! `h_t = h→_t + h←_t` (Sec. V-B, Eq. 4).
//!
//! # Fused-gate compute engine
//!
//! The four per-gate weight matrices live concatenated in single fused
//! `4H x I` (input) and `4H x H` (recurrent) row-major matrices, so one
//! blocked product serves all gates. Per sequence the engine does:
//!
//! 1. **Time-batched input projections** — `W·x_t` for *all* timesteps
//!    in one [`Matrix::matmul_nt`] GEMM before the recurrence starts;
//!    the sequential loop then only adds the `U·h_{t-1}` half per step
//!    ([`Matrix::matvec_add_into`], no temporaries).
//! 2. **Flat activation caches** — the backward pass reads gate
//!    activations and pre-states from contiguous `T x 4H` / `T x H`
//!    buffers instead of one heap allocation per step.
//! 3. **Batched weight gradients** — BPTT accumulates all per-step gate
//!    gradients into one `T x 4H` buffer and applies `dW += dZᵀ·X` /
//!    `dU += dZᵀ·H_prev` as single [`Matrix::add_tn_product`] GEMMs.
//!
//! All entry points have `*_with_scratch` variants that stream through a
//! caller-provided [`GemmScratch`]; the plain variants allocate a fresh
//! scratch per call. Inference-only traversal ([`BiLstm::hidden_states_with_scratch`])
//! skips the activation caches entirely.

use crate::act::{sigmoid_slice, tanh_slice};
use crate::matrix::{pack_rows, GemmScratch, Matrix};
use crate::param::Param;
use rand::Rng;

/// A single-direction LSTM layer.
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input weights, fused `4H x D` (`[i, f, g, o]` gate blocks stacked).
    pub w: Param,
    /// Recurrent weights, fused `4H x H`.
    pub u: Param,
    /// Bias, fused `4H x 1`.
    pub b: Param,
    input_size: usize,
    hidden_size: usize,
}

/// Forward-pass activations for a whole sequence, stored as flat
/// row-major buffers (`T` rows each) — what [`Lstm::backward`] replays.
#[derive(Debug, Clone)]
pub struct LstmCache {
    t: usize,
    /// Packed inputs, `T x D` (in processing order; reversed for the
    /// backward direction of a [`BiLstm`]).
    x: Vec<f32>,
    /// Hidden state entering each step, `T x H`.
    h_prev: Vec<f32>,
    /// Cell state entering each step, `T x H`.
    c_prev: Vec<f32>,
    /// Activated gates `[i, f, g, o]` per step, `T x 4H`.
    gates: Vec<f32>,
    /// `tanh(c_t)` per step, `T x H`.
    tanh_c: Vec<f32>,
}

/// Applies one LSTM cell update. `z` holds the fused pre-activations,
/// `gates` receives the activated `[i, f, g, o]` blocks, and `c`/`h` are
/// updated in place (their pre-step values must already be stashed).
/// The activations run block-wise through the slice kernels in
/// [`crate::act`], which are SIMD on capable machines (the cell is
/// otherwise bound by the rational kernel's division throughput); the
/// remaining state arithmetic is plain element-wise code the compiler
/// vectorizes on its own.
#[inline]
fn lstm_cell(z: &[f32], gates: &mut [f32], c: &mut [f32], h: &mut [f32], tanh_c: &mut [f32]) {
    let hl = h.len();
    gates.copy_from_slice(z);
    sigmoid_slice(&mut gates[..2 * hl]);
    tanh_slice(&mut gates[2 * hl..3 * hl]);
    sigmoid_slice(&mut gates[3 * hl..]);
    let (gi, rest) = gates.split_at(hl);
    let (gf, rest) = rest.split_at(hl);
    let (gg, go) = rest.split_at(hl);
    for k in 0..hl {
        c[k] = gf[k] * c[k] + gi[k] * gg[k];
    }
    tanh_c.copy_from_slice(c);
    tanh_slice(tanh_c);
    for k in 0..hl {
        h[k] = go[k] * tanh_c[k];
    }
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights. The forget-gate
    /// bias is initialized to `1.0` (standard practice to ease gradient
    /// flow early in training).
    pub fn new<R: Rng + ?Sized>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        let w = Matrix::xavier(4 * hidden_size, input_size, rng);
        let u = Matrix::xavier(4 * hidden_size, hidden_size, rng);
        let mut b = Matrix::zeros(4 * hidden_size, 1);
        for h in 0..hidden_size {
            b.set(hidden_size + h, 0, 1.0); // forget gate bias
        }
        Lstm {
            w: Param::new(w),
            u: Param::new(u),
            b: Param::new(b),
            input_size,
            hidden_size,
        }
    }

    /// Reconstructs an LSTM from explicit fused weight matrices (e.g.
    /// loaded from disk).
    ///
    /// # Errors
    ///
    /// Returns a message when the shapes are inconsistent.
    pub fn from_weights(w: Matrix, u: Matrix, b: Matrix) -> Result<Self, String> {
        let four_h = w.rows();
        if four_h == 0 || !four_h.is_multiple_of(4) {
            return Err(format!("gate dimension {four_h} is not 4*H"));
        }
        let hidden_size = four_h / 4;
        let input_size = w.cols();
        if u.rows() != four_h || u.cols() != hidden_size {
            return Err(format!(
                "recurrent weights {}x{} do not match hidden size {hidden_size}",
                u.rows(),
                u.cols()
            ));
        }
        if b.rows() != four_h || b.cols() != 1 {
            return Err(format!("bias {}x{} does not match", b.rows(), b.cols()));
        }
        Ok(Lstm {
            w: Param::new(w),
            u: Param::new(u),
            b: Param::new(b),
            input_size,
            hidden_size,
        })
    }

    /// Assembles an LSTM from *per-gate* weight blocks in `[i, f, g, o]`
    /// order — the legacy four-matrix layout. Each `w[g]` is `H x D`,
    /// each `u[g]` is `H x H`, each `b[g]` is `H x 1`; they are stacked
    /// into the fused `4H x *` matrices this engine computes with.
    ///
    /// # Errors
    ///
    /// Returns a message when the stacked shapes are inconsistent.
    pub fn from_gate_weights(
        w: [Matrix; 4],
        u: [Matrix; 4],
        b: [Matrix; 4],
    ) -> Result<Self, String> {
        let fused_w = Matrix::vstack(&[&w[0], &w[1], &w[2], &w[3]]);
        let fused_u = Matrix::vstack(&[&u[0], &u[1], &u[2], &u[3]]);
        let fused_b = Matrix::vstack(&[&b[0], &b[1], &b[2], &b[3]]);
        Lstm::from_weights(fused_w, fused_u, fused_b)
    }

    /// Input dimension.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden dimension.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Runs the layer over a sequence, returning hidden states for every
    /// timestep and the cache needed by [`Lstm::backward`].
    ///
    /// # Panics
    ///
    /// Panics if any input vector's length differs from the configured
    /// input size.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, LstmCache) {
        let mut scratch = GemmScratch::new();
        self.forward_with_scratch(xs, &mut scratch)
    }

    /// [`Lstm::forward`] streaming through a reusable [`GemmScratch`].
    pub fn forward_with_scratch(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> (Vec<Vec<f32>>, LstmCache) {
        self.forward_dir(xs, false, scratch)
    }

    /// Direction-aware forward pass: with `reversed` the sequence is
    /// consumed (and cached) in reverse time order without cloning it.
    pub(crate) fn forward_dir(
        &self,
        xs: &[Vec<f32>],
        reversed: bool,
        scratch: &mut GemmScratch,
    ) -> (Vec<Vec<f32>>, LstmCache) {
        let t_len = xs.len();
        let hl = self.hidden_size;
        let mut cache = LstmCache {
            t: t_len,
            x: Vec::new(),
            h_prev: vec![0.0; t_len * hl],
            c_prev: vec![0.0; t_len * hl],
            gates: vec![0.0; t_len * 4 * hl],
            tanh_c: vec![0.0; t_len * hl],
        };
        pack_rows(xs, self.input_size, reversed, &mut cache.x);
        // One GEMM for every timestep's input projection; the loop below
        // only does the recurrent half.
        self.w
            .value
            .matmul_nt_into(&cache.x, t_len, &mut scratch.proj);
        scratch.z.clear();
        scratch.z.resize(4 * hl, 0.0);
        scratch.state.clear();
        scratch.state.resize(2 * hl, 0.0);
        let (h, c) = scratch.state.split_at_mut(hl);
        let bias = self.b.value.data();
        let mut outputs = Vec::with_capacity(t_len);
        for t in 0..t_len {
            cache.h_prev[t * hl..(t + 1) * hl].copy_from_slice(h);
            cache.c_prev[t * hl..(t + 1) * hl].copy_from_slice(c);
            for ((z, &p), &bv) in scratch
                .z
                .iter_mut()
                .zip(&scratch.proj[t * 4 * hl..(t + 1) * 4 * hl])
                .zip(bias)
            {
                *z = p + bv;
            }
            self.u.value.matvec_add_into(h, &mut scratch.z);
            lstm_cell(
                &scratch.z,
                &mut cache.gates[t * 4 * hl..(t + 1) * 4 * hl],
                c,
                h,
                &mut cache.tanh_c[t * hl..(t + 1) * hl],
            );
            outputs.push(h.to_vec());
        }
        (outputs, cache)
    }

    /// Inference-only traversal: runs the recurrence and *adds* each
    /// hidden state into `out` (index-reversed when `reversed`), without
    /// recording any backward-pass state. `out` must hold `xs.len()`
    /// vectors of `hidden_size` values.
    pub(crate) fn infer_add(
        &self,
        xs: &[Vec<f32>],
        reversed: bool,
        scratch: &mut GemmScratch,
        out: &mut [Vec<f32>],
    ) {
        let t_len = xs.len();
        assert_eq!(out.len(), t_len, "output length mismatch");
        let hl = self.hidden_size;
        pack_rows(xs, self.input_size, reversed, &mut scratch.x_flat);
        self.w
            .value
            .matmul_nt_into(&scratch.x_flat, t_len, &mut scratch.proj);
        scratch.z.clear();
        scratch.z.resize(4 * hl, 0.0);
        scratch.state.clear();
        scratch.state.resize(2 * hl, 0.0);
        let (h, c) = scratch.state.split_at_mut(hl);
        let bias = self.b.value.data();
        for t in 0..t_len {
            for ((z, &p), &bv) in scratch
                .z
                .iter_mut()
                .zip(&scratch.proj[t * 4 * hl..(t + 1) * 4 * hl])
                .zip(bias)
            {
                *z = p + bv;
            }
            self.u.value.matvec_add_into(h, &mut scratch.z);
            // Activate in place — no backward pass, so nothing is cached.
            sigmoid_slice(&mut scratch.z[..2 * hl]);
            tanh_slice(&mut scratch.z[2 * hl..3 * hl]);
            sigmoid_slice(&mut scratch.z[3 * hl..]);
            let (gi, rest) = scratch.z.split_at(hl);
            let (gf, rest) = rest.split_at(hl);
            let (gg, go) = rest.split_at(hl);
            for k in 0..hl {
                c[k] = gf[k] * c[k] + gi[k] * gg[k];
            }
            h.copy_from_slice(c);
            tanh_slice(h);
            for k in 0..hl {
                h[k] *= go[k];
            }
            let slot = if reversed { t_len - 1 - t } else { t };
            for (o, &v) in out[slot].iter_mut().zip(h.iter()) {
                *o += v;
            }
        }
    }

    /// Hidden states only (no backward-pass cache) — the inference fast
    /// path used when gradients are not needed.
    pub fn hidden_states_with_scratch(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<f32>> {
        let mut out = vec![vec![0.0f32; self.hidden_size]; xs.len()];
        self.infer_add(xs, false, scratch, &mut out);
        out
    }

    /// Backpropagates through time. `dhs` holds the loss gradient with
    /// respect to each output hidden state. Parameter gradients are
    /// *accumulated* into `self.{w,u,b}.grad`; the gradient with respect
    /// to each input vector is returned.
    ///
    /// # Panics
    ///
    /// Panics if `dhs.len()` differs from the cached sequence length.
    pub fn backward(&mut self, cache: &LstmCache, dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut scratch = GemmScratch::new();
        self.backward_with_scratch(cache, dhs, &mut scratch)
    }

    /// [`Lstm::backward`] streaming through a reusable [`GemmScratch`].
    pub fn backward_with_scratch(
        &mut self,
        cache: &LstmCache,
        dhs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<f32>> {
        assert_eq!(dhs.len(), cache.t, "gradient length mismatch");
        let hl = self.hidden_size;
        let t_len = cache.t;
        let mut dxs = vec![vec![0.0f32; self.input_size]; t_len];
        let GemmScratch { dz, dstate, .. } = scratch;
        dz.clear();
        dz.resize(t_len * 4 * hl, 0.0);
        dstate.clear();
        dstate.resize(4 * hl, 0.0);
        let (dh_next, rest) = dstate.split_at_mut(hl);
        let (dc_next, rest) = rest.split_at_mut(hl);
        let (dh, dc) = rest.split_at_mut(hl);
        for t in (0..t_len).rev() {
            let gates = &cache.gates[t * 4 * hl..(t + 1) * 4 * hl];
            let (gi, gf, gg, go) = (
                &gates[..hl],
                &gates[hl..2 * hl],
                &gates[2 * hl..3 * hl],
                &gates[3 * hl..],
            );
            let tanh_c = &cache.tanh_c[t * hl..(t + 1) * hl];
            let c_prev = &cache.c_prev[t * hl..(t + 1) * hl];
            let dz_t = &mut dz[t * 4 * hl..(t + 1) * 4 * hl];
            for k in 0..hl {
                // Total gradient flowing into h_t, then into c_t via
                // h = o * tanh(c).
                dh[k] = dhs[t][k] + dh_next[k];
                dc[k] = dc_next[k] + dh[k] * go[k] * (1.0 - tanh_c[k] * tanh_c[k]);
                let d_o = dh[k] * tanh_c[k];
                let d_i = dc[k] * gg[k];
                let d_f = dc[k] * c_prev[k];
                let d_g = dc[k] * gi[k];
                dz_t[k] = d_i * gi[k] * (1.0 - gi[k]);
                dz_t[hl + k] = d_f * gf[k] * (1.0 - gf[k]);
                dz_t[2 * hl + k] = d_g * (1.0 - gg[k] * gg[k]);
                dz_t[3 * hl + k] = d_o * go[k] * (1.0 - go[k]);
            }
            self.w.value.matvec_transposed_into(dz_t, &mut dxs[t]);
            self.u.value.matvec_transposed_into(dz_t, dh_next);
            for k in 0..hl {
                dc_next[k] = dc[k] * gf[k];
            }
        }
        // Weight gradients as two batched GEMMs over the whole sequence
        // instead of one rank-1 update per timestep.
        self.w.grad.add_tn_product(dz, &cache.x, t_len);
        self.u.grad.add_tn_product(dz, &cache.h_prev, t_len);
        let bg = self.b.grad.data_mut();
        for row in dz.chunks_exact(4 * hl) {
            for (slot, &d) in bg.iter_mut().zip(row) {
                *slot += d;
            }
        }
        dxs
    }

    /// The layer's trainable parameters.
    pub fn params_mut(&mut self) -> [&mut Param; 3] {
        [&mut self.w, &mut self.u, &mut self.b]
    }
}

/// Bidirectional LSTM: a forward-direction and a backward-direction LSTM
/// whose hidden states are summed per timestep.
#[derive(Debug, Clone)]
pub struct BiLstm {
    /// Forward-direction layer.
    pub fwd: Lstm,
    /// Backward-direction layer.
    pub bwd: Lstm,
}

/// Forward cache for [`BiLstm`].
#[derive(Debug, Clone)]
pub struct BiLstmCache {
    fwd: LstmCache,
    bwd: LstmCache,
}

impl BiLstm {
    /// Creates a bidirectional LSTM (both directions sized
    /// `input_size -> hidden_size`).
    pub fn new<R: Rng + ?Sized>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        BiLstm {
            fwd: Lstm::new(input_size, hidden_size, rng),
            bwd: Lstm::new(input_size, hidden_size, rng),
        }
    }

    /// Hidden dimension of the summed output.
    pub fn hidden_size(&self) -> usize {
        self.fwd.hidden_size()
    }

    /// Runs both directions and sums their hidden states per timestep.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, BiLstmCache) {
        let mut scratch = GemmScratch::new();
        self.forward_with_scratch(xs, &mut scratch)
    }

    /// [`BiLstm::forward`] streaming through a reusable [`GemmScratch`]
    /// (both directions share it sequentially).
    pub fn forward_with_scratch(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> (Vec<Vec<f32>>, BiLstmCache) {
        let (mut out, cache_f) = self.fwd.forward_dir(xs, false, scratch);
        let (hb, cache_b) = self.bwd.forward_dir(xs, true, scratch);
        let t_len = xs.len();
        for (t, h) in out.iter_mut().enumerate() {
            for (a, b) in h.iter_mut().zip(&hb[t_len - 1 - t]) {
                *a += b;
            }
        }
        (
            out,
            BiLstmCache {
                fwd: cache_f,
                bwd: cache_b,
            },
        )
    }

    /// Summed hidden states without backward-pass caches — the inference
    /// fast path for a trained detector.
    pub fn hidden_states_with_scratch(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<f32>> {
        let mut out = vec![vec![0.0f32; self.hidden_size()]; xs.len()];
        self.fwd.infer_add(xs, false, scratch, &mut out);
        self.bwd.infer_add(xs, true, scratch, &mut out);
        out
    }

    /// Backpropagates through both directions, accumulating parameter
    /// gradients and returning input gradients.
    pub fn backward(&mut self, cache: &BiLstmCache, dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut scratch = GemmScratch::new();
        self.backward_with_scratch(cache, dhs, &mut scratch)
    }

    /// [`BiLstm::backward`] streaming through a reusable [`GemmScratch`].
    pub fn backward_with_scratch(
        &mut self,
        cache: &BiLstmCache,
        dhs: &[Vec<f32>],
        scratch: &mut GemmScratch,
    ) -> Vec<Vec<f32>> {
        let t_len = dhs.len();
        let dx_f = self.fwd.backward_with_scratch(&cache.fwd, dhs, scratch);
        let rev_dhs: Vec<Vec<f32>> = dhs.iter().rev().cloned().collect();
        let dx_b = self
            .bwd
            .backward_with_scratch(&cache.bwd, &rev_dhs, scratch);
        let mut dxs = dx_f;
        for t in 0..t_len {
            for (a, b) in dxs[t].iter_mut().zip(&dx_b[t_len - 1 - t]) {
                *a += b;
            }
        }
        dxs
    }

    /// All trainable parameters of both directions.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let (f, b) = (&mut self.fwd, &mut self.bwd);
        vec![&mut f.w, &mut f.u, &mut f.b, &mut b.w, &mut b.u, &mut b.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_inputs(t_len: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..t_len)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn forward_output_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(3, 5, &mut rng);
        let xs = toy_inputs(7, 3, 2);
        let (hs, _) = lstm.forward(&xs);
        assert_eq!(hs.len(), 7);
        assert!(hs.iter().all(|h| h.len() == 5));
    }

    #[test]
    fn hidden_states_are_bounded_by_one() {
        // h = o * tanh(c), both factors in (-1, 1).
        let mut rng = StdRng::seed_from_u64(3);
        let lstm = Lstm::new(4, 8, &mut rng);
        let xs = toy_inputs(20, 4, 4);
        let (hs, _) = lstm.forward(&xs);
        for h in &hs {
            for &v in h {
                assert!(v.abs() < 1.0);
            }
        }
    }

    #[test]
    fn empty_sequence_is_ok() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lstm = Lstm::new(3, 5, &mut rng);
        let (hs, cache) = lstm.forward(&[]);
        assert!(hs.is_empty());
        let dxs = lstm.backward(&cache, &[]);
        assert!(dxs.is_empty());
        let mut scratch = GemmScratch::new();
        assert!(lstm
            .hidden_states_with_scratch(&[], &mut scratch)
            .is_empty());
    }

    #[test]
    fn inference_path_matches_training_forward() {
        // The cache-free inference traversal must be bitwise identical
        // to the training forward pass (same kernels, same order).
        let mut rng = StdRng::seed_from_u64(15);
        let lstm = Lstm::new(4, 6, &mut rng);
        let xs = toy_inputs(11, 4, 16);
        let (hs, _) = lstm.forward(&xs);
        let mut scratch = GemmScratch::new();
        let inferred = lstm.hidden_states_with_scratch(&xs, &mut scratch);
        assert_eq!(hs, inferred);
    }

    #[test]
    fn scratch_is_reusable_across_shapes() {
        // One scratch serves layers of different sizes back to back.
        let mut rng = StdRng::seed_from_u64(17);
        let small = Lstm::new(2, 3, &mut rng);
        let large = Lstm::new(5, 8, &mut rng);
        let mut scratch = GemmScratch::new();
        let (a1, _) = small.forward_with_scratch(&toy_inputs(4, 2, 18), &mut scratch);
        let (b1, _) = large.forward_with_scratch(&toy_inputs(9, 5, 19), &mut scratch);
        let (a2, _) = small.forward(&toy_inputs(4, 2, 18));
        let (b2, _) = large.forward(&toy_inputs(9, 5, 19));
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn from_gate_weights_stacks_fused_layout() {
        let mut rng = StdRng::seed_from_u64(23);
        let reference = Lstm::new(3, 2, &mut rng);
        let slice_gate = |m: &Matrix, g: usize| {
            let h = 2;
            let rows: Vec<&[f32]> = (g * h..(g + 1) * h).map(|r| m.row(r)).collect();
            Matrix::from_rows(&rows)
        };
        let w = std::array::from_fn(|g| slice_gate(&reference.w.value, g));
        let u = std::array::from_fn(|g| slice_gate(&reference.u.value, g));
        let b = std::array::from_fn(|g| slice_gate(&reference.b.value, g));
        let rebuilt = Lstm::from_gate_weights(w, u, b).unwrap();
        assert_eq!(rebuilt.w.value, reference.w.value);
        assert_eq!(rebuilt.u.value, reference.u.value);
        assert_eq!(rebuilt.b.value, reference.b.value);
        let xs = toy_inputs(5, 3, 24);
        assert_eq!(rebuilt.forward(&xs).0, reference.forward(&xs).0);
    }

    /// Finite-difference gradient check for the unidirectional LSTM.
    #[test]
    fn lstm_gradients_match_finite_differences() {
        let (d, h, t_len) = (3usize, 4usize, 5usize);
        let mut rng = StdRng::seed_from_u64(42);
        let mut lstm = Lstm::new(d, h, &mut rng);
        let xs = toy_inputs(t_len, d, 43);
        // Loss = sum of all hidden activations (gradient of 1 everywhere).
        let loss = |l: &Lstm| -> f32 {
            let (hs, _) = l.forward(&xs);
            hs.iter().flatten().sum()
        };
        let (_, cache) = lstm.forward(&xs);
        let dhs = vec![vec![1.0f32; h]; t_len];
        let dxs = lstm.backward(&cache, &dhs);

        let eps = 1e-3f32;
        // Check a sample of weight entries in each parameter.
        for (pname, pidx) in [("w", 0usize), ("u", 1), ("b", 2)] {
            for k in [0usize, 1, 5] {
                let mut l2 = lstm.clone();
                let analytic = {
                    let p = match pidx {
                        0 => &lstm.w,
                        1 => &lstm.u,
                        _ => &lstm.b,
                    };
                    if k >= p.grad.data().len() {
                        continue;
                    }
                    p.grad.data()[k]
                };
                {
                    let p = match pidx {
                        0 => &mut l2.w,
                        1 => &mut l2.u,
                        _ => &mut l2.b,
                    };
                    p.value.data_mut()[k] += eps;
                }
                let up = loss(&l2);
                {
                    let p = match pidx {
                        0 => &mut l2.w,
                        1 => &mut l2.u,
                        _ => &mut l2.b,
                    };
                    p.value.data_mut()[k] -= 2.0 * eps;
                }
                let down = loss(&l2);
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 2e-2 * analytic.abs().max(1.0),
                    "{pname}[{k}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
        // Check input gradients.
        for t in [0usize, 2, 4] {
            for j in 0..d {
                let mut xs2 = xs.clone();
                xs2[t][j] += eps;
                let up: f32 = lstm.forward(&xs2).0.iter().flatten().sum();
                xs2[t][j] -= 2.0 * eps;
                let down: f32 = lstm.forward(&xs2).0.iter().flatten().sum();
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (dxs[t][j] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                    "dx[{t}][{j}]: analytic {} vs numeric {numeric}",
                    dxs[t][j]
                );
            }
        }
    }

    #[test]
    fn bilstm_output_is_sum_of_directions() {
        let mut rng = StdRng::seed_from_u64(9);
        let bi = BiLstm::new(3, 4, &mut rng);
        let xs = toy_inputs(6, 3, 10);
        let (out, _) = bi.forward(&xs);
        let (hf, _) = bi.fwd.forward(&xs);
        let rev: Vec<Vec<f32>> = xs.iter().rev().cloned().collect();
        let (hb, _) = bi.bwd.forward(&rev);
        for t in 0..6 {
            for k in 0..4 {
                assert!((out[t][k] - (hf[t][k] + hb[5 - t][k])).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bilstm_inference_matches_training_forward() {
        let mut rng = StdRng::seed_from_u64(13);
        let bi = BiLstm::new(3, 4, &mut rng);
        let xs = toy_inputs(6, 3, 14);
        let (out, _) = bi.forward(&xs);
        let mut scratch = GemmScratch::new();
        let inferred = bi.hidden_states_with_scratch(&xs, &mut scratch);
        for (a, b) in out.iter().zip(&inferred) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bilstm_sees_future_context() {
        // Construct two sequences identical up to t=2 but differing later;
        // a bidirectional network's early outputs must differ, a forward
        // LSTM's must not.
        let mut rng = StdRng::seed_from_u64(21);
        let bi = BiLstm::new(2, 4, &mut rng);
        let a = vec![vec![0.1, 0.2]; 6];
        let mut b = a.clone();
        b[5] = vec![0.9, -0.9];
        let (ha, _) = bi.forward(&a);
        let (hb, _) = bi.forward(&b);
        let d0: f32 = ha[0].iter().zip(&hb[0]).map(|(x, y)| (x - y).abs()).sum();
        assert!(d0 > 1e-4, "bidirectional output at t=0 ignored the future");
        let (fa, _) = bi.fwd.forward(&a);
        let (fb, _) = bi.fwd.forward(&b);
        let df: f32 = fa[0].iter().zip(&fb[0]).map(|(x, y)| (x - y).abs()).sum();
        assert!(df < 1e-7, "forward LSTM at t=0 cannot depend on the future");
    }

    #[test]
    fn bilstm_gradcheck_on_inputs() {
        let (d, h, t_len) = (2usize, 3usize, 4usize);
        let mut rng = StdRng::seed_from_u64(77);
        let mut bi = BiLstm::new(d, h, &mut rng);
        let xs = toy_inputs(t_len, d, 78);
        let (_, cache) = bi.forward(&xs);
        let dhs = vec![vec![1.0f32; h]; t_len];
        let dxs = bi.backward(&cache, &dhs);
        let eps = 1e-3f32;
        for t in 0..t_len {
            for j in 0..d {
                let mut xs2 = xs.clone();
                xs2[t][j] += eps;
                let up: f32 = bi.forward(&xs2).0.iter().flatten().sum();
                xs2[t][j] -= 2.0 * eps;
                let down: f32 = bi.forward(&xs2).0.iter().flatten().sum();
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (dxs[t][j] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                    "dx[{t}][{j}]"
                );
            }
        }
    }
}
