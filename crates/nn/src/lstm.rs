//! LSTM and bidirectional LSTM layers with backpropagation through time.
//!
//! Gate layout follows the common stacked convention `[i, f, g, o]`
//! (input, forget, cell-candidate, output). The bidirectional wrapper
//! *sums* the forward and backward hidden states, matching the paper's
//! `h_t = h→_t + h←_t` (Sec. V-B, Eq. 4).

use crate::matrix::Matrix;
use crate::param::Param;
use rand::Rng;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A single-direction LSTM layer.
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input weights, `4H x D`.
    pub w: Param,
    /// Recurrent weights, `4H x H`.
    pub u: Param,
    /// Bias, `4H x 1`.
    pub b: Param,
    input_size: usize,
    hidden_size: usize,
}

/// Cached activations for one timestep, needed by the backward pass.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// Forward-pass cache for a whole sequence.
#[derive(Debug, Clone)]
pub struct LstmCache {
    steps: Vec<StepCache>,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights. The forget-gate
    /// bias is initialized to `1.0` (standard practice to ease gradient
    /// flow early in training).
    pub fn new<R: Rng + ?Sized>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        let w = Matrix::xavier(4 * hidden_size, input_size, rng);
        let u = Matrix::xavier(4 * hidden_size, hidden_size, rng);
        let mut b = Matrix::zeros(4 * hidden_size, 1);
        for h in 0..hidden_size {
            b.set(hidden_size + h, 0, 1.0); // forget gate bias
        }
        Lstm {
            w: Param::new(w),
            u: Param::new(u),
            b: Param::new(b),
            input_size,
            hidden_size,
        }
    }

    /// Reconstructs an LSTM from explicit weight matrices (e.g. loaded
    /// from disk).
    ///
    /// # Errors
    ///
    /// Returns a message when the shapes are inconsistent.
    pub fn from_weights(w: Matrix, u: Matrix, b: Matrix) -> Result<Self, String> {
        let four_h = w.rows();
        if four_h == 0 || !four_h.is_multiple_of(4) {
            return Err(format!("gate dimension {four_h} is not 4*H"));
        }
        let hidden_size = four_h / 4;
        let input_size = w.cols();
        if u.rows() != four_h || u.cols() != hidden_size {
            return Err(format!(
                "recurrent weights {}x{} do not match hidden size {hidden_size}",
                u.rows(),
                u.cols()
            ));
        }
        if b.rows() != four_h || b.cols() != 1 {
            return Err(format!("bias {}x{} does not match", b.rows(), b.cols()));
        }
        Ok(Lstm {
            w: Param::new(w),
            u: Param::new(u),
            b: Param::new(b),
            input_size,
            hidden_size,
        })
    }

    /// Input dimension.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden dimension.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Runs the layer over a sequence, returning hidden states for every
    /// timestep and the cache needed by [`Lstm::backward`].
    ///
    /// # Panics
    ///
    /// Panics if any input vector's length differs from the configured
    /// input size.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, LstmCache) {
        let hs_len = self.hidden_size;
        let mut h = vec![0.0f32; hs_len];
        let mut c = vec![0.0f32; hs_len];
        let mut outputs = Vec::with_capacity(xs.len());
        let mut steps = Vec::with_capacity(xs.len());
        for x in xs {
            assert_eq!(x.len(), self.input_size, "input dimension mismatch");
            let mut z = self.w.value.matvec(x);
            let zu = self.u.value.matvec(&h);
            for (a, (b, &bias)) in z.iter_mut().zip(zu.iter().zip(self.b.value.data())) {
                *a += b + bias;
            }
            let mut gi = vec![0.0f32; hs_len];
            let mut gf = vec![0.0f32; hs_len];
            let mut gg = vec![0.0f32; hs_len];
            let mut go = vec![0.0f32; hs_len];
            for k in 0..hs_len {
                gi[k] = sigmoid(z[k]);
                gf[k] = sigmoid(z[hs_len + k]);
                gg[k] = z[2 * hs_len + k].tanh();
                go[k] = sigmoid(z[3 * hs_len + k]);
            }
            let c_prev = c.clone();
            let h_prev = h.clone();
            let mut tanh_c = vec![0.0f32; hs_len];
            for k in 0..hs_len {
                c[k] = gf[k] * c_prev[k] + gi[k] * gg[k];
                tanh_c[k] = c[k].tanh();
                h[k] = go[k] * tanh_c[k];
            }
            outputs.push(h.clone());
            steps.push(StepCache {
                x: x.clone(),
                h_prev,
                c_prev,
                i: gi,
                f: gf,
                g: gg,
                o: go,
                tanh_c,
            });
        }
        (outputs, LstmCache { steps })
    }

    /// Backpropagates through time. `dhs` holds the loss gradient with
    /// respect to each output hidden state. Parameter gradients are
    /// *accumulated* into `self.{w,u,b}.grad`; the gradient with respect
    /// to each input vector is returned.
    ///
    /// # Panics
    ///
    /// Panics if `dhs.len()` differs from the cached sequence length.
    pub fn backward(&mut self, cache: &LstmCache, dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(dhs.len(), cache.steps.len(), "gradient length mismatch");
        let hs_len = self.hidden_size;
        let mut dxs = vec![vec![0.0f32; self.input_size]; dhs.len()];
        let mut dh_next = vec![0.0f32; hs_len];
        let mut dc_next = vec![0.0f32; hs_len];
        for t in (0..cache.steps.len()).rev() {
            let s = &cache.steps[t];
            // Total gradient flowing into h_t.
            let mut dh = dhs[t].clone();
            for (a, b) in dh.iter_mut().zip(&dh_next) {
                *a += b;
            }
            let mut dz = vec![0.0f32; 4 * hs_len];
            let mut dc = dc_next.clone();
            for k in 0..hs_len {
                // dC from h = o * tanh(c).
                dc[k] += dh[k] * s.o[k] * (1.0 - s.tanh_c[k] * s.tanh_c[k]);
                let d_o = dh[k] * s.tanh_c[k];
                let d_i = dc[k] * s.g[k];
                let d_f = dc[k] * s.c_prev[k];
                let d_g = dc[k] * s.i[k];
                dz[k] = d_i * s.i[k] * (1.0 - s.i[k]);
                dz[hs_len + k] = d_f * s.f[k] * (1.0 - s.f[k]);
                dz[2 * hs_len + k] = d_g * (1.0 - s.g[k] * s.g[k]);
                dz[3 * hs_len + k] = d_o * s.o[k] * (1.0 - s.o[k]);
            }
            self.w.grad.add_outer(&dz, &s.x);
            self.u.grad.add_outer(&dz, &s.h_prev);
            for (slot, &d) in self.b.grad.data_mut().iter_mut().zip(&dz) {
                *slot += d;
            }
            dxs[t] = self.w.value.matvec_transposed(&dz);
            dh_next = self.u.value.matvec_transposed(&dz);
            for k in 0..hs_len {
                dc_next[k] = dc[k] * s.f[k];
            }
        }
        dxs
    }

    /// The layer's trainable parameters.
    pub fn params_mut(&mut self) -> [&mut Param; 3] {
        [&mut self.w, &mut self.u, &mut self.b]
    }
}

/// Bidirectional LSTM: a forward-direction and a backward-direction LSTM
/// whose hidden states are summed per timestep.
#[derive(Debug, Clone)]
pub struct BiLstm {
    /// Forward-direction layer.
    pub fwd: Lstm,
    /// Backward-direction layer.
    pub bwd: Lstm,
}

/// Forward cache for [`BiLstm`].
#[derive(Debug, Clone)]
pub struct BiLstmCache {
    fwd: LstmCache,
    bwd: LstmCache,
}

impl BiLstm {
    /// Creates a bidirectional LSTM (both directions sized
    /// `input_size -> hidden_size`).
    pub fn new<R: Rng + ?Sized>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        BiLstm {
            fwd: Lstm::new(input_size, hidden_size, rng),
            bwd: Lstm::new(input_size, hidden_size, rng),
        }
    }

    /// Hidden dimension of the summed output.
    pub fn hidden_size(&self) -> usize {
        self.fwd.hidden_size()
    }

    /// Runs both directions and sums their hidden states per timestep.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, BiLstmCache) {
        let (hf, cache_f) = self.fwd.forward(xs);
        let rev: Vec<Vec<f32>> = xs.iter().rev().cloned().collect();
        let (hb, cache_b) = self.bwd.forward(&rev);
        let t_len = xs.len();
        let mut out = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let mut h = hf[t].clone();
            for (a, b) in h.iter_mut().zip(&hb[t_len - 1 - t]) {
                *a += b;
            }
            out.push(h);
        }
        (
            out,
            BiLstmCache {
                fwd: cache_f,
                bwd: cache_b,
            },
        )
    }

    /// Backpropagates through both directions, accumulating parameter
    /// gradients and returning input gradients.
    pub fn backward(&mut self, cache: &BiLstmCache, dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let t_len = dhs.len();
        let dx_f = self.fwd.backward(&cache.fwd, dhs);
        let rev_dhs: Vec<Vec<f32>> = dhs.iter().rev().cloned().collect();
        let dx_b = self.bwd.backward(&cache.bwd, &rev_dhs);
        let mut dxs = dx_f;
        for t in 0..t_len {
            for (a, b) in dxs[t].iter_mut().zip(&dx_b[t_len - 1 - t]) {
                *a += b;
            }
        }
        dxs
    }

    /// All trainable parameters of both directions.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let (f, b) = (&mut self.fwd, &mut self.bwd);
        vec![&mut f.w, &mut f.u, &mut f.b, &mut b.w, &mut b.u, &mut b.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_inputs(t_len: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..t_len)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn forward_output_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(3, 5, &mut rng);
        let xs = toy_inputs(7, 3, 2);
        let (hs, _) = lstm.forward(&xs);
        assert_eq!(hs.len(), 7);
        assert!(hs.iter().all(|h| h.len() == 5));
    }

    #[test]
    fn hidden_states_are_bounded_by_one() {
        // h = o * tanh(c), both factors in (-1, 1).
        let mut rng = StdRng::seed_from_u64(3);
        let lstm = Lstm::new(4, 8, &mut rng);
        let xs = toy_inputs(20, 4, 4);
        let (hs, _) = lstm.forward(&xs);
        for h in &hs {
            for &v in h {
                assert!(v.abs() < 1.0);
            }
        }
    }

    #[test]
    fn empty_sequence_is_ok() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lstm = Lstm::new(3, 5, &mut rng);
        let (hs, cache) = lstm.forward(&[]);
        assert!(hs.is_empty());
        let dxs = lstm.backward(&cache, &[]);
        assert!(dxs.is_empty());
    }

    /// Finite-difference gradient check for the unidirectional LSTM.
    #[test]
    fn lstm_gradients_match_finite_differences() {
        let (d, h, t_len) = (3usize, 4usize, 5usize);
        let mut rng = StdRng::seed_from_u64(42);
        let mut lstm = Lstm::new(d, h, &mut rng);
        let xs = toy_inputs(t_len, d, 43);
        // Loss = sum of all hidden activations (gradient of 1 everywhere).
        let loss = |l: &Lstm| -> f32 {
            let (hs, _) = l.forward(&xs);
            hs.iter().flatten().sum()
        };
        let (_, cache) = lstm.forward(&xs);
        let dhs = vec![vec![1.0f32; h]; t_len];
        let dxs = lstm.backward(&cache, &dhs);

        let eps = 1e-3f32;
        // Check a sample of weight entries in each parameter.
        for (pname, pidx) in [("w", 0usize), ("u", 1), ("b", 2)] {
            for k in [0usize, 1, 5] {
                let mut l2 = lstm.clone();
                let analytic = {
                    let p = match pidx {
                        0 => &lstm.w,
                        1 => &lstm.u,
                        _ => &lstm.b,
                    };
                    if k >= p.grad.data().len() {
                        continue;
                    }
                    p.grad.data()[k]
                };
                {
                    let p = match pidx {
                        0 => &mut l2.w,
                        1 => &mut l2.u,
                        _ => &mut l2.b,
                    };
                    p.value.data_mut()[k] += eps;
                }
                let up = loss(&l2);
                {
                    let p = match pidx {
                        0 => &mut l2.w,
                        1 => &mut l2.u,
                        _ => &mut l2.b,
                    };
                    p.value.data_mut()[k] -= 2.0 * eps;
                }
                let down = loss(&l2);
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 2e-2 * analytic.abs().max(1.0),
                    "{pname}[{k}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
        // Check input gradients.
        for t in [0usize, 2, 4] {
            for j in 0..d {
                let mut xs2 = xs.clone();
                xs2[t][j] += eps;
                let up: f32 = lstm.forward(&xs2).0.iter().flatten().sum();
                xs2[t][j] -= 2.0 * eps;
                let down: f32 = lstm.forward(&xs2).0.iter().flatten().sum();
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (dxs[t][j] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                    "dx[{t}][{j}]: analytic {} vs numeric {numeric}",
                    dxs[t][j]
                );
            }
        }
    }

    #[test]
    fn bilstm_output_is_sum_of_directions() {
        let mut rng = StdRng::seed_from_u64(9);
        let bi = BiLstm::new(3, 4, &mut rng);
        let xs = toy_inputs(6, 3, 10);
        let (out, _) = bi.forward(&xs);
        let (hf, _) = bi.fwd.forward(&xs);
        let rev: Vec<Vec<f32>> = xs.iter().rev().cloned().collect();
        let (hb, _) = bi.bwd.forward(&rev);
        for t in 0..6 {
            for k in 0..4 {
                assert!((out[t][k] - (hf[t][k] + hb[5 - t][k])).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bilstm_sees_future_context() {
        // Construct two sequences identical up to t=2 but differing later;
        // a bidirectional network's early outputs must differ, a forward
        // LSTM's must not.
        let mut rng = StdRng::seed_from_u64(21);
        let bi = BiLstm::new(2, 4, &mut rng);
        let a = vec![vec![0.1, 0.2]; 6];
        let mut b = a.clone();
        b[5] = vec![0.9, -0.9];
        let (ha, _) = bi.forward(&a);
        let (hb, _) = bi.forward(&b);
        let d0: f32 = ha[0].iter().zip(&hb[0]).map(|(x, y)| (x - y).abs()).sum();
        assert!(d0 > 1e-4, "bidirectional output at t=0 ignored the future");
        let (fa, _) = bi.fwd.forward(&a);
        let (fb, _) = bi.fwd.forward(&b);
        let df: f32 = fa[0].iter().zip(&fb[0]).map(|(x, y)| (x - y).abs()).sum();
        assert!(df < 1e-7, "forward LSTM at t=0 cannot depend on the future");
    }

    #[test]
    fn bilstm_gradcheck_on_inputs() {
        let (d, h, t_len) = (2usize, 3usize, 4usize);
        let mut rng = StdRng::seed_from_u64(77);
        let mut bi = BiLstm::new(d, h, &mut rng);
        let xs = toy_inputs(t_len, d, 78);
        let (_, cache) = bi.forward(&xs);
        let dhs = vec![vec![1.0f32; h]; t_len];
        let dxs = bi.backward(&cache, &dhs);
        let eps = 1e-3f32;
        for t in 0..t_len {
            for j in 0..d {
                let mut xs2 = xs.clone();
                xs2[t][j] += eps;
                let up: f32 = bi.forward(&xs2).0.iter().flatten().sum();
                xs2[t][j] -= 2.0 * eps;
                let down: f32 = bi.forward(&xs2).0.iter().flatten().sum();
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (dxs[t][j] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                    "dx[{t}][{j}]"
                );
            }
        }
    }
}
