//! Softmax and cross-entropy loss.

/// Numerically stable softmax of a logit vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Softmax cross-entropy for one frame.
///
/// Returns `(loss, dlogits)` where `dlogits = softmax(logits) - onehot`.
///
/// # Panics
///
/// Panics if `target >= logits.len()`.
pub fn softmax_cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    assert!(target < logits.len(), "target class out of range");
    let probs = softmax(logits);
    let loss = -(probs[target].max(1e-12)).ln();
    let mut dlogits = probs;
    dlogits[target] -= 1.0;
    (loss, dlogits)
}

/// Mean softmax cross-entropy over a sequence of frames.
///
/// Returns `(mean_loss, per_frame_dlogits)` with gradients already scaled
/// by `1 / n_frames`.
///
/// # Panics
///
/// Panics if the lengths differ or any target is out of range.
pub fn sequence_cross_entropy(logits: &[Vec<f32>], targets: &[usize]) -> (f32, Vec<Vec<f32>>) {
    assert_eq!(logits.len(), targets.len(), "sequence length mismatch");
    if logits.is_empty() {
        return (0.0, Vec::new());
    }
    let n = logits.len() as f32;
    let mut total = 0.0f32;
    let mut grads = Vec::with_capacity(logits.len());
    for (frame, &t) in logits.iter().zip(targets) {
        let (l, mut dl) = softmax_cross_entropy(frame, t);
        total += l;
        for d in &mut dl {
            *d /= n;
        }
        grads.push(dl);
    }
    (total / n, grads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[101.0, 102.0]);
        assert!((a[0] - b[0]).abs() < 1e-6);
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&[1000.0, -1000.0]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let (loss, _) = softmax_cross_entropy(&[10.0, -10.0], 0);
        assert!(loss < 1e-3);
        let (loss_wrong, _) = softmax_cross_entropy(&[10.0, -10.0], 1);
        assert!(loss_wrong > 5.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = vec![0.3f32, -0.6, 1.1];
        let (_, dl) = softmax_cross_entropy(&logits, 1);
        let eps = 1e-3f32;
        for k in 0..3 {
            let mut up = logits.clone();
            up[k] += eps;
            let mut down = logits.clone();
            down[k] -= eps;
            let numeric =
                (softmax_cross_entropy(&up, 1).0 - softmax_cross_entropy(&down, 1).0) / (2.0 * eps);
            assert!((dl[k] - numeric).abs() < 1e-3, "logit {k}");
        }
    }

    #[test]
    fn sequence_loss_averages() {
        let logits = vec![vec![5.0, -5.0], vec![-5.0, 5.0]];
        let (loss, grads) = sequence_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3);
        assert_eq!(grads.len(), 2);
    }

    #[test]
    fn empty_sequence_loss_is_zero() {
        let (loss, grads) = sequence_cross_entropy(&[], &[]);
        assert_eq!(loss, 0.0);
        assert!(grads.is_empty());
    }
}
