//! Packed minibatch layout for the fused-gate recurrent engines.
//!
//! The per-utterance engine runs the recurrent step `U·h` as a mat-vec,
//! which is memory-bound: the `4H×H` weight panel streams from cache
//! once per timestep per sequence. Packing `B` sequences into one
//! batch turns that step into a `4H×H × H×B` GEMM — the panel streams
//! once per *timestep*, amortized over the whole batch — and fuses the
//! `B` input projections into a single `4H×I × I×(B·T)` GEMM per
//! direction.
//!
//! Sequences have unequal lengths, so the layout follows cuDNN-style
//! packed sequences: sort by length descending, then store timestep `t`
//! of every still-active sequence contiguously. Because of the sort,
//! the set of sequences active at step `t` is always a *prefix* of the
//! batch, so each step works on a dense leading block of rows and no
//! masking is needed anywhere in the math.
//!
//! [`BatchWorkspace`] owns the packed layout plus the per-direction
//! projection caches and persists across calls: training loops that
//! revisit the same minibatch every epoch re-pack nothing and reuse all
//! allocations, only recomputing the `W·X` projections when the input
//! weights actually stepped (see [`crate::param::Param::version`]).

use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

/// Length-sorted packed layout of a minibatch of sequences.
///
/// For the packing order see the module docs. Row-major storage:
/// timestep `t` occupies rows `offset(t) .. offset(t) + active(t)`,
/// where row `j` within the step belongs to sorted slot `j` (original
/// sequence `order()[j]`).
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedBatch {
    /// `order[j]` = index into the caller's slice of the sequence in
    /// sorted slot `j` (lengths descending, ties in caller order).
    order: Vec<usize>,
    /// Sequence lengths in sorted-slot order (non-increasing).
    lens: Vec<usize>,
    /// `active[t]` = number of sequences with length > `t`.
    active: Vec<usize>,
    /// Prefix sums of `active`: `offsets[t]` = first packed row of step
    /// `t`; `offsets[max_len]` = total packed rows.
    offsets: Vec<usize>,
    /// Feature width of every timestep vector.
    width: usize,
    /// Packed inputs in forward time order, `total_rows x width`.
    x_fwd: Vec<f32>,
    /// Packed inputs with each sequence individually reversed (slot `j`
    /// contributes element `lens[j] - 1 - t` at step `t`), same layout.
    x_bwd: Vec<f32>,
    /// Fingerprint of the batch contents the layout was built from.
    fingerprint: u64,
    /// False until the first `prepare` call.
    prepared: bool,
}

/// Hashes a batch's shape and exact contents; used to detect that a
/// training loop re-presented the same minibatch (same sequences, same
/// order) so the packed layout and projections can be reused.
pub(crate) fn fingerprint_of(seqs: &[&[Vec<f32>]], width: usize) -> u64 {
    let mut h = DefaultHasher::new();
    h.write_usize(width);
    h.write_usize(seqs.len());
    for seq in seqs {
        h.write_usize(seq.len());
        for frame in seq.iter() {
            for &v in frame {
                h.write_u32(v.to_bits());
            }
        }
    }
    h.finish()
}

impl PackedBatch {
    /// (Re)builds the layout for `seqs` if its fingerprint differs from
    /// the cached one; returns `true` when a rebuild happened (callers
    /// must then drop any projection caches derived from the old
    /// layout). Empty sequences are allowed and simply never active.
    ///
    /// # Panics
    ///
    /// Panics if any frame's length differs from `width`.
    pub(crate) fn prepare(&mut self, seqs: &[&[Vec<f32>]], width: usize) -> bool {
        let fp = fingerprint_of(seqs, width);
        if self.prepared && fp == self.fingerprint && self.width == width {
            return false;
        }
        self.fingerprint = fp;
        self.prepared = true;
        self.width = width;

        self.order.clear();
        self.order.extend(0..seqs.len());
        // Stable sort keeps equal-length sequences in caller order, so
        // the layout (and therefore training numerics) is deterministic.
        self.order
            .sort_by_key(|&i| std::cmp::Reverse(seqs[i].len()));
        self.lens.clear();
        self.lens.extend(self.order.iter().map(|&i| seqs[i].len()));

        let max_len = self.lens.first().copied().unwrap_or(0);
        self.active.clear();
        self.offsets.clear();
        self.offsets.push(0);
        for t in 0..max_len {
            // lens is non-increasing, so the active set is the prefix of
            // slots whose length still exceeds t.
            let nb = self.lens.partition_point(|&l| l > t);
            self.active.push(nb);
            self.offsets.push(self.offsets[t] + nb);
        }

        let total = self.total_rows();
        self.x_fwd.clear();
        self.x_fwd.reserve(total * width);
        self.x_bwd.clear();
        self.x_bwd.reserve(total * width);
        for t in 0..max_len {
            for (j, &len) in self.lens[..self.active[t]].iter().enumerate() {
                let seq = seqs[self.order[j]];
                let fwd = &seq[t];
                let bwd = &seq[len - 1 - t];
                assert_eq!(fwd.len(), width, "input dimension mismatch");
                assert_eq!(bwd.len(), width, "input dimension mismatch");
                self.x_fwd.extend_from_slice(fwd);
                self.x_bwd.extend_from_slice(bwd);
            }
        }
        true
    }

    /// Length of the longest sequence (the number of timesteps).
    pub(crate) fn max_len(&self) -> usize {
        self.active.len()
    }

    /// Total packed rows, i.e. the sum of all sequence lengths.
    pub(crate) fn total_rows(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Number of sequences still running at step `t`.
    pub(crate) fn active(&self, t: usize) -> usize {
        self.active[t]
    }

    /// First packed row of step `t` (valid for `t <= max_len`).
    pub(crate) fn offset(&self, t: usize) -> usize {
        self.offsets[t]
    }

    /// Sorted-slot → caller-index mapping.
    pub(crate) fn order(&self) -> &[usize] {
        &self.order
    }

    /// Sequence lengths in sorted-slot order.
    pub(crate) fn lens(&self) -> &[usize] {
        &self.lens
    }

    /// Packed inputs for one direction.
    pub(crate) fn x(&self, reversed: bool) -> &[f32] {
        if reversed {
            &self.x_bwd
        } else {
            &self.x_fwd
        }
    }

    /// Feature width the layout was packed with.
    pub(crate) fn width(&self) -> usize {
        self.width
    }
}

/// Per-direction working set: the cached time-batched `W·X` projection
/// plus the forward-pass rows the backward pass replays.
#[derive(Debug, Clone, Default)]
pub(crate) struct DirCache {
    /// Time-batched input projections, `total_rows x gate_rows`. The
    /// LSTM engines store `W·x + b` (bias folded in at fill time so
    /// each step starts from a plain row copy); the GRU engine stores
    /// bare `W·x` because its cell adds the bias in a different
    /// association order.
    pub(crate) proj: Vec<f32>,
    /// [`crate::param::Param::version`] tickets `(W, b)` the projection
    /// was computed against; `None` forces recomputation (set on
    /// repack). This is the epoch-persistence rule: same batch + same
    /// weights → reuse, optimizer stepped → recompute into the same
    /// allocation.
    pub(crate) proj_key: Option<(u64, u64)>,
    /// Hidden state entering each step, `total_rows x hidden` (training
    /// forward only).
    pub(crate) h_prev: Vec<f32>,
    /// Cell state entering each step (LSTM), `total_rows x hidden`.
    pub(crate) c_prev: Vec<f32>,
    /// Activated gate values per step, `total_rows x gate_rows`.
    pub(crate) gates: Vec<f32>,
    /// Auxiliary per-step values (`tanh(c)` for LSTM, `U·h` candidate
    /// rows for GRU), `total_rows x hidden`.
    pub(crate) aux: Vec<f32>,
}

/// Reusable workspace for batched forward/backward passes.
///
/// Create once and thread through `forward_batch` / `train_step`
/// calls: the packed layout, projection caches and all scratch buffers
/// persist, so repeated visits of the same minibatch (a training loop's
/// epochs) neither re-pack nor re-allocate.
#[derive(Debug, Clone, Default)]
pub struct BatchWorkspace {
    pub(crate) pack: PackedBatch,
    pub(crate) fwd: DirCache,
    pub(crate) bwd: DirCache,
    /// Flat packed hidden-state output of the batched inference engine,
    /// `total_rows x hidden` in packed-row order (step `t`'s active
    /// rows contiguous at `offset(t)`). Lives here so repeated
    /// inference calls reuse the allocation and the classifier head can
    /// run one flat GEMM straight over it without re-nesting.
    pub(crate) flat: Vec<f32>,
}

impl BatchWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        BatchWorkspace::default()
    }

    /// Re-packs the layout if the batch changed; invalidates the
    /// projection caches on repack. Returns `true` on repack.
    pub(crate) fn prepare(&mut self, seqs: &[&[Vec<f32>]], width: usize) -> bool {
        let repacked = self.pack.prepare(seqs, width);
        if repacked {
            self.fwd.proj_key = None;
            self.bwd.proj_key = None;
        }
        repacked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, base: f32) -> Vec<Vec<f32>> {
        (0..len)
            .map(|t| vec![base + t as f32, base - t as f32])
            .collect()
    }

    #[test]
    fn packing_sorts_by_length_and_counts_active_prefixes() {
        let a = seq(2, 10.0);
        let b = seq(4, 20.0);
        let c = seq(3, 30.0);
        let refs: Vec<&[Vec<f32>]> = vec![&a, &b, &c];
        let mut p = PackedBatch::default();
        assert!(p.prepare(&refs, 2));
        assert_eq!(p.order(), &[1, 2, 0]);
        assert_eq!(p.lens(), &[4, 3, 2]);
        assert_eq!(p.max_len(), 4);
        assert_eq!(p.total_rows(), 9);
        assert_eq!(
            (0..4).map(|t| p.active(t)).collect::<Vec<_>>(),
            vec![3, 3, 2, 1]
        );
        assert_eq!(
            (0..=4).map(|t| p.offset(t)).collect::<Vec<_>>(),
            vec![0, 3, 6, 8, 9]
        );
        // Step 2 holds rows of the two sequences of length > 2 in slot
        // order: b[2] then c[2].
        let w = p.width();
        let rows = &p.x(false)[p.offset(2) * w..p.offset(3) * w];
        assert_eq!(rows, &[22.0, 18.0, 32.0, 28.0]);
    }

    #[test]
    fn reversed_packing_reverses_each_sequence_individually() {
        let a = seq(3, 10.0);
        let b = seq(1, 20.0);
        let refs: Vec<&[Vec<f32>]> = vec![&a, &b];
        let mut p = PackedBatch::default();
        p.prepare(&refs, 2);
        let w = p.width();
        // Step 0 reversed: a's last frame, then b's only frame.
        let rows = &p.x(true)[..p.offset(1) * w];
        assert_eq!(rows, &[12.0, 8.0, 20.0, 20.0]);
        // Step 2 reversed: only a is active, contributing its first frame.
        let rows = &p.x(true)[p.offset(2) * w..p.offset(3) * w];
        assert_eq!(rows, &[10.0, 10.0]);
    }

    #[test]
    fn stable_sort_preserves_caller_order_on_ties() {
        let a = seq(3, 1.0);
        let b = seq(3, 2.0);
        let c = seq(3, 3.0);
        let refs: Vec<&[Vec<f32>]> = vec![&a, &b, &c];
        let mut p = PackedBatch::default();
        p.prepare(&refs, 2);
        assert_eq!(p.order(), &[0, 1, 2]);
    }

    #[test]
    fn fingerprint_skips_repack_and_invalidation() {
        let a = seq(2, 1.0);
        let b = seq(3, 2.0);
        let refs: Vec<&[Vec<f32>]> = vec![&a, &b];
        let mut ws = BatchWorkspace::new();
        assert!(ws.prepare(&refs, 2));
        ws.fwd.proj_key = Some((7, 7));
        ws.bwd.proj_key = Some((7, 7));
        // Same batch: no repack, projections survive.
        assert!(!ws.prepare(&refs, 2));
        assert_eq!(ws.fwd.proj_key, Some((7, 7)));
        // Any content change repacks and drops the projections.
        let b2 = seq(3, 2.5);
        let refs2: Vec<&[Vec<f32>]> = vec![&a, &b2];
        assert!(ws.prepare(&refs2, 2));
        assert_eq!(ws.fwd.proj_key, None);
        assert_eq!(ws.bwd.proj_key, None);
    }

    #[test]
    fn empty_and_zero_length_batches_are_well_formed() {
        let mut p = PackedBatch::default();
        let refs: Vec<&[Vec<f32>]> = vec![];
        p.prepare(&refs, 3);
        assert!(p.lens().is_empty());
        assert_eq!(p.max_len(), 0);
        assert_eq!(p.total_rows(), 0);

        let empty: Vec<Vec<f32>> = vec![];
        let one = seq(1, 5.0);
        let refs: Vec<&[Vec<f32>]> = vec![&empty, &one];
        p.prepare(&refs, 2);
        assert_eq!(p.order(), &[1, 0]);
        assert_eq!(p.lens(), &[1, 0]);
        assert_eq!(p.total_rows(), 1);
        assert_eq!(p.active(0), 1);
    }
}
