//! Affine (fully-connected) layer.

use crate::matrix::Matrix;
use crate::param::Param;
use rand::Rng;

/// A fully-connected layer `y = W x + b` applied independently per frame.
///
/// The paper attaches a dense layer with 2 neurons to the BRNN for binary
/// effective-phoneme detection (Sec. V-B).
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights, `out x in`.
    pub w: Param,
    /// Bias, `out x 1`.
    pub b: Param,
}

/// Cached inputs for the backward pass.
#[derive(Debug, Clone)]
pub struct DenseCache {
    inputs: Vec<Vec<f32>>,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialized weights and zero
    /// bias.
    pub fn new<R: Rng + ?Sized>(input_size: usize, output_size: usize, rng: &mut R) -> Self {
        Dense {
            w: Param::new(Matrix::xavier(output_size, input_size, rng)),
            b: Param::new(Matrix::zeros(output_size, 1)),
        }
    }

    /// Reconstructs a dense layer from explicit weights.
    ///
    /// # Errors
    ///
    /// Returns a message when the bias shape does not match.
    pub fn from_weights(w: Matrix, b: Matrix) -> Result<Self, String> {
        if b.rows() != w.rows() || b.cols() != 1 {
            return Err(format!(
                "bias {}x{} does not match weights {}x{}",
                b.rows(),
                b.cols(),
                w.rows(),
                w.cols()
            ));
        }
        Ok(Dense {
            w: Param::new(w),
            b: Param::new(b),
        })
    }

    /// Output dimension.
    pub fn output_size(&self) -> usize {
        self.w.value.rows()
    }

    /// Input dimension.
    pub fn input_size(&self) -> usize {
        self.w.value.cols()
    }

    /// Applies the layer to one frame without recording backward-pass
    /// state — the inference path.
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        let mut y = self.w.value.matvec(x);
        for (v, &bias) in y.iter_mut().zip(self.b.value.data()) {
            *v += bias;
        }
        y
    }

    /// Applies the layer to every frame in the sequence.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, DenseCache) {
        let outs = xs
            .iter()
            .map(|x| {
                let mut y = self.w.value.matvec(x);
                for (v, &bias) in y.iter_mut().zip(self.b.value.data()) {
                    *v += bias;
                }
                y
            })
            .collect();
        (
            outs,
            DenseCache {
                inputs: xs.to_vec(),
            },
        )
    }

    /// Backpropagates per-frame output gradients, accumulating parameter
    /// gradients and returning per-frame input gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dys.len()` differs from the cached sequence length.
    pub fn backward(&mut self, cache: &DenseCache, dys: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(dys.len(), cache.inputs.len(), "gradient length mismatch");
        let mut dxs = Vec::with_capacity(dys.len());
        for (x, dy) in cache.inputs.iter().zip(dys) {
            self.w.grad.add_outer(dy, x);
            for (slot, &d) in self.b.grad.data_mut().iter_mut().zip(dy) {
                *slot += d;
            }
            dxs.push(self.w.value.matvec_transposed(dy));
        }
        dxs
    }

    /// Applies the layer to `n` flat row-major frames in one GEMM —
    /// the batched-engine counterpart of per-frame [`Dense::apply`].
    /// Each output row matches `apply` bitwise (shared per-row fold of
    /// [`Matrix::matmul_nt`] plus the same single bias add).
    pub(crate) fn forward_flat(&self, x: &[f32], n: usize, out: &mut Vec<f32>) {
        self.w.value.matmul_nt_into(x, n, out);
        let bias = self.b.value.data();
        for row in out.chunks_exact_mut(self.output_size().max(1)) {
            for (v, &bv) in row.iter_mut().zip(bias) {
                *v += bv;
            }
        }
    }

    /// Flat-batch backward: `x` holds the `n` cached input rows,
    /// `dys` the `n` output-gradient rows. Parameter gradients are
    /// accumulated as one `dW += dYᵀ·X` GEMM plus a bias column sum;
    /// input gradients land in `dx` (resized to `n x input_size`).
    pub(crate) fn backward_flat(&mut self, x: &[f32], dys: &[f32], n: usize, dx: &mut Vec<f32>) {
        self.w.grad.add_tn_product(dys, x, n);
        let bg = self.b.grad.data_mut();
        for row in dys.chunks_exact(self.w.value.rows().max(1)) {
            for (slot, &d) in bg.iter_mut().zip(row) {
                *slot += d;
            }
        }
        dx.clear();
        dx.resize(n * self.input_size(), 0.0);
        self.w.value.matmul_t_to(dys, n, dx);
    }

    /// The layer's trainable parameters.
    pub fn params_mut(&mut self) -> [&mut Param; 2] {
        [&mut self.w, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dense::new(4, 2, &mut rng);
        let xs = vec![vec![0.0; 4]; 3];
        let (ys, _) = d.forward(&xs);
        assert_eq!(ys.len(), 3);
        assert!(ys.iter().all(|y| y.len() == 2));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(3, 2, &mut rng);
        let xs = vec![vec![0.3, -0.7, 0.5], vec![1.0, 0.0, -1.0]];
        let loss = |l: &Dense| -> f32 { l.forward(&xs).0.iter().flatten().sum() };
        let (_, cache) = layer.forward(&xs);
        let dys = vec![vec![1.0f32; 2]; 2];
        let dxs = layer.backward(&cache, &dys);
        let eps = 1e-3f32;
        for k in 0..6 {
            let analytic = layer.w.grad.data()[k];
            let mut l2 = layer.clone();
            l2.w.value.data_mut()[k] += eps;
            let up = loss(&l2);
            l2.w.value.data_mut()[k] -= 2.0 * eps;
            let down = loss(&l2);
            let numeric = (up - down) / (2.0 * eps);
            assert!((analytic - numeric).abs() < 1e-2, "w[{k}]");
        }
        // Input gradient = column sums of W for unit output gradient.
        for (j, &dx) in dxs[0].iter().enumerate().take(3) {
            let expected = layer.w.value.get(0, j) + layer.w.value.get(1, j);
            assert!((dx - expected).abs() < 1e-5);
        }
    }

    #[test]
    fn flat_paths_match_per_frame_paths() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Dense::new(3, 2, &mut rng);
        let xs = vec![
            vec![0.3, -0.7, 0.5],
            vec![1.0, 0.0, -1.0],
            vec![0.2, 0.9, 0.4],
        ];
        let flat: Vec<f32> = xs.iter().flatten().copied().collect();
        let mut out = Vec::new();
        layer.forward_flat(&flat, 3, &mut out);
        for (t, x) in xs.iter().enumerate() {
            assert_eq!(&out[t * 2..(t + 1) * 2], layer.apply(x).as_slice());
        }

        let dys = vec![vec![1.0f32, -0.5], vec![0.25, 2.0], vec![-1.5, 0.75]];
        let dys_flat: Vec<f32> = dys.iter().flatten().copied().collect();
        let mut per_frame = layer.clone();
        let (_, cache) = per_frame.forward(&xs);
        let dxs = per_frame.backward(&cache, &dys);
        let mut batched = layer.clone();
        let mut dx = Vec::new();
        batched.backward_flat(&flat, &dys_flat, 3, &mut dx);
        for (a, b) in batched.w.grad.data().iter().zip(per_frame.w.grad.data()) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(batched.b.grad.data(), per_frame.b.grad.data());
        for (t, dxt) in dxs.iter().enumerate() {
            assert_eq!(&dx[t * 3..(t + 1) * 3], dxt.as_slice());
        }
    }

    #[test]
    fn bias_gradient_accumulates_over_frames() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(2, 2, &mut rng);
        let xs = vec![vec![0.0; 2]; 4];
        let (_, cache) = layer.forward(&xs);
        let dys = vec![vec![1.0, 2.0]; 4];
        layer.backward(&cache, &dys);
        assert!((layer.b.grad.get(0, 0) - 4.0).abs() < 1e-6);
        assert!((layer.b.grad.get(1, 0) - 8.0).abs() < 1e-6);
    }
}
