//! Property-based tests for the cross-domain sensing substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thrubarrier_dsp::{gen, stats};
use thrubarrier_vibration::motion::BodyMotion;
use thrubarrier_vibration::{Accelerometer, Wearable};

/// RMS of the elementwise difference of two equal-length conversions.
fn diff_rms(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mut num = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        num += f64::from(x - y) * f64::from(x - y);
    }
    (num / a.len().max(1) as f64).sqrt()
}

/// Runs the fused engine and the staged oracle on the same seed and
/// gates their difference with a hybrid relative + absolute tolerance.
///
/// The gate is a tolerance, not bitwise equality, for two structural
/// reasons (see `thrubarrier_vibration::engine` docs): the staged chain
/// truncates the played signal to the input length and re-pads with
/// zeros before the coupling filter, while the fused path multiplies
/// both curves on the untruncated spectrum; and Parseval noise metering
/// integrates the whole padded block where the oracle's RMS sees only
/// the truncated samples. The relative term bounds those edge effects
/// (largest when the zero pad approaches half the FFT block — an
/// empirical sweep across devices, lengths, ADC modes and seeds peaks
/// near 17% of signal RMS at ~46% padding); the absolute term covers
/// conversions whose output sits at the sensor noise floor, where a
/// purely relative measure degenerates.
fn assert_paths_agree(w: &Wearable, sig: &[f32], sample_rate: u32, seed: u64) {
    let fused = w.convert(sig, sample_rate, &mut StdRng::seed_from_u64(seed));
    let staged = w.convert_staged(sig, sample_rate, &mut StdRng::seed_from_u64(seed));
    assert_eq!(fused.len(), staged.len());
    assert_eq!(fused.sample_rate(), staged.sample_rate());
    let d = diff_rms(fused.samples(), staged.samples());
    let gate = 0.15 * f64::from(stats::rms(staged.samples()))
        + 2.0 * f64::from(w.accelerometer.noise_floor);
    assert!(
        d <= gate,
        "fused/staged diff rms {d} exceeds gate {gate} for len {} at {sample_rate} Hz",
        sig.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn capture_length_is_decimated_input_length(
        n in 1usize..40_000,
        seed in 0u64..50,
    ) {
        let acc = Accelerometer::smartwatch_200hz();
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = vec![0.01f32; n];
        let vib = acc.capture(&sig, 16_000, &mut rng);
        prop_assert_eq!(vib.len(), n.div_ceil(80));
        prop_assert_eq!(vib.sample_rate(), 200);
    }

    #[test]
    fn capture_output_is_finite(seed in 0u64..50, amp in 0.0f32..0.5) {
        let acc = Accelerometer::smartwatch_200hz();
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = gen::chirp(100.0, 4_000.0, amp, 16_000, 0.5);
        let vib = acc.capture(&sig, 16_000, &mut rng);
        prop_assert!(vib.samples().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn coupling_gain_is_nonnegative_and_bounded(f in 0.0f32..8_000.0) {
        let acc = Accelerometer::smartwatch_200hz();
        let g = acc.coupling_gain(f);
        prop_assert!((0.0..=1.0).contains(&g));
    }

    #[test]
    fn louder_wideband_excitation_gives_stronger_vibration(
        seed in 0u64..40,
        amp in 0.02f32..0.2,
    ) {
        let w = Wearable::fossil_gen_5();
        let quiet = gen::chirp(500.0, 3_000.0, amp, 16_000, 1.0);
        let loud = gen::chirp(500.0, 3_000.0, amp * 3.0, 16_000, 1.0);
        let vq = w.convert(&quiet, 16_000, &mut StdRng::seed_from_u64(seed));
        let vl = w.convert(&loud, 16_000, &mut StdRng::seed_from_u64(seed));
        prop_assert!(vl.rms() > vq.rms());
    }

    #[test]
    fn conversion_snr_favors_high_frequencies(
        lo in 100.0f32..400.0,
        hi in 1_200.0f32..3_000.0,
    ) {
        let acc = Accelerometer::smartwatch_200hz();
        let low_tone = gen::sine(lo, 0.1, 16_000, 0.5);
        let high_tone = gen::sine(hi, 0.1, 16_000, 0.5);
        let snr_low = acc.conversion_snr_db(&low_tone, 16_000);
        let snr_high = acc.conversion_snr_db(&high_tone, 16_000);
        prop_assert!(
            snr_high > snr_low,
            "low {lo} Hz: {snr_low} dB, high {hi} Hz: {snr_high} dB"
        );
    }

    #[test]
    fn body_motion_stays_below_5hz(seed in 0u64..50, amp in 0.005f32..0.1) {
        let mut rng = StdRng::seed_from_u64(seed);
        let motion = BodyMotion { amplitude: amp, dominant_hz: 1.5 };
        let sig = motion.generate(1_000, 200, &mut rng);
        let mags = thrubarrier_dsp::fft::magnitude_spectrum(&sig, 1_024);
        let bin_hz = 200.0 / 1_024.0;
        let above: f32 = mags
            .iter()
            .enumerate()
            .filter(|(k, _)| (*k as f32) * bin_hz >= 6.0)
            .map(|(_, &m)| m * m)
            .sum();
        let total: f32 = mags.iter().map(|&m| m * m).sum();
        prop_assert!(above < total * 0.03, "above-6Hz share {}", above / total); // 3% allows finite-window leakage
    }

    #[test]
    fn fused_matches_staged_across_devices_and_signals(
        device in 0usize..2,
        seed in 0u64..30,
        lo in 80.0f32..600.0,
        span in 400.0f32..3_000.0,
        amp in 0.05f32..1.5,
        dur in 0.02f32..0.25,
    ) {
        let w = if device == 0 { Wearable::fossil_gen_5() } else { Wearable::moto_360() };
        let sig = gen::chirp(lo, lo + span, dur, 16_000, amp);
        assert_paths_agree(&w, &sig, 16_000, seed);
    }

    #[test]
    fn fused_matches_staged_at_48khz(
        seed in 0u64..20,
        hi in 2_000.0f32..8_000.0,
        amp in 0.1f32..1.0,
    ) {
        let w = Wearable::fossil_gen_5();
        let sig = gen::chirp(200.0, hi, 0.05, 48_000, amp);
        assert_paths_agree(&w, &sig, 48_000, seed);
    }

    #[test]
    fn fused_matches_staged_with_anti_alias_adc(
        device in 0usize..2,
        seed in 0u64..20,
        amp in 0.1f32..1.0,
    ) {
        let mut w = if device == 0 { Wearable::fossil_gen_5() } else { Wearable::moto_360() };
        w.accelerometer.anti_alias = true;
        let sig = gen::chirp(150.0, 3_500.0, 0.08, 16_000, amp);
        assert_paths_agree(&w, &sig, 16_000, seed);
    }

    #[test]
    fn fused_matches_staged_under_body_motion(
        seed in 0u64..20,
        amp in 0.1f32..1.0,
    ) {
        // Body motion is orders of magnitude stronger than the converted
        // signal, and both paths mix bit-identical interference — so the
        // relative gap should tighten, not loosen.
        let w = Wearable::fossil_gen_5().with_body_motion(BodyMotion::walking());
        let sig = gen::chirp(300.0, 2_500.0, 0.1, 16_000, amp);
        assert_paths_agree(&w, &sig, 16_000, seed);
    }

    #[test]
    fn fused_matches_staged_on_short_inputs(
        n in 0usize..400,
        seed in 0u64..20,
    ) {
        // Short / empty inputs stress padding edge cases (n < one ADC
        // period, n == 1 → single-bin spectrum).
        let w = Wearable::moto_360();
        let sig: Vec<f32> = (0..n).map(|i| 0.3 * (i as f32 * 0.7).sin()).collect();
        assert_paths_agree(&w, &sig, 16_000, seed);
    }

    #[test]
    fn empty_and_tiny_inputs_are_safe(n in 0usize..5, seed in 0u64..20) {
        let w = Wearable::fossil_gen_5();
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = vec![0.1f32; n];
        let vib = w.convert(&sig, 16_000, &mut rng);
        prop_assert!(vib.len() <= 1);
        prop_assert!(stats::rms(vib.samples()).is_finite());
    }
}
