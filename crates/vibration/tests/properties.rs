//! Property-based tests for the cross-domain sensing substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thrubarrier_dsp::{gen, stats};
use thrubarrier_vibration::motion::BodyMotion;
use thrubarrier_vibration::{Accelerometer, Wearable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn capture_length_is_decimated_input_length(
        n in 1usize..40_000,
        seed in 0u64..50,
    ) {
        let acc = Accelerometer::smartwatch_200hz();
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = vec![0.01f32; n];
        let vib = acc.capture(&sig, 16_000, &mut rng);
        prop_assert_eq!(vib.len(), n.div_ceil(80));
        prop_assert_eq!(vib.sample_rate(), 200);
    }

    #[test]
    fn capture_output_is_finite(seed in 0u64..50, amp in 0.0f32..0.5) {
        let acc = Accelerometer::smartwatch_200hz();
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = gen::chirp(100.0, 4_000.0, amp, 16_000, 0.5);
        let vib = acc.capture(&sig, 16_000, &mut rng);
        prop_assert!(vib.samples().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn coupling_gain_is_nonnegative_and_bounded(f in 0.0f32..8_000.0) {
        let acc = Accelerometer::smartwatch_200hz();
        let g = acc.coupling_gain(f);
        prop_assert!((0.0..=1.0).contains(&g));
    }

    #[test]
    fn louder_wideband_excitation_gives_stronger_vibration(
        seed in 0u64..40,
        amp in 0.02f32..0.2,
    ) {
        let w = Wearable::fossil_gen_5();
        let quiet = gen::chirp(500.0, 3_000.0, amp, 16_000, 1.0);
        let loud = gen::chirp(500.0, 3_000.0, amp * 3.0, 16_000, 1.0);
        let vq = w.convert(&quiet, 16_000, &mut StdRng::seed_from_u64(seed));
        let vl = w.convert(&loud, 16_000, &mut StdRng::seed_from_u64(seed));
        prop_assert!(vl.rms() > vq.rms());
    }

    #[test]
    fn conversion_snr_favors_high_frequencies(
        lo in 100.0f32..400.0,
        hi in 1_200.0f32..3_000.0,
    ) {
        let acc = Accelerometer::smartwatch_200hz();
        let low_tone = gen::sine(lo, 0.1, 16_000, 0.5);
        let high_tone = gen::sine(hi, 0.1, 16_000, 0.5);
        let snr_low = acc.conversion_snr_db(&low_tone, 16_000);
        let snr_high = acc.conversion_snr_db(&high_tone, 16_000);
        prop_assert!(
            snr_high > snr_low,
            "low {lo} Hz: {snr_low} dB, high {hi} Hz: {snr_high} dB"
        );
    }

    #[test]
    fn body_motion_stays_below_5hz(seed in 0u64..50, amp in 0.005f32..0.1) {
        let mut rng = StdRng::seed_from_u64(seed);
        let motion = BodyMotion { amplitude: amp, dominant_hz: 1.5 };
        let sig = motion.generate(1_000, 200, &mut rng);
        let mags = thrubarrier_dsp::fft::magnitude_spectrum(&sig, 1_024);
        let bin_hz = 200.0 / 1_024.0;
        let above: f32 = mags
            .iter()
            .enumerate()
            .filter(|(k, _)| (*k as f32) * bin_hz >= 6.0)
            .map(|(_, &m)| m * m)
            .sum();
        let total: f32 = mags.iter().map(|&m| m * m).sum();
        prop_assert!(above < total * 0.03, "above-6Hz share {}", above / total); // 3% allows finite-window leakage
    }

    #[test]
    fn empty_and_tiny_inputs_are_safe(n in 0usize..5, seed in 0u64..20) {
        let w = Wearable::fossil_gen_5();
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = vec![0.1f32; n];
        let vib = w.convert(&sig, 16_000, &mut rng);
        prop_assert!(vib.len() <= 1);
        prop_assert!(stats::rms(vib.samples()).is_finite());
    }
}
