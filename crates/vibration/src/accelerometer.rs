//! MEMS accelerometer model.

use rand::Rng;
use thrubarrier_dsp::{resample, response, stats, AudioBuffer};

/// Control point of the audio→vibration coupling response.
type ResponsePoint = (f32, f32); // (frequency Hz, linear gain)

/// A wearable MEMS accelerometer sampling at ~200 Hz.
///
/// See the crate-level docs for the five modelled effects. `capture`
/// applies them in physical order: coupling response → rectification
/// leak → aliasing ADC → level-dependent readout noise.
#[derive(Debug, Clone, PartialEq)]
pub struct Accelerometer {
    /// Output sampling rate in Hz (commercial wearables: ≤ 200 Hz).
    pub sample_rate: u32,
    /// Readout-noise coefficient: noise std per unit of *low-frequency*
    /// (≤ 500 Hz) coupled signal RMS. The paper's key asymmetry.
    pub low_freq_noise_coeff: f32,
    /// Constant sensor noise floor (standard deviation, sensor units).
    pub noise_floor: f32,
    /// Gain of the envelope-rectification leakage into 0–5 Hz.
    pub rectification_gain: f32,
    /// Ablation switch: when true, the ADC applies a proper
    /// anti-aliasing filter before decimation (real wearables do NOT —
    /// and the defense depends on the fold-down; see the ablation
    /// experiments).
    pub anti_alias: bool,
    response: Vec<ResponsePoint>,
    /// Cache key of the coupling-response curve, precomputed from the
    /// control points at construction so `capture` does not reallocate
    /// and rehash them per call.
    coupling_key: u64,
}

impl Accelerometer {
    /// Split frequency (Hz) below which excitation energy drives the
    /// readout amplifier's noise injection.
    pub const LOW_BAND_SPLIT_HZ: f32 = 500.0;

    /// A commercial smartwatch accelerometer (Fossil Gen 5 class):
    /// 200 Hz, strong low-frequency audio attenuation, good 1–3 kHz
    /// pickup with a resonance near 2.2 kHz.
    pub fn smartwatch_200hz() -> Self {
        Self::from_parts(
            200,
            1.2,
            2e-4,
            vec![
                (0.0, 1.0), // DC / body-motion band
                (5.0, 1.0),
                (20.0, 0.04),
                (100.0, 0.012),
                (500.0, 0.012),
                (800.0, 0.025),
                (1_200.0, 0.10),
                (1_600.0, 0.45),
                (2_200.0, 0.72), // mechanical resonance
                (3_000.0, 0.55),
                (4_000.0, 0.35),
                (6_000.0, 0.15),
                (8_000.0, 0.06),
            ],
        )
    }

    /// A slightly less sensitive accelerometer (Moto 360 class).
    pub fn moto_360() -> Self {
        let base = Accelerometer::smartwatch_200hz();
        let response = base
            .response
            .into_iter()
            .map(|(f, g)| if f >= 500.0 { (f, g * 0.85) } else { (f, g) })
            .collect();
        Self::from_parts(200, 1.35, 3e-4, response)
    }

    /// Assembles an accelerometer and stamps the coupling-curve cache
    /// key (a pure function of the control points).
    fn from_parts(
        sample_rate: u32,
        low_freq_noise_coeff: f32,
        noise_floor: f32,
        response: Vec<ResponsePoint>,
    ) -> Self {
        let params: Vec<f32> = response.iter().flat_map(|&(f, g)| [f, g]).collect();
        let coupling_key = response::curve_key(0x4143_435F_4350, &params);
        Accelerometer {
            sample_rate,
            low_freq_noise_coeff,
            noise_floor,
            rectification_gain: 1.0,
            anti_alias: false,
            response,
            coupling_key,
        }
    }

    /// The coupling gain from airborne/conductive audio at `freq_hz` to
    /// sensor output (log-frequency linear interpolation between the
    /// control points).
    pub fn coupling_gain(&self, freq_hz: f32) -> f32 {
        let pts = &self.response;
        if freq_hz <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (f0, g0) = w[0];
            let (f1, g1) = w[1];
            if freq_hz <= f1 {
                // Linear in log-frequency (guard the f0 = 0 point).
                let lf0 = f0.max(0.1).ln();
                let lf1 = f1.max(0.1).ln();
                let t = (freq_hz.max(0.1).ln() - lf0) / (lf1 - lf0);
                return g0 + (g1 - g0) * t.clamp(0.0, 1.0);
            }
        }
        pts.last().map_or(0.0, |p| p.1)
    }

    /// Fraction of the coupled signal's energy below `split_hz` — the
    /// quantity that drives readout-noise injection.
    ///
    /// This is the staged (oracle) formulation: a third full filter
    /// round-trip through a brick-wall curve. The fused engine meters
    /// the same quantity directly from the speaker-weighted spectrum
    /// via Parseval (see `crate::engine`).
    fn low_band_rms(signal: &[f32], sample_rate: u32, split_hz: f32) -> f32 {
        let key = response::curve_key(0x4143_435F_4C4F, &[split_hz]);
        let low = response::filter_cached(key, signal, sample_rate, move |f| {
            if f <= split_hz {
                1.0
            } else {
                0.0
            }
        });
        stats::rms(&low)
    }

    /// The coupling-response curve sampled for an `n_fft`-point FFT at
    /// `sample_rate`, from the per-thread curve cache (the same table
    /// `capture` filters through, so fused and staged conversions apply
    /// bit-identical gains).
    pub(crate) fn coupling_curve_table(
        &self,
        n_fft: usize,
        sample_rate: u32,
    ) -> std::sync::Arc<response::ResponseCurve> {
        response::cached_curve(self.coupling_key, n_fft, sample_rate, |f| {
            self.coupling_gain(f)
        })
    }

    /// Standard deviation of the injected readout noise for a given
    /// low-band excitation RMS.
    pub(crate) fn noise_std_for(&self, low_rms: f32) -> f32 {
        self.low_freq_noise_coeff * low_rms * 0.05 + self.noise_floor
    }

    /// Adds the rectification leak of `excitation` into `out`, in
    /// place: the energy envelope (low-passed |x|²) leaks into the
    /// 0–5 Hz band. Two cascaded one-pole low-passes at 2 Hz confine
    /// the leak below ~5 Hz (paper Fig. 7). `out` is the coupled
    /// signal, so mixing allocates nothing.
    pub(crate) fn add_rectification_leak(
        &self,
        excitation: &[f32],
        out: &mut [f32],
        audio_rate: u32,
    ) {
        let alpha = (-std::f32::consts::TAU * 2.0 / audio_rate as f32).exp();
        let (mut env1, mut env2) = (0.0f32, 0.0f32);
        for (o, &x) in out.iter_mut().zip(excitation) {
            env1 = alpha * env1 + (1.0 - alpha) * x * x;
            env2 = alpha * env2 + (1.0 - alpha) * env1;
            *o += self.rectification_gain * env2;
        }
    }

    /// Converts an audio-rate vibration excitation into the
    /// accelerometer's output: coupling response, rectification leak,
    /// aliasing decimation, level-dependent noise.
    ///
    /// `excitation` is the acoustic signal at the sensor (audio rate);
    /// the output is a vibration signal at [`Accelerometer::sample_rate`].
    pub fn capture<R: Rng + ?Sized>(
        &self,
        excitation: &[f32],
        audio_rate: u32,
        rng: &mut R,
    ) -> AudioBuffer {
        if excitation.is_empty() {
            return AudioBuffer::empty(self.sample_rate);
        }
        // 1. Mechanical/electrical coupling response.
        let mut coupled = response::filter_cached(self.coupling_key, excitation, audio_rate, |f| {
            self.coupling_gain(f)
        });

        // 2. Rectification leakage, added into the coupled signal in
        //    place (no `mixed` temporary).
        self.add_rectification_leak(excitation, &mut coupled, audio_rate);

        // 3. The ADC: real wearables decimate with NO anti-aliasing
        //    filter (the fold-down is what carries high-frequency speech
        //    evidence into the 0–100 Hz band); `anti_alias` exists for
        //    the ablation study.
        let factor = (audio_rate / self.sample_rate).max(1) as usize;
        let mut sampled = if self.anti_alias {
            resample::decimate(&coupled, factor, audio_rate).expect("factor >= 1 by construction")
        } else {
            resample::decimate_aliased(&coupled, factor).expect("factor >= 1 by construction")
        };

        // 4. Level-dependent readout noise: driven by the *pre-coupling*
        //    low-frequency content of the excitation (the amplifier sees
        //    the raw low-frequency pressure). The injected noise level is
        //    set by the conversion's overall low-frequency drive — one
        //    amplifier operating point per replay — so segments louder
        //    than the average (e.g. /aa/, /ao/) convert with better SNR
        //    and intrinsically weak segments with worse. This is the
        //    asymmetry behind both of the paper's selection criteria.
        let low_rms = Self::low_band_rms(excitation, audio_rate, Self::LOW_BAND_SPLIT_HZ);
        let noise_std = self.noise_std_for(low_rms);
        for v in &mut sampled {
            *v += noise_std * thrubarrier_dsp::gen::standard_normal(rng);
        }
        AudioBuffer::new(sampled, self.sample_rate)
    }

    /// Signal-to-injected-noise ratio the sensor would achieve for a
    /// given excitation — a diagnostic used by tests and ablations.
    pub fn conversion_snr_db(&self, excitation: &[f32], audio_rate: u32) -> f32 {
        let coupled = response::filter_cached(self.coupling_key, excitation, audio_rate, |f| {
            self.coupling_gain(f)
        });
        let signal_rms = stats::rms(&coupled);
        let low_rms = Self::low_band_rms(excitation, audio_rate, Self::LOW_BAND_SPLIT_HZ);
        let noise_std = self.noise_std_for(low_rms);
        20.0 * (signal_rms / noise_std.max(1e-12)).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::{gen, stats};

    #[test]
    fn response_attenuates_low_frequency_audio() {
        let acc = Accelerometer::smartwatch_200hz();
        // 85-500 Hz (speech fundamentals) couple far more weakly than
        // 1-3 kHz (the paper's core observation, Sec. IV-A).
        assert!(acc.coupling_gain(200.0) < 0.05);
        assert!(acc.coupling_gain(2_200.0) > 0.5);
        assert!(acc.coupling_gain(1_500.0) > 5.0 * acc.coupling_gain(300.0));
    }

    #[test]
    fn response_is_high_below_5hz() {
        let acc = Accelerometer::smartwatch_200hz();
        assert!(acc.coupling_gain(1.0) > 0.9);
        assert!(acc.coupling_gain(4.0) > 0.9);
        assert!(acc.coupling_gain(30.0) < 0.1);
    }

    #[test]
    fn capture_output_rate_and_length() {
        let acc = Accelerometer::smartwatch_200hz();
        let mut rng = StdRng::seed_from_u64(1);
        let sig = gen::sine(1_000.0, 0.1, 16_000, 1.0);
        let vib = acc.capture(&sig, 16_000, &mut rng);
        assert_eq!(vib.sample_rate(), 200);
        assert_eq!(vib.len(), 200);
    }

    #[test]
    fn high_frequency_tone_aliases_into_band() {
        // 2.25 kHz tone → aliases to |2250 - 11*200| = 50 Hz.
        let acc = Accelerometer::smartwatch_200hz();
        let mut rng = StdRng::seed_from_u64(2);
        let sig = gen::sine(2_250.0, 0.2, 16_000, 2.0);
        let vib = acc.capture(&sig, 16_000, &mut rng);
        let mags = thrubarrier_dsp::fft::magnitude_spectrum(vib.samples(), 512);
        let peak = stats::argmax(&mags[13..]).unwrap() + 13; // skip <5 Hz leak
        let hz = peak as f32 * 200.0 / 512.0;
        assert!((hz - 50.0).abs() < 4.0, "aliased peak at {hz} Hz");
    }

    #[test]
    fn wideband_converts_with_higher_snr_than_lowband() {
        // The asymmetry behind the whole defense: a low-frequency-
        // dominated (thru-barrier) sound converts with far lower SNR
        // than a wideband (user) sound of equal level.
        let acc = Accelerometer::smartwatch_200hz();
        let user_like = gen::chirp(150.0, 3_000.0, 0.1, 16_000, 1.0);
        let attack_like = gen::chirp(100.0, 450.0, 0.1, 16_000, 1.0);
        let snr_user = acc.conversion_snr_db(&user_like, 16_000);
        let snr_attack = acc.conversion_snr_db(&attack_like, 16_000);
        assert!(
            snr_user > snr_attack + 10.0,
            "user {snr_user} dB vs attack {snr_attack} dB"
        );
    }

    #[test]
    fn capture_of_silence_is_noise_floor() {
        let acc = Accelerometer::smartwatch_200hz();
        let mut rng = StdRng::seed_from_u64(3);
        let vib = acc.capture(&vec![0.0; 16_000], 16_000, &mut rng);
        let rms = vib.rms();
        assert!((rms - acc.noise_floor).abs() < acc.noise_floor, "rms {rms}");
    }

    #[test]
    fn rectification_puts_energy_below_5hz() {
        let acc = Accelerometer::smartwatch_200hz();
        let mut rng = StdRng::seed_from_u64(4);
        // Amplitude-modulated tone: envelope at 1 Hz.
        let fs = 16_000u32;
        let sig: Vec<f32> = (0..fs * 4)
            .map(|i| {
                let t = i as f32 / fs as f32;
                (0.2 + 0.15 * (std::f32::consts::TAU * 1.0 * t).sin())
                    * (std::f32::consts::TAU * 2_000.0 * t).sin()
            })
            .collect();
        let vib = acc.capture(&sig, fs, &mut rng);
        let mags = thrubarrier_dsp::fft::magnitude_spectrum(vib.samples(), 1_024);
        // Bin width = 200/1024 Hz; energy at 1-2 Hz should rival or beat
        // any single aliased bin.
        let low: f32 = mags[1..26].iter().sum(); // <5 Hz
        let mid: f32 = mags[52..].iter().sum::<f32>() / (mags.len() - 52) as f32 * 25.0;
        assert!(low > mid, "low {low} vs scaled mid {mid}");
    }

    #[test]
    fn empty_excitation_yields_empty_capture() {
        let acc = Accelerometer::smartwatch_200hz();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(acc.capture(&[], 16_000, &mut rng).is_empty());
    }

    #[test]
    fn moto_360_is_noisier() {
        let fossil = Accelerometer::smartwatch_200hz();
        let moto = Accelerometer::moto_360();
        assert!(moto.noise_floor > fossil.noise_floor);
        assert!(moto.coupling_gain(2_200.0) < fossil.coupling_gain(2_200.0));
    }
}
