//! Chirp-response characterization of the accelerometer (paper Fig. 7).
//!
//! The paper demonstrates the accelerometer's 0–5 Hz sensitivity artifact
//! by playing a 500–2500 Hz chirp at the wearable and inspecting the
//! vibration spectrogram: despite the stimulus containing *no* energy
//! below 500 Hz, the sensor output shows a strong 0–5 Hz band. This
//! module reproduces that experiment.

use crate::wearable::Wearable;
use rand::Rng;
use thrubarrier_dsp::{Spectrogram, Stft};

/// Result of the chirp-response experiment.
#[derive(Debug, Clone)]
pub struct ChirpResponse {
    /// Power spectrogram of the captured vibration signal.
    pub spectrogram: Spectrogram,
    /// Mean power in the 0–5 Hz band.
    pub low_band_power: f32,
    /// Mean power in the 5–100 Hz band.
    pub rest_band_power: f32,
}

/// Plays a `f0`–`f1` Hz chirp of `duration` seconds at the wearable and
/// returns the vibration spectrogram plus band powers (Fig. 7).
pub fn chirp_response<R: Rng + ?Sized>(
    wearable: &Wearable,
    f0: f32,
    f1: f32,
    duration: f32,
    amplitude: f32,
    rng: &mut R,
) -> ChirpResponse {
    let audio_rate = 16_000u32;
    let chirp = thrubarrier_dsp::gen::chirp(f0, f1, amplitude, audio_rate, duration);
    let vib = wearable.accelerometer.capture(&chirp, audio_rate, rng);
    let stft = Stft::vibration_default();
    let spectrogram = stft.power_spectrogram(vib.samples(), vib.sample_rate());
    let mut low = 0.0f64;
    let mut low_n = 0usize;
    let mut rest = 0.0f64;
    let mut rest_n = 0usize;
    for row in spectrogram.rows() {
        for (b, &v) in row.iter().enumerate() {
            let f = spectrogram.bin_frequency(b);
            if f <= 5.0 {
                low += v as f64;
                low_n += 1;
            } else {
                rest += v as f64;
                rest_n += 1;
            }
        }
    }
    ChirpResponse {
        spectrogram,
        low_band_power: (low / low_n.max(1) as f64) as f32,
        rest_band_power: (rest / rest_n.max(1) as f64) as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chirp_shows_strong_low_frequency_artifact() {
        // Paper Fig. 7: a 500-2500 Hz chirp produces a dominant 0-5 Hz
        // response even though the stimulus has no energy there.
        let w = Wearable::fossil_gen_5();
        let mut rng = StdRng::seed_from_u64(1);
        let r = chirp_response(&w, 500.0, 2_500.0, 2.0, 0.2, &mut rng);
        assert!(
            r.low_band_power > 5.0 * r.rest_band_power,
            "low {} vs rest {}",
            r.low_band_power,
            r.rest_band_power
        );
    }

    #[test]
    fn artifact_scales_with_stimulus_level() {
        let w = Wearable::fossil_gen_5();
        let mut rng = StdRng::seed_from_u64(2);
        let quiet = chirp_response(&w, 500.0, 2_500.0, 1.0, 0.05, &mut rng);
        let loud = chirp_response(&w, 500.0, 2_500.0, 1.0, 0.4, &mut rng);
        assert!(loud.low_band_power > quiet.low_band_power * 4.0);
    }

    #[test]
    fn spectrogram_has_expected_geometry() {
        let w = Wearable::fossil_gen_5();
        let mut rng = StdRng::seed_from_u64(3);
        let r = chirp_response(&w, 500.0, 2_500.0, 2.0, 0.2, &mut rng);
        // 2 s at 200 Hz, 64-sample window / 32 hop -> (400-64)/32+1 = 11.
        assert_eq!(r.spectrogram.frames(), 11);
        assert_eq!(r.spectrogram.bins(), 33);
    }
}
