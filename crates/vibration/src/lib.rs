//! Cross-domain sensing substrate: the wearable speaker → accelerometer
//! channel.
//!
//! The defense converts audio recordings into the **vibration domain** by
//! replaying them through the wearable's built-in speaker and capturing
//! the conductive vibrations with its accelerometer (paper Sec. IV-A,
//! VI-A). This crate models that channel with the five physical effects
//! the paper's detector depends on, each implemented as a separate,
//! individually-testable stage:
//!
//! 1. **Transducer frequency response** ([`accelerometer`]):
//!    accelerometers attenuate low-frequency *audio* (85–500 Hz) strongly
//!    but pick up 1–3 kHz speech energy well (and are extremely sensitive
//!    below 5 Hz, their design band for body motion).
//! 2. **Aliasing** — the 200 Hz ADC samples with no acoustic
//!    anti-aliasing filter, so audio energy folds into 0–100 Hz
//!    (paper's "ambiguous signal conversion" challenge, which the
//!    detector turns into a feature).
//! 3. **Low-frequency-driven amplifier noise** — per the paper's
//!    reference [Wu et al., APCCAS'16], the readout amplifier injects
//!    random noise when converting low-frequency-dominated signals; this
//!    is *the* effect that makes thru-barrier attack sounds noisy in the
//!    vibration domain and drives their 2-D correlation down.
//! 4. **Rectification leakage** into 0–5 Hz proportional to the signal's
//!    energy envelope (the strong 0–5 Hz band of paper Fig. 7, removed
//!    by the defense's spectrogram crop).
//! 5. **Body-motion interference** at 0.3–3.5 Hz ([`motion`]), removed by
//!    the same crop plus a high-pass filter.
//!
//! Production conversions run through the fused single-transform
//! [`engine::ConversionEngine`] (one forward FFT, curve multiplies on the
//! shared spectrum, Parseval noise metering); the staged per-effect chain
//! is kept as [`Wearable::convert_staged`], the tolerance-gated parity
//! oracle.
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use thrubarrier_dsp::gen;
//! use thrubarrier_vibration::Wearable;
//!
//! let wearable = Wearable::fossil_gen_5();
//! let mut rng = StdRng::seed_from_u64(1);
//! // A wideband (user-like) sound converts cleanly...
//! let speech = gen::chirp(200.0, 3_000.0, 0.1, 16_000, 1.0);
//! let vib = wearable.convert(&speech, 16_000, &mut rng);
//! assert_eq!(vib.sample_rate(), 200);
//! ```

#![warn(missing_docs)]

pub mod accelerometer;
pub mod chirp;
pub mod engine;
pub mod motion;
pub mod wearable;

pub use accelerometer::Accelerometer;
pub use engine::{with_engine, ConversionEngine, ConversionPath};
pub use wearable::{Wearable, WearableSpeaker};
