//! Fused single-transform conversion engine.
//!
//! The staged conversion chain ([`Wearable::convert_staged`]) runs
//! **three** independent frequency-domain filter round-trips per
//! conversion — speaker band-limit, accelerometer coupling, and the
//! brick-wall low-band pass that meters readout-noise drive — each a
//! forward FFT plus an inverse FFT plus a full-size temporary. All
//! three operate on the same spectrum, so the engine collapses them
//! into **one forward transform**:
//!
//! 1. forward real FFT of the recording (`next_pow2` padded, planned);
//! 2. multiply the spectrum by the cached speaker curve, inverse once
//!    for the time-domain `played` signal (needed only because the
//!    rectification leak is a time-domain envelope follower);
//! 3. meter the low-band RMS **directly on the speaker-weighted
//!    spectrum via Parseval** — no third filter pass, no full-size
//!    low-band temporary;
//! 4. multiply further by the cached coupling curve, inverse once for
//!    the `coupled` signal.
//!
//! That is 1 forward + 2 inverse transforms instead of 3 + 3. The leak
//! and body-motion interference are then added in place, and the ADC /
//! noise stages run unchanged. Curve tables come from the same
//! per-thread cache the staged chain uses, so fused and staged
//! conversions multiply bit-identical gains; the results still differ
//! at tolerance level (not bitwise) because the staged chain truncates
//! the intermediate `played` signal back to the input length before
//! re-transforming (re-zeroing the pad region the combined-curve
//! product keeps), and because Parseval metering integrates the whole
//! padded block where the oracle measures only the truncated samples.
//! Parity is therefore gated by tolerance proptests against the kept
//! oracle, exactly like the correlation engine against
//! `cross_correlate_time`.
//!
//! [`ConversionEngine`] owns the spectrum/signal scratch (the
//! `GemmScratch` pattern), and [`with_engine`] hands out a per-thread
//! instance so steady-state conversions allocate only their output.
//! [`ConversionEngine::convert_pair`] converts a recording pair —
//! `DefenseSystem::vibration_score`'s shape — through one engine
//! borrow and one warm plan/curve set.

use crate::wearable::Wearable;
use rand::Rng;
use std::cell::RefCell;
use thrubarrier_dsp::{fft, gen, resample, AudioBuffer, Complex};

/// Which implementation a [`Wearable::convert`] call runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConversionPath {
    /// The fused single-transform engine (this module).
    #[default]
    Fused,
    /// The staged per-effect chain — the parity oracle.
    Staged,
}

/// Reusable scratch for fused audio→vibration conversions.
///
/// Holds the half-spectrum and time-domain working buffers; FFT plans
/// and sampled response curves come from the dsp crate's per-thread
/// caches. One engine converts any number of signals of any length —
/// buffers grow to the largest conversion seen and are reused.
#[derive(Debug, Default)]
pub struct ConversionEngine {
    /// Half-spectrum of the padded recording (`n/2 + 1` bins).
    spec: Vec<Complex>,
    /// Speaker-filtered time-domain signal (drives the leak envelope).
    played: Vec<f32>,
    /// Coupling-filtered signal, later mixed with the leak in place.
    coupled: Vec<f32>,
}

impl ConversionEngine {
    /// Creates an engine with empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cross-domain conversion of one recording on the path selected by
    /// `wearable.conversion`. Semantics match
    /// [`Wearable::convert_staged`]: same output rate and length, same
    /// RNG draw sequence, tolerance-level numeric agreement.
    pub fn convert<R: Rng + ?Sized>(
        &mut self,
        wearable: &Wearable,
        recording: &[f32],
        sample_rate: u32,
        rng: &mut R,
    ) -> AudioBuffer {
        let _span = thrubarrier_obs::span!("vibration.convert");
        match wearable.conversion {
            ConversionPath::Fused => {
                thrubarrier_obs::counter!("vibration.convert.path.fused").incr();
                self.convert_fused(wearable, recording, sample_rate, rng)
            }
            ConversionPath::Staged => {
                thrubarrier_obs::counter!("vibration.convert.path.staged").incr();
                wearable.convert_staged(recording, sample_rate, rng)
            }
        }
    }

    /// Converts a recording pair — the VA recording and the wearable
    /// recording of `DefenseSystem::vibration_score` — back-to-back
    /// through one engine borrow, sharing warm plans, curve tables and
    /// scratch across both conversions. Equivalent to two sequential
    /// [`ConversionEngine::convert`] calls on the same RNG.
    pub fn convert_pair<R: Rng + ?Sized>(
        &mut self,
        wearable: &Wearable,
        va_audio: &[f32],
        wearable_audio: &[f32],
        sample_rate: u32,
        rng: &mut R,
    ) -> (AudioBuffer, AudioBuffer) {
        let _span = thrubarrier_obs::span!("vibration.convert_pair");
        let a = self.convert(wearable, va_audio, sample_rate, rng);
        let b = self.convert(wearable, wearable_audio, sample_rate, rng);
        (a, b)
    }

    /// The fused conversion: one forward transform, two curve
    /// multiplies, two inverse transforms, Parseval noise metering,
    /// in-place leak / interference mixing.
    fn convert_fused<R: Rng + ?Sized>(
        &mut self,
        wearable: &Wearable,
        recording: &[f32],
        sample_rate: u32,
        rng: &mut R,
    ) -> AudioBuffer {
        let acc = &wearable.accelerometer;
        if recording.is_empty() {
            let mut vib = AudioBuffer::empty(acc.sample_rate);
            if let Some(motion) = &wearable.body_motion {
                // The staged chain draws the three phase values even for
                // an empty capture; match it so RNG streams stay aligned.
                motion.add_into(vib.samples_mut(), acc.sample_rate, rng);
            }
            return vib;
        }
        let len = recording.len();
        let n = fft::next_pow2(len);

        // One forward transform of the padded recording.
        fft::half_spectrum_into(recording, n, &mut self.spec);

        // Speaker band-limit on the spectrum (same cached table
        // `WearableSpeaker::play` filters through).
        wearable
            .speaker
            .response_curve(n, sample_rate)
            .apply_to_spectrum(&mut self.spec);

        // Readout-noise drive, metered on the speaker-weighted spectrum:
        // the staged chain low-pass-filters the played signal a third
        // time just to take an RMS; by Parseval that RMS is a weighted
        // bin-energy sum over the low band.
        let low_rms = low_band_rms_parseval(
            &self.spec,
            n,
            len,
            sample_rate,
            crate::Accelerometer::LOW_BAND_SPLIT_HZ,
        );

        // Time-domain played signal — needed only for the rectification
        // leak's envelope follower.
        self.played.clear();
        fft::real_inverse_into(&self.spec, n, &mut self.played);
        self.played.truncate(len);

        // Coupling response stacked on the same spectrum, then the
        // second (and last) inverse transform.
        acc.coupling_curve_table(n, sample_rate)
            .apply_to_spectrum(&mut self.spec);
        self.coupled.clear();
        fft::real_inverse_into(&self.spec, n, &mut self.coupled);
        self.coupled.truncate(len);

        // Rectification leak, mixed into the coupled signal in place.
        acc.add_rectification_leak(&self.played, &mut self.coupled, sample_rate);

        // The ADC (no anti-aliasing by default: the fold-down is the
        // defense's signal), then level-dependent readout noise.
        let factor = (sample_rate / acc.sample_rate).max(1) as usize;
        let mut sampled = if acc.anti_alias {
            resample::decimate(&self.coupled, factor, sample_rate)
                .expect("factor >= 1 by construction")
        } else {
            resample::decimate_aliased(&self.coupled, factor).expect("factor >= 1 by construction")
        };
        let noise_std = acc.noise_std_for(low_rms);
        for v in &mut sampled {
            *v += noise_std * gen::standard_normal(rng);
        }

        let mut vib = AudioBuffer::new(sampled, acc.sample_rate);
        if let Some(motion) = &wearable.body_motion {
            motion.add_into(vib.samples_mut(), acc.sample_rate, rng);
        }
        vib
    }
}

/// RMS of the `<= split_hz` band of the length-`len` signal whose
/// padded half-spectrum is `spec`, via Parseval's theorem: the energy
/// of the brick-wall-filtered signal equals the masked bin-energy sum
/// divided by the transform length, so no inverse transform (and no
/// full-size temporary) is needed to meter it.
///
/// Bin `k` of an `n`-point real FFT carries weight 2 except DC and
/// Nyquist, which appear once in the full spectrum. The band edge uses
/// the same `k * (sample_rate / n) <= split_hz` comparison the staged
/// chain's sampled brick-wall curve evaluates, so both paths mask the
/// identical bin set. The sum runs in f64: it is one scalar per
/// conversion and the staged oracle accumulates in time domain where
/// energy is spread over thousands of samples, so the cheap extra
/// precision keeps the parity gap down to the genuine
/// truncation-vs-padding difference.
fn low_band_rms_parseval(
    spec: &[Complex],
    n: usize,
    len: usize,
    sample_rate: u32,
    split_hz: f32,
) -> f32 {
    let bin_hz = sample_rate as f32 / n as f32;
    let mut energy = 0.0f64;
    for (k, c) in spec.iter().enumerate() {
        if k as f32 * bin_hz > split_hz {
            break;
        }
        let weight = if k == 0 || k == n / 2 { 1.0 } else { 2.0 };
        energy += weight * f64::from(c.norm_sq());
    }
    ((energy / n as f64 / len as f64).sqrt()) as f32
}

thread_local! {
    static ENGINE: RefCell<ConversionEngine> = RefCell::new(ConversionEngine::new());
}

/// Runs `f` with this thread's [`ConversionEngine`] — the per-thread
/// scratch-reuse entry point ([`Wearable::convert`] goes through it,
/// and pair call sites use it to reach
/// [`ConversionEngine::convert_pair`]).
///
/// # Panics
///
/// Panics if `f` re-enters `with_engine` on the same thread (the
/// engine is a single per-thread instance behind a `RefCell`).
pub fn with_engine<R>(f: impl FnOnce(&mut ConversionEngine) -> R) -> R {
    ENGINE.with(|e| f(&mut e.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::BodyMotion;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::stats;

    #[test]
    fn fused_output_has_staged_rate_and_length() {
        let w = Wearable::fossil_gen_5();
        let mut rng = StdRng::seed_from_u64(1);
        let sig = thrubarrier_dsp::gen::chirp(200.0, 3_000.0, 0.1, 16_000, 1.0);
        let vib = with_engine(|e| e.convert(&w, &sig, 16_000, &mut rng));
        assert_eq!(vib.sample_rate(), 200);
        assert_eq!(vib.len(), 200);
        assert!(vib.rms() > 0.0);
    }

    #[test]
    fn convert_pair_is_two_sequential_converts() {
        let w = Wearable::fossil_gen_5().with_body_motion(BodyMotion::walking());
        let a = thrubarrier_dsp::gen::chirp(150.0, 3_000.0, 0.1, 16_000, 0.7);
        let b = thrubarrier_dsp::gen::chirp(300.0, 2_000.0, 0.1, 16_000, 0.5);
        let mut rng_pair = StdRng::seed_from_u64(9);
        let (pa, pb) = with_engine(|e| e.convert_pair(&w, &a, &b, 16_000, &mut rng_pair));
        let mut rng_seq = StdRng::seed_from_u64(9);
        let sa = w.convert(&a, 16_000, &mut rng_seq);
        let sb = w.convert(&b, 16_000, &mut rng_seq);
        assert_eq!(pa.samples(), sa.samples());
        assert_eq!(pb.samples(), sb.samples());
    }

    #[test]
    fn staged_path_selector_reproduces_oracle_bitwise() {
        let mut w = Wearable::moto_360();
        w.conversion = ConversionPath::Staged;
        let sig = thrubarrier_dsp::gen::chirp(100.0, 4_000.0, 0.2, 16_000, 0.6);
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let via_engine = w.convert(&sig, 16_000, &mut rng_a);
        let direct = w.convert_staged(&sig, 16_000, &mut rng_b);
        assert_eq!(via_engine.samples(), direct.samples());
    }

    #[test]
    fn parseval_metering_matches_oracle_low_band_rms() {
        // Parseval on the speaker-weighted spectrum vs the staged
        // chain's filter-then-rms: same quantity up to the pad-region
        // energy the oracle truncates away.
        let w = Wearable::fossil_gen_5();
        let sig = thrubarrier_dsp::gen::chirp(100.0, 3_000.0, 0.12, 16_000, 1.0);
        let played = w.speaker.play(&sig, 16_000);
        let n = fft::next_pow2(sig.len());
        let mut spec = Vec::new();
        fft::half_spectrum_into(&sig, n, &mut spec);
        w.speaker
            .response_curve(n, 16_000)
            .apply_to_spectrum(&mut spec);
        let fused = low_band_rms_parseval(
            &spec,
            n,
            sig.len(),
            16_000,
            crate::Accelerometer::LOW_BAND_SPLIT_HZ,
        );
        let key = thrubarrier_dsp::response::curve_key(0x4143_435F_4C4F, &[500.0f32]);
        let low = thrubarrier_dsp::response::filter_cached(key, &played, 16_000, |f| {
            if f <= 500.0 {
                1.0
            } else {
                0.0
            }
        });
        let oracle = stats::rms(&low);
        let rel = (fused - oracle).abs() / oracle.max(1e-12);
        assert!(rel < 0.05, "fused {fused} vs oracle {oracle} (rel {rel})");
    }

    #[test]
    fn empty_recording_keeps_rng_stream_aligned_with_staged() {
        let w = Wearable::fossil_gen_5().with_body_motion(BodyMotion::walking());
        let mut rng_fused = StdRng::seed_from_u64(5);
        let mut rng_staged = StdRng::seed_from_u64(5);
        let fused = w.convert(&[], 16_000, &mut rng_fused);
        let staged = w.convert_staged(&[], 16_000, &mut rng_staged);
        assert!(fused.is_empty() && staged.is_empty());
        // Both paths must have consumed the same number of draws.
        use rand::Rng as _;
        assert_eq!(rng_fused.gen::<u64>(), rng_staged.gen::<u64>());
    }
}
