//! Wearable device presets and the audio→vibration conversion.

use crate::accelerometer::Accelerometer;
use crate::engine::{self, ConversionPath};
use crate::motion::BodyMotion;
use rand::Rng;
use thrubarrier_dsp::AudioBuffer;

/// The wearable's built-in speaker: a tiny transducer with a narrow
/// reproduction band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearableSpeaker {
    /// Low reproduction corner in Hz.
    pub low_hz: f32,
    /// High reproduction corner in Hz.
    pub high_hz: f32,
}

impl WearableSpeaker {
    /// A smartwatch-class micro speaker.
    pub fn smartwatch() -> Self {
        WearableSpeaker {
            low_hz: 250.0,
            high_hz: 7_500.0,
        }
    }

    /// Plays a signal through the speaker (band-limiting only; micro
    /// speakers at replay levels stay essentially linear).
    pub fn play(&self, signal: &[f32], sample_rate: u32) -> Vec<f32> {
        if signal.is_empty() {
            return Vec::new();
        }
        let n = thrubarrier_dsp::fft::next_pow2(signal.len());
        self.response_curve(n, sample_rate).filter(signal)
    }

    /// The speaker's reproduction curve sampled for an `n_fft`-point
    /// FFT at `sample_rate`, from the per-thread curve cache. Shared
    /// between [`WearableSpeaker::play`] and the fused conversion
    /// engine, so both paths multiply bit-identical gain tables.
    pub(crate) fn response_curve(
        &self,
        n_fft: usize,
        sample_rate: u32,
    ) -> std::sync::Arc<thrubarrier_dsp::response::ResponseCurve> {
        let lo = self.low_hz;
        let hi = self.high_hz.min(sample_rate as f32 / 2.0 * 0.98);
        let key = thrubarrier_dsp::response::curve_key(0x5753_504B, &[lo, hi]);
        thrubarrier_dsp::response::cached_curve(key, n_fft, sample_rate, move |f| {
            if f < lo {
                (f / lo).powi(2)
            } else if f > hi {
                (hi / f).powi(2)
            } else {
                1.0
            }
        })
    }
}

/// A wearable device: speaker + accelerometer (+ optional wearer motion).
///
/// `convert` is the paper's cross-domain sensing primitive: replay an
/// audio recording with the built-in speaker and capture the conductive
/// vibration with the built-in accelerometer.
#[derive(Debug, Clone, PartialEq)]
pub struct Wearable {
    /// Device name (for reports).
    pub name: &'static str,
    /// The built-in speaker used for replay.
    pub speaker: WearableSpeaker,
    /// The built-in accelerometer.
    pub accelerometer: Accelerometer,
    /// Interference from the wearer's movement, if simulated.
    pub body_motion: Option<BodyMotion>,
    /// Which conversion implementation [`Wearable::convert`] runs: the
    /// fused single-transform engine (default) or the staged per-effect
    /// chain kept as the parity oracle.
    pub conversion: ConversionPath,
}

impl Wearable {
    /// Fossil Gen 5 smartwatch (the paper's primary device).
    pub fn fossil_gen_5() -> Self {
        Wearable {
            name: "Fossil Gen 5",
            speaker: WearableSpeaker::smartwatch(),
            accelerometer: Accelerometer::smartwatch_200hz(),
            body_motion: None,
            conversion: ConversionPath::Fused,
        }
    }

    /// Moto 360 (2020) smartwatch (the paper's secondary device).
    pub fn moto_360() -> Self {
        Wearable {
            name: "Moto 360",
            speaker: WearableSpeaker::smartwatch(),
            accelerometer: Accelerometer::moto_360(),
            body_motion: None,
            conversion: ConversionPath::Fused,
        }
    }

    /// Returns a copy with body-motion interference enabled.
    pub fn with_body_motion(mut self, motion: BodyMotion) -> Self {
        self.body_motion = Some(motion);
        self
    }

    /// Cross-domain conversion: replays `recording` through the built-in
    /// speaker and captures it with the accelerometer, returning the
    /// vibration-domain signal (at the accelerometer rate).
    ///
    /// Runs through the per-thread [`crate::engine::ConversionEngine`]
    /// on the path selected by [`Wearable::conversion`]. Batch call
    /// sites that convert two recordings back-to-back should prefer
    /// [`crate::engine::with_engine`] +
    /// [`crate::engine::ConversionEngine::convert_pair`].
    pub fn convert<R: Rng + ?Sized>(
        &self,
        recording: &[f32],
        sample_rate: u32,
        rng: &mut R,
    ) -> AudioBuffer {
        engine::with_engine(|e| e.convert(self, recording, sample_rate, rng))
    }

    /// The staged per-effect conversion chain: speaker band-limit
    /// filter, coupling filter, rectification leak, ADC decimation,
    /// level-dependent noise, body motion — each stage a separate pass.
    ///
    /// Kept as the parity oracle for the fused engine (the
    /// `cross_correlate_time` pattern): mathematically the same
    /// computation, structured for auditability rather than speed.
    pub fn convert_staged<R: Rng + ?Sized>(
        &self,
        recording: &[f32],
        sample_rate: u32,
        rng: &mut R,
    ) -> AudioBuffer {
        let played = self.speaker.play(recording, sample_rate);
        let mut vib = self.accelerometer.capture(&played, sample_rate, rng);
        if let Some(motion) = &self.body_motion {
            let rate = vib.sample_rate();
            motion.add_into(vib.samples_mut(), rate, rng);
        }
        vib
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::{gen, stats};

    #[test]
    fn speaker_band_limits() {
        let sp = WearableSpeaker::smartwatch();
        let low = gen::sine(60.0, 0.5, 16_000, 0.5);
        let mid = gen::sine(1_000.0, 0.5, 16_000, 0.5);
        let low_out = stats::rms(&sp.play(&low, 16_000));
        let mid_out = stats::rms(&sp.play(&mid, 16_000));
        assert!(mid_out > 5.0 * low_out);
    }

    #[test]
    fn convert_produces_200hz_vibration() {
        let w = Wearable::fossil_gen_5();
        let mut rng = StdRng::seed_from_u64(1);
        let speech = gen::chirp(200.0, 3_000.0, 0.1, 16_000, 1.0);
        let vib = w.convert(&speech, 16_000, &mut rng);
        assert_eq!(vib.sample_rate(), 200);
        assert_eq!(vib.len(), 200);
        assert!(vib.rms() > 0.0);
    }

    #[test]
    fn conversions_of_same_recording_share_structure() {
        // Two independent conversions of the same wideband recording
        // must correlate strongly in their >5 Hz spectra (this is what
        // lets the detector accept legitimate users).
        let w = Wearable::fossil_gen_5();
        let mut rng = StdRng::seed_from_u64(2);
        let speech = gen::chirp(600.0, 3_000.0, 0.1, 16_000, 2.0);
        let v1 = w.convert(&speech, 16_000, &mut rng);
        let v2 = w.convert(&speech, 16_000, &mut rng);
        let stft = thrubarrier_dsp::Stft::vibration_default();
        let mut s1 = stft.power_spectrogram(v1.samples(), 200);
        let mut s2 = stft.power_spectrogram(v2.samples(), 200);
        s1.crop_low_frequencies(5.0);
        s2.crop_low_frequencies(5.0);
        let r = thrubarrier_dsp::correlate::spectrogram_correlation(&s1, &s2).unwrap();
        assert!(r > 0.7, "correlation {r}");
    }

    #[test]
    fn low_frequency_recording_converts_noisily() {
        // A low-frequency-dominated (thru-barrier-like) recording should
        // produce conversions that do NOT correlate well.
        let w = Wearable::fossil_gen_5();
        let mut rng = StdRng::seed_from_u64(3);
        let attack = gen::chirp(260.0, 480.0, 0.02, 16_000, 2.0);
        let v1 = w.convert(&attack, 16_000, &mut rng);
        let v2 = w.convert(&attack, 16_000, &mut rng);
        let stft = thrubarrier_dsp::Stft::vibration_default();
        let mut s1 = stft.power_spectrogram(v1.samples(), 200);
        let mut s2 = stft.power_spectrogram(v2.samples(), 200);
        s1.crop_low_frequencies(5.0);
        s2.crop_low_frequencies(5.0);
        let r = thrubarrier_dsp::correlate::spectrogram_correlation(&s1, &s2).unwrap();
        assert!(r < 0.5, "correlation {r}");
    }

    #[test]
    fn body_motion_adds_low_frequency_energy() {
        let quiet = Wearable::fossil_gen_5();
        let moving = Wearable::fossil_gen_5().with_body_motion(BodyMotion::walking());
        let mut rng1 = StdRng::seed_from_u64(4);
        let mut rng2 = StdRng::seed_from_u64(4);
        let speech = gen::chirp(600.0, 3_000.0, 0.05, 16_000, 2.0);
        let v_quiet = quiet.convert(&speech, 16_000, &mut rng1);
        let v_moving = moving.convert(&speech, 16_000, &mut rng2);
        assert!(v_moving.rms() > 2.0 * v_quiet.rms());
    }

    #[test]
    fn device_presets_differ() {
        assert_ne!(Wearable::fossil_gen_5(), Wearable::moto_360());
        assert_eq!(Wearable::fossil_gen_5().name, "Fossil Gen 5");
    }
}
