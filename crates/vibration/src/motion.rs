//! Body-motion interference.
//!
//! Daily activities impose 0.3–3.5 Hz accelerations on a wrist-worn
//! device (the paper cites Plasqui et al.). The defense removes them with
//! the ≤ 5 Hz spectrogram crop plus a high-pass filter; this module
//! generates the interference so that robustness can be tested.

use rand::Rng;

/// A body-motion interference generator: a mixture of low-frequency
/// sinusoids with random phases, in sensor units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyMotion {
    /// Peak amplitude of the dominant motion component (sensor units;
    /// body motion is typically orders of magnitude stronger than
    /// sound-induced vibration).
    pub amplitude: f32,
    /// Dominant motion frequency in Hz (e.g. ~1.8 Hz walking arm swing).
    pub dominant_hz: f32,
}

impl BodyMotion {
    /// Walking-level arm swing.
    pub fn walking() -> Self {
        BodyMotion {
            amplitude: 0.05,
            dominant_hz: 1.8,
        }
    }

    /// Small desk-work wrist movements.
    pub fn desk_work() -> Self {
        BodyMotion {
            amplitude: 0.01,
            dominant_hz: 0.5,
        }
    }

    /// Generates `n` samples of interference at `sample_rate`.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, sample_rate: u32, rng: &mut R) -> Vec<f32> {
        let mut out = vec![0.0f32; n];
        self.add_into(&mut out, sample_rate, rng);
        out
    }

    /// Adds interference directly into `out` (one sample per slot) at
    /// `sample_rate` — the allocation-free form the conversion paths
    /// mix with. Draws exactly the three phase values whatever the
    /// output length, so conversion chains stay RNG-reproducible across
    /// segment lengths and paths.
    pub fn add_into<R: Rng + ?Sized>(&self, out: &mut [f32], sample_rate: u32, rng: &mut R) {
        let fs = sample_rate as f32;
        // Dominant component plus two harmonically unrelated minor ones,
        // all inside 0.3–3.5 Hz.
        let comps: [(f32, f32, f32); 3] = [
            (
                self.dominant_hz,
                self.amplitude,
                rng.gen_range(0.0..std::f32::consts::TAU),
            ),
            (
                (self.dominant_hz * 1.7).clamp(0.3, 3.5),
                self.amplitude * 0.4,
                rng.gen_range(0.0..std::f32::consts::TAU),
            ),
            (
                (self.dominant_hz * 0.4).clamp(0.3, 3.5),
                self.amplitude * 0.3,
                rng.gen_range(0.0..std::f32::consts::TAU),
            ),
        ];
        for (i, v) in out.iter_mut().enumerate() {
            let t = i as f32 / fs;
            let interference: f32 = comps
                .iter()
                .map(|&(f, a, ph)| a * (std::f32::consts::TAU * f * t + ph).sin())
                .sum();
            *v += interference;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::{fft, stats};

    #[test]
    fn energy_is_confined_below_5hz() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = BodyMotion::walking();
        let sig = m.generate(2_000, 200, &mut rng);
        let mags = fft::magnitude_spectrum(&sig, 2_048);
        let bin_hz = 200.0 / 2_048.0;
        let below: f32 = mags
            .iter()
            .enumerate()
            .filter(|(k, _)| (*k as f32) * bin_hz < 5.0)
            .map(|(_, &m)| m * m)
            .sum();
        let above: f32 = mags
            .iter()
            .enumerate()
            .filter(|(k, _)| (*k as f32) * bin_hz >= 5.0)
            .map(|(_, &m)| m * m)
            .sum();
        assert!(below > 100.0 * above, "below {below} above {above}");
    }

    #[test]
    fn walking_is_stronger_than_desk_work() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = BodyMotion::walking().generate(1_000, 200, &mut rng);
        let d = BodyMotion::desk_work().generate(1_000, 200, &mut rng);
        assert!(stats::rms(&w) > 2.0 * stats::rms(&d));
    }

    #[test]
    fn generation_is_phase_randomized() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = BodyMotion::walking().generate(100, 200, &mut rng);
        let b = BodyMotion::walking().generate(100, 200, &mut rng);
        assert_ne!(a, b);
    }
}
