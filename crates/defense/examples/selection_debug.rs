//! Diagnostic: prints per-phoneme Q3 extremes against the α threshold.
//!
//! Selection totals and the run's pipeline timings (synthesis,
//! vibration conversion, STFT spans, FFT-plan cache hit rates) are
//! reported through the observability registry — build with
//! `--features obs` to see them after the per-phoneme table.

use rand::{rngs::StdRng, SeedableRng};
use thrubarrier_defense::selection::{run_selection, SelectionConfig};
use thrubarrier_phoneme::corpus::speaker_panel;
use thrubarrier_vibration::Wearable;

fn main() {
    thrubarrier_obs::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(1);
    let panel = speaker_panel(3, 3, &mut rng);
    let cfg = SelectionConfig {
        samples_per_phoneme: 12,
        ..Default::default()
    };
    let sel = {
        let _span = thrubarrier_obs::span!("example.selection");
        run_selection(&cfg, &Wearable::fossil_gen_5(), &panel, &mut rng)
    };
    println!("alpha = {}", sel.alpha);
    println!(
        "{:<6} {:>12} {:>12}  c1 c2 sel",
        "sym", "max_adv", "min_user"
    );
    let c1 = thrubarrier_obs::counter!("example.phonemes.criterion_1");
    let c2 = thrubarrier_obs::counter!("example.phonemes.criterion_2");
    let selected = thrubarrier_obs::counter!("example.phonemes.selected");
    for s in &sel.stats {
        let max_adv = s.q3_adv[2..31].iter().cloned().fold(f32::MIN, f32::max);
        let min_user = s.q3_user[2..31].iter().cloned().fold(f32::MAX, f32::min);
        c1.add(u64::from(s.passes_criterion_1));
        c2.add(u64::from(s.passes_criterion_2));
        selected.add(u64::from(s.selected()));
        println!(
            "{:<6} {:>12.5} {:>12.5}  {} {} {}",
            s.symbol,
            max_adv,
            min_user,
            s.passes_criterion_1 as u8,
            s.passes_criterion_2 as u8,
            s.selected() as u8
        );
    }
    print!("{}", thrubarrier_obs::render_text());
}
