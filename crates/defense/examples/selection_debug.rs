//! Diagnostic: prints per-phoneme Q3 extremes against the α threshold.

use rand::{rngs::StdRng, SeedableRng};
use thrubarrier_defense::selection::{run_selection, SelectionConfig};
use thrubarrier_phoneme::corpus::speaker_panel;
use thrubarrier_vibration::Wearable;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let panel = speaker_panel(3, 3, &mut rng);
    let cfg = SelectionConfig {
        samples_per_phoneme: 12,
        ..Default::default()
    };
    let sel = run_selection(&cfg, &Wearable::fossil_gen_5(), &panel, &mut rng);
    println!("alpha = {}", sel.alpha);
    println!(
        "{:<6} {:>12} {:>12}  c1 c2 sel",
        "sym", "max_adv", "min_user"
    );
    for s in &sel.stats {
        let max_adv = s.q3_adv[2..31].iter().cloned().fold(f32::MIN, f32::max);
        let min_user = s.q3_user[2..31].iter().cloned().fold(f32::MAX, f32::min);
        println!(
            "{:<6} {:>12.5} {:>12.5}  {} {} {}",
            s.symbol,
            max_adv,
            min_user,
            s.passes_criterion_1 as u8,
            s.passes_criterion_2 as u8,
            s.selected() as u8
        );
    }
    println!("selected: {}", sel.selected_ids().len());
}
