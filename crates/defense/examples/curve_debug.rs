//! Diagnostic: prints the per-bin Q3 curves for a few phonemes.
//!
//! The selection run's timings (synthesis spans, vibration conversion,
//! FFT-plan cache hit rates) are reported through the observability
//! registry — build with `--features obs` to see them after the curves.

use rand::{rngs::StdRng, SeedableRng};
use thrubarrier_defense::selection::{run_selection, SelectionConfig};
use thrubarrier_phoneme::corpus::speaker_panel;
use thrubarrier_vibration::Wearable;

fn main() {
    thrubarrier_obs::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(1);
    let panel = speaker_panel(3, 3, &mut rng);
    let cfg = SelectionConfig {
        samples_per_phoneme: 12,
        ..Default::default()
    };
    let sel = {
        let _span = thrubarrier_obs::span!("example.selection");
        run_selection(&cfg, &Wearable::fossil_gen_5(), &panel, &mut rng)
    };
    for sym in ["ih", "ey"] {
        let s = sel.stats_for(sym).unwrap();
        println!("--- {sym} ---");
        for (b, f) in sel.bin_frequencies.iter().enumerate() {
            println!(
                "{f:6.2} Hz  adv {:+.5}  user {:+.5}",
                s.q3_adv[b], s.q3_user[b]
            );
        }
    }
    print!("{}", thrubarrier_obs::render_text());
}
