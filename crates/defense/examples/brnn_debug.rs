//! Diagnostic: per-phoneme frame classification rates of the BRNN.
//!
//! Run statistics (frame counts, selection totals, training/eval phase
//! timings, MFCC/GEMM spans, projection-cache hit rates) are reported
//! through the observability registry instead of ad-hoc prints — build
//! with `--features obs` to see them; the per-phoneme table below is
//! the example's data output and always prints.

use rand::{rngs::StdRng, SeedableRng};
use std::collections::{HashMap, HashSet};
use thrubarrier_defense::segmentation::{DetectorTrainConfig, PhonemeDetector, SegmentSelector};
use thrubarrier_phoneme::common::common_phonemes;
use thrubarrier_phoneme::corpus::{frame_labels, speaker_panel, training_corpus};
use thrubarrier_phoneme::inventory::{Inventory, PhonemeId};
use thrubarrier_phoneme::synth::Synthesizer;

fn main() {
    thrubarrier_obs::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(99);
    let panel = speaker_panel(3, 3, &mut rng);
    let synth = Synthesizer::new(16_000);
    let rejected = ["s", "z", "sh", "th", "aa", "ao"];
    let sensitive: HashSet<PhonemeId> = common_phonemes()
        .iter()
        .filter(|c| !rejected.contains(&c.symbol))
        .map(|c| c.id)
        .collect();
    let (det, test) = {
        let _span = thrubarrier_obs::span!("example.train");
        let corpus = training_corpus(&synth, 80, &panel, &mut rng);
        let cfg = DetectorTrainConfig {
            hidden_size: 48,
            epochs: 3,
            ..Default::default()
        };
        let det = PhonemeDetector::train(&sensitive, &corpus, &cfg, &mut rng);
        let test = training_corpus(&synth, 30, &panel, &mut rng);
        (det, test)
    };
    let accuracy = {
        let _span = thrubarrier_obs::span!("example.eval");
        det.frame_accuracy(&test)
    };
    println!("overall frame accuracy: {accuracy:.3}");
    // Per-phoneme: fraction of frames predicted sensitive.
    let mut hit: HashMap<&str, (u32, u32)> = HashMap::new();
    let selected_frames = thrubarrier_obs::counter!("example.frames.selected");
    let total_frames = thrubarrier_obs::counter!("example.frames.total");
    for u in &test {
        let audio = u.utterance.audio.samples();
        let mask = det.sensitive_frames(audio, 16_000);
        selected_frames.add(mask.iter().filter(|&&m| m).count() as u64);
        total_frames.add(mask.len() as u64);
        let owners = frame_labels(&u.utterance, 400, 160, usize::MAX, |p| p.0);
        for (m, &owner) in mask.iter().zip(&owners) {
            if owner == usize::MAX {
                let e = hit.entry("<silence>").or_insert((0, 0));
                e.1 += 1;
                if *m {
                    e.0 += 1;
                }
                continue;
            }
            let sym = Inventory::spec(PhonemeId(owner)).symbol;
            let e = hit.entry(sym).or_insert((0, 0));
            e.1 += 1;
            if *m {
                e.0 += 1;
            }
        }
    }
    let mut rows: Vec<_> = hit.into_iter().collect();
    rows.sort_by_key(|(s, _)| *s);
    for (sym, (sel, total)) in rows {
        println!(
            "{sym:<10} selected {:>5.1}%  (n={total})",
            100.0 * sel as f32 / total as f32
        );
    }
    print!("{}", thrubarrier_obs::render_text());
}
