//! Property-based tests for the defense pipeline.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thrubarrier_defense::segmentation::{
    extract_selected_samples, EnergySelector, SegmentSelector,
};
use thrubarrier_defense::sync;
use thrubarrier_defense::{DefenseMethod, DefenseSystem};
use thrubarrier_dsp::{gen, AudioBuffer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scores_are_always_in_unit_interval(
        seed in 0u64..50,
        len_a in 100usize..20_000,
        len_b in 100usize..20_000,
        amp in 0.0f32..0.3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = AudioBuffer::new(gen::gaussian_noise(&mut rng, amp, len_a), 16_000);
        let b = AudioBuffer::new(gen::gaussian_noise(&mut rng, amp, len_b), 16_000);
        let system = DefenseSystem::paper_default();
        for method in DefenseMethod::all() {
            let s = system.score_with_method(method, &a, &b, &mut rng);
            prop_assert!((0.0..=1.0).contains(&s), "{method:?}: {s}");
        }
    }

    #[test]
    fn identical_wideband_recordings_score_high(seed in 0u64..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = gen::chirp(200.0, 3_000.0, 0.1, 16_000, 1.5);
        let buf = AudioBuffer::new(sig, 16_000);
        let system = DefenseSystem::paper_default();
        let s = system.score_with_method(
            DefenseMethod::VibrationBaseline,
            &buf,
            &buf,
            &mut rng,
        );
        prop_assert!(s > 0.5, "score {s}");
    }

    #[test]
    fn extraction_never_exceeds_source_length(
        audio_len in 0usize..5_000,
        mask_len in 0usize..40,
        seed in 0u64..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let audio: Vec<f32> = (0..audio_len).map(|i| (i as f32 * 0.01).sin()).collect();
        let mask: Vec<bool> = (0..mask_len).map(|_| rand::Rng::gen_bool(&mut rng, 0.5)).collect();
        let out = extract_selected_samples(&audio, &mask, 400, 160);
        prop_assert!(out.len() <= audio.len());
    }

    #[test]
    fn extraction_with_full_mask_covers_all_hops(n_frames in 1usize..30) {
        let hop = 160;
        let frame_len = 400;
        let audio_len = (n_frames - 1) * hop + frame_len;
        let audio: Vec<f32> = (0..audio_len).map(|i| i as f32).collect();
        let mask = vec![true; n_frames];
        let out = extract_selected_samples(&audio, &mask, frame_len, hop);
        // Full mask reconstructs the entire signal (hops + final tail).
        prop_assert_eq!(out.len(), audio_len);
        prop_assert_eq!(out[0], 0.0);
    }

    #[test]
    fn synchronizer_recovers_any_delay_within_bound(
        delay_ms in 0u32..180,
        seed in 0u64..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut source = gen::gaussian_noise(&mut rng, 0.1, 24_000);
        for (i, v) in source.iter_mut().enumerate() {
            *v *= 0.4 + 0.6 * (i as f32 / 900.0).sin().abs();
        }
        let va = AudioBuffer::new(source, 16_000);
        let delayed = sync::apply_trigger_delay(&va, delay_ms as f32 / 1_000.0);
        let (_, est) = sync::synchronize(&va, &delayed, 0.25).unwrap();
        let expected = (delay_ms as f32 / 1_000.0 * 16_000.0).round() as isize;
        prop_assert!((est - expected).abs() <= 2, "est {est} expected {expected}");
    }

    #[test]
    fn energy_selector_mask_length_tracks_frames(len in 1usize..10_000) {
        let audio = vec![0.1f32; len];
        let sel = EnergySelector::default();
        let mask = sel.sensitive_frames(&audio, 16_000);
        let expected = if len < 400 { 1 } else { (len - 400) / 160 + 1 };
        prop_assert_eq!(mask.len(), expected);
    }
}

// The exhaustive time-domain oracle below is O(window x overlap); fewer
// cases keep the debug-mode test run bounded while still sweeping the
// delay envelope at both rates.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Across the whole `NETWORK_DELAY_RANGE_S` envelope, at both common
    /// capture rates, the coarse-to-fine lag search lands on the same lag
    /// as the exhaustive bounded time-domain search.
    #[test]
    fn coarse_to_fine_matches_exhaustive_across_delay_envelope(
        delay_frac in 0.0f32..1.0,
        fs in prop::sample::select(vec![16_000u32, 48_000]),
        seed in 0u64..30,
    ) {
        use thrubarrier_dsp::correlate::{estimate_delay_with, LagSearch};
        let delay_s = sync::NETWORK_DELAY_RANGE_S.0
            + delay_frac * (sync::NETWORK_DELAY_RANGE_S.1 - sync::NETWORK_DELAY_RANGE_S.0);
        let mut rng = StdRng::seed_from_u64(seed);
        // 0.5 s of amplitude-modulated noise: long enough to cover the
        // largest envelope delay (0.18 s) with a sharp correlation peak,
        // short enough that the exhaustive oracle stays cheap.
        let mut source = gen::gaussian_noise(&mut rng, 0.1, fs as usize / 2);
        for (i, v) in source.iter_mut().enumerate() {
            *v *= 0.4 + 0.6 * (i as f32 * 16_000.0 / (900.0 * fs as f32)).sin().abs();
        }
        let va = AudioBuffer::new(source, fs);
        let delayed = sync::apply_trigger_delay(&va, delay_s);
        let max_lag = (0.2 * fs as f32).round() as usize;
        let exhaustive = estimate_delay_with(
            delayed.samples(), va.samples(), max_lag, LagSearch::TimeDomain,
        ).unwrap();
        let coarse = estimate_delay_with(
            delayed.samples(), va.samples(), max_lag, LagSearch::CoarseToFine,
        ).unwrap();
        prop_assert_eq!(coarse, exhaustive, "fs {} delay {}s", fs, delay_s);
        let expected = (delay_s * fs as f32).round() as isize;
        prop_assert!((coarse - expected).abs() <= 2, "est {} expected {}", coarse, expected);
    }
}
