//! `VaGuard` — the deployment-facing wrapper: from a wake event and two
//! recordings to an authorization verdict.
//!
//! The threat model (paper Sec. II) adds one rule on top of the
//! detector: if the wearable is absent (no recording arrives), the
//! command is rejected outright.

use crate::system::DefenseSystem;
use rand::Rng;
use thrubarrier_dsp::AudioBuffer;

/// Authorization outcome for one voice command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The command is accepted as the legitimate user's.
    Accept {
        /// The similarity score that cleared the threshold.
        score: f32,
    },
    /// The command is rejected as a thru-barrier attack.
    RejectAttack {
        /// The similarity score below the threshold.
        score: f32,
    },
    /// The command is rejected because no wearable recording arrived
    /// (the threat model rejects commands when the wearable is absent).
    RejectWearableAbsent,
}

impl Verdict {
    /// Whether the command was accepted.
    pub fn accepted(&self) -> bool {
        matches!(self, Verdict::Accept { .. })
    }
}

/// The deployment wrapper around a [`DefenseSystem`].
#[derive(Debug, Clone)]
pub struct VaGuard {
    system: DefenseSystem,
}

impl VaGuard {
    /// Wraps a configured defense system.
    pub fn new(system: DefenseSystem) -> Self {
        VaGuard { system }
    }

    /// The wrapped system.
    pub fn system(&self) -> &DefenseSystem {
        &self.system
    }

    /// Calibrates the decision threshold from a set of *legitimate*
    /// scores only — the training-free deployment procedure: the user
    /// speaks a few commands at setup time, and the threshold is placed
    /// at the `target_fdr` quantile of their scores. No attack data is
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `scores` is empty or `target_fdr` is outside `(0, 1)`.
    pub fn calibrate_threshold(&mut self, scores: &[f32], target_fdr: f32) {
        assert!(!scores.is_empty(), "calibration needs at least one score");
        assert!(
            (0.0..1.0).contains(&target_fdr) && target_fdr > 0.0,
            "target_fdr must be in (0, 1)"
        );
        let threshold = thrubarrier_dsp::stats::percentile(scores, target_fdr * 100.0);
        self.system.detector.threshold = threshold;
    }

    /// Authorizes one command: `wearable_recording` is `None` when the
    /// wearable did not respond to the trigger.
    pub fn authorize<R: Rng + ?Sized>(
        &self,
        va_recording: &AudioBuffer,
        wearable_recording: Option<&AudioBuffer>,
        rng: &mut R,
    ) -> Verdict {
        let Some(wearable) = wearable_recording else {
            return Verdict::RejectWearableAbsent;
        };
        let score = self.system.score(va_recording, wearable, rng);
        if self.system.is_attack(score) {
            Verdict::RejectAttack { score }
        } else {
            Verdict::Accept { score }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::gen;

    fn wideband_pair(seed: u64) -> (AudioBuffer, AudioBuffer) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = gen::chirp(200.0, 3_000.0, 0.1, 16_000, 1.5);
        let mut a = src.clone();
        let mut b = src;
        for v in &mut a {
            *v += 0.001 * gen::standard_normal(&mut rng);
        }
        for v in &mut b {
            *v += 0.001 * gen::standard_normal(&mut rng);
        }
        (AudioBuffer::new(a, 16_000), AudioBuffer::new(b, 16_000))
    }

    #[test]
    fn missing_wearable_is_rejected() {
        let guard = VaGuard::new(DefenseSystem::paper_default());
        let (va, _) = wideband_pair(1);
        let mut rng = StdRng::seed_from_u64(2);
        let v = guard.authorize(&va, None, &mut rng);
        assert_eq!(v, Verdict::RejectWearableAbsent);
        assert!(!v.accepted());
    }

    #[test]
    fn consistent_wideband_pair_is_accepted() {
        let guard = VaGuard::new(DefenseSystem::paper_default());
        let (va, wear) = wideband_pair(3);
        let mut rng = StdRng::seed_from_u64(4);
        let v = guard.authorize(&va, Some(&wear), &mut rng);
        assert!(v.accepted(), "{v:?}");
    }

    #[test]
    fn calibration_sets_threshold_at_fdr_quantile() {
        let mut guard = VaGuard::new(DefenseSystem::paper_default());
        let scores = vec![0.8, 0.85, 0.9, 0.95, 0.7, 0.75, 0.88, 0.92, 0.79, 0.83];
        guard.calibrate_threshold(&scores, 0.1);
        // Roughly the 10th percentile of the calibration scores.
        let t = guard.system().detector.threshold;
        assert!((0.7..0.8).contains(&t), "threshold {t}");
    }

    #[test]
    #[should_panic(expected = "calibration needs at least one score")]
    fn calibration_rejects_empty_input() {
        VaGuard::new(DefenseSystem::paper_default()).calibrate_threshold(&[], 0.1);
    }
}
