//! Online barrier-effect-sensitive phoneme segmentation (paper Sec. V-B).
//!
//! A BRNN (bidirectional LSTM) over MFCC frames marks which 10 ms frames
//! of a recording contain barrier-effect-sensitive phonemes; those frames
//! are concatenated and fed to cross-domain sensing. The MFCC front-end
//! follows the paper: 25 ms frames with 10 ms hop, 40 mel filters over
//! 0–900 Hz (deliberately low — thru-barrier sounds have no high
//! frequencies left), 14 cepstral coefficients.
//!
//! Inference rides the minibatched BRNN engine in `thrubarrier_nn`: the
//! per-verification `sensitive_frames` call records no backward-pass
//! state, and [`SegmentSelector::sensitive_frames_batch`] packs many
//! recordings into one minibatch so every timestep is a single GEMM over
//! all active recordings.

use rand::Rng;
use std::collections::HashSet;
use std::sync::Arc;
use thrubarrier_dsp::mel::MfccExtractor;
use thrubarrier_nn::model::{BrnnClassifier, TrainConfig};
use thrubarrier_nn::param::AdamConfig;
use thrubarrier_nn::{BatchWorkspace, GemmScratch, ScoreClient};
use thrubarrier_phoneme::corpus::{frame_labels, LabelledUtterance};
use thrubarrier_phoneme::inventory::PhonemeId;

/// Where batched phoneme scoring runs: inline in the calling thread, or
/// routed to a shared engine.
///
/// [`PhonemeDetector::sensitive_frames_batch`] classifies MFCC feature
/// sequences through its own BRNN by default (the inline path — right
/// for single-trial use and single-threaded runs). Installing a backend
/// with [`PhonemeDetector::with_scoring_backend`] redirects only that
/// batched classification; featurization and thresholding stay local,
/// and the single-recording [`SegmentSelector::sensitive_frames`] path
/// is never routed.
///
/// The canonical backend is [`thrubarrier_nn::ScoreClient`] — a handle
/// to the shared cross-worker scoring service.
pub trait ScoringBackend: Send + Sync + std::fmt::Debug {
    /// Per-frame argmax class labels for each feature sequence, in
    /// caller order. Takes the sequences by value (a routed backend
    /// ships them to another thread; the caller has just featurized
    /// them, so this moves rather than copies). Must agree bitwise
    /// with [`BrnnClassifier::predict_batch`] on the same model.
    fn classify_batch(&self, seqs: Vec<Vec<Vec<f32>>>) -> Vec<Vec<usize>>;
}

impl ScoringBackend for ScoreClient {
    fn classify_batch(&self, seqs: Vec<Vec<Vec<f32>>>) -> Vec<Vec<usize>> {
        ScoreClient::classify_batch(self, seqs)
    }
}

/// Anything that can mark the sensitive frames of a recording.
///
/// The defense's reference implementation is the BRNN
/// [`PhonemeDetector`]; [`EnergySelector`] is a cheap voice-activity
/// approximation used by examples and ablations.
pub trait SegmentSelector: Send + Sync {
    /// One boolean per 10 ms analysis frame: `true` = the frame belongs
    /// to a barrier-effect-sensitive phoneme and should be used for
    /// attack detection.
    fn sensitive_frames(&self, audio: &[f32], sample_rate: u32) -> Vec<bool>;

    /// Marks the sensitive frames of many recordings at once, one mask
    /// per recording in caller order. The default just loops over
    /// [`SegmentSelector::sensitive_frames`]; selectors with a batched
    /// fast path (the BRNN [`PhonemeDetector`]) override it to score
    /// all recordings through minibatched GEMMs.
    fn sensitive_frames_batch(&self, recordings: &[&[f32]], sample_rate: u32) -> Vec<Vec<bool>> {
        recordings
            .iter()
            .map(|audio| self.sensitive_frames(audio, sample_rate))
            .collect()
    }

    /// The BRNN behind this selector, when there is one — lets callers
    /// (the eval runner) spawn a shared scoring engine from the same
    /// weights. Selectors without a network return `None` (the
    /// default).
    fn classifier(&self) -> Option<&BrnnClassifier> {
        None
    }

    /// A copy of this selector whose batched scoring goes through
    /// `backend`. Returns `None` (the default) when the selector has no
    /// batched classification to route — callers then keep the original
    /// selector.
    fn with_backend(&self, backend: Arc<dyn ScoringBackend>) -> Option<Arc<dyn SegmentSelector>> {
        let _ = backend;
        None
    }
}

/// Concatenates the samples of the selected frames (non-overlapping hop
/// regions), producing the signal that is replayed for cross-domain
/// sensing.
pub fn extract_selected_samples(
    audio: &[f32],
    mask: &[bool],
    frame_len: usize,
    hop: usize,
) -> Vec<f32> {
    let mut out = Vec::new();
    for (fi, &keep) in mask.iter().enumerate() {
        if !keep {
            continue;
        }
        let start = fi * hop;
        if start >= audio.len() {
            // The mask may have been computed on a longer recording
            // (e.g. the other device's); trailing frames have no samples
            // here.
            break;
        }
        let end = (start + hop).min(audio.len());
        out.extend_from_slice(&audio[start..end]);
        // The final frame also contributes its tail beyond the hop.
        if fi + 1 == mask.len() {
            let tail_end = (start + frame_len).min(audio.len());
            if tail_end > end {
                out.extend_from_slice(&audio[end..tail_end]);
            }
        }
    }
    out
}

/// A voice-activity-grade selector: marks frames whose RMS exceeds a
/// fraction of the utterance's loudest frame. This drops silence and the
/// intrinsically weak phonemes (approximating Criterion II) but cannot
/// reject the over-loud vowels Criterion I removes — use the BRNN
/// [`PhonemeDetector`] for the paper's full behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergySelector {
    /// Frame length in samples.
    pub frame_len: usize,
    /// Hop in samples.
    pub hop: usize,
    /// Relative RMS threshold (fraction of the loudest frame's RMS).
    pub rel_threshold: f32,
}

impl Default for EnergySelector {
    fn default() -> Self {
        EnergySelector {
            frame_len: 400,
            hop: 160,
            rel_threshold: 0.15,
        }
    }
}

impl SegmentSelector for EnergySelector {
    fn sensitive_frames(&self, audio: &[f32], _sample_rate: u32) -> Vec<bool> {
        if audio.is_empty() {
            return Vec::new();
        }
        let n_frames = if audio.len() < self.frame_len {
            1
        } else {
            (audio.len() - self.frame_len) / self.hop + 1
        };
        let rms: Vec<f32> = (0..n_frames)
            .map(|fi| {
                let start = fi * self.hop;
                let end = (start + self.frame_len).min(audio.len());
                thrubarrier_dsp::stats::rms(&audio[start..end])
            })
            .collect();
        let max = rms.iter().cloned().fold(0.0f32, f32::max);
        rms.iter().map(|&r| r > self.rel_threshold * max).collect()
    }
}

/// The BRNN phoneme detector (binary: sensitive / not sensitive).
#[derive(Debug, Clone)]
pub struct PhonemeDetector {
    model: BrnnClassifier,
    mfcc: MfccExtractor,
    sensitive: HashSet<PhonemeId>,
    /// When set, batched mask computation sends feature sequences here
    /// instead of running `predict_batch` inline; single-recording
    /// calls always stay inline.
    backend: Option<Arc<dyn ScoringBackend>>,
}

/// Training hyper-parameters for [`PhonemeDetector::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorTrainConfig {
    /// LSTM units per direction (paper: 64).
    pub hidden_size: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// ADAM learning rate.
    pub learning_rate: f32,
}

impl Default for DetectorTrainConfig {
    fn default() -> Self {
        DetectorTrainConfig {
            hidden_size: 64,
            epochs: 4,
            batch_size: 8,
            learning_rate: 3e-3,
        }
    }
}

impl PhonemeDetector {
    /// Trains a detector on a labelled corpus. Frames overlapping a
    /// phoneme in `sensitive` are positives; everything else (including
    /// silence) is negative.
    pub fn train<R: Rng + ?Sized>(
        sensitive: &HashSet<PhonemeId>,
        corpus: &[LabelledUtterance],
        cfg: &DetectorTrainConfig,
        rng: &mut R,
    ) -> Self {
        let mfcc = MfccExtractor::paper_default();
        let mut model = BrnnClassifier::new(mfcc.n_coeffs(), cfg.hidden_size, 2, rng);
        let data: Vec<(Vec<Vec<f32>>, Vec<usize>)> = corpus
            .iter()
            .map(|u| Self::featurize(&mfcc, sensitive, u))
            .collect();
        let train_cfg = TrainConfig {
            adam: AdamConfig {
                lr: cfg.learning_rate,
                ..Default::default()
            },
        };
        // Minibatch membership is frozen once up front and only the
        // *order* of minibatches is shuffled per epoch: a repeated batch
        // hashes to the same corpus fingerprint inside the batched
        // engine, so its packed layout and projection-cache allocations
        // persist across every epoch instead of being rebuilt per step.
        let order: Vec<usize> = (0..data.len()).collect();
        let chunks: Vec<&[usize]> = order.chunks(cfg.batch_size.max(1)).collect();
        let mut chunk_order: Vec<usize> = (0..chunks.len()).collect();
        for _ in 0..cfg.epochs {
            for i in (1..chunk_order.len()).rev() {
                let j = rng.gen_range(0..=i);
                chunk_order.swap(i, j);
            }
            for &ci in &chunk_order {
                let batch: Vec<(&[Vec<f32>], &[usize])> = chunks[ci]
                    .iter()
                    .map(|&i| (data[i].0.as_slice(), data[i].1.as_slice()))
                    .collect();
                model.train_step(&batch, &train_cfg);
            }
        }
        PhonemeDetector {
            model,
            mfcc,
            sensitive: sensitive.clone(),
            backend: None,
        }
    }

    fn featurize(
        mfcc: &MfccExtractor,
        sensitive: &HashSet<PhonemeId>,
        utt: &LabelledUtterance,
    ) -> (Vec<Vec<f32>>, Vec<usize>) {
        let feats = mfcc.extract(utt.utterance.audio.samples());
        let labels = frame_labels(&utt.utterance, mfcc.frame_len(), mfcc.hop(), 0, |p| {
            usize::from(sensitive.contains(&p))
        });
        debug_assert_eq!(feats.len(), labels.len());
        (feats, labels)
    }

    /// The sensitive-phoneme set this detector was trained for.
    pub fn sensitive_set(&self) -> &HashSet<PhonemeId> {
        &self.sensitive
    }

    /// Frame-level accuracy on a labelled corpus.
    pub fn frame_accuracy(&self, corpus: &[LabelledUtterance]) -> f32 {
        let data: Vec<(Vec<Vec<f32>>, Vec<usize>)> = corpus
            .iter()
            .map(|u| Self::featurize(&self.mfcc, &self.sensitive, u))
            .collect();
        self.model.accuracy(&data)
    }

    /// The MFCC front-end (exposes frame geometry to callers).
    pub fn mfcc(&self) -> &MfccExtractor {
        &self.mfcc
    }

    /// Serializes the trained detector (sensitive-phoneme set + BRNN
    /// weights). Train once, ship the bytes.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save<W: std::io::Write>(
        &self,
        mut w: W,
    ) -> Result<(), thrubarrier_nn::serialize::SerializeError> {
        let mut ids: Vec<u32> = self.sensitive.iter().map(|p| p.0 as u32).collect();
        ids.sort_unstable();
        w.write_all(&(ids.len() as u32).to_le_bytes())?;
        for id in ids {
            w.write_all(&id.to_le_bytes())?;
        }
        self.model.save(w)
    }

    /// Restores a detector saved by [`PhonemeDetector::save`]. The MFCC
    /// front-end is the paper configuration (the only one detectors are
    /// trained with).
    ///
    /// # Errors
    ///
    /// Returns format errors for malformed streams.
    pub fn load<R: std::io::Read>(
        mut r: R,
    ) -> Result<Self, thrubarrier_nn::serialize::SerializeError> {
        use thrubarrier_nn::serialize::SerializeError;
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf)?;
        let n = u32::from_le_bytes(buf) as usize;
        if n > thrubarrier_phoneme::inventory::Inventory::len() {
            return Err(SerializeError::Format(format!(
                "{n} sensitive phonemes exceeds the inventory"
            )));
        }
        let mut sensitive = HashSet::with_capacity(n);
        for _ in 0..n {
            r.read_exact(&mut buf)?;
            let id = u32::from_le_bytes(buf) as usize;
            if id >= thrubarrier_phoneme::inventory::Inventory::len() {
                return Err(SerializeError::Format(format!(
                    "phoneme id {id} out of range"
                )));
            }
            sensitive.insert(PhonemeId(id));
        }
        let model = BrnnClassifier::load(r)?;
        Ok(PhonemeDetector {
            model,
            mfcc: MfccExtractor::paper_default(),
            sensitive,
            backend: None,
        })
    }

    /// The trained BRNN itself (e.g. to clone its weights into a shared
    /// scoring service).
    pub fn model(&self) -> &BrnnClassifier {
        &self.model
    }

    /// A copy of this detector whose batched scoring is routed through
    /// `backend`. The detector keeps its own model for the inline
    /// single-recording path; only
    /// [`SegmentSelector::sensitive_frames_batch`] classification moves
    /// to the backend, which must score with the same weights for masks
    /// to stay identical.
    pub fn with_scoring_backend(&self, backend: Arc<dyn ScoringBackend>) -> PhonemeDetector {
        PhonemeDetector {
            backend: Some(backend),
            ..self.clone()
        }
    }
}

impl SegmentSelector for PhonemeDetector {
    fn sensitive_frames(&self, audio: &[f32], _sample_rate: u32) -> Vec<bool> {
        let feats = self.mfcc.extract(audio);
        let _span = thrubarrier_obs::span!("defense.classify");
        self.model
            .predict(&feats)
            .into_iter()
            .map(|c| c == 1)
            .collect()
    }

    /// Batched override: all recordings are featurized, packed into one
    /// minibatch and classified through the batched BRNN engine
    /// ([`BrnnClassifier::predict_batch`]) — one GEMM per timestep over
    /// every active recording instead of per-utterance matrix-vector
    /// work. With a [`ScoringBackend`] installed, classification is
    /// submitted to the backend instead (the shared engine coalesces
    /// groups from many workers into even wider packs); the fused
    /// inference kernels are bitwise batch-size invariant, so the masks
    /// are identical either way.
    fn sensitive_frames_batch(&self, recordings: &[&[f32]], _sample_rate: u32) -> Vec<Vec<bool>> {
        let feats: Vec<Vec<Vec<f32>>> = recordings.iter().map(|a| self.mfcc.extract(a)).collect();
        let _span = thrubarrier_obs::span!("defense.classify");
        let labels = match &self.backend {
            Some(backend) => backend.classify_batch(feats),
            None => {
                let seqs: Vec<&[Vec<f32>]> = feats.iter().map(|f| f.as_slice()).collect();
                let mut ws = BatchWorkspace::new();
                let mut scratch = GemmScratch::new();
                self.model.predict_batch(&seqs, &mut ws, &mut scratch)
            }
        };
        labels
            .into_iter()
            .map(|preds| preds.into_iter().map(|c| c == 1).collect())
            .collect()
    }

    fn classifier(&self) -> Option<&BrnnClassifier> {
        Some(&self.model)
    }

    fn with_backend(&self, backend: Arc<dyn ScoringBackend>) -> Option<Arc<dyn SegmentSelector>> {
        Some(Arc::new(self.with_scoring_backend(backend)))
    }
}

/// An oracle selector that uses ground-truth segment alignments — used by
/// ablations to isolate detector errors from downstream behaviour.
#[derive(Debug, Clone)]
pub struct OracleSelector {
    /// Ground-truth sensitive mask per frame (precomputed by the caller).
    pub mask: Vec<bool>,
}

impl SegmentSelector for OracleSelector {
    fn sensitive_frames(&self, _audio: &[f32], _sample_rate: u32) -> Vec<bool> {
        self.mask.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_phoneme::corpus::{speaker_panel, training_corpus};
    use thrubarrier_phoneme::inventory::Inventory;
    use thrubarrier_phoneme::synth::Synthesizer;

    #[test]
    fn extract_selected_samples_concatenates_hops() {
        let audio: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let mask = vec![true, false, true];
        // frame_len 4, hop 2: frame 0 -> [0,1], frame 2 -> [4,5] + tail [6,7].
        let out = extract_selected_samples(&audio, &mask, 4, 2);
        assert_eq!(out, vec![0.0, 1.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn extract_with_empty_mask_is_empty() {
        assert!(extract_selected_samples(&[1.0, 2.0], &[], 4, 2).is_empty());
    }

    #[test]
    fn energy_selector_drops_silence() {
        let mut audio = vec![0.0f32; 4_000];
        for v in audio[1_600..2_400].iter_mut() {
            *v = 0.5;
        }
        let sel = EnergySelector::default();
        let mask = sel.sensitive_frames(&audio, 16_000);
        assert!(!mask[0], "silent frame selected");
        let active_frame = 1_800 / 160;
        assert!(mask[active_frame], "active frame dropped");
    }

    #[test]
    fn energy_selector_empty_audio() {
        let sel = EnergySelector::default();
        assert!(sel.sensitive_frames(&[], 16_000).is_empty());
    }

    #[test]
    fn detector_learns_to_separate_sensitive_phonemes() {
        let mut rng = StdRng::seed_from_u64(11);
        let panel = speaker_panel(2, 2, &mut rng);
        let synth = Synthesizer::new(16_000);
        let corpus = training_corpus(&synth, 24, &panel, &mut rng);
        // Sensitive = everything except the weak fricatives and loud
        // back vowels (the paper's outcome).
        let rejected = ["s", "z", "sh", "th", "aa", "ao"];
        let sensitive: HashSet<PhonemeId> = thrubarrier_phoneme::common::common_phonemes()
            .iter()
            .filter(|c| !rejected.contains(&c.symbol))
            .map(|c| c.id)
            .collect();
        let cfg = DetectorTrainConfig {
            hidden_size: 16,
            epochs: 3,
            batch_size: 6,
            learning_rate: 5e-3,
        };
        let detector = PhonemeDetector::train(&sensitive, &corpus, &cfg, &mut rng);
        let test = training_corpus(&synth, 8, &panel, &mut rng);
        let acc = detector.frame_accuracy(&test);
        assert!(acc > 0.8, "detector accuracy {acc}");
    }

    #[test]
    fn detector_mask_length_matches_mfcc_frames() {
        let mut rng = StdRng::seed_from_u64(12);
        let panel = speaker_panel(1, 1, &mut rng);
        let synth = Synthesizer::new(16_000);
        let corpus = training_corpus(&synth, 4, &panel, &mut rng);
        let sensitive: HashSet<PhonemeId> =
            [Inventory::by_symbol("ih").unwrap()].into_iter().collect();
        let cfg = DetectorTrainConfig {
            hidden_size: 8,
            epochs: 1,
            batch_size: 4,
            learning_rate: 3e-3,
        };
        let det = PhonemeDetector::train(&sensitive, &corpus, &cfg, &mut rng);
        let audio = corpus[0].utterance.audio.samples();
        let mask = det.sensitive_frames(audio, 16_000);
        assert_eq!(mask.len(), det.mfcc().frame_count(audio.len()));
    }

    #[test]
    fn detector_roundtrips_through_serialization() {
        let mut rng = StdRng::seed_from_u64(21);
        let panel = speaker_panel(1, 1, &mut rng);
        let synth = Synthesizer::new(16_000);
        let corpus = training_corpus(&synth, 6, &panel, &mut rng);
        let sensitive: HashSet<PhonemeId> = [
            Inventory::by_symbol("ih").unwrap(),
            Inventory::by_symbol("t").unwrap(),
        ]
        .into_iter()
        .collect();
        let cfg = DetectorTrainConfig {
            hidden_size: 8,
            epochs: 1,
            batch_size: 4,
            learning_rate: 3e-3,
        };
        let det = PhonemeDetector::train(&sensitive, &corpus, &cfg, &mut rng);
        let mut bytes = Vec::new();
        det.save(&mut bytes).unwrap();
        let back = PhonemeDetector::load(bytes.as_slice()).unwrap();
        assert_eq!(back.sensitive_set(), det.sensitive_set());
        let audio = corpus[0].utterance.audio.samples();
        assert_eq!(
            back.sensitive_frames(audio, 16_000),
            det.sensitive_frames(audio, 16_000)
        );
    }

    #[test]
    fn batch_masks_match_per_call_masks() {
        let mut rng = StdRng::seed_from_u64(31);
        let panel = speaker_panel(1, 1, &mut rng);
        let synth = Synthesizer::new(16_000);
        let corpus = training_corpus(&synth, 4, &panel, &mut rng);
        let sensitive: HashSet<PhonemeId> =
            [Inventory::by_symbol("ih").unwrap()].into_iter().collect();
        let cfg = DetectorTrainConfig {
            hidden_size: 8,
            epochs: 1,
            batch_size: 4,
            learning_rate: 3e-3,
        };
        let det = PhonemeDetector::train(&sensitive, &corpus, &cfg, &mut rng);
        let recordings: Vec<&[f32]> = corpus.iter().map(|u| u.utterance.audio.samples()).collect();
        let batch = det.sensitive_frames_batch(&recordings, 16_000);
        for (audio, mask) in recordings.iter().zip(&batch) {
            assert_eq!(mask, &det.sensitive_frames(audio, 16_000));
        }
        // The default (loop-based) trait implementation agrees with the
        // batched override.
        let energy = EnergySelector::default();
        let default_batch = energy.sensitive_frames_batch(&recordings, 16_000);
        for (audio, mask) in recordings.iter().zip(&default_batch) {
            assert_eq!(mask, &energy.sensitive_frames(audio, 16_000));
        }
    }

    #[test]
    fn backend_routed_masks_match_inline_masks() {
        let mut rng = StdRng::seed_from_u64(33);
        let panel = speaker_panel(1, 1, &mut rng);
        let synth = Synthesizer::new(16_000);
        let corpus = training_corpus(&synth, 4, &panel, &mut rng);
        let sensitive: HashSet<PhonemeId> =
            [Inventory::by_symbol("ih").unwrap()].into_iter().collect();
        let cfg = DetectorTrainConfig {
            hidden_size: 8,
            epochs: 1,
            batch_size: 4,
            learning_rate: 3e-3,
        };
        let det = PhonemeDetector::train(&sensitive, &corpus, &cfg, &mut rng);
        let service = thrubarrier_nn::ScoreService::spawn(det.model().clone(), 16);
        let routed = det.with_scoring_backend(Arc::new(service.client()));
        let recordings: Vec<&[f32]> = corpus.iter().map(|u| u.utterance.audio.samples()).collect();
        assert_eq!(
            routed.sensitive_frames_batch(&recordings, 16_000),
            det.sensitive_frames_batch(&recordings, 16_000)
        );
        // The trait-level routing hook produces the same masks.
        let via_trait = SegmentSelector::with_backend(&det, Arc::new(service.client()))
            .expect("detector supports backends");
        assert_eq!(
            via_trait.sensitive_frames_batch(&recordings, 16_000),
            det.sensitive_frames_batch(&recordings, 16_000)
        );
        drop(via_trait);
        drop(routed);
    }

    #[test]
    fn detector_load_rejects_garbage() {
        assert!(PhonemeDetector::load(&b"junk"[..]).is_err());
    }

    #[test]
    fn oracle_selector_returns_fixed_mask() {
        let o = OracleSelector {
            mask: vec![true, false],
        };
        assert_eq!(o.sensitive_frames(&[0.0; 100], 16_000), vec![true, false]);
    }
}
