//! Vibration-domain feature extraction (paper Sec. VI-B).
//!
//! Pipeline: high-pass filter (body-motion suppression) → 64-point STFT →
//! squared magnitudes → crop bins at or below 5 Hz (accelerometer
//! artifact, Fig. 7) → divide by the maximum value (distance/volume
//! normalization, Sec. VI-C).

use thrubarrier_dsp::filter::Biquad;
use thrubarrier_dsp::{AudioBuffer, Spectrogram, Stft};

/// Dynamic-range floor of the audio baseline's log compression. Bins
/// whose power sits below this floor (pure device noise) flatten toward
/// a constant and stop dominating the correlation.
pub const AUDIO_LOG_FLOOR: f32 = 1e-3;

/// Vibration-domain feature extractor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VibrationFeatureExtractor {
    stft: Stft,
    /// Bins with center frequency at or below this are cropped.
    pub crop_hz: f32,
    /// High-pass corner for body-motion suppression (applied zero-phase).
    pub highpass_hz: f32,
}

impl VibrationFeatureExtractor {
    /// The paper's configuration: 64-point STFT, 5 Hz crop, 5 Hz
    /// high-pass.
    pub fn paper_default() -> Self {
        VibrationFeatureExtractor {
            stft: Stft::vibration_default(),
            crop_hz: 5.0,
            highpass_hz: 5.0,
        }
    }

    /// The STFT geometry in use.
    pub fn stft(&self) -> &Stft {
        &self.stft
    }

    /// Extracts normalized vibration features from a vibration signal.
    pub fn extract(&self, vib: &AudioBuffer) -> Spectrogram {
        let filtered = if vib.len() > 8 {
            let hp = Biquad::highpass(self.highpass_hz, vib.sample_rate() as f32)
                .expect("corner below nyquist for any supported rate");
            hp.filtfilt(vib.samples())
        } else {
            vib.samples().to_vec()
        };
        let mut spec = self.stft.power_spectrogram(&filtered, vib.sample_rate());
        spec.crop_low_frequencies(self.crop_hz);
        spec.normalize_by_max();
        spec
    }

    /// Extracts *audio-domain* features for the audio baseline: a
    /// 256-point log-power spectrogram (log compression is the standard
    /// audio front-end; it also weights the quiet bins where the barrier
    /// effect and the devices' noise floors actually differ).
    pub fn extract_audio_baseline(recording: &AudioBuffer) -> Spectrogram {
        let stft = Stft::new(256, 128, thrubarrier_dsp::window::WindowKind::Hann)
            .expect("static config is valid");
        let mut spec = stft.power_spectrogram(recording.samples(), recording.sample_rate());
        spec.log_compress(AUDIO_LOG_FLOOR);
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrubarrier_dsp::gen;

    #[test]
    fn features_are_cropped_and_normalized() {
        let vib = AudioBuffer::new(gen::sine(25.0, 0.5, 200, 2.0), 200);
        let ext = VibrationFeatureExtractor::paper_default();
        let spec = ext.extract(&vib);
        assert!(spec.bin_frequency(0) > 5.0);
        assert!((spec.max_value() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn body_motion_band_is_suppressed() {
        // 2 Hz motion + 30 Hz vibration: features must be dominated by
        // the 30 Hz line.
        let mut sig = gen::sine(2.0, 1.0, 200, 4.0);
        let vib30 = gen::sine(30.0, 0.05, 200, 4.0);
        thrubarrier_dsp::gen::mix_into(&mut sig, &vib30);
        let ext = VibrationFeatureExtractor::paper_default();
        let spec = ext.extract(&AudioBuffer::new(sig, 200));
        let mean = spec.mean_per_bin();
        let peak_bin = thrubarrier_dsp::stats::argmax(&mean).unwrap();
        let f = spec.bin_frequency(peak_bin);
        assert!((f - 30.0).abs() < 4.0, "dominant bin at {f} Hz");
    }

    #[test]
    fn short_signals_do_not_panic() {
        let ext = VibrationFeatureExtractor::paper_default();
        let spec = ext.extract(&AudioBuffer::new(vec![0.1; 5], 200));
        assert!(spec.frames() <= 1);
    }

    #[test]
    fn audio_baseline_features_are_log_compressed() {
        let rec = AudioBuffer::new(gen::chirp(100.0, 3_000.0, 0.2, 16_000, 0.5), 16_000);
        let spec = VibrationFeatureExtractor::extract_audio_baseline(&rec);
        assert!(spec.frames() > 10);
        // Log features are finite and include negative (quiet-bin) values.
        let all: Vec<f32> = spec.rows().flatten().copied().collect();
        assert!(all.iter().all(|v| v.is_finite()));
        assert!(all.iter().any(|&v| v < 0.0));
    }
}
