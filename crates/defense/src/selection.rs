//! Offline barrier-effect-sensitive phoneme selection (paper Sec. V-A).
//!
//! Every common phoneme is replayed through typical barriers (and without
//! them), converted to the vibration domain on the wearable, and screened
//! by two criteria on the third-quartile (Q3) FFT magnitude per frequency
//! bin:
//!
//! * **Criterion I** (Eq. 2): the phoneme must *not* trigger the
//!   accelerometer after passing a barrier —
//!   `max_f Q3_adv(p, f) < α`.
//! * **Criterion II** (Eq. 3): the phoneme must trigger the accelerometer
//!   when not passing a barrier — `min_f Q3_user(p, f) > α`.
//!
//! The selected set is the intersection; the paper finds 31 of the 37
//! common phonemes survive, rejecting intrinsically weak fricatives
//! (/s/, /z/, …) and over-loud back vowels (/aa/, /ao/).
//!
//! Implementation note: the paper evaluates `f ∈ [0, fs/2]`; we evaluate
//! Criterion II's minimum over the 6–94 Hz interior of the band so the
//! statistic is not dominated by the (cropped-anyway) 0–5 Hz artifact
//! bins or the last, half-width Nyquist bin.

use rand::Rng;
use thrubarrier_acoustics::loudspeaker::Loudspeaker;
use thrubarrier_acoustics::mic::Microphone;
use thrubarrier_acoustics::propagation::speech_gain_for_spl;
use thrubarrier_acoustics::room::{Room, RoomId};
use thrubarrier_acoustics::scene::AcousticPath;
use thrubarrier_dsp::{stats, AudioBuffer};
use thrubarrier_phoneme::common::{common_phonemes, CommonPhoneme};
use thrubarrier_phoneme::corpus::phoneme_samples;
use thrubarrier_phoneme::inventory::PhonemeId;
use thrubarrier_phoneme::speaker::SpeakerProfile;
use thrubarrier_phoneme::synth::Synthesizer;
use thrubarrier_vibration::Wearable;

/// Configuration of the offline selection experiment.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// The magnitude threshold α (paper: 0.015, from the ambient-noise
    /// FFT magnitude).
    pub alpha: f32,
    /// Sound segments per phoneme (paper: 100).
    pub samples_per_phoneme: usize,
    /// Attack sound pressure levels in dB SPL (paper: 75 and 85).
    pub spl_levels: Vec<f32>,
    /// Rooms whose barriers are screened (paper: glass window + wooden
    /// door).
    pub rooms: Vec<Room>,
    /// Loudspeaker-to-microphone distance in metres.
    pub distance_m: f32,
    /// FFT size for the vibration magnitude spectra.
    pub n_fft: usize,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            alpha: 0.015,
            samples_per_phoneme: 24,
            spl_levels: vec![75.0, 85.0],
            rooms: vec![Room::paper_room(RoomId::A), Room::paper_room(RoomId::B)],
            distance_m: 2.0,
            n_fft: 64,
        }
    }
}

/// Per-phoneme screening statistics.
#[derive(Debug, Clone)]
pub struct PhonemeStats {
    /// Which phoneme.
    pub id: PhonemeId,
    /// ARPAbet symbol.
    pub symbol: &'static str,
    /// Q3 vibration FFT magnitude per bin, thru-barrier condition.
    pub q3_adv: Vec<f32>,
    /// Q3 vibration FFT magnitude per bin, no-barrier condition.
    pub q3_user: Vec<f32>,
    /// `max_f Q3_adv < α` (Eq. 2).
    pub passes_criterion_1: bool,
    /// `min_f Q3_user > α` (Eq. 3).
    pub passes_criterion_2: bool,
}

impl PhonemeStats {
    /// Whether the phoneme is barrier-effect sensitive (both criteria).
    pub fn selected(&self) -> bool {
        self.passes_criterion_1 && self.passes_criterion_2
    }
}

/// Result of the offline selection.
#[derive(Debug, Clone)]
pub struct PhonemeSelection {
    /// Statistics for every screened phoneme, in Table II order.
    pub stats: Vec<PhonemeStats>,
    /// Center frequency of each evaluated bin, in Hz.
    pub bin_frequencies: Vec<f32>,
    /// The threshold α used.
    pub alpha: f32,
}

impl PhonemeSelection {
    /// Ids of the selected (barrier-effect-sensitive) phonemes.
    pub fn selected_ids(&self) -> Vec<PhonemeId> {
        self.stats
            .iter()
            .filter(|s| s.selected())
            .map(|s| s.id)
            .collect()
    }

    /// Symbols of the selected phonemes.
    pub fn selected_symbols(&self) -> Vec<&'static str> {
        self.stats
            .iter()
            .filter(|s| s.selected())
            .map(|s| s.symbol)
            .collect()
    }

    /// Symbols of the rejected phonemes.
    pub fn rejected_symbols(&self) -> Vec<&'static str> {
        self.stats
            .iter()
            .filter(|s| !s.selected())
            .map(|s| s.symbol)
            .collect()
    }

    /// Statistics for one phoneme by symbol.
    pub fn stats_for(&self, symbol: &str) -> Option<&PhonemeStats> {
        self.stats.iter().find(|s| s.symbol == symbol)
    }
}

/// Calibration from our simulated accelerometer's arbitrary output units
/// to the paper's reported FFT-magnitude units, chosen so that the
/// paper's literal threshold α = 0.015 separates the same populations it
/// separates on the real sensor (the ambient/weak-phoneme floor below,
/// ordinary speech phonemes above).
pub const MAGNITUDE_CALIBRATION: f32 = 0.565;

/// Welch-style magnitude spectrum of a vibration signal: the mean
/// per-bin magnitude of a 64-point Hann STFT, in calibrated units.
/// Averaging frames makes the statistic comparable across segment
/// durations (unlike a single padded FFT, whose magnitudes scale with
/// length).
pub fn vibration_magnitude_spectrum(vib: &AudioBuffer, n_fft: usize) -> Vec<f32> {
    if vib.is_empty() {
        return vec![0.0; n_fft / 2 + 1];
    }
    let stft =
        thrubarrier_dsp::Stft::new(n_fft, n_fft / 2, thrubarrier_dsp::window::WindowKind::Hann)
            .expect("n_fft >= 2");
    let spec = stft.magnitude_spectrogram(vib.samples(), vib.sample_rate());
    spec.mean_per_bin()
        .into_iter()
        .map(|m| m * MAGNITUDE_CALIBRATION)
        .collect()
}

/// Q3 magnitude per bin over a set of vibration signals.
pub fn q3_per_bin(vibs: &[AudioBuffer], n_fft: usize) -> Vec<f32> {
    let n_bins = n_fft / 2 + 1;
    if vibs.is_empty() {
        return vec![0.0; n_bins];
    }
    let spectra: Vec<Vec<f32>> = vibs
        .iter()
        .map(|v| vibration_magnitude_spectrum(v, n_fft))
        .collect();
    (0..n_bins)
        .map(|b| {
            let col: Vec<f32> = spectra.iter().map(|s| s[b]).collect();
            stats::third_quartile(&col)
        })
        .collect()
}

/// Runs the offline phoneme-selection experiment.
///
/// For each of the 37 common phonemes, `samples_per_phoneme` segments are
/// synthesized across the speaker panel and replayed by a loudspeaker at
/// the configured SPLs — once through each room's barrier, once without —
/// recorded at `distance_m`, converted to the vibration domain by
/// `wearable`, and screened by the two criteria.
pub fn run_selection<R: Rng + ?Sized>(
    cfg: &SelectionConfig,
    wearable: &Wearable,
    speakers: &[SpeakerProfile],
    rng: &mut R,
) -> PhonemeSelection {
    let fs = 16_000u32;
    let synth = Synthesizer::new(fs);
    let mic = Microphone::wearable();
    let speaker_device = Loudspeaker::sound_bar();
    let commons: Vec<CommonPhoneme> = common_phonemes();
    let bin_hz = wearable.accelerometer.sample_rate as f32 / cfg.n_fft as f32;
    let n_bins = cfg.n_fft / 2 + 1;
    // Interior evaluation band: above the 5 Hz artifact bins, below the
    // Nyquist edge bin.
    let eval_bins: Vec<usize> = (0..n_bins)
        .filter(|&b| {
            let f = b as f32 * bin_hz;
            f > 5.0 && f < wearable.accelerometer.sample_rate as f32 / 2.0 - bin_hz
        })
        .collect();

    let mut all_stats = Vec::with_capacity(commons.len());
    // Minimum measurement-segment duration: one full vibration STFT
    // window. Short phonemes (stop bursts) are repeated back-to-back to
    // fill it, exactly like a played-back measurement train; repetition
    // preserves the Welch per-bin statistics.
    let min_samples = (0.32 * fs as f32) as usize;
    for common in &commons {
        let raw = phoneme_samples(&synth, common.id, cfg.samples_per_phoneme, speakers, rng);
        let sounds: Vec<Vec<f32>> = raw
            .into_iter()
            .map(|s| {
                let mut seg = s.clone();
                while seg.len() < min_samples {
                    seg.extend_from_slice(&s);
                }
                seg
            })
            .collect();
        let mut adv_vibs = Vec::with_capacity(sounds.len());
        let mut user_vibs = Vec::with_capacity(sounds.len());
        for (i, sound) in sounds.iter().enumerate() {
            let room = &cfg.rooms[i % cfg.rooms.len()];
            let spl = cfg.spl_levels[i % cfg.spl_levels.len()];
            // Speech-level scaling: intrinsic per-phoneme intensity
            // differences must survive (they are what the criteria
            // screen), so the gain is the one that would put a whole
            // passage at `spl`, not this phoneme individually.
            let gain = speech_gain_for_spl(spl);
            let calibrated: Vec<f32> = sound.iter().map(|&x| x * gain).collect();

            let adv_path = AcousticPath::thru_barrier(room.clone(), cfg.distance_m, speaker_device);
            let adv_rec = adv_path.record(&calibrated, fs, &mic, rng);
            adv_vibs.push(wearable.convert(adv_rec.samples(), fs, rng));

            let user_path = AcousticPath {
                room: room.clone(),
                through_barrier: false,
                distance_m: cfg.distance_m,
                loudspeaker: Some(speaker_device),
                render: Default::default(),
            };
            let user_rec = user_path.record(&calibrated, fs, &mic, rng);
            user_vibs.push(wearable.convert(user_rec.samples(), fs, rng));
        }
        let q3_adv = q3_per_bin(&adv_vibs, cfg.n_fft);
        let q3_user = q3_per_bin(&user_vibs, cfg.n_fft);
        let max_adv = eval_bins
            .iter()
            .map(|&b| q3_adv[b])
            .fold(f32::NEG_INFINITY, f32::max);
        let min_user = eval_bins
            .iter()
            .map(|&b| q3_user[b])
            .fold(f32::INFINITY, f32::min);
        all_stats.push(PhonemeStats {
            id: common.id,
            symbol: common.symbol,
            q3_adv,
            q3_user,
            passes_criterion_1: max_adv < cfg.alpha,
            passes_criterion_2: min_user > cfg.alpha,
        });
    }
    PhonemeSelection {
        stats: all_stats,
        bin_frequencies: (0..n_bins).map(|b| b as f32 * bin_hz).collect(),
        alpha: cfg.alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_phoneme::corpus::speaker_panel;

    fn quick_selection(seed: u64) -> PhonemeSelection {
        let mut rng = StdRng::seed_from_u64(seed);
        let panel = speaker_panel(2, 2, &mut rng);
        let cfg = SelectionConfig {
            samples_per_phoneme: 8,
            ..Default::default()
        };
        run_selection(&cfg, &Wearable::fossil_gen_5(), &panel, &mut rng)
    }

    #[test]
    fn q3_per_bin_shapes() {
        let vibs = vec![
            AudioBuffer::new(vec![0.1; 40], 200),
            AudioBuffer::new(vec![0.2; 40], 200),
        ];
        let q3 = q3_per_bin(&vibs, 64);
        assert_eq!(q3.len(), 33);
        assert!(q3.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn empty_vibration_set_yields_zeros() {
        assert!(q3_per_bin(&[], 64).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn magnitude_spectrum_is_duration_comparable() {
        // The same tone at two durations should give similar magnitudes.
        let short = AudioBuffer::new(thrubarrier_dsp::gen::sine(25.0, 0.1, 200, 0.4), 200);
        let long = AudioBuffer::new(thrubarrier_dsp::gen::sine(25.0, 0.1, 200, 1.2), 200);
        let ms = vibration_magnitude_spectrum(&short, 64);
        let ml = vibration_magnitude_spectrum(&long, 64);
        let peak_s = ms.iter().cloned().fold(0.0f32, f32::max);
        let peak_l = ml.iter().cloned().fold(0.0f32, f32::max);
        assert!(
            (peak_s - peak_l).abs() / peak_l < 0.5,
            "{peak_s} vs {peak_l}"
        );
    }

    // The full-selection behaviour (31 of 37, /s/ /z/ /aa/ /ao/ rejected)
    // is covered by the slower integration tests and the `repro table2`
    // driver; here we only check the experiment runs end to end on a
    // reduced sample count and produces coherent statistics.
    #[test]
    fn selection_runs_and_separates_extremes() {
        let sel = quick_selection(1);
        assert_eq!(sel.stats.len(), 37);
        assert_eq!(sel.bin_frequencies.len(), 33);
        // /s/ is intrinsically weak: it must fail Criterion II.
        let s = sel.stats_for("s").unwrap();
        assert!(!s.passes_criterion_2, "/s/ passed criterion II");
        // /ih/ is a regular vowel: it must be selected.
        let ih = sel.stats_for("ih").unwrap();
        assert!(
            ih.selected(),
            "/ih/ rejected: c1={} c2={}",
            ih.passes_criterion_1,
            ih.passes_criterion_2
        );
        // /aa/ is over-loud: it must fail Criterion I.
        let aa = sel.stats_for("aa").unwrap();
        assert!(!aa.passes_criterion_1, "/aa/ passed criterion I");
    }
}
