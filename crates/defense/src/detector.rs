//! The 2-D-correlation attack detector (paper Sec. VI-C, Eq. 6).

use thrubarrier_dsp::{correlate, Spectrogram};

/// Threshold-based detector over the 2-D correlation score.
///
/// Scores live in `[0, 1]` (negative correlations clamp to 0 — they
/// carry the same meaning as zero: the two feature maps share no
/// structure). A score **below** the threshold is classified as a
/// thru-barrier attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationDetector {
    /// Decision threshold in `[0, 1]`.
    pub threshold: f32,
}

impl Default for CorrelationDetector {
    fn default() -> Self {
        // A mid-range operating point; evaluations sweep the threshold.
        CorrelationDetector { threshold: 0.5 }
    }
}

impl CorrelationDetector {
    /// Creates a detector with the given threshold.
    pub fn new(threshold: f32) -> Self {
        CorrelationDetector { threshold }
    }

    /// The similarity score of two feature maps: 2-D Pearson correlation
    /// over the common time support, clamped to `[0, 1]`.
    ///
    /// Returns `0.0` (maximally suspicious) when either map is empty or
    /// they disagree in bin count — an attack cannot be ruled out
    /// without comparable evidence.
    pub fn score(&self, a: &Spectrogram, b: &Spectrogram) -> f32 {
        let _span = thrubarrier_obs::span!("defense.correlate");
        match correlate::spectrogram_correlation(a, b) {
            Ok(r) => r.max(0.0),
            Err(_) => 0.0,
        }
    }

    /// Whether a score indicates a thru-barrier attack.
    pub fn is_attack(&self, score: f32) -> bool {
        score < self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrubarrier_dsp::{gen, AudioBuffer, Stft};

    fn spec_of(sig: &[f32]) -> Spectrogram {
        Stft::vibration_default().power_spectrogram(sig, 200)
    }

    #[test]
    fn identical_features_score_one() {
        let s = spec_of(&gen::sine(30.0, 0.4, 200, 2.0));
        let d = CorrelationDetector::default();
        assert!((d.score(&s, &s) - 1.0).abs() < 1e-5);
        assert!(!d.is_attack(d.score(&s, &s)));
    }

    #[test]
    fn unrelated_noise_scores_low() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let a = spec_of(&gen::gaussian_noise(&mut rng, 0.2, 400));
        let b = spec_of(&gen::gaussian_noise(&mut rng, 0.2, 400));
        let d = CorrelationDetector::default();
        let score = d.score(&a, &b);
        assert!(score < 0.5, "score {score}");
        assert!(d.is_attack(score));
    }

    #[test]
    fn negative_correlation_clamps_to_zero() {
        // Construct anti-correlated maps via a raw spectrogram pair is
        // impossible (power is non-negative), so exercise via the
        // mismatch path instead: empty map scores 0.
        let empty = spec_of(&[]);
        let s = spec_of(&gen::sine(30.0, 0.4, 200, 2.0));
        let d = CorrelationDetector::default();
        assert_eq!(d.score(&empty, &s), 0.0);
    }

    #[test]
    fn threshold_boundary_is_exclusive() {
        let d = CorrelationDetector::new(0.5);
        assert!(!d.is_attack(0.5));
        assert!(d.is_attack(0.499));
    }

    #[test]
    fn vibration_audio_buffer_roundtrip() {
        let vib = AudioBuffer::new(gen::sine(25.0, 0.3, 200, 1.0), 200);
        let s = spec_of(vib.samples());
        assert!(s.frames() > 0);
    }
}
