//! The thru-barrier attack defense system — the paper's contribution.
//!
//! A training-free defense that compares the voice command recorded by
//! the VA device with the one recorded by the user's wearable **in the
//! vibration domain**, where the barrier's frequency-selective
//! attenuation becomes conspicuous:
//!
//! 1. [`sync`] — *Cross-device Synchronization*: the wearable is
//!    triggered over WiFi when the VA hears the wake word; residual
//!    network delay is estimated by cross-correlation (paper Eq. 5) and
//!    removed.
//! 2. [`selection`] — *Barrier-effect Sensitive Phoneme Selection*
//!    (offline): the 37 common phonemes are screened by Criterion I
//!    (must **not** trigger the accelerometer after passing a barrier)
//!    and Criterion II (must trigger it without a barrier), both stated
//!    on third-quartile vibration FFT magnitudes against the threshold
//!    α = 0.015 (paper Eqs. 2–3). 31 of 37 phonemes survive.
//! 3. [`segmentation`] — *Barrier-effect Sensitive Phoneme Segmentation*
//!    (online): a BRNN (bidirectional LSTM, 64 units) over 14 MFCCs
//!    (40 mel filters, 0–900 Hz, 25 ms/10 ms frames) marks the frames
//!    containing sensitive phonemes; those segments are concatenated for
//!    cross-domain sensing.
//! 4. [`features`] — *Vibration-domain Feature Extraction*: each
//!    recording is replayed through the wearable speaker and captured by
//!    the accelerometer, then 64-point STFT power features are computed,
//!    bins at or below 5 Hz are cropped (sensor artifact + body motion)
//!    and the map is normalized by its maximum (distance invariance).
//! 5. [`detector`] — *Thru-barrier Attack Detector*: the 2-D correlation
//!    coefficient of the two normalized feature maps (paper Eq. 6);
//!    thru-barrier attacks convert noisily (low-frequency-driven
//!    accelerometer noise) and score low; a threshold decides.
//!
//! [`system::DefenseSystem`] wires the pipeline together and also
//! implements the two baselines the paper evaluates against: audio-domain
//! 2-D correlation, and vibration-domain correlation *without* phoneme
//! selection.

#![warn(missing_docs)]

pub mod detector;
pub mod features;
pub mod guard;
pub mod segmentation;
pub mod selection;
pub mod sync;
pub mod system;

pub use detector::CorrelationDetector;
pub use guard::{VaGuard, Verdict};
pub use segmentation::{EnergySelector, PhonemeDetector, ScoringBackend, SegmentSelector};
pub use selection::{PhonemeSelection, SelectionConfig};
pub use system::{DefenseMethod, DefenseSystem};
