//! The assembled defense system and the paper's two baselines.

use crate::detector::CorrelationDetector;
use crate::features::VibrationFeatureExtractor;
use crate::segmentation::{extract_selected_samples, EnergySelector, SegmentSelector};
use crate::sync;
use rand::Rng;
use std::sync::Arc;
use thrubarrier_dsp::AudioBuffer;
use thrubarrier_vibration::Wearable;

/// The three detection methods the paper evaluates (Figs. 9–11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefenseMethod {
    /// 2-D correlation of the two recordings in the **audio** domain —
    /// the weakest baseline.
    AudioBaseline,
    /// Cross-domain sensing on the **whole** recordings (no phoneme
    /// selection).
    VibrationBaseline,
    /// The full system: sensitive-phoneme segments only.
    Full,
}

impl DefenseMethod {
    /// All three methods in the paper's presentation order.
    pub fn all() -> [DefenseMethod; 3] {
        [
            DefenseMethod::AudioBaseline,
            DefenseMethod::VibrationBaseline,
            DefenseMethod::Full,
        ]
    }

    /// Label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            DefenseMethod::AudioBaseline => "Audio-domain baseline",
            DefenseMethod::VibrationBaseline => "Vibration-domain baseline",
            DefenseMethod::Full => "Our defense system",
        }
    }
}

/// The end-to-end thru-barrier attack defense.
///
/// Holds the wearable (whose speaker + accelerometer perform cross-domain
/// sensing), the segment selector (BRNN phoneme detector in the paper;
/// an energy heuristic by default so construction is cheap), the
/// vibration feature extractor and the correlation detector.
#[derive(Clone)]
pub struct DefenseSystem {
    /// The user's wearable device.
    pub wearable: Wearable,
    /// Vibration feature extraction configuration.
    pub features: VibrationFeatureExtractor,
    /// The thresholded correlation detector.
    pub detector: CorrelationDetector,
    selector: Arc<dyn SegmentSelector>,
    /// Maximum network delay the synchronizer searches over, seconds.
    pub max_sync_delay_s: f32,
    /// Minimum duration (seconds) of selected audio required for a
    /// meaningful vibration comparison; shorter selections score 0.
    pub min_selected_s: f32,
    /// Ablation switch: run cross-correlation synchronization (Eq. 5)
    /// before comparing. Default true.
    pub synchronize: bool,
    /// Ablation switch: replay recordings at the fixed standard volume
    /// before conversion. Default true.
    pub normalize_replay: bool,
}

impl std::fmt::Debug for DefenseSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DefenseSystem")
            .field("wearable", &self.wearable.name)
            .field("detector", &self.detector)
            .field("max_sync_delay_s", &self.max_sync_delay_s)
            .finish_non_exhaustive()
    }
}

impl DefenseSystem {
    /// The paper's configuration with a cheap energy-based segment
    /// selector (adequate for examples and quick starts; swap in a
    /// trained BRNN via [`DefenseSystem::with_selector`] for the paper's
    /// full pipeline).
    pub fn paper_default() -> Self {
        DefenseSystem {
            wearable: Wearable::fossil_gen_5(),
            features: VibrationFeatureExtractor::paper_default(),
            detector: CorrelationDetector::default(),
            selector: Arc::new(EnergySelector::default()),
            max_sync_delay_s: 0.25,
            min_selected_s: 0.15,
            synchronize: true,
            normalize_replay: true,
        }
    }

    /// Builds a system around a specific wearable and segment selector
    /// (e.g. a trained [`crate::segmentation::PhonemeDetector`]).
    pub fn with_selector(wearable: Wearable, selector: Arc<dyn SegmentSelector>) -> Self {
        DefenseSystem {
            wearable,
            selector,
            ..DefenseSystem::paper_default()
        }
    }

    /// Replaces the detector threshold.
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        self.detector = CorrelationDetector::new(threshold);
        self
    }

    /// The segment selector (shared; e.g. for batched mask computation
    /// via [`SegmentSelector::sensitive_frames_batch`]).
    pub fn selector(&self) -> &Arc<dyn SegmentSelector> {
        &self.selector
    }

    /// A copy of this system whose selector routes batched segment
    /// scoring through `backend` (the shared cross-worker scoring
    /// engine). Selectors with no batched classifier — or none that
    /// supports routing — are kept as-is, and single-recording scoring
    /// always stays on the inline path, so this is safe to call
    /// unconditionally.
    pub fn with_scoring_backend(
        &self,
        backend: Arc<dyn crate::segmentation::ScoringBackend>,
    ) -> Self {
        let mut out = self.clone();
        if let Some(routed) = self.selector.with_backend(backend) {
            out.selector = routed;
        }
        out
    }

    /// Scores a recording pair with the **full** pipeline. Higher = more
    /// likely legitimate; `[0, 1]`.
    pub fn score<R: Rng + ?Sized>(
        &self,
        va_recording: &AudioBuffer,
        wearable_recording: &AudioBuffer,
        rng: &mut R,
    ) -> f32 {
        self.score_with_method(DefenseMethod::Full, va_recording, wearable_recording, rng)
    }

    /// Scores a recording pair with any of the three methods.
    pub fn score_with_method<R: Rng + ?Sized>(
        &self,
        method: DefenseMethod,
        va_recording: &AudioBuffer,
        wearable_recording: &AudioBuffer,
        rng: &mut R,
    ) -> f32 {
        if va_recording.is_empty() || wearable_recording.is_empty() {
            return 0.0;
        }
        let _span = thrubarrier_obs::span!("defense.score");
        let aligned_wearable = match self.align(va_recording, wearable_recording) {
            Some(aligned) => aligned,
            None => return 0.0,
        };
        match method {
            DefenseMethod::AudioBaseline => {
                let a = VibrationFeatureExtractor::extract_audio_baseline(va_recording);
                let b = VibrationFeatureExtractor::extract_audio_baseline(&aligned_wearable);
                self.detector.score(&a, &b)
            }
            DefenseMethod::VibrationBaseline => self.vibration_score(
                va_recording.samples(),
                aligned_wearable.samples(),
                va_recording.sample_rate(),
                rng,
            ),
            DefenseMethod::Full => {
                let fs = va_recording.sample_rate();
                let mask = {
                    let _span = thrubarrier_obs::span!("defense.segmentation");
                    self.selector.sensitive_frames(va_recording.samples(), fs)
                };
                self.masked_vibration_score(va_recording, &aligned_wearable, &mask, rng)
            }
        }
    }

    /// Scores a recording pair with the **full** pipeline using a
    /// precomputed sensitive-frame mask — e.g. one of many computed in a
    /// single minibatch via [`SegmentSelector::sensitive_frames_batch`].
    /// Identical to [`DefenseSystem::score`] when `mask` equals what the
    /// system's own selector would produce.
    pub fn score_full_with_mask<R: Rng + ?Sized>(
        &self,
        va_recording: &AudioBuffer,
        wearable_recording: &AudioBuffer,
        mask: &[bool],
        rng: &mut R,
    ) -> f32 {
        if va_recording.is_empty() || wearable_recording.is_empty() {
            return 0.0;
        }
        let _span = thrubarrier_obs::span!("defense.score");
        let aligned_wearable = match self.align(va_recording, wearable_recording) {
            Some(aligned) => aligned,
            None => return 0.0,
        };
        self.masked_vibration_score(va_recording, &aligned_wearable, mask, rng)
    }

    /// Cross-correlation alignment of the wearable recording, honoring
    /// the `synchronize` ablation switch. `None` = alignment failed.
    fn align(
        &self,
        va_recording: &AudioBuffer,
        wearable_recording: &AudioBuffer,
    ) -> Option<AudioBuffer> {
        if self.synchronize {
            let _span = thrubarrier_obs::span!("defense.sync");
            sync::synchronize(va_recording, wearable_recording, self.max_sync_delay_s)
                .ok()
                .map(|(aligned, _delay)| aligned)
        } else {
            Some(wearable_recording.clone())
        }
    }

    /// The Full-method tail: applies the sensitive-frame mask to both
    /// recordings and scores the selections in the vibration domain.
    fn masked_vibration_score<R: Rng + ?Sized>(
        &self,
        va_recording: &AudioBuffer,
        aligned_wearable: &AudioBuffer,
        mask: &[bool],
        rng: &mut R,
    ) -> f32 {
        let fs = va_recording.sample_rate();
        // Frame geometry of the paper's MFCC front-end.
        let (frame_len, hop) = (400, 160);
        let va_sel = extract_selected_samples(va_recording.samples(), mask, frame_len, hop);
        let w_sel = extract_selected_samples(aligned_wearable.samples(), mask, frame_len, hop);
        if (va_sel.len() as f32) < self.min_selected_s * fs as f32 {
            // Too little sensitive-phoneme evidence: treat as an
            // attack (legitimate commands always contain it).
            return 0.0;
        }
        self.vibration_score(&va_sel, &w_sel, fs, rng)
    }

    /// RMS level every recording is replayed at: the wearable's speaker
    /// plays at a fixed standard volume, so recordings are
    /// level-normalized before conversion (this is also what makes the
    /// comparison robust to the user's distance from the VA device).
    pub const REPLAY_RMS: f32 = 0.1;

    /// Converts both signals to the vibration domain on the wearable and
    /// correlates their features. Each signal is replayed at the fixed
    /// standard volume ([`DefenseSystem::REPLAY_RMS`]).
    fn vibration_score<R: Rng + ?Sized>(
        &self,
        va_audio: &[f32],
        wearable_audio: &[f32],
        sample_rate: u32,
        rng: &mut R,
    ) -> f32 {
        let normalize = |sig: &[f32]| -> Vec<f32> {
            let rms = thrubarrier_dsp::stats::rms(sig);
            if rms <= 0.0 || !self.normalize_replay {
                return sig.to_vec();
            }
            let g = Self::REPLAY_RMS / rms;
            sig.iter().map(|&x| x * g).collect()
        };
        let _span = thrubarrier_obs::span!("defense.vibration_score");
        let va_replay = normalize(va_audio);
        let w_replay = normalize(wearable_audio);
        // Pair conversion through one engine borrow: both recordings
        // share warm FFT plans, curve tables and scratch.
        let (vib_va, vib_w) = thrubarrier_vibration::with_engine(|e| {
            e.convert_pair(&self.wearable, &va_replay, &w_replay, sample_rate, rng)
        });
        let fa = self.features.extract(&vib_va);
        let fb = self.features.extract(&vib_w);
        self.detector.score(&fa, &fb)
    }

    /// Whether a score indicates an attack at the configured threshold.
    pub fn is_attack(&self, score: f32) -> bool {
        self.detector.is_attack(score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::gen;

    /// Builds a synthetic recording pair: the same source heard at two
    /// devices with independent mic noise.
    fn recording_pair(source: &[f32], noise: f32, seed: u64) -> (AudioBuffer, AudioBuffer) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = source.to_vec();
        let mut b = source.to_vec();
        for v in &mut a {
            *v += noise * thrubarrier_dsp::gen::standard_normal(&mut rng);
        }
        for v in &mut b {
            *v += noise * thrubarrier_dsp::gen::standard_normal(&mut rng);
        }
        (AudioBuffer::new(a, 16_000), AudioBuffer::new(b, 16_000))
    }

    #[test]
    fn wideband_pair_scores_higher_than_lowband_pair() {
        // The core discrimination: a wideband (user-like) source scores
        // high, a low-frequency-dominated (attack-like) source scores low
        // in the vibration domain.
        let sys = DefenseSystem::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let user_src = gen::chirp(150.0, 3_000.0, 0.1, 16_000, 2.0);
        let attack_src = gen::chirp(100.0, 450.0, 0.05, 16_000, 2.0);
        let (ua, ub) = recording_pair(&user_src, 0.001, 2);
        let (aa, ab) = recording_pair(&attack_src, 0.001, 3);
        let s_user = sys.score_with_method(DefenseMethod::VibrationBaseline, &ua, &ub, &mut rng);
        let s_attack = sys.score_with_method(DefenseMethod::VibrationBaseline, &aa, &ab, &mut rng);
        assert!(
            s_user > s_attack + 0.2,
            "user {s_user} vs attack {s_attack}"
        );
    }

    #[test]
    fn empty_recordings_score_zero() {
        let sys = DefenseSystem::paper_default();
        let mut rng = StdRng::seed_from_u64(4);
        let empty = AudioBuffer::empty(16_000);
        let some = AudioBuffer::new(vec![0.1; 1_000], 16_000);
        for m in DefenseMethod::all() {
            assert_eq!(sys.score_with_method(m, &empty, &some, &mut rng), 0.0);
        }
    }

    #[test]
    fn silent_selection_scores_near_zero() {
        // A near-silent recording converts to pure sensor noise, so the
        // two conversions must not correlate: the score sits at the
        // noise level (negative correlations clamp to exactly 0, tiny
        // positive ones survive) and is flagged as an attack.
        let sys = DefenseSystem::paper_default();
        let mut rng = StdRng::seed_from_u64(5);
        let quiet = AudioBuffer::new(vec![1e-6; 16_000], 16_000);
        let s = sys.score(&quiet, &quiet, &mut rng);
        assert!(s < 0.05, "score {s}");
        assert!(sys.is_attack(s));
    }

    #[test]
    fn audio_baseline_scores_identical_recordings_high() {
        let sys = DefenseSystem::paper_default();
        let mut rng = StdRng::seed_from_u64(6);
        let src = gen::chirp(150.0, 3_000.0, 0.1, 16_000, 1.0);
        let (a, b) = recording_pair(&src, 0.0005, 7);
        let s = sys.score_with_method(DefenseMethod::AudioBaseline, &a, &b, &mut rng);
        assert!(s > 0.8, "score {s}");
    }

    #[test]
    fn precomputed_mask_scoring_matches_full_method() {
        let sys = DefenseSystem::paper_default();
        let src = gen::chirp(150.0, 3_000.0, 0.1, 16_000, 1.0);
        let (a, b) = recording_pair(&src, 0.001, 8);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let inline = sys.score_with_method(DefenseMethod::Full, &a, &b, &mut rng_a);
        let mask = sys
            .selector()
            .sensitive_frames_batch(&[a.samples()], a.sample_rate())
            .pop()
            .unwrap();
        let masked = sys.score_full_with_mask(&a, &b, &mask, &mut rng_b);
        assert_eq!(inline.to_bits(), masked.to_bits());
    }

    #[test]
    fn threshold_builder_applies() {
        let sys = DefenseSystem::paper_default().with_threshold(0.7);
        assert!(sys.is_attack(0.69));
        assert!(!sys.is_attack(0.71));
    }

    #[test]
    fn method_labels_match_figures() {
        assert_eq!(
            DefenseMethod::AudioBaseline.label(),
            "Audio-domain baseline"
        );
        assert_eq!(DefenseMethod::Full.label(), "Our defense system");
        assert_eq!(DefenseMethod::all().len(), 3);
    }
}
