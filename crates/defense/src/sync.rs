//! Cross-device synchronization (paper Sec. VI-A).
//!
//! The VA device and the wearable record the same command, but the WiFi
//! trigger reaches the wearable ~100 ms late and propagation paths
//! differ. The residual offset is estimated by maximizing the
//! cross-correlation between the two audio recordings (paper Eq. 5) and
//! the wearable recording is trimmed to start with the VA's.

use rand::Rng;
use thrubarrier_dsp::{correlate, AudioBuffer, DspError};

/// Typical WiFi trigger delay bounds in seconds (paper: "around 100 ms").
pub const NETWORK_DELAY_RANGE_S: (f32, f32) = (0.04, 0.18);

/// Draws a random network trigger delay within
/// [`NETWORK_DELAY_RANGE_S`].
pub fn random_network_delay<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    rng.gen_range(NETWORK_DELAY_RANGE_S.0..NETWORK_DELAY_RANGE_S.1)
}

/// Simulates the wearable starting its recording `delay_s` after the VA:
/// the first `delay_s` of the signal are lost (the wearable simply was
/// not recording yet).
pub fn apply_trigger_delay(signal: &AudioBuffer, delay_s: f32) -> AudioBuffer {
    let skip = (delay_s * signal.sample_rate() as f32).round() as usize;
    signal.slice(skip, signal.len())
}

/// Estimates the wearable recording's offset relative to the VA
/// recording (in samples of the common rate) and aligns the wearable
/// recording to the VA's timeline.
///
/// Returns the aligned wearable recording and the estimated delay in
/// samples (positive = wearable started late).
///
/// # Errors
///
/// Returns an error if either recording is empty or the rates differ.
pub fn synchronize(
    va: &AudioBuffer,
    wearable: &AudioBuffer,
    max_delay_s: f32,
) -> Result<(AudioBuffer, isize), DspError> {
    if va.sample_rate() != wearable.sample_rate() {
        return Err(DspError::DimensionMismatch {
            left: va.sample_rate() as usize,
            right: wearable.sample_rate() as usize,
        });
    }
    let max_lag = (max_delay_s * va.sample_rate() as f32).round() as usize;
    // The wearable misses the beginning, i.e. its content is the VA's
    // shifted *earlier*; estimate the delay of the VA signal relative to
    // the wearable signal. The engine searches only the ±max_lag window
    // (exact bounded-FFT correlation on recordings this long — attack
    // trials have flat correlation surfaces, so the approximate
    // coarse-to-fine search would shift downstream scores).
    let delay = correlate::estimate_delay(wearable.samples(), va.samples(), max_lag)?;
    // Invariant: the VA recording is authoritative — its timeline is
    // never shifted. The wearable recording is moved onto it (the
    // estimated missing prefix becomes silence when `delay > 0`) and
    // then trimmed to the VA's length, so both outputs share the VA's
    // start instant and a common length.
    let wearable_aligned = correlate::align_by_delay(wearable.samples(), -delay);
    let m = wearable_aligned.len().min(va.len());
    Ok((
        AudioBuffer::new(wearable_aligned[..m].to_vec(), va.sample_rate()),
        delay,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::gen;

    fn speechlike(seed: u64, n: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sig = gen::gaussian_noise(&mut rng, 0.1, n);
        // Add temporal structure so correlation peaks sharply.
        for (i, v) in sig.iter_mut().enumerate() {
            *v *= 0.5 + 0.5 * (i as f32 / 800.0).sin().abs();
        }
        sig
    }

    #[test]
    fn trigger_delay_drops_prefix() {
        let buf = AudioBuffer::new((0..1_600).map(|i| i as f32).collect(), 16_000);
        let delayed = apply_trigger_delay(&buf, 0.05);
        assert_eq!(delayed.len(), 800);
        assert_eq!(delayed.samples()[0], 800.0);
    }

    #[test]
    fn synchronize_recovers_network_delay() {
        let fs = 16_000u32;
        let source = speechlike(1, 2 * fs as usize);
        let va = AudioBuffer::new(source.clone(), fs);
        for delay_s in [0.05f32, 0.1, 0.17] {
            let wearable = apply_trigger_delay(&va, delay_s);
            let (aligned, est) = synchronize(&va, &wearable, 0.25).unwrap();
            let expected = (delay_s * fs as f32).round() as isize;
            assert!(
                (est - expected).abs() <= 2,
                "estimated {est} vs expected {expected}"
            );
            // Aligned signal overlays the VA recording after the gap.
            let offset = est as usize + 100;
            let d: f32 = aligned.samples()[offset..offset + 400]
                .iter()
                .zip(&va.samples()[offset..offset + 400])
                .map(|(a, b)| (a - b).abs())
                .sum();
            assert!(d < 1e-3, "misaligned content, err {d}");
        }
    }

    #[test]
    fn synchronize_with_noise_and_channel_difference() {
        let fs = 16_000u32;
        let source = speechlike(2, 2 * fs as usize);
        let mut rng = StdRng::seed_from_u64(3);
        let va = AudioBuffer::new(source.clone(), fs);
        let mut w = apply_trigger_delay(&va, 0.09).into_samples();
        // Different gain + independent noise on the wearable channel.
        for v in &mut w {
            *v = *v * 0.6 + 0.01 * thrubarrier_dsp::gen::standard_normal(&mut rng);
        }
        let (_, est) = synchronize(&va, &AudioBuffer::new(w, fs), 0.25).unwrap();
        let expected = (0.09 * fs as f32).round() as isize;
        assert!((est - expected).abs() <= 3, "est {est} vs {expected}");
    }

    #[test]
    fn synchronize_rejects_rate_mismatch() {
        let a = AudioBuffer::new(vec![0.0; 100], 16_000);
        let b = AudioBuffer::new(vec![0.0; 100], 8_000);
        assert!(synchronize(&a, &b, 0.1).is_err());
    }

    #[test]
    fn random_delay_is_in_documented_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let d = random_network_delay(&mut rng);
            assert!((NETWORK_DELAY_RANGE_S.0..NETWORK_DELAY_RANGE_S.1).contains(&d));
        }
    }

    #[test]
    fn zero_delay_alignment_is_identity_prefix() {
        let fs = 16_000u32;
        let source = speechlike(5, fs as usize);
        let va = AudioBuffer::new(source.clone(), fs);
        let (aligned, est) = synchronize(&va, &va, 0.2).unwrap();
        assert_eq!(est, 0);
        assert_eq!(aligned.samples(), va.samples());
    }
}
