//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick|--full] [--scale X] [--seed N] [--trace-out FILE] <experiment>...
//!
//! experiments:
//!   table1 table2 fig3 fig4 fig6 fig7 fig9 fig10
//!   fig11a fig11b fig11c fig11d phoneme-detection all
//! ```

use std::env;
use thrubarrier_attack::AttackKind;
use thrubarrier_bench::ReproPreset;
use thrubarrier_eval::experiments::{
    ablation, architectures, extensions, fig11, fig3, fig4, fig6, fig7, fig9, naive_baseline,
    phoneme_detection, table1, table2,
};
use thrubarrier_eval::runner::{Runner, RunnerConfig, SelectorChoice};

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut preset = ReproPreset::default_preset();
    let mut seed: Option<u64> = None;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => preset = ReproPreset::quick(),
            "--full" => preset = ReproPreset::full(),
            "--scale" => {
                let v = iter.next().expect("--scale needs a value");
                preset.scale = v.parse().expect("--scale must be a number");
            }
            "--seed" => {
                let v = iter.next().expect("--seed needs a value");
                seed = Some(v.parse().expect("--seed must be an integer"));
            }
            "--csv" => {
                let v = iter.next().expect("--csv needs a directory");
                csv_dir = Some(std::path::PathBuf::from(v));
            }
            "--trace-out" => {
                let v = iter.next().expect("--trace-out needs a file");
                trace_out = Some(std::path::PathBuf::from(v));
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output directory");
    }
    if experiments.is_empty() {
        print_help();
        return;
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1",
            "table2",
            "fig3",
            "fig4",
            "fig6",
            "fig7",
            "fig9",
            "fig10",
            "fig11a",
            "fig11b",
            "fig11c",
            "fig11d",
            "phoneme-detection",
            "ablation",
            "extensions",
            "architectures",
            "naive-baseline",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    if trace_out.is_some() {
        if !thrubarrier_obs::COMPILED {
            eprintln!(
                "warning: --trace-out without the `obs` feature writes an empty trace; \
                 rebuild with `--features obs`"
            );
        }
        thrubarrier_obs::label_thread("repro-main");
        thrubarrier_obs::start_trace();
    }
    for exp in &experiments {
        println!("================ {exp} ================");
        run_experiment(exp, &preset, seed, csv_dir.as_deref());
        println!();
    }
    if let Some(path) = &trace_out {
        // Every experiment's worker scope has joined by now, so the
        // trace holds all spans from all threads of the run.
        let trace = thrubarrier_obs::finish_trace();
        std::fs::write(path, trace).expect("write chrome trace JSON");
        eprintln!("wrote {} (chrome://tracing)", path.display());
    }
}

fn print_help() {
    println!(
        "repro — regenerate the paper's tables and figures\n\n\
         usage: repro [--quick|--full] [--scale X] [--seed N] <experiment>...\n\n\
         experiments: table1 table2 fig3 fig4 fig6 fig7 fig9 fig10\n\
                      fig11a fig11b fig11c fig11d phoneme-detection\n\
                      ablation extensions architectures naive-baseline all\n\n\
         --quick  small trial counts + energy selector (fast sanity pass)\n\
         --full   paper-scale trial counts + 64-unit BRNN (hours)\n\
         --scale  override the trial-count scale (1.0 = paper scale)\n\
         --seed   override the master seed\n\
         --csv    directory to write ROC CURVES as CSV (fig9/fig10)\n\
         --trace-out  write a chrome://tracing JSON of the whole run\n\
                      (spans only exist when built with --features obs)"
    );
}

fn run_experiment(
    name: &str,
    preset: &ReproPreset,
    seed: Option<u64>,
    csv_dir: Option<&std::path::Path>,
) {
    match name {
        "table1" => {
            let mut cfg = table1::AttackStudyConfig::default();
            if let Some(s) = seed {
                cfg.seed = s;
            }
            println!("{}", table1::run(&cfg).render_text());
        }
        "table2" => {
            let mut cfg = table2::SelectionStudyConfig::default();
            if let Some(s) = seed {
                cfg.seed = s;
            }
            cfg.samples_per_phoneme = ((100.0 * preset.scale.max(0.12)) as usize).clamp(12, 100);
            println!("{}", table2::run(&cfg).render_text());
        }
        "fig3" | "fig4" => {
            let mut cfg = fig3::BarrierEffectConfig::default();
            if let Some(s) = seed {
                cfg.seed = s;
            }
            cfg.samples_per_phoneme = ((100.0 * preset.scale.max(0.1)) as usize).clamp(10, 100);
            if name == "fig3" {
                println!("{}", fig3::run(&cfg).render_text());
            } else {
                println!("{}", fig4::run(&cfg).render_text());
            }
        }
        "fig6" => {
            let mut cfg = fig6::CriteriaDemoConfig::default();
            if let Some(s) = seed {
                cfg.seed = s;
            }
            println!("{}", fig6::run(&cfg).render_text());
        }
        "fig7" => {
            let mut cfg = fig7::ChirpStudyConfig::default();
            if let Some(s) = seed {
                cfg.seed = s;
            }
            println!("{}", fig7::run(&cfg).render_text());
        }
        "fig9" | "fig10" => {
            let mut cfg = fig9::DetectionStudyConfig {
                scale: preset.scale,
                selector: preset.selector,
                ..Default::default()
            };
            if let Some(s) = seed {
                cfg.seed = s;
            }
            cfg.attacks = if name == "fig9" {
                vec![
                    AttackKind::Random,
                    AttackKind::Replay,
                    AttackKind::VoiceSynthesis,
                ]
            } else {
                vec![AttackKind::HiddenVoice]
            };
            let study = fig9::run(&cfg);
            println!("{}", study.render_text());
            if let Some(dir) = csv_dir {
                for row in &study.rows {
                    for (method, metrics) in &row.methods {
                        let slug =
                            format!("{name}_{}_{method:?}", row.attack.name().replace(' ', "_"));
                        let path = dir.join(format!("{slug}_roc.csv"));
                        let file = std::fs::File::create(&path).expect("create roc csv");
                        thrubarrier_eval::report::write_roc_csv(
                            std::io::BufWriter::new(file),
                            &metrics.roc,
                        )
                        .expect("write roc csv");
                        println!("wrote {}", path.display());
                    }
                }
            }
        }
        "fig11a" | "fig11b" | "fig11c" | "fig11d" => {
            let mut cfg = fig11::ImpactStudyConfig {
                scale: preset.scale,
                selector: preset.selector,
                ..Default::default()
            };
            if let Some(s) = seed {
                cfg.seed = s;
            }
            // Build the (possibly trained) selector once.
            let runner = Runner::new(RunnerConfig {
                selector: cfg.selector,
                seed: cfg.seed,
                ..Default::default()
            });
            let (selector, _) = runner.build_selector();
            let panel = match name {
                "fig11a" => fig11::run_fig11a(&cfg, selector),
                "fig11b" => fig11::run_fig11b(&cfg, selector),
                "fig11c" => fig11::run_fig11c(&cfg, selector),
                _ => fig11::run_fig11d(&cfg, selector),
            };
            println!("{}", panel.render_text());
        }
        "phoneme-detection" => {
            let mut cfg = phoneme_detection::DetectionAccuracyConfig::default();
            if let Some(s) = seed {
                cfg.seed = s;
            }
            if let SelectorChoice::Brnn {
                corpus_size,
                epochs,
                hidden,
            } = preset.selector
            {
                cfg.corpus_size = corpus_size;
                cfg.epochs = epochs;
                cfg.hidden = hidden;
            }
            cfg.samples_per_phoneme = ((100.0 * preset.scale.max(0.08)) as usize).clamp(8, 100);
            println!("{}", phoneme_detection::run(&cfg).render_text());
        }
        "ablation" => {
            let mut cfg = ablation::AblationConfig::default();
            if let Some(s) = seed {
                cfg.seed = s;
            }
            cfg.trials = ((800.0 * preset.scale) as usize).clamp(16, 800);
            println!("{}", ablation::run(&cfg).render_text());
        }
        "architectures" => {
            let mut cfg = architectures::ArchitectureStudyConfig::default();
            if let Some(s) = seed {
                cfg.seed = s;
            }
            if let SelectorChoice::Brnn {
                corpus_size,
                epochs,
                hidden,
            } = preset.selector
            {
                cfg.corpus_size = corpus_size;
                cfg.epochs = epochs;
                cfg.hidden = hidden;
            }
            println!("{}", architectures::run(&cfg).render_text());
        }
        "naive-baseline" => {
            let mut cfg = naive_baseline::NaiveBaselineConfig::default();
            if let Some(s) = seed {
                cfg.seed = s;
            }
            cfg.trials = ((1_200.0 * preset.scale) as usize).clamp(24, 1_200);
            println!("{}", naive_baseline::run(&cfg).render_text());
        }
        "extensions" => {
            let mut cfg = extensions::ExtensionConfig::default();
            if let Some(s) = seed {
                cfg.seed = s;
            }
            cfg.trials = ((600.0 * preset.scale) as usize).clamp(12, 600);
            println!("{}", extensions::render_all(&cfg));
        }
        other => eprintln!("unknown experiment: {other} (see repro --help)"),
    }
}
