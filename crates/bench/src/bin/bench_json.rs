//! Wall-clock pipeline benchmark with JSON output.
//!
//! Measures the median time of each pipeline stage and writes (or merges
//! into) `BENCH_pipeline.json` so the perf trajectory of the workspace is
//! tracked in-repo across PRs. Criterion remains the precision harness;
//! this binary exists so a labelled snapshot can be committed.
//!
//! Usage: `bench_json [--label NAME] [--out FILE] [--iters N]
//! [--best-of N] [--trace-out FILE]`
//!
//! Runs under an existing label are replaced; other labels are kept, so
//! `--label pre` / `--label post` snapshots accumulate in one file.
//!
//! When the workspace is built with `--features obs`, the output also
//! embeds a `"metrics"` snapshot of the observability registry (cache
//! hit rates, queue depths, batch-size and latency histograms) taken
//! over the measured sweeps, and `--trace-out FILE` additionally writes
//! a chrome://tracing JSON of every span in the final sweep (load it at
//! `chrome://tracing` or <https://ui.perfetto.dev>). Without the
//! feature both are inert: the snapshot renders empty sections and the
//! trace has no events.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use thrubarrier_acoustics::barrier::{Barrier, BarrierMaterial};
use thrubarrier_defense::{DefenseMethod, DefenseSystem};
use thrubarrier_dsp::mel::MfccExtractor;
use thrubarrier_dsp::{correlate, fft, gen, Stft};
use thrubarrier_eval::runner::{score_trial, Runner, RunnerConfig};
use thrubarrier_eval::scenario::TrialContext;
use thrubarrier_nn::act::gates_fused;
use thrubarrier_nn::model::{BrnnClassifier, TrainConfig};
use thrubarrier_nn::score::{ScoreService, DEFAULT_MAX_BATCH};
use thrubarrier_nn::{BatchWorkspace, GemmScratch};
use thrubarrier_vibration::Wearable;

/// Timed runs discarded before measurement starts (fills FFT-plan and
/// response-curve caches, allocator pools, and branch predictors).
const WARMUP_ITERS: usize = 3;

/// Median wall-clock nanoseconds of `f` over `iters` timed runs, after
/// warm-up and outlier rejection: the top and bottom decile of samples
/// are dropped before taking the median, so a stray scheduler hiccup in
/// one run cannot move the reported figure between PRs.
fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> u64 {
    for _ in 0..WARMUP_ITERS {
        f();
    }
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    let trim = samples.len() / 10;
    let kept = &samples[trim..samples.len() - trim];
    kept[kept.len() / 2]
}

fn run_stages(iters: usize) -> BTreeMap<&'static str, u64> {
    let mut out = BTreeMap::new();
    let speech = gen::chirp(100.0, 3_000.0, 0.3, 16_000, 1.0);

    out.insert(
        "fft_magnitude_16k_samples",
        median_ns(iters, || {
            black_box(fft::magnitude_spectrum(black_box(&speech), 0));
        }),
    );

    let barrier = Barrier::new(BarrierMaterial::GlassWindow);
    out.insert(
        "barrier_transmit_16k_samples",
        median_ns(iters, || {
            black_box(barrier.transmit(black_box(&speech), 16_000));
        }),
    );

    let vib = gen::sine(30.0, 0.1, 200, 2.0);
    let stft = Stft::vibration_default();
    out.insert(
        "stft_vibration_400_samples",
        median_ns(iters.max(64), || {
            black_box(stft.power_spectrogram(black_box(&vib), 200));
        }),
    );

    let mfcc = MfccExtractor::paper_default();
    out.insert(
        "mfcc_1s_audio",
        median_ns(iters, || {
            black_box(mfcc.extract(black_box(&speech)));
        }),
    );

    let mut rng = StdRng::seed_from_u64(1);
    let reference = gen::gaussian_noise(&mut rng, 0.1, 16_000);
    let mut delayed = vec![0.0f32; 1_600];
    delayed.extend_from_slice(&reference);
    out.insert(
        "delay_estimation_1s",
        median_ns(iters, || {
            black_box(
                correlate::estimate_delay(black_box(&reference), black_box(&delayed), 4_000)
                    .unwrap(),
            );
        }),
    );

    // The correlation engine's stages at the cross-device sync shape
    // (1 s reference against a 1.1 s delayed copy, max lag 0.25 s):
    // `xcorr_1s` is the full-correlation auto path (FFT at this size),
    // `estimate_delay_1s` pins the exact bounded-FFT search the engine
    // picks for this shape (pinned so the figure keeps naming one path
    // even if auto crossovers are retuned), `estimate_delay_1s_coarse`
    // tracks the opt-in approximate coarse-to-fine path, and the
    // `*_time` stages are the exact time-domain oracles the speedups
    // are claimed against. The oracles cost ~10^8 multiply-adds per
    // call, so they run on a reduced iteration budget.
    out.insert(
        "xcorr_1s",
        median_ns(iters, || {
            black_box(
                correlate::cross_correlate(black_box(&reference), black_box(&delayed)).unwrap(),
            );
        }),
    );
    out.insert(
        "xcorr_1s_time",
        median_ns(iters.min(5), || {
            black_box(correlate::cross_correlate_time(
                black_box(&reference),
                black_box(&delayed),
            ));
        }),
    );
    out.insert(
        "estimate_delay_1s",
        median_ns(iters, || {
            black_box(
                correlate::estimate_delay_with(
                    black_box(&reference),
                    black_box(&delayed),
                    4_000,
                    correlate::LagSearch::Fft,
                )
                .unwrap(),
            );
        }),
    );
    out.insert(
        "estimate_delay_1s_coarse",
        median_ns(iters, || {
            black_box(
                correlate::estimate_delay_with(
                    black_box(&reference),
                    black_box(&delayed),
                    4_000,
                    correlate::LagSearch::CoarseToFine,
                )
                .unwrap(),
            );
        }),
    );
    out.insert(
        "estimate_delay_1s_time",
        median_ns(iters.min(5), || {
            black_box(
                correlate::estimate_delay_with(
                    black_box(&reference),
                    black_box(&delayed),
                    4_000,
                    correlate::LagSearch::TimeDomain,
                )
                .unwrap(),
            );
        }),
    );

    // Parity guard: at the 1 s shape the engine's frequency-domain paths
    // must never lose to the exact time-domain oracles on the bench
    // host. Asserted so a path-selection regression fails the bench run
    // instead of silently recording a bad snapshot. The stage value is
    // the full-correlation speedup in thousandths (unitless — the one
    // stage in this file that is not a nanosecond median).
    let (fft_ns, time_ns) = (out["xcorr_1s"], out["xcorr_1s_time"]);
    assert!(
        fft_ns <= time_ns,
        "xcorr_parity: FFT path {fft_ns} ns slower than time-domain {time_ns} ns at 1 s inputs"
    );
    assert!(
        out["estimate_delay_1s"] <= out["estimate_delay_1s_time"],
        "xcorr_parity: coarse-to-fine {} ns slower than exhaustive {} ns at 1 s inputs",
        out["estimate_delay_1s"],
        out["estimate_delay_1s_time"]
    );
    out.insert(
        "xcorr_parity_speedup_x1000",
        time_ns * 1_000 / fft_ns.max(1),
    );

    let wearable = Wearable::fossil_gen_5();
    let long_speech = gen::chirp(150.0, 3_000.0, 0.1, 16_000, 2.0);
    out.insert(
        "wearable_convert_2s",
        median_ns(iters, || {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(wearable.convert(black_box(&long_speech), 16_000, &mut rng));
        }),
    );

    // The conversion engine's stages at the verification shape (1 s of
    // speech at 16 kHz): `vibration_convert_1s` is the fused
    // single-transform path, `vibration_convert_1s_staged` the kept
    // per-effect oracle the speedup is claimed against, and
    // `vibration_score_pair_1s` the defense's pair-conversion scoring
    // call that rides on `convert_pair`.
    let one_sec = gen::chirp(150.0, 3_000.0, 1.0, 16_000, 1.0);
    out.insert(
        "vibration_convert_1s",
        median_ns(iters, || {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(wearable.convert(black_box(&one_sec), 16_000, &mut rng));
        }),
    );
    out.insert(
        "vibration_convert_1s_staged",
        median_ns(iters, || {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(wearable.convert_staged(black_box(&one_sec), 16_000, &mut rng));
        }),
    );

    // Parity guard: the fused engine must never lose to the staged
    // oracle on the bench host. Asserted so an engine regression fails
    // the bench run instead of silently recording a bad snapshot; the
    // speedup stage is in thousandths, like `xcorr_parity_speedup_x1000`.
    let (fused_ns, staged_ns) = (
        out["vibration_convert_1s"],
        out["vibration_convert_1s_staged"],
    );
    assert!(
        fused_ns <= staged_ns,
        "vibration_parity: fused path {fused_ns} ns slower than staged {staged_ns} ns at 1 s inputs"
    );
    out.insert(
        "vibration_parity_speedup_x1000",
        staged_ns * 1_000 / fused_ns.max(1),
    );

    // Acoustic scene rendering (the evaluation's dominant trial-build
    // cost): 2 s of source propagated through a thru-barrier path —
    // barrier curve, spreading loss + travel delay, room reverb, mic
    // response and the noise tail — into a phone mic.
    // `scene_record_2s` is the fused single-pass engine,
    // `scene_record_2s_staged` the kept stage-by-stage oracle. The
    // path carries no loudspeaker: the playback-device stage (a
    // nonlinear front that both render paths execute identically, with
    // its own `vibration_*`/`end_to_end_trial` coverage) would only
    // add a fixed cost to both sides and blur what the render paths
    // themselves cost.
    let scene_src = gen::chirp(120.0, 3_000.0, 0.3, 16_000, 2.0);
    let scene_path = thrubarrier_acoustics::AcousticPath {
        room: thrubarrier_acoustics::Room::paper_room(thrubarrier_acoustics::RoomId::A),
        through_barrier: true,
        distance_m: 2.0,
        loudspeaker: None,
        render: thrubarrier_acoustics::RenderPath::Fused,
    };
    let scene_mic = thrubarrier_acoustics::Microphone::phone();
    out.insert(
        "scene_record_2s",
        median_ns(iters, || {
            let mut rng = StdRng::seed_from_u64(9);
            black_box(scene_path.record(black_box(&scene_src), 16_000, &scene_mic, &mut rng));
        }),
    );
    let staged_scene_path = scene_path
        .clone()
        .with_render(thrubarrier_acoustics::RenderPath::Staged);
    out.insert(
        "scene_record_2s_staged",
        median_ns(iters, || {
            let mut rng = StdRng::seed_from_u64(9);
            black_box(staged_scene_path.record(
                black_box(&scene_src),
                16_000,
                &scene_mic,
                &mut rng,
            ));
        }),
    );

    // Same asserted guard as the vibration engine: a scene-engine
    // regression fails the bench run rather than recording a snapshot.
    let (fused_ns, staged_ns) = (out["scene_record_2s"], out["scene_record_2s_staged"]);
    assert!(
        fused_ns <= staged_ns,
        "scene_parity: fused path {fused_ns} ns slower than staged {staged_ns} ns at 2 s inputs"
    );
    out.insert(
        "scene_parity_speedup_x1000",
        staged_ns * 1_000 / fused_ns.max(1),
    );

    let mut pair_system = DefenseSystem::paper_default();
    pair_system.synchronize = false; // isolate conversion + correlation
    let va_1s = thrubarrier_dsp::AudioBuffer::new(one_sec.clone(), 16_000);
    let w_1s =
        thrubarrier_dsp::AudioBuffer::new(gen::chirp(150.0, 3_000.0, 1.0, 16_000, 0.6), 16_000);
    out.insert(
        "vibration_score_pair_1s",
        median_ns(iters, || {
            let mut rng = StdRng::seed_from_u64(8);
            black_box(pair_system.score_with_method(
                DefenseMethod::VibrationBaseline,
                black_box(&va_1s),
                black_box(&w_1s),
                &mut rng,
            ));
        }),
    );

    let mut ctx = TrialContext::seeded(77);
    let legit = ctx.legitimate_trial();
    let system = DefenseSystem::paper_default();
    for (name, method) in [
        ("score_audio_baseline", DefenseMethod::AudioBaseline),
        ("score_vibration_baseline", DefenseMethod::VibrationBaseline),
        ("score_full", DefenseMethod::Full),
    ] {
        out.insert(
            name,
            median_ns(iters, || {
                let mut rng = StdRng::seed_from_u64(3);
                black_box(system.score_with_method(
                    method,
                    black_box(&legit.va_recording),
                    black_box(&legit.wearable_recording),
                    &mut rng,
                ));
            }),
        );
    }

    // The BRNN phoneme detector at paper dimensions (14 MFCCs, 64 LSTM
    // units per direction, 2 classes) segmenting one second of audio —
    // the per-verification inference cost of the online detector.
    let mut rng = StdRng::seed_from_u64(4);
    let brnn = BrnnClassifier::new(mfcc.n_coeffs(), 64, 2, &mut rng);
    let feats = mfcc.extract(&gen::chirp(100.0, 900.0, 0.4, 16_000, 1.0));
    out.insert(
        "brnn_segment_1s",
        median_ns(iters.max(32), || {
            black_box(brnn.predict(black_box(&feats)));
        }),
    );

    // Minibatched segmentation: eight 1 s utterances per scoring pass —
    // the eval worker's mask-computation unit under `batch_size = 8`.
    let batch_feats: Vec<Vec<Vec<f32>>> = (0..8)
        .map(|i| {
            mfcc.extract(&gen::chirp(
                100.0 + 25.0 * i as f32,
                900.0,
                0.4,
                16_000,
                1.0,
            ))
        })
        .collect();
    let seg_seqs: Vec<&[Vec<f32>]> = batch_feats.iter().map(|f| f.as_slice()).collect();
    let mut seg_ws = BatchWorkspace::new();
    let mut seg_scratch = GemmScratch::new();
    out.insert(
        "brnn_segment_batch8",
        median_ns(iters.max(32), || {
            black_box(brnn.predict_batch(black_box(&seg_seqs), &mut seg_ws, &mut seg_scratch));
        }),
    );

    // Per-worker inline scoring as the eval runner's non-service path
    // does it: 8 worker threads, each scoring its own group of 8
    // one-second segments with a fresh workspace per group (every group
    // is new data in a real run, so nothing is pack- or
    // projection-cached — unlike `brnn_segment_batch8`, which re-scores
    // identical data into a warm workspace). 64 segments per timed run;
    // the baseline for `brnn_score_service_8t`.
    out.insert(
        "brnn_score_inline_8t",
        median_ns(iters.max(16), || {
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    let brnn = &brnn;
                    let seg_seqs = &seg_seqs;
                    scope.spawn(move || {
                        let mut ws = BatchWorkspace::new();
                        let mut scratch = GemmScratch::new();
                        black_box(brnn.predict_batch(black_box(seg_seqs), &mut ws, &mut scratch));
                    });
                }
            });
        }),
    );

    // The shared scoring service under the default eval shape: 8 worker
    // threads each submit a group of 8 one-second segments to one engine
    // thread, which coalesces concurrent groups into wide fused-GEMM
    // packs (up to the 64-segment drain cap). 64 segments per timed run;
    // compare per segment against `brnn_score_inline_8t` for the win of
    // cross-worker coalescing.
    let service = ScoreService::spawn(brnn.clone(), DEFAULT_MAX_BATCH);
    out.insert(
        "brnn_score_service_8t",
        median_ns(iters.max(16), || {
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    let client = service.client();
                    let feats = &batch_feats;
                    scope.spawn(move || {
                        let tickets: Vec<_> =
                            feats.iter().map(|f| client.submit(f.clone())).collect();
                        for t in tickets {
                            black_box(t.wait());
                        }
                    });
                }
            });
        }),
    );
    drop(service);

    // The gate-fused activation sweep over one LSTM row's 4H gate
    // buffer at paper width (H = 64): sigmoid on the input/forget and
    // output blocks and tanh on the candidate block in a single pass.
    // 1000 sweeps per timed run (one sweep is far below timer
    // granularity); the buffer is restored from a pristine copy each
    // sweep so every iteration transforms identical data.
    let gate_src: Vec<f32> = (0..4 * 64).map(|i| (i as f32).sin() * 4.0).collect();
    let mut gate_buf = gate_src.clone();
    out.insert(
        "act_gate_fused_4h",
        median_ns(iters.max(64), || {
            for _ in 0..1_000 {
                gate_buf.copy_from_slice(&gate_src);
                gates_fused(black_box(&mut gate_buf), 64);
            }
            black_box(&gate_buf);
        }),
    );

    // One optimizer step over a small batch (forward + BPTT + ADAM), the
    // unit of detector training cost.
    let mut rng = StdRng::seed_from_u64(5);
    let mut trainee = BrnnClassifier::new(mfcc.n_coeffs(), 64, 2, &mut rng);
    let seqs: Vec<(Vec<Vec<f32>>, Vec<usize>)> = (0..4)
        .map(|i| {
            let audio = gen::chirp(100.0 + 50.0 * i as f32, 900.0, 0.4, 16_000, 0.4);
            let xs = mfcc.extract(&audio);
            let ys = (0..xs.len()).map(|t| t % 2).collect();
            (xs, ys)
        })
        .collect();
    let batch: Vec<(&[Vec<f32>], &[usize])> = seqs
        .iter()
        .map(|(x, y)| (x.as_slice(), y.as_slice()))
        .collect();
    let train_cfg = TrainConfig::default();
    out.insert(
        "brnn_train_step",
        median_ns(iters.max(32), || {
            black_box(trainee.train_step(black_box(&batch), &train_cfg));
        }),
    );

    // The same optimizer step at minibatch 8 — the detector's default
    // training batch size — through the packed-batch GEMM engine.
    let mut rng = StdRng::seed_from_u64(6);
    let mut trainee8 = BrnnClassifier::new(mfcc.n_coeffs(), 64, 2, &mut rng);
    let seqs8: Vec<(Vec<Vec<f32>>, Vec<usize>)> = (0..8)
        .map(|i| {
            let audio = gen::chirp(100.0 + 40.0 * i as f32, 900.0, 0.4, 16_000, 0.4);
            let xs = mfcc.extract(&audio);
            let ys = (0..xs.len()).map(|t| t % 2).collect();
            (xs, ys)
        })
        .collect();
    let batch8: Vec<(&[Vec<f32>], &[usize])> = seqs8
        .iter()
        .map(|(x, y)| (x.as_slice(), y.as_slice()))
        .collect();
    out.insert(
        "brnn_train_step_batch8",
        median_ns(iters.max(32), || {
            black_box(trainee8.train_step(black_box(&batch8), &train_cfg));
        }),
    );

    // The end-to-end pipeline: synthesize + propagate + record a trial,
    // then score it with all three methods (the eval runner's hot loop).
    let mut trial_seed = 0u64;
    out.insert(
        "end_to_end_trial",
        median_ns(iters, || {
            trial_seed += 1;
            let mut ctx = TrialContext::seeded(1_000 + trial_seed);
            let trial = ctx.legitimate_trial();
            black_box(score_trial(&trial, trial_seed, &system));
        }),
    );

    // A small threaded eval through the runner proper: covers the
    // worker fan-out, per-worker trial minibatching, and the shared
    // utterance cache (the stage above scores one trial directly and
    // bypasses all three). Replay attacks re-synthesize the victim's
    // command, so the cache sees hits within every run.
    let eval_cfg = RunnerConfig {
        participants: 2,
        commands_per_user: 2,
        attacks_per_kind: 4,
        threads: 4,
        ..Default::default()
    };
    let runner = Runner::new(eval_cfg);
    let (selector, symbols) = runner.build_selector();
    out.insert(
        "eval_runner_8_trials_4t",
        median_ns(iters, || {
            black_box(runner.run_with_selector(selector.clone(), symbols.clone()));
        }),
    );

    // The cost of 1000 instrumentation spans whose recording is turned
    // off — the guard that keeps the obs layer honest. With the feature
    // off each span is a compile-time no-op; with it on, one relaxed
    // atomic load. Either way this stage should sit at timer-resolution
    // noise; a visible figure here means the disabled path grew a cost.
    thrubarrier_obs::set_enabled(false);
    out.insert(
        "obs_disabled_span_1k",
        median_ns(iters.max(64), || {
            for i in 0..1_000u64 {
                let _span = thrubarrier_obs::span!("bench.disabled_overhead");
                black_box(i);
            }
        }),
    );
    thrubarrier_obs::set_enabled(true);

    out
}

/// Extracts `label -> stage -> ns` from a JSON file previously written by
/// this binary (exact format match; not a general JSON parser). Only the
/// `"runs"` section is read: brace depth is tracked relative to it so
/// sibling objects (the `"metrics"` snapshot with its nested histogram
/// objects) can never be mistaken for run labels.
fn parse_existing(text: &str) -> BTreeMap<String, BTreeMap<String, u64>> {
    let mut runs: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    let mut label: Option<String> = None;
    // 0 = outside "runs"; 1 = among labels; 2 = inside one label.
    let mut depth = 0u32;
    for line in text.lines() {
        let t = line.trim();
        if depth == 0 {
            if let Some(rest) = t.strip_prefix("\"runs\"") {
                if rest.trim_start_matches(':').trim().starts_with('{') {
                    depth = 1;
                }
            }
            continue;
        }
        if let Some(rest) = t.strip_prefix('"') {
            if let Some((name, tail)) = rest.split_once('"') {
                let tail = tail.trim_start_matches(':').trim();
                if tail.starts_with('{') {
                    if depth == 1 {
                        label = Some(name.to_string());
                    }
                    depth += 1;
                } else if depth == 2 {
                    if let Some(l) = &label {
                        let value = tail.trim_end_matches(',').trim();
                        if let Ok(ns) = value.parse::<u64>() {
                            runs.entry(l.clone())
                                .or_default()
                                .insert(name.to_string(), ns);
                        }
                    }
                }
            }
        } else if t.starts_with('}') {
            depth -= 1;
            match depth {
                1 => label = None,
                0 => break,
                _ => {}
            }
        }
    }
    runs
}

/// A one-line fingerprint of the machine the numbers were taken on —
/// CPU model plus logical core count. Committed next to the figures so
/// a pre/post comparison across different hosts (where every stage
/// shifts by a common factor) is recognizable as a host change rather
/// than a code regression.
fn host_fingerprint() -> String {
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split_once(':').map(|(_, v)| v.trim().to_string()))
        })
        .unwrap_or_else(|| "unknown cpu".to_string());
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    format!("{model}, {cores} logical cores").replace('"', "'")
}

fn render(runs: &BTreeMap<String, BTreeMap<String, u64>>) -> String {
    // The metrics snapshot describes *this* process's sweeps; a stale
    // section from the existing file is deliberately not carried over.
    let mut s = format!(
        "{{\n  \"unit\": \"ns_median\",\n  \"host\": \"{}\",\n  \"metrics\": {},\n  \"runs\": {{\n",
        host_fingerprint(),
        thrubarrier_obs::snapshot_json("  ")
    );
    let n_labels = runs.len();
    for (li, (label, stages)) in runs.iter().enumerate() {
        s.push_str(&format!("    \"{label}\": {{\n"));
        let n = stages.len();
        for (i, (name, ns)) in stages.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            s.push_str(&format!("      \"{name}\": {ns}{comma}\n"));
        }
        let comma = if li + 1 < n_labels { "," } else { "" };
        s.push_str(&format!("    }}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    s
}

fn main() {
    let mut label = "post".to_string();
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut iters = 15usize;
    let mut best_of = 1usize;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--iters" => {
                iters = args
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters must be an integer")
            }
            "--best-of" => {
                best_of = args
                    .next()
                    .expect("--best-of needs a value")
                    .parse()
                    .expect("--best-of must be an integer")
            }
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out needs a value")),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: bench_json [--label NAME] [--out FILE] [--iters N] [--best-of N] \
                     [--trace-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    if trace_out.is_some() && !thrubarrier_obs::COMPILED {
        eprintln!(
            "warning: --trace-out without the `obs` feature writes an empty trace; \
             rebuild with `--features obs`"
        );
    }

    // On shared hosts whole seconds-long windows can run a small integer
    // factor slow (CPU steal, frequency excursions); a median within one
    // sweep cannot reject that. `--best-of N` repeats the entire sweep
    // and keeps each stage's minimum median, approximating quiet-window
    // performance for every label symmetrically.
    eprintln!("benchmarking ({iters} iterations per stage, best of {best_of} sweeps) ...");
    let mut stages = run_stages(iters);
    for _ in 1..best_of.max(1) {
        for (name, ns) in run_stages(iters) {
            let slot = stages.entry(name).or_insert(ns);
            *slot = (*slot).min(ns);
        }
    }
    // Tracing only spans the final (extra) sweep so the trace stays a
    // readable size and the measured sweeps above run untraced.
    if let Some(path) = &trace_out {
        thrubarrier_obs::label_thread("bench-main");
        thrubarrier_obs::start_trace();
        run_stages(iters.min(3));
        let trace = thrubarrier_obs::finish_trace();
        std::fs::write(path, trace).expect("write chrome trace JSON");
        eprintln!("wrote {path} (chrome://tracing)");
    }
    for (name, ns) in &stages {
        eprintln!("  {name}: {:.3} ms", *ns as f64 / 1e6);
    }

    let mut runs = std::fs::read_to_string(&out_path)
        .map(|t| parse_existing(&t))
        .unwrap_or_default();
    runs.insert(
        label.clone(),
        stages
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    std::fs::write(&out_path, render(&runs)).expect("write benchmark JSON");
    eprintln!("wrote {out_path} (label \"{label}\")");
}
