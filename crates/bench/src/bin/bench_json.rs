//! Wall-clock pipeline benchmark with JSON output.
//!
//! Measures the median time of each pipeline stage and writes (or merges
//! into) `BENCH_pipeline.json` so the perf trajectory of the workspace is
//! tracked in-repo across PRs. Criterion remains the precision harness;
//! this binary exists so a labelled snapshot can be committed.
//!
//! Usage: `bench_json [--label NAME] [--out FILE] [--iters N]`
//!
//! Runs under an existing label are replaced; other labels are kept, so
//! `--label pre` / `--label post` snapshots accumulate in one file.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use thrubarrier_acoustics::barrier::{Barrier, BarrierMaterial};
use thrubarrier_defense::{DefenseMethod, DefenseSystem};
use thrubarrier_dsp::mel::MfccExtractor;
use thrubarrier_dsp::{correlate, fft, gen, Stft};
use thrubarrier_eval::runner::score_trial;
use thrubarrier_eval::scenario::TrialContext;
use thrubarrier_vibration::Wearable;

/// Median wall-clock nanoseconds of `f` over `iters` timed runs.
fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> u64 {
    // Warm up caches (FFT plans, response curves, allocator pools).
    f();
    f();
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn run_stages(iters: usize) -> BTreeMap<&'static str, u64> {
    let mut out = BTreeMap::new();
    let speech = gen::chirp(100.0, 3_000.0, 0.3, 16_000, 1.0);

    out.insert(
        "fft_magnitude_16k_samples",
        median_ns(iters, || {
            black_box(fft::magnitude_spectrum(black_box(&speech), 0));
        }),
    );

    let barrier = Barrier::new(BarrierMaterial::GlassWindow);
    out.insert(
        "barrier_transmit_16k_samples",
        median_ns(iters, || {
            black_box(barrier.transmit(black_box(&speech), 16_000));
        }),
    );

    let vib = gen::sine(30.0, 0.1, 200, 2.0);
    let stft = Stft::vibration_default();
    out.insert(
        "stft_vibration_400_samples",
        median_ns(iters.max(64), || {
            black_box(stft.power_spectrogram(black_box(&vib), 200));
        }),
    );

    let mfcc = MfccExtractor::paper_default();
    out.insert(
        "mfcc_1s_audio",
        median_ns(iters, || {
            black_box(mfcc.extract(black_box(&speech)));
        }),
    );

    let mut rng = StdRng::seed_from_u64(1);
    let reference = gen::gaussian_noise(&mut rng, 0.1, 16_000);
    let mut delayed = vec![0.0f32; 1_600];
    delayed.extend_from_slice(&reference);
    out.insert(
        "delay_estimation_1s",
        median_ns(iters, || {
            black_box(
                correlate::estimate_delay(black_box(&reference), black_box(&delayed), 4_000)
                    .unwrap(),
            );
        }),
    );

    let wearable = Wearable::fossil_gen_5();
    let long_speech = gen::chirp(150.0, 3_000.0, 0.1, 16_000, 2.0);
    out.insert(
        "wearable_convert_2s",
        median_ns(iters, || {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(wearable.convert(black_box(&long_speech), 16_000, &mut rng));
        }),
    );

    let mut ctx = TrialContext::seeded(77);
    let legit = ctx.legitimate_trial();
    let system = DefenseSystem::paper_default();
    for (name, method) in [
        ("score_audio_baseline", DefenseMethod::AudioBaseline),
        ("score_vibration_baseline", DefenseMethod::VibrationBaseline),
        ("score_full", DefenseMethod::Full),
    ] {
        out.insert(
            name,
            median_ns(iters, || {
                let mut rng = StdRng::seed_from_u64(3);
                black_box(system.score_with_method(
                    method,
                    black_box(&legit.va_recording),
                    black_box(&legit.wearable_recording),
                    &mut rng,
                ));
            }),
        );
    }

    // The end-to-end pipeline: synthesize + propagate + record a trial,
    // then score it with all three methods (the eval runner's hot loop).
    let mut trial_seed = 0u64;
    out.insert(
        "end_to_end_trial",
        median_ns(iters, || {
            trial_seed += 1;
            let mut ctx = TrialContext::seeded(1_000 + trial_seed);
            let trial = ctx.legitimate_trial();
            black_box(score_trial(&trial, trial_seed, &system));
        }),
    );

    out
}

/// Extracts `label -> stage -> ns` from a JSON file previously written by
/// this binary (exact format match; not a general JSON parser).
fn parse_existing(text: &str) -> BTreeMap<String, BTreeMap<String, u64>> {
    let mut runs: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    let mut label: Option<String> = None;
    for line in text.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix('"') {
            if let Some((name, tail)) = rest.split_once('"') {
                let tail = tail.trim_start_matches(':').trim();
                if tail.starts_with('{') {
                    if name != "runs" {
                        label = Some(name.to_string());
                    }
                } else if let Some(l) = &label {
                    let value = tail.trim_end_matches(',').trim();
                    if let Ok(ns) = value.parse::<u64>() {
                        runs.entry(l.clone())
                            .or_default()
                            .insert(name.to_string(), ns);
                    }
                }
            }
        } else if t.starts_with('}') {
            label = None;
        }
    }
    runs
}

fn render(runs: &BTreeMap<String, BTreeMap<String, u64>>) -> String {
    let mut s = String::from("{\n  \"unit\": \"ns_median\",\n  \"runs\": {\n");
    let n_labels = runs.len();
    for (li, (label, stages)) in runs.iter().enumerate() {
        s.push_str(&format!("    \"{label}\": {{\n"));
        let n = stages.len();
        for (i, (name, ns)) in stages.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            s.push_str(&format!("      \"{name}\": {ns}{comma}\n"));
        }
        let comma = if li + 1 < n_labels { "," } else { "" };
        s.push_str(&format!("    }}{comma}\n"));
    }
    s.push_str("  }\n}\n");
    s
}

fn main() {
    let mut label = "post".to_string();
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut iters = 15usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--iters" => {
                iters = args
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters must be an integer")
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: bench_json [--label NAME] [--out FILE] [--iters N]");
                std::process::exit(2);
            }
        }
    }

    eprintln!("benchmarking ({iters} iterations per stage) ...");
    let stages = run_stages(iters);
    for (name, ns) in &stages {
        eprintln!("  {name}: {:.3} ms", *ns as f64 / 1e6);
    }

    let mut runs = std::fs::read_to_string(&out_path)
        .map(|t| parse_existing(&t))
        .unwrap_or_default();
    runs.insert(
        label.clone(),
        stages
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    std::fs::write(&out_path, render(&runs)).expect("write benchmark JSON");
    eprintln!("wrote {out_path} (label \"{label}\")");
}
