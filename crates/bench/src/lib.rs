//! Benchmark harness and reproduction entry points.
//!
//! * The `repro` binary regenerates every table and figure of the paper
//!   (see `repro --help`).
//! * The Criterion benches under `benches/` measure the pipeline stages
//!   and one workload per table/figure.

#![warn(missing_docs)]

use thrubarrier_eval::runner::SelectorChoice;

/// Scale/selector presets shared by the repro binary and the benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReproPreset {
    /// Trial-count scale (1.0 ≈ paper counts).
    pub scale: f32,
    /// Segment selector for the full method.
    pub selector: SelectorChoice,
}

impl ReproPreset {
    /// Quick preset: small counts, energy selector. Minutes, not hours.
    pub fn quick() -> Self {
        ReproPreset {
            scale: 0.01,
            selector: SelectorChoice::Energy,
        }
    }

    /// Default preset: moderate counts, trained BRNN selector.
    pub fn default_preset() -> Self {
        ReproPreset {
            scale: 0.05,
            selector: SelectorChoice::Brnn {
                corpus_size: 80,
                epochs: 3,
                hidden: 48,
            },
        }
    }

    /// Full preset: paper-scale counts (hours of CPU time).
    pub fn full() -> Self {
        ReproPreset {
            scale: 1.0,
            selector: SelectorChoice::Brnn {
                corpus_size: 400,
                epochs: 4,
                hidden: 64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_up() {
        assert!(ReproPreset::quick().scale < ReproPreset::default_preset().scale);
        assert!(ReproPreset::default_preset().scale < ReproPreset::full().scale);
        assert_eq!(ReproPreset::quick().selector, SelectorChoice::Energy);
    }
}
