//! Criterion benches for the defense pipeline stages.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use thrubarrier_defense::{DefenseMethod, DefenseSystem};
use thrubarrier_dsp::mel::MfccExtractor;
use thrubarrier_dsp::{correlate, fft, gen, Stft};
use thrubarrier_eval::scenario::TrialContext;
use thrubarrier_vibration::Wearable;

fn bench_dsp_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsp");
    let signal = gen::chirp(100.0, 3_000.0, 0.3, 16_000, 1.0);
    group.bench_function("fft_16k_samples", |b| {
        b.iter(|| fft::magnitude_spectrum(black_box(&signal), 0))
    });
    group.bench_function("stft_vibration_400_samples", |b| {
        let vib = gen::sine(30.0, 0.1, 200, 2.0);
        let stft = Stft::vibration_default();
        b.iter(|| stft.power_spectrogram(black_box(&vib), 200))
    });
    group.bench_function("mfcc_1s_audio", |b| {
        let m = MfccExtractor::paper_default();
        b.iter(|| m.extract(black_box(&signal)))
    });
    group.bench_function("delay_estimation_1s", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let reference = gen::gaussian_noise(&mut rng, 0.1, 16_000);
        let mut delayed = vec![0.0f32; 1_600];
        delayed.extend_from_slice(&reference);
        b.iter(|| correlate::estimate_delay(black_box(&reference), black_box(&delayed), 4_000))
    });
    // The correlation engine's individual paths at the 1 s sync shape,
    // so a crossover retune can be judged against measured figures.
    let mut rng = StdRng::seed_from_u64(1);
    let reference = gen::gaussian_noise(&mut rng, 0.1, 16_000);
    let mut delayed = vec![0.0f32; 1_600];
    delayed.extend_from_slice(&reference);
    group.bench_function("xcorr_1s_fft", |b| {
        b.iter(|| {
            correlate::cross_correlate_with(
                black_box(&reference),
                black_box(&delayed),
                correlate::XcorrPath::Fft,
            )
        })
    });
    for (name, search) in [
        ("estimate_delay_1s_fft", correlate::LagSearch::Fft),
        (
            "estimate_delay_1s_coarse_fine",
            correlate::LagSearch::CoarseToFine,
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                correlate::estimate_delay_with(
                    black_box(&reference),
                    black_box(&delayed),
                    4_000,
                    search,
                )
            })
        });
    }
    group.finish();
}

fn bench_cross_domain(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_domain");
    let wearable = Wearable::fossil_gen_5();
    let speech = gen::chirp(150.0, 3_000.0, 0.1, 16_000, 2.0);
    group.bench_function("convert_2s_recording", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| wearable.convert(black_box(&speech), 16_000, &mut rng))
    });
    // The conversion engine's fused path against the staged oracle at
    // the 1 s verification shape, plus the defense's pair-conversion
    // scoring call — mirrors the `vibration_*` stages in bench_json.
    let one_sec = gen::chirp(150.0, 3_000.0, 1.0, 16_000, 1.0);
    group.bench_function("convert_1s_fused", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| wearable.convert(black_box(&one_sec), 16_000, &mut rng))
    });
    group.bench_function("convert_1s_staged", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| wearable.convert_staged(black_box(&one_sec), 16_000, &mut rng))
    });
    group.bench_function("score_pair_1s", |b| {
        let mut system = DefenseSystem::paper_default();
        system.synchronize = false;
        let va = thrubarrier_dsp::AudioBuffer::new(one_sec.clone(), 16_000);
        let w =
            thrubarrier_dsp::AudioBuffer::new(gen::chirp(150.0, 3_000.0, 1.0, 16_000, 0.6), 16_000);
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| {
            system.score_with_method(
                DefenseMethod::VibrationBaseline,
                black_box(&va),
                black_box(&w),
                &mut rng,
            )
        })
    });
    group.finish();
}

fn bench_scene_render(c: &mut Criterion) {
    use thrubarrier_acoustics::{AcousticPath, Microphone, RenderPath, Room, RoomId};

    // The scene engine's fused path against the staged oracle at the
    // bench_json `scene_record_2s` shape: a speaker-less thru-barrier
    // path, so the numbers isolate the render paths rather than the
    // playback-device front both execute identically.
    let mut group = c.benchmark_group("scene");
    let src = gen::chirp(120.0, 3_000.0, 0.3, 16_000, 2.0);
    let path = AcousticPath {
        room: Room::paper_room(RoomId::A),
        through_barrier: true,
        distance_m: 2.0,
        loudspeaker: None,
        render: RenderPath::Fused,
    };
    let mic = Microphone::phone();
    group.bench_function("record_2s_fused", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| path.record(black_box(&src), 16_000, &mic, &mut rng))
    });
    let staged = path.clone().with_render(RenderPath::Staged);
    group.bench_function("record_2s_staged", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| staged.record(black_box(&src), 16_000, &mic, &mut rng))
    });
    group.finish();
}

fn bench_detection_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection");
    group.sample_size(20);
    let mut ctx = TrialContext::seeded(77);
    let legit = ctx.legitimate_trial();
    let system = DefenseSystem::paper_default();
    for method in DefenseMethod::all() {
        group.bench_function(format!("score_{method:?}"), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                system.score_with_method(
                    method,
                    black_box(&legit.va_recording),
                    black_box(&legit.wearable_recording),
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dsp_primitives,
    bench_cross_domain,
    bench_scene_render,
    bench_detection_methods
);
criterion_main!(benches);
