//! Criterion benches: one workload per table/figure of the paper.
//!
//! These measure the cost of regenerating each result at a miniature
//! scale (the `repro` binary runs the real thing); they double as
//! always-compiled smoke tests of every driver.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use thrubarrier_attack::AttackKind;
use thrubarrier_defense::segmentation::EnergySelector;
use thrubarrier_eval::experiments::{
    fig11, fig3, fig4, fig6, fig7, fig9, phoneme_detection, table1, table2,
};
use thrubarrier_eval::runner::SelectorChoice;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("attack_study_2_attempts", |b| {
        let cfg = table1::AttackStudyConfig {
            attempts: 2,
            ..Default::default()
        };
        b.iter(|| black_box(table1::run(&cfg)))
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("phoneme_selection_4_samples", |b| {
        let cfg = table2::SelectionStudyConfig {
            samples_per_phoneme: 4,
            ..Default::default()
        };
        b.iter(|| black_box(table2::run(&cfg)))
    });
    group.finish();
}

fn bench_fig3_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fig4");
    group.sample_size(10);
    let cfg = fig3::BarrierEffectConfig {
        samples_per_phoneme: 4,
        ..Default::default()
    };
    group.bench_function("fig3_audio_domain", |b| {
        b.iter(|| black_box(fig3::run(&cfg)))
    });
    group.bench_function("fig4_vibration_domain", |b| {
        b.iter(|| black_box(fig4::run(&cfg)))
    });
    group.finish();
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_fig7");
    group.sample_size(10);
    group.bench_function("fig6_criteria_demo", |b| {
        let cfg = fig6::CriteriaDemoConfig {
            samples_per_phoneme: 4,
            ..Default::default()
        };
        b.iter(|| black_box(fig6::run(&cfg)))
    });
    group.bench_function("fig7_chirp_response", |b| {
        let cfg = fig7::ChirpStudyConfig {
            duration_s: 1.0,
            ..Default::default()
        };
        b.iter(|| black_box(fig7::run(&cfg)))
    });
    group.finish();
}

fn bench_fig9_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fig10");
    group.sample_size(10);
    group.bench_function("fig9_replay_micro", |b| {
        let cfg = fig9::DetectionStudyConfig {
            scale: 0.002,
            attacks: vec![AttackKind::Replay],
            selector: SelectorChoice::Energy,
            ..Default::default()
        };
        b.iter(|| black_box(fig9::run(&cfg)))
    });
    group.bench_function("fig10_hidden_micro", |b| {
        let cfg = fig9::DetectionStudyConfig {
            scale: 0.002,
            attacks: vec![AttackKind::HiddenVoice],
            selector: SelectorChoice::Energy,
            ..Default::default()
        };
        b.iter(|| black_box(fig9::run(&cfg)))
    });
    group.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    let cfg = fig11::ImpactStudyConfig {
        scale: 0.002,
        selector: SelectorChoice::Energy,
        ..Default::default()
    };
    let selector = Arc::new(EnergySelector::default());
    group.bench_function("fig11a_spl_sweep_micro", |b| {
        b.iter(|| black_box(fig11::run_fig11a(&cfg, selector.clone())))
    });
    group.bench_function("fig11b_materials_micro", |b| {
        b.iter(|| black_box(fig11::run_fig11b(&cfg, selector.clone())))
    });
    group.bench_function("fig11c_distances_micro", |b| {
        b.iter(|| black_box(fig11::run_fig11c(&cfg, selector.clone())))
    });
    group.bench_function("fig11d_rooms_micro", |b| {
        b.iter(|| black_box(fig11::run_fig11d(&cfg, selector.clone())))
    });
    group.finish();
}

fn bench_phoneme_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("phoneme_detection");
    group.sample_size(10);
    group.bench_function("brnn_train_and_eval_micro", |b| {
        let cfg = phoneme_detection::DetectionAccuracyConfig {
            samples_per_phoneme: 1,
            corpus_size: 8,
            epochs: 1,
            hidden: 8,
            ..Default::default()
        };
        b.iter(|| black_box(phoneme_detection::run(&cfg)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_fig3_fig4,
    bench_fig6_fig7,
    bench_fig9_fig10,
    bench_fig11,
    bench_phoneme_detection
);
criterion_main!(benches);
