//! Property-based tests for the speech-synthesis substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thrubarrier_dsp::stats;
use thrubarrier_phoneme::corpus::{frame_labels, random_common_sequence};
use thrubarrier_phoneme::inventory::{Inventory, PhonemeClass, PhonemeId};
use thrubarrier_phoneme::speaker::SpeakerProfile;
use thrubarrier_phoneme::synth::Synthesizer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_phoneme_synthesizes_finite_audio(
        idx in 0usize..63,
        seed in 0u64..100,
        dur in 0.02f32..0.3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let speaker = SpeakerProfile::random(&mut rng);
        let synth = Synthesizer::new(16_000);
        let sig = synth.synthesize_phoneme_with_duration(PhonemeId(idx), &speaker, dur, &mut rng);
        prop_assert!(!sig.is_empty());
        prop_assert!(sig.iter().all(|v| v.is_finite()));
        // Intensity stays within physically sensible bounds.
        prop_assert!(stats::rms(&sig) < 2.0);
    }

    #[test]
    fn audible_phonemes_are_louder_than_silences(idx in 0usize..63, seed in 0u64..40) {
        let spec = &Inventory::all()[idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let speaker = SpeakerProfile::reference_male();
        let synth = Synthesizer::new(16_000);
        let sig = synth.synthesize_phoneme_with_duration(PhonemeId(idx), &speaker, 0.15, &mut rng);
        let rms = stats::rms(&sig);
        if spec.class == PhonemeClass::Silence {
            // `spn` (spoken noise) deliberately carries faint wideband
            // noise; pure silences are near-zero.
            let bound = if spec.noise_band.is_some() { 0.05 } else { 0.01 };
            prop_assert!(rms < bound, "{} rms {}", spec.symbol, rms);
        } else {
            prop_assert!(rms > 1e-4, "{} rms {}", spec.symbol, rms);
        }
    }

    #[test]
    fn sequences_have_monotone_segments(seed in 0u64..60, len in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ids = random_common_sequence(len, &mut rng);
        let speaker = SpeakerProfile::random(&mut rng);
        let synth = Synthesizer::new(16_000);
        let utt = synth.synthesize_sequence(&ids, &speaker, &mut rng);
        prop_assert_eq!(utt.segments.len(), len);
        for w in utt.segments.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        for seg in &utt.segments {
            prop_assert!(seg.start < seg.end);
            prop_assert!(seg.end <= utt.audio.len());
        }
    }

    #[test]
    fn frame_labels_cover_every_frame(seed in 0u64..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ids = random_common_sequence(5, &mut rng);
        let speaker = SpeakerProfile::random(&mut rng);
        let synth = Synthesizer::new(16_000);
        let utt = synth.synthesize_sequence(&ids, &speaker, &mut rng);
        let labels = frame_labels(&utt, 400, 160, 99, |_| 1);
        let expected = (utt.audio.len() - 400) / 160 + 1;
        prop_assert_eq!(labels.len(), expected);
        prop_assert!(labels.iter().all(|&l| l == 1 || l == 99));
        // Some frames must overlap speech.
        prop_assert!(labels.contains(&1));
    }

    #[test]
    fn speaker_draws_are_physiologically_bounded(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = SpeakerProfile::random(&mut rng);
        prop_assert!((85.0..255.0).contains(&s.f0_hz));
        prop_assert!((0.9..1.3).contains(&s.formant_scale));
        prop_assert!((0.8..1.2).contains(&s.rate));
    }

    #[test]
    fn common_sequences_only_use_common_phonemes(seed in 0u64..50, len in 1usize..30) {
        let common: Vec<PhonemeId> = thrubarrier_phoneme::common::common_phonemes()
            .iter()
            .map(|c| c.id)
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for id in random_common_sequence(len, &mut rng) {
            prop_assert!(common.contains(&id));
        }
    }
}
