//! Source–filter formant synthesizer.
//!
//! Voiced phonemes are synthesized as a glottal pulse train (impulse
//! train with spectral tilt, jitter and shimmer) shaped by a cascade of
//! Klatt-style second-order formant resonators. Unvoiced phonemes use
//! band-limited noise; stops add a closure-then-burst temporal structure;
//! voiced obstruents mix both excitation types. The output of interest is
//! not naturalness but the correct *coarse spectral physics* — voicing,
//! energy placement and intrinsic level per phoneme.

use crate::inventory::{Inventory, PhonemeClass, PhonemeId};
use crate::speaker::SpeakerProfile;
use rand::Rng;
use thrubarrier_dsp::{stats, AudioBuffer};

/// A labelled span of an [`Utterance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The phoneme spoken in this span.
    pub phoneme: PhonemeId,
    /// First sample index (inclusive).
    pub start: usize,
    /// One past the last sample index.
    pub end: usize,
}

/// A synthesized utterance with its time-aligned phonetic transcription —
/// the same shape of data TIMIT provides.
#[derive(Debug, Clone, PartialEq)]
pub struct Utterance {
    /// The audio samples.
    pub audio: AudioBuffer,
    /// Time-aligned phoneme segments (sample indices into `audio`).
    pub segments: Vec<Segment>,
}

/// RMS amplitude of a reference vowel (intensity 0 dB) as synthesized.
///
/// Callers that want a speech passage at a given sound pressure level
/// should scale by `spl_to_rms(spl) / REFERENCE_RMS` so that *relative*
/// phoneme intensities survive (calibrating every phoneme individually
/// would erase exactly the intrinsic-loudness differences the paper's
/// selection criteria are built on).
pub const REFERENCE_RMS: f32 = 0.1;

/// Formant synthesizer configured for a fixed sample rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Synthesizer {
    sample_rate: u32,
}

/// A Klatt-style two-pole resonator with unity DC gain.
#[derive(Debug, Clone, Copy)]
struct Resonator {
    a: f32,
    b: f32,
    c: f32,
}

impl Resonator {
    fn new(center_hz: f32, bandwidth_hz: f32, sample_rate: f32) -> Self {
        let t = 1.0 / sample_rate;
        let c = -(-2.0 * std::f32::consts::PI * bandwidth_hz * t).exp();
        let b = 2.0
            * (-std::f32::consts::PI * bandwidth_hz * t).exp()
            * (std::f32::consts::TAU * center_hz * t).cos();
        let a = 1.0 - b - c;
        Resonator { a, b, c }
    }

    fn filter(&self, signal: &mut [f32]) {
        let (mut y1, mut y2) = (0.0f32, 0.0f32);
        for x in signal.iter_mut() {
            let y = self.a * *x + self.b * y1 + self.c * y2;
            y2 = y1;
            y1 = y;
            *x = y;
        }
    }
}

impl Synthesizer {
    /// Creates a synthesizer producing audio at `sample_rate` Hz.
    pub fn new(sample_rate: u32) -> Self {
        Synthesizer { sample_rate }
    }

    /// The output sample rate.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Synthesizes a single phoneme sound of its natural (random)
    /// duration for the given speaker. The returned signal's RMS encodes
    /// the phoneme's intrinsic intensity relative to a reference vowel.
    pub fn synthesize_phoneme<R: Rng + ?Sized>(
        &self,
        id: PhonemeId,
        speaker: &SpeakerProfile,
        rng: &mut R,
    ) -> Vec<f32> {
        let spec = Inventory::spec(id);
        let (dmin, dmax) = spec.duration_ms;
        let dur_ms = rng.gen_range(dmin..=dmax) * speaker.rate;
        self.synthesize_phoneme_with_duration(id, speaker, dur_ms / 1_000.0, rng)
    }

    /// Synthesizes a single phoneme sound with an explicit duration in
    /// seconds.
    pub fn synthesize_phoneme_with_duration<R: Rng + ?Sized>(
        &self,
        id: PhonemeId,
        speaker: &SpeakerProfile,
        duration_s: f32,
        rng: &mut R,
    ) -> Vec<f32> {
        let spec = Inventory::spec(id);
        let fs = self.sample_rate as f32;
        let n = ((duration_s * fs).round() as usize).max(8);
        let f0 = speaker.f0_hz * (1.0 + speaker.f0_jitter * (rng.gen::<f32>() - 0.5));

        let mut out = match spec.class {
            PhonemeClass::Silence => {
                // Near-silence; `spn` carries faint wideband noise.
                match spec.noise_band {
                    Some(band) => self.noise_band(n, band, rng),
                    None => vec![0.0; n],
                }
            }
            PhonemeClass::Vowel | PhonemeClass::Semivowel | PhonemeClass::Nasal => {
                let mut sig = if spec.voiced {
                    self.voiced_source(n, f0, rng)
                } else {
                    // Whispered/aspirated variants excite the same tract
                    // with noise.
                    thrubarrier_dsp::gen::gaussian_noise(rng, 1.0, n)
                };
                self.apply_formants(&mut sig, spec.formants, speaker.formant_scale);
                if spec.class == PhonemeClass::Nasal {
                    // Nasal murmur: attenuation above ~1 kHz.
                    let key = thrubarrier_dsp::response::curve_key(0x4E41_5341, &[]);
                    sig = thrubarrier_dsp::response::filter_cached(
                        key,
                        &sig,
                        self.sample_rate,
                        |f| {
                            if f < 1_000.0 {
                                1.0
                            } else {
                                (1_000.0 / f).powf(0.4)
                            }
                        },
                    );
                }
                if spec.voiced {
                    self.add_breathiness(&mut sig, 0.45, rng);
                }
                if let Some(band) = spec.noise_band {
                    // Aspirates (hh/hv) add frication on top.
                    let noise = self.noise_band(n, band, rng);
                    mix_scaled(&mut sig, &noise, 0.8);
                }
                sig
            }
            PhonemeClass::Fricative => {
                let band = spec.noise_band.expect("fricatives carry a noise band");
                let mut sig = self.noise_band(n, band, rng);
                if spec.voiced {
                    // Voice bar: low-frequency periodic component under
                    // the frication.
                    let mut buzz = self.voiced_source(n, f0, rng);
                    self.apply_formants(
                        &mut buzz,
                        [spec.formants[0], 1_100.0, 2_300.0],
                        speaker.formant_scale,
                    );
                    mix_scaled(&mut sig, &buzz, 0.7);
                    self.add_breathiness(&mut sig, 0.35, rng);
                }
                sig
            }
            PhonemeClass::Stop | PhonemeClass::Affricate => {
                let band = spec.noise_band.expect("stops carry a burst band");
                // Closure (silence) followed by a decaying burst; the
                // affricate's frication is longer.
                let closure_frac = if spec.class == PhonemeClass::Stop {
                    0.4
                } else {
                    0.3
                };
                let closure = (n as f32 * closure_frac) as usize;
                let mut sig = vec![0.0f32; n];
                let burst_len = n - closure;
                let burst = self.noise_band(burst_len, band, rng);
                let decay_rate = if spec.class == PhonemeClass::Stop {
                    60.0
                } else {
                    15.0
                };
                for (i, &b) in burst.iter().enumerate() {
                    let t = i as f32 / fs;
                    sig[closure + i] = b * (-decay_rate * t).exp();
                }
                if spec.voiced {
                    let mut buzz = self.voiced_source(n, f0, rng);
                    self.apply_formants(
                        &mut buzz,
                        [300.0, 1_100.0, 2_300.0],
                        speaker.formant_scale,
                    );
                    mix_scaled(&mut sig, &buzz, 0.4);
                    self.add_breathiness(&mut sig, 0.35, rng);
                }
                sig
            }
        };

        apply_envelope(&mut out, fs);
        // Scale to the phoneme's intrinsic intensity (relative RMS).
        let target_rms =
            stats::db_to_amplitude(spec.intensity_db + speaker.effort_db) * REFERENCE_RMS;
        let current = stats::rms(&out);
        // Scale every non-silent signal (the silence markers are all-zero
        // except `spn`, whose faint noise must honour its intensity too).
        if current > 0.0 {
            let g = target_rms / current;
            for v in &mut out {
                *v *= g;
            }
        }
        out
    }

    /// Synthesizes a phoneme sequence into a single utterance with
    /// aligned segments and ~50 ms of leading/trailing silence.
    pub fn synthesize_sequence<R: Rng + ?Sized>(
        &self,
        phonemes: &[PhonemeId],
        speaker: &SpeakerProfile,
        rng: &mut R,
    ) -> Utterance {
        let _span = thrubarrier_obs::span!("phoneme.synthesize");
        let fs = self.sample_rate;
        // Realistic end-pointing: VA recordings include generous leading
        // and trailing silence around the command.
        let lead = (0.25 * fs as f32) as usize;
        let mut samples = vec![0.0f32; lead];
        let mut segments = Vec::with_capacity(phonemes.len());
        for (k, &id) in phonemes.iter().enumerate() {
            // Occasional inter-word-style pauses, as in natural speech.
            if k > 0 && rng.gen_bool(0.3) {
                let pause = (rng.gen_range(0.05..0.15) * fs as f32) as usize;
                samples.extend(std::iter::repeat_n(0.0, pause));
            }
            let sound = self.synthesize_phoneme(id, speaker, rng);
            let start = samples.len();
            samples.extend_from_slice(&sound);
            segments.push(Segment {
                phoneme: id,
                start,
                end: samples.len(),
            });
        }
        samples.extend(std::iter::repeat_n(0.0, lead));
        Utterance {
            audio: AudioBuffer::new(samples, fs),
            segments,
        }
    }

    /// Synthesizes a [`crate::command::Command`] for a speaker.
    pub fn synthesize_command<R: Rng + ?Sized>(
        &self,
        command: &crate::command::Command,
        speaker: &SpeakerProfile,
        rng: &mut R,
    ) -> Utterance {
        self.synthesize_sequence(&command.phoneme_ids(), speaker, rng)
    }

    /// Glottal pulse train with spectral tilt (-12 dB/oct), jitter and
    /// shimmer.
    fn voiced_source<R: Rng + ?Sized>(&self, n: usize, f0: f32, rng: &mut R) -> Vec<f32> {
        let fs = self.sample_rate as f32;
        let mut sig = vec![0.0f32; n];
        let mut pos = 0.0f32;
        while (pos as usize) < n {
            let idx = pos as usize;
            let shimmer = 1.0 + 0.1 * (rng.gen::<f32>() - 0.5);
            sig[idx] = shimmer;
            let jitter = 1.0 + 0.02 * (rng.gen::<f32>() - 0.5);
            pos += fs / (f0 * jitter);
        }
        // Two cascaded one-pole low-passes give the classic glottal
        // -12 dB/octave roll-off.
        let alpha = (-std::f32::consts::TAU * (2.0 * f0) / fs).exp();
        for _ in 0..2 {
            let mut y = 0.0f32;
            for v in sig.iter_mut() {
                y = (1.0 - alpha) * *v + alpha * y;
                *v = y;
            }
        }
        sig
    }

    /// Aspiration/breathiness: broadband high-frequency (2.8-7 kHz)
    /// noise riding on every voiced sound, at `level` x the signal RMS.
    /// This is what fills the upper spectrum of real speech - and what a
    /// barrier strips from attack sounds.
    fn add_breathiness<R: Rng + ?Sized>(&self, sig: &mut [f32], level: f32, rng: &mut R) {
        let breath = self.noise_band(sig.len(), (2_800.0, 7_000.0), rng);
        let gain = level * stats::rms(sig) / stats::rms(&breath).max(1e-9);
        mix_scaled(sig, &breath, gain);
    }

    /// Band-limited Gaussian noise with raised-cosine band edges.
    fn noise_band<R: Rng + ?Sized>(&self, n: usize, (lo, hi): (f32, f32), rng: &mut R) -> Vec<f32> {
        let white = thrubarrier_dsp::gen::gaussian_noise(rng, 1.0, n);
        let roll = 0.2 * (hi - lo);
        let key = thrubarrier_dsp::response::curve_key(0x4E42_4E44, &[lo, hi]);
        thrubarrier_dsp::response::filter_cached(key, &white, self.sample_rate, move |f| {
            if f < lo - roll || f > hi + roll {
                0.0
            } else if f < lo {
                0.5 * (1.0
                    + (std::f32::consts::PI * (f - (lo - roll)) / roll - std::f32::consts::PI)
                        .cos())
            } else if f > hi {
                0.5 * (1.0
                    + (std::f32::consts::PI * ((hi + roll) - f) / roll - std::f32::consts::PI)
                        .cos())
            } else {
                1.0
            }
        })
    }

    /// Cascade of formant resonators F1–F3 plus a fixed F4.
    fn apply_formants(&self, sig: &mut [f32], formants: [f32; 3], scale: f32) {
        let fs = self.sample_rate as f32;
        let bandwidths = [60.0f32, 90.0, 150.0];
        for (f, bw) in formants.iter().zip(bandwidths) {
            let center = (f * scale).min(fs * 0.45);
            if center > 50.0 {
                Resonator::new(center, bw, fs).filter(sig);
            }
        }
        // Fixed higher formant for overall timbre.
        Resonator::new((3_300.0 * scale).min(fs * 0.45), 200.0, fs).filter(sig);
    }
}

/// 10 ms raised-cosine attack/release envelope.
fn apply_envelope(sig: &mut [f32], fs: f32) {
    let ramp = ((0.01 * fs) as usize).min(sig.len() / 2);
    for i in 0..ramp {
        let g = 0.5 * (1.0 - (std::f32::consts::PI * i as f32 / ramp as f32).cos());
        sig[i] *= g;
        let n = sig.len();
        sig[n - 1 - i] *= g;
    }
}

fn mix_scaled(dst: &mut [f32], src: &[f32], gain: f32) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += gain * s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_dsp::fft::magnitude_spectrum;

    fn band_energy(sig: &[f32], fs: f32, lo: f32, hi: f32) -> f32 {
        let mags = magnitude_spectrum(sig, 4_096);
        let n_fft = ((mags.len() - 1) * 2) as f32;
        mags.iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = *k as f32 * fs / n_fft;
                f >= lo && f < hi
            })
            .map(|(_, &m)| m * m)
            .sum()
    }

    fn synth_symbol(sym: &str, dur: f32, seed: u64) -> Vec<f32> {
        let s = Synthesizer::new(16_000);
        let speaker = SpeakerProfile::reference_male();
        let mut rng = StdRng::seed_from_u64(seed);
        s.synthesize_phoneme_with_duration(
            Inventory::by_symbol(sym).unwrap(),
            &speaker,
            dur,
            &mut rng,
        )
    }

    #[test]
    fn vowel_energy_sits_at_low_formants() {
        let sig = synth_symbol("aa", 0.2, 1);
        let low = band_energy(&sig, 16_000.0, 80.0, 1_500.0);
        let high = band_energy(&sig, 16_000.0, 3_000.0, 8_000.0);
        assert!(low > high * 5.0, "low {low} vs high {high}");
    }

    #[test]
    fn s_energy_sits_in_high_band() {
        let sig = synth_symbol("s", 0.15, 2);
        let low = band_energy(&sig, 16_000.0, 0.0, 2_000.0);
        let high = band_energy(&sig, 16_000.0, 3_000.0, 8_000.0);
        assert!(high > low * 5.0, "high {high} vs low {low}");
    }

    #[test]
    fn intrinsic_intensity_orders_rms() {
        let aa = stats::rms(&synth_symbol("aa", 0.2, 3));
        let ih = stats::rms(&synth_symbol("ih", 0.2, 4));
        let s = stats::rms(&synth_symbol("s", 0.2, 5));
        assert!(aa > ih, "aa {aa} vs ih {ih}");
        assert!(ih > 4.0 * s, "ih {ih} vs s {s}");
    }

    #[test]
    fn voiced_phonemes_show_harmonic_structure() {
        // The spectrum of a voiced vowel should peak near F0 harmonics;
        // verify there is substantially more energy near 120 Hz (F0) than
        // at 60 Hz (below it).
        let sig = synth_symbol("ae", 0.3, 6);
        let near_f0 = band_energy(&sig, 16_000.0, 100.0, 140.0);
        let below = band_energy(&sig, 16_000.0, 40.0, 80.0);
        assert!(near_f0 > below * 2.0, "{near_f0} vs {below}");
    }

    #[test]
    fn stops_have_closure_then_burst() {
        let sig = synth_symbol("t", 0.1, 7);
        let n = sig.len();
        let first = stats::rms(&sig[..n * 3 / 10]);
        let later = stats::rms(&sig[n * 4 / 10..n * 7 / 10]);
        assert!(later > first * 3.0, "closure {first} vs burst {later}");
    }

    #[test]
    fn silences_are_silent() {
        let sig = synth_symbol("pau", 0.1, 8);
        assert!(stats::rms(&sig) < 1e-4);
    }

    #[test]
    fn female_formants_shift_up() {
        let s = Synthesizer::new(16_000);
        let id = Inventory::by_symbol("iy").unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let m = s.synthesize_phoneme_with_duration(
            id,
            &SpeakerProfile::reference_male(),
            0.2,
            &mut rng,
        );
        let f = s.synthesize_phoneme_with_duration(
            id,
            &SpeakerProfile::reference_female(),
            0.2,
            &mut rng,
        );
        // F2 of /iy/ is 2290 male -> ~2680 female; compare energy in the
        // 2500-3000 band relative to 2000-2400.
        let m_ratio = band_energy(&m, 16_000.0, 2_500.0, 3_000.0)
            / band_energy(&m, 16_000.0, 2_000.0, 2_400.0).max(1e-9);
        let f_ratio = band_energy(&f, 16_000.0, 2_500.0, 3_000.0)
            / band_energy(&f, 16_000.0, 2_000.0, 2_400.0).max(1e-9);
        assert!(f_ratio > m_ratio, "female {f_ratio} vs male {m_ratio}");
    }

    #[test]
    fn sequence_segments_are_contiguous_and_aligned() {
        let s = Synthesizer::new(16_000);
        let speaker = SpeakerProfile::reference_male();
        let mut rng = StdRng::seed_from_u64(10);
        let ids: Vec<PhonemeId> = ["t", "er", "n"]
            .iter()
            .map(|sym| Inventory::by_symbol(sym).unwrap())
            .collect();
        let utt = s.synthesize_sequence(&ids, &speaker, &mut rng);
        assert_eq!(utt.segments.len(), 3);
        // Segments are ordered and non-overlapping; short pauses may
        // separate them.
        for w in utt.segments.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        assert!(utt.segments[0].start > 0);
        assert!(utt.segments[2].end < utt.audio.len());
        // Segment content is non-silent for audible phonemes.
        for seg in &utt.segments {
            let rms = stats::rms(&utt.audio.samples()[seg.start..seg.end]);
            assert!(rms > 1e-4, "segment {:?} silent", seg.phoneme);
        }
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let a = synth_symbol("ae", 0.1, 42);
        let b = synth_symbol("ae", 0.1, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn minimum_length_is_enforced() {
        let sig = synth_symbol("t", 0.0, 11);
        assert!(sig.len() >= 8);
    }
}
