//! The 63-phoneme inventory (TIMIT-style ARPAbet symbols).
//!
//! Formant targets follow the classic Peterson–Barney measurements for a
//! reference adult male vocal tract; obstruents carry a frication band
//! instead. `intensity_db` is the phoneme's intrinsic level relative to a
//! reference vowel — the property behind both of the paper's selection
//! criteria (weak fricatives like /s/, /z/ cannot trigger the
//! accelerometer at all; over-loud back vowels like /aa/, /ao/ still
//! trigger it *through* a barrier).

/// Broad articulatory class of a phoneme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhonemeClass {
    /// Monophthong or diphthong vowel.
    Vowel,
    /// Glide / liquid / aspirate (l, r, w, y, hh, …).
    Semivowel,
    /// Nasal consonant.
    Nasal,
    /// Plosive (burst) consonant.
    Stop,
    /// Fricative consonant.
    Fricative,
    /// Affricate consonant.
    Affricate,
    /// Stop closure interval or silence marker.
    Silence,
}

/// Index of a phoneme in [`Inventory::all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhonemeId(pub usize);

/// Static description of one phoneme.
#[derive(Debug, Clone, PartialEq)]
pub struct PhonemeSpec {
    /// ARPAbet-style symbol, e.g. `"ae"`.
    pub symbol: &'static str,
    /// Broad articulatory class.
    pub class: PhonemeClass,
    /// Whether the larynx vibrates (periodic excitation).
    pub voiced: bool,
    /// Formant targets `[F1, F2, F3]` in Hz (sonorants). Obstruents keep
    /// nominal values for completeness but are synthesized from
    /// `noise_band`.
    pub formants: [f32; 3],
    /// Frication band `(low, high)` in Hz for obstruents.
    pub noise_band: Option<(f32, f32)>,
    /// Intrinsic intensity in dB relative to a reference vowel.
    pub intensity_db: f32,
    /// Typical duration range `(min, max)` in milliseconds.
    pub duration_ms: (f32, f32),
}

macro_rules! ph {
    ($sym:literal, $class:ident, $voiced:literal, [$f1:expr, $f2:expr, $f3:expr],
     $noise:expr, $int:expr, ($dmin:expr, $dmax:expr)) => {
        PhonemeSpec {
            symbol: $sym,
            class: PhonemeClass::$class,
            voiced: $voiced,
            formants: [$f1 as f32, $f2 as f32, $f3 as f32],
            noise_band: $noise,
            intensity_db: $int as f32,
            duration_ms: ($dmin as f32, $dmax as f32),
        }
    };
}

/// The full 63-phoneme inventory.
///
/// 61 entries mirror the TIMIT phone set; `sil` and `spn` (generic
/// silence and spoken-noise markers) bring the total to the 63 phonemes
/// the paper cites.
static INVENTORY: &[PhonemeSpec] = &[
    // --- Vowels (20) -----------------------------------------------------
    ph!("iy", Vowel, true, [270, 2290, 3010], None, 0.0, (80, 180)),
    ph!("ih", Vowel, true, [390, 1990, 2550], None, 0.0, (60, 140)),
    ph!("eh", Vowel, true, [530, 1840, 2480], None, 1.0, (70, 160)),
    ph!("ey", Vowel, true, [480, 2000, 2600], None, 0.0, (90, 200)),
    ph!("ae", Vowel, true, [660, 1720, 2410], None, 1.5, (90, 220)),
    ph!("aa", Vowel, true, [730, 1090, 2440], None, 13.0, (90, 220)),
    ph!("aw", Vowel, true, [670, 1200, 2400], None, 1.5, (120, 250)),
    ph!("ay", Vowel, true, [660, 1400, 2500], None, 2.0, (120, 250)),
    ph!("ah", Vowel, true, [640, 1190, 2390], None, 1.0, (50, 130)),
    ph!("ao", Vowel, true, [570, 840, 2410], None, 13.0, (90, 220)),
    ph!("oy", Vowel, true, [500, 1100, 2400], None, 2.0, (130, 260)),
    ph!("ow", Vowel, true, [450, 1000, 2300], None, 0.0, (100, 220)),
    ph!("uh", Vowel, true, [440, 1020, 2240], None, 0.0, (60, 140)),
    ph!("uw", Vowel, true, [300, 870, 2240], None, 0.5, (80, 180)),
    ph!("ux", Vowel, true, [330, 1700, 2300], None, 0.0, (80, 170)),
    ph!("er", Vowel, true, [490, 1350, 1690], None, 0.5, (80, 190)),
    ph!("ax", Vowel, true, [500, 1500, 2500], None, -2.0, (40, 100)),
    ph!("ix", Vowel, true, [400, 1900, 2500], None, -2.0, (40, 100)),
    ph!("axr", Vowel, true, [470, 1400, 1700], None, -1.0, (60, 140)),
    ph!(
        "ax-h",
        Vowel,
        false,
        [500, 1500, 2500],
        None,
        -8.0,
        (30, 80)
    ),
    // --- Semivowels / glides / aspirates (7) -----------------------------
    ph!(
        "l",
        Semivowel,
        true,
        [360, 1300, 2700],
        None,
        -3.0,
        (50, 130)
    ),
    ph!(
        "r",
        Semivowel,
        true,
        [330, 1060, 1380],
        None,
        -3.0,
        (50, 130)
    ),
    ph!(
        "w",
        Semivowel,
        true,
        [300, 610, 2200],
        None,
        -3.0,
        (50, 120)
    ),
    ph!(
        "y",
        Semivowel,
        true,
        [270, 2100, 3000],
        None,
        -2.0,
        (40, 110)
    ),
    ph!(
        "hh",
        Semivowel,
        false,
        [500, 1500, 2500],
        Some((400.0, 3_000.0)),
        -5.0,
        (40, 110)
    ),
    ph!(
        "hv",
        Semivowel,
        true,
        [500, 1500, 2500],
        Some((400.0, 3_000.0)),
        -5.0,
        (40, 110)
    ),
    ph!(
        "el",
        Semivowel,
        true,
        [400, 1200, 2700],
        None,
        -4.0,
        (60, 150)
    ),
    // --- Nasals (7) -------------------------------------------------------
    ph!("m", Nasal, true, [280, 900, 2200], None, -2.0, (50, 130)),
    ph!("n", Nasal, true, [280, 1700, 2600], None, -2.0, (50, 130)),
    ph!("ng", Nasal, true, [280, 2300, 2750], None, -2.0, (60, 140)),
    ph!("em", Nasal, true, [280, 900, 2200], None, -4.0, (60, 150)),
    ph!("en", Nasal, true, [280, 1700, 2600], None, -4.0, (60, 150)),
    ph!("eng", Nasal, true, [280, 2300, 2750], None, -4.0, (60, 150)),
    ph!("nx", Nasal, true, [280, 1700, 2600], None, -5.0, (30, 80)),
    // --- Stops (8) ----------------------------------------------------------
    ph!(
        "b",
        Stop,
        true,
        [400, 1100, 2300],
        Some((200.0, 2_400.0)),
        -4.0,
        (20, 70)
    ),
    ph!(
        "d",
        Stop,
        true,
        [400, 1700, 2600],
        Some((1_000.0, 3_500.0)),
        -3.0,
        (20, 70)
    ),
    ph!(
        "g",
        Stop,
        true,
        [300, 1800, 2500],
        Some((800.0, 3_000.0)),
        -3.0,
        (25, 80)
    ),
    ph!(
        "p",
        Stop,
        false,
        [400, 1100, 2300],
        Some((400.0, 2_200.0)),
        -5.0,
        (25, 90)
    ),
    ph!(
        "t",
        Stop,
        false,
        [400, 1700, 2600],
        Some((2_000.0, 6_000.0)),
        -2.0,
        (25, 90)
    ),
    ph!(
        "k",
        Stop,
        false,
        [300, 1800, 2500],
        Some((1_200.0, 4_200.0)),
        -4.0,
        (30, 95)
    ),
    ph!(
        "dx",
        Stop,
        true,
        [400, 1700, 2600],
        Some((1_000.0, 3_000.0)),
        -8.0,
        (15, 40)
    ),
    ph!(
        "q",
        Stop,
        false,
        [400, 1200, 2400],
        Some((100.0, 600.0)),
        -14.0,
        (15, 50)
    ),
    // --- Stop closures & pauses (7) --------------------------------------
    ph!("bcl", Silence, false, [0, 0, 0], None, -60.0, (30, 90)),
    ph!("dcl", Silence, false, [0, 0, 0], None, -60.0, (30, 90)),
    ph!("gcl", Silence, false, [0, 0, 0], None, -60.0, (30, 90)),
    ph!("pcl", Silence, false, [0, 0, 0], None, -60.0, (30, 90)),
    ph!("tcl", Silence, false, [0, 0, 0], None, -60.0, (30, 90)),
    ph!("kcl", Silence, false, [0, 0, 0], None, -60.0, (30, 90)),
    ph!("epi", Silence, false, [0, 0, 0], None, -60.0, (20, 70)),
    // --- Affricates (2) ----------------------------------------------------
    ph!(
        "jh",
        Affricate,
        true,
        [300, 1800, 2500],
        Some((1_500.0, 5_000.0)),
        -6.0,
        (50, 130)
    ),
    ph!(
        "ch",
        Affricate,
        false,
        [300, 1800, 2500],
        Some((2_000.0, 5_500.0)),
        -6.0,
        (60, 140)
    ),
    // --- Fricatives (8) ----------------------------------------------------
    ph!(
        "s",
        Fricative,
        false,
        [300, 1700, 2600],
        Some((3_500.0, 7_500.0)),
        -20.0,
        (70, 170)
    ),
    ph!(
        "sh",
        Fricative,
        false,
        [300, 1800, 2500],
        Some((2_000.0, 6_000.0)),
        -22.0,
        (70, 170)
    ),
    ph!(
        "z",
        Fricative,
        true,
        [300, 1700, 2600],
        Some((3_000.0, 7_000.0)),
        -20.0,
        (60, 150)
    ),
    ph!(
        "zh",
        Fricative,
        true,
        [300, 1800, 2500],
        Some((2_000.0, 5_500.0)),
        -10.0,
        (60, 150)
    ),
    ph!(
        "f",
        Fricative,
        false,
        [400, 1100, 2300],
        Some((1_500.0, 7_000.0)),
        -10.0,
        (70, 160)
    ),
    ph!(
        "th",
        Fricative,
        false,
        [400, 1400, 2500],
        Some((1_400.0, 7_000.0)),
        -22.0,
        (60, 150)
    ),
    ph!(
        "v",
        Fricative,
        true,
        [400, 1100, 2300],
        Some((500.0, 4_000.0)),
        -7.0,
        (40, 110)
    ),
    ph!(
        "dh",
        Fricative,
        true,
        [400, 1400, 2500],
        Some((500.0, 4_000.0)),
        -6.0,
        (30, 90)
    ),
    // --- Non-speech markers (4) -------------------------------------------
    ph!("pau", Silence, false, [0, 0, 0], None, -60.0, (50, 300)),
    ph!("h#", Silence, false, [0, 0, 0], None, -60.0, (50, 300)),
    ph!("sil", Silence, false, [0, 0, 0], None, -60.0, (50, 300)),
    ph!(
        "spn",
        Silence,
        false,
        [0, 0, 0],
        Some((100.0, 4_000.0)),
        -30.0,
        (50, 300)
    ),
];

/// Access to the phoneme inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Inventory;

impl Inventory {
    /// All 63 phonemes.
    pub fn all() -> &'static [PhonemeSpec] {
        INVENTORY
    }

    /// Total number of phonemes (63).
    pub fn len() -> usize {
        INVENTORY.len()
    }

    /// The spec for a phoneme id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn spec(id: PhonemeId) -> &'static PhonemeSpec {
        &INVENTORY[id.0]
    }

    /// Looks a phoneme up by its symbol.
    pub fn by_symbol(symbol: &str) -> Option<PhonemeId> {
        INVENTORY
            .iter()
            .position(|p| p.symbol == symbol)
            .map(PhonemeId)
    }

    /// Ids of all phonemes that produce audible sound (everything except
    /// the [`PhonemeClass::Silence`] markers).
    pub fn audible() -> Vec<PhonemeId> {
        INVENTORY
            .iter()
            .enumerate()
            .filter(|(_, p)| p.class != PhonemeClass::Silence)
            .map(|(i, _)| PhonemeId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_has_63_phonemes() {
        assert_eq!(Inventory::len(), 63);
    }

    #[test]
    fn symbols_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in Inventory::all() {
            assert!(seen.insert(p.symbol), "duplicate symbol {}", p.symbol);
        }
    }

    #[test]
    fn lookup_by_symbol_roundtrips() {
        for (i, p) in Inventory::all().iter().enumerate() {
            assert_eq!(Inventory::by_symbol(p.symbol), Some(PhonemeId(i)));
        }
        assert_eq!(Inventory::by_symbol("nonexistent"), None);
    }

    #[test]
    fn vowels_are_voiced_with_rising_formants() {
        for p in Inventory::all() {
            if p.class == PhonemeClass::Vowel && p.symbol != "ax-h" {
                assert!(p.voiced, "{} should be voiced", p.symbol);
                assert!(
                    p.formants[0] < p.formants[1] && p.formants[1] < p.formants[2],
                    "{} formants must ascend",
                    p.symbol
                );
            }
        }
    }

    #[test]
    fn weak_fricatives_are_quieter_than_vowels() {
        let s = Inventory::spec(Inventory::by_symbol("s").unwrap());
        let z = Inventory::spec(Inventory::by_symbol("z").unwrap());
        let ae = Inventory::spec(Inventory::by_symbol("ae").unwrap());
        assert!(s.intensity_db < ae.intensity_db - 10.0);
        assert!(z.intensity_db < ae.intensity_db - 10.0);
    }

    #[test]
    fn back_vowels_are_loudest() {
        // /aa/ and /ao/ are pronounced with strong larynx vibration
        // (paper Sec. V-A) — they must carry the highest intensity.
        let max_other = Inventory::all()
            .iter()
            .filter(|p| p.symbol != "aa" && p.symbol != "ao")
            .map(|p| p.intensity_db)
            .fold(f32::NEG_INFINITY, f32::max);
        let aa = Inventory::spec(Inventory::by_symbol("aa").unwrap());
        let ao = Inventory::spec(Inventory::by_symbol("ao").unwrap());
        assert!(aa.intensity_db > max_other);
        assert!(ao.intensity_db > max_other);
    }

    #[test]
    fn obstruents_have_noise_bands() {
        for p in Inventory::all() {
            if matches!(
                p.class,
                PhonemeClass::Fricative | PhonemeClass::Affricate | PhonemeClass::Stop
            ) {
                let (lo, hi) = p.noise_band.expect("obstruent needs a noise band");
                assert!(lo < hi, "{}", p.symbol);
                assert!(hi <= 8_000.0, "{} band above Nyquist", p.symbol);
            }
        }
    }

    #[test]
    fn audible_excludes_silences() {
        let audible = Inventory::audible();
        assert!(audible.len() < Inventory::len());
        for id in audible {
            assert_ne!(Inventory::spec(id).class, PhonemeClass::Silence);
        }
    }

    #[test]
    fn durations_are_positive_ranges() {
        for p in Inventory::all() {
            assert!(
                p.duration_ms.0 > 0.0 && p.duration_ms.0 <= p.duration_ms.1,
                "{}",
                p.symbol
            );
        }
    }
}
