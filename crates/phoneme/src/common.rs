//! The 37 common voice-command phonemes of paper Table II.
//!
//! The paper screens the 63 TIMIT phonemes down to 37 that frequently
//! appear in voice-assistant commands, listing each with its appearance
//! count. The printed table contains `ch` twice (69 and 13); we keep the
//! first occurrence as `ch` and read the second as `zh` — the only common
//! fricative otherwise missing (documented in DESIGN.md).

use crate::inventory::{Inventory, PhonemeId};

/// A common phoneme together with its appearance count in the paper's
/// voice-command survey (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonPhoneme {
    /// Phoneme id into [`Inventory::all`].
    pub id: PhonemeId,
    /// ARPAbet symbol.
    pub symbol: &'static str,
    /// Number of appearances reported in Table II.
    pub count: u32,
}

/// Table II contents: `(symbol, count)` in the paper's order.
pub const TABLE_II: &[(&str, u32)] = &[
    ("t", 129),
    ("n", 108),
    ("ah", 107),
    ("s", 101),
    ("r", 100),
    ("ih", 99),
    ("d", 83),
    ("l", 70),
    ("k", 70),
    ("ch", 69),
    ("iy", 65),
    ("m", 65),
    ("er", 58),
    ("z", 49),
    ("w", 40),
    ("ae", 39),
    ("ey", 38),
    ("p", 37),
    ("ay", 36),
    ("aa", 32),
    ("uw", 31),
    ("b", 31),
    ("ao", 29),
    ("f", 29),
    ("v", 28),
    ("hh", 20),
    ("ng", 17),
    ("ow", 17),
    ("y", 15),
    ("aw", 15),
    ("jh", 14),
    ("g", 13),
    ("zh", 13), // printed as a second "ch" in the paper; see module docs
    ("dh", 12),
    ("th", 10),
    ("sh", 8),
    ("uh", 6),
];

/// Returns the 37 common phonemes with resolved inventory ids.
///
/// # Panics
///
/// Panics if the static table references a symbol missing from the
/// inventory (a programming error caught by tests).
pub fn common_phonemes() -> Vec<CommonPhoneme> {
    TABLE_II
        .iter()
        .map(|&(symbol, count)| CommonPhoneme {
            id: Inventory::by_symbol(symbol)
                .unwrap_or_else(|| panic!("common phoneme {symbol} missing from inventory")),
            symbol,
            count,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_37_common_phonemes() {
        assert_eq!(common_phonemes().len(), 37);
    }

    #[test]
    fn counts_match_paper_ordering() {
        let c = common_phonemes();
        assert_eq!(c[0].symbol, "t");
        assert_eq!(c[0].count, 129);
        assert_eq!(c[36].symbol, "uh");
        assert_eq!(c[36].count, 6);
        // Counts are non-increasing in the paper's order.
        for w in c.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
    }

    #[test]
    fn all_symbols_resolve_to_inventory() {
        for c in common_phonemes() {
            assert_eq!(Inventory::spec(c.id).symbol, c.symbol);
        }
    }

    #[test]
    fn no_duplicate_symbols() {
        let mut seen = std::collections::HashSet::new();
        for c in common_phonemes() {
            assert!(seen.insert(c.symbol), "duplicate {}", c.symbol);
        }
    }
}
