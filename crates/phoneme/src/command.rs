//! A bank of phonetically transcribed voice-assistant commands.
//!
//! The paper collects 20 voice commands per participant; the commands
//! here are typical smart-home/assistant phrases (drawn from the same
//! public command lists the paper cites) with hand-written ARPAbet
//! transcriptions restricted to the Table II common phonemes.

use crate::inventory::{Inventory, PhonemeId};

/// A voice command: display text plus its phonetic transcription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    text: &'static str,
    phonemes: Vec<&'static str>,
}

impl Command {
    /// The command's display text.
    pub fn text(&self) -> &'static str {
        self.text
    }

    /// The transcription as ARPAbet symbols.
    pub fn phoneme_symbols(&self) -> &[&'static str] {
        &self.phonemes
    }

    /// The transcription resolved to inventory ids.
    ///
    /// # Panics
    ///
    /// Panics if a transcription symbol is missing from the inventory (a
    /// programming error caught by tests).
    pub fn phoneme_ids(&self) -> Vec<PhonemeId> {
        self.phonemes
            .iter()
            .map(|s| {
                Inventory::by_symbol(s)
                    .unwrap_or_else(|| panic!("unknown phoneme {s} in command {:?}", self.text))
            })
            .collect()
    }
}

/// The standard command bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandBank {
    commands: Vec<Command>,
}

macro_rules! cmd {
    ($text:literal, [$($p:literal),* $(,)?]) => {
        Command { text: $text, phonemes: vec![$($p),*] }
    };
}

impl CommandBank {
    /// Builds the standard 25-command bank.
    pub fn standard() -> Self {
        let commands = vec![
            cmd!("alexa", ["ah", "l", "ae", "k", "s", "ah"]),
            cmd!("ok google", ["ow", "k", "ey", "g", "uw", "g", "ah", "l"]),
            cmd!("hey siri", ["hh", "ey", "s", "ih", "r", "iy"]),
            cmd!(
                "turn on the lights",
                ["t", "er", "n", "aa", "n", "dh", "ah", "l", "ay", "t", "s"]
            ),
            cmd!(
                "what's the weather",
                ["w", "ah", "t", "s", "dh", "ah", "w", "ae", "dh", "er"]
            ),
            cmd!(
                "unlock the door",
                ["ah", "n", "l", "aa", "k", "dh", "ah", "d", "ao", "r"]
            ),
            cmd!(
                "play music",
                ["p", "l", "ey", "m", "y", "uw", "z", "ih", "k"]
            ),
            cmd!(
                "set an alarm",
                ["s", "ae", "t", "ae", "n", "ah", "l", "aa", "r", "m"]
            ),
            cmd!("stop", ["s", "t", "aa", "p"]),
            cmd!(
                "turn off the tv",
                ["t", "er", "n", "ao", "f", "dh", "ah", "t", "iy", "v", "iy"]
            ),
            cmd!(
                "open the garage",
                ["ow", "p", "ah", "n", "dh", "ah", "g", "er", "aa", "zh"]
            ),
            cmd!(
                "what time is it",
                ["w", "ah", "t", "t", "ay", "m", "ih", "z", "ih", "t"]
            ),
            cmd!("call mom", ["k", "ao", "l", "m", "aa", "m"]),
            cmd!(
                "add milk to my list",
                ["ae", "d", "m", "ih", "l", "k", "t", "uw", "m", "ay", "l", "ih", "s", "t"]
            ),
            cmd!(
                "lock the front door",
                ["l", "aa", "k", "dh", "ah", "f", "r", "ah", "n", "t", "d", "ao", "r"]
            ),
            cmd!(
                "turn up the volume",
                ["t", "er", "n", "ah", "p", "dh", "ah", "v", "aa", "l", "y", "uw", "m"]
            ),
            cmd!(
                "good morning",
                ["g", "uh", "d", "m", "ao", "r", "n", "ih", "ng"]
            ),
            cmd!("set a timer", ["s", "ae", "t", "ah", "t", "ay", "m", "er"]),
            cmd!(
                "how far is the moon",
                ["hh", "aw", "f", "aa", "r", "ih", "z", "dh", "ah", "m", "uw", "n"]
            ),
            cmd!(
                "dim the lights",
                ["d", "ih", "m", "dh", "ah", "l", "ay", "t", "s"]
            ),
            cmd!(
                "increase the temperature",
                [
                    "ih", "n", "k", "r", "iy", "s", "dh", "ah", "t", "ae", "m", "p", "er", "ah",
                    "ch", "er"
                ]
            ),
            cmd!(
                "read my messages",
                ["r", "iy", "d", "m", "ay", "m", "ae", "s", "ah", "jh", "ah", "z"]
            ),
            cmd!(
                "send a text",
                ["s", "ae", "n", "d", "ah", "t", "ae", "k", "s", "t"]
            ),
            cmd!(
                "what's on my calendar",
                ["w", "ah", "t", "s", "aa", "n", "m", "ay", "k", "ae", "l", "ah", "n", "d", "er"]
            ),
            cmd!(
                "disarm the security system",
                [
                    "d", "ih", "s", "aa", "r", "m", "dh", "ah", "s", "ah", "k", "y", "uh", "r",
                    "ah", "t", "iy", "s", "ih", "s", "t", "ah", "m"
                ]
            ),
        ];
        CommandBank { commands }
    }

    /// All commands.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the bank is empty (never true for [`CommandBank::standard`]).
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Looks up a command by its text.
    pub fn by_text(&self, text: &str) -> Option<&Command> {
        self.commands.iter().find(|c| c.text == text)
    }

    /// The wake words used by the Table I attack study.
    pub fn wake_words(&self) -> Vec<&Command> {
        ["alexa", "ok google", "hey siri"]
            .iter()
            .filter_map(|t| self.by_text(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::TABLE_II;
    use std::collections::HashSet;

    #[test]
    fn bank_has_25_commands() {
        assert_eq!(CommandBank::standard().len(), 25);
    }

    #[test]
    fn all_transcriptions_resolve() {
        for c in CommandBank::standard().commands() {
            let ids = c.phoneme_ids();
            assert_eq!(ids.len(), c.phoneme_symbols().len());
            assert!(!ids.is_empty());
        }
    }

    #[test]
    fn transcriptions_use_only_common_phonemes() {
        let common: HashSet<&str> = TABLE_II.iter().map(|&(s, _)| s).collect();
        for c in CommandBank::standard().commands() {
            for s in c.phoneme_symbols() {
                assert!(
                    common.contains(s),
                    "{s} in {:?} is not a Table II phoneme",
                    c.text()
                );
            }
        }
    }

    #[test]
    fn wake_words_present() {
        let bank = CommandBank::standard();
        assert_eq!(bank.wake_words().len(), 3);
    }

    #[test]
    fn most_common_phonemes_dominate_usage() {
        // Sanity: /t/ (count 129 in Table II) should be among the most
        // frequent symbols in the bank.
        let bank = CommandBank::standard();
        let mut freq = std::collections::HashMap::new();
        for c in bank.commands() {
            for s in c.phoneme_symbols() {
                *freq.entry(*s).or_insert(0u32) += 1;
            }
        }
        let t_count = freq["t"];
        let above_t = freq.values().filter(|&&v| v > t_count).count();
        assert!(
            above_t <= 2,
            "t should rank near the top, {above_t} above it"
        );
    }

    #[test]
    fn by_text_finds_and_misses() {
        let bank = CommandBank::standard();
        assert!(bank.by_text("stop").is_some());
        assert!(bank.by_text("no such command").is_none());
    }
}
