//! Labelled corpus generation — the TIMIT-substitute datasets.
//!
//! The paper trains its BRNN on TIMIT's time-aligned transcriptions and
//! evaluates phoneme selection on "100 sound segments from five males and
//! five females for each phoneme". This module reproduces both dataset
//! shapes from the synthesizer.

use crate::command::CommandBank;
use crate::inventory::PhonemeId;
use crate::speaker::{Sex, SpeakerProfile};
use crate::synth::{Synthesizer, Utterance};
use rand::Rng;

/// Draws a panel of speakers — the paper's default is 5 males and 5
/// females.
pub fn speaker_panel<R: Rng + ?Sized>(
    n_male: usize,
    n_female: usize,
    rng: &mut R,
) -> Vec<SpeakerProfile> {
    let mut out = Vec::with_capacity(n_male + n_female);
    for _ in 0..n_male {
        out.push(SpeakerProfile::random_with_sex(Sex::Male, rng));
    }
    for _ in 0..n_female {
        out.push(SpeakerProfile::random_with_sex(Sex::Female, rng));
    }
    out
}

/// Synthesizes `n` independent sound segments of one phoneme, cycling
/// through the speaker panel (paper Sec. III-B / V-A setup).
pub fn phoneme_samples<R: Rng + ?Sized>(
    synth: &Synthesizer,
    id: PhonemeId,
    n: usize,
    speakers: &[SpeakerProfile],
    rng: &mut R,
) -> Vec<Vec<f32>> {
    assert!(!speakers.is_empty(), "need at least one speaker");
    (0..n)
        .map(|i| synth.synthesize_phoneme(id, &speakers[i % speakers.len()], rng))
        .collect()
}

/// Draws a random phoneme sequence weighted by the Table II appearance
/// counts — a synthetic "voice-command-like" utterance for training.
pub fn random_common_sequence<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Vec<PhonemeId> {
    let common = crate::common::common_phonemes();
    let total: u32 = common.iter().map(|c| c.count).sum();
    (0..len)
        .map(|_| {
            let mut pick = rng.gen_range(0..total);
            for c in &common {
                if pick < c.count {
                    return c.id;
                }
                pick -= c.count;
            }
            common[0].id
        })
        .collect()
}

/// A labelled utterance: audio plus aligned segments, ready for frame
/// labelling.
#[derive(Debug, Clone)]
pub struct LabelledUtterance {
    /// The synthesized utterance.
    pub utterance: Utterance,
    /// Speaker used (for speaker-dependent experiments).
    pub speaker: SpeakerProfile,
}

/// Generates a training corpus of utterances: a mix of real command-bank
/// phrases and random common-phoneme sequences, across a speaker panel.
pub fn training_corpus<R: Rng + ?Sized>(
    synth: &Synthesizer,
    n_utterances: usize,
    speakers: &[SpeakerProfile],
    rng: &mut R,
) -> Vec<LabelledUtterance> {
    assert!(!speakers.is_empty(), "need at least one speaker");
    let bank = CommandBank::standard();
    (0..n_utterances)
        .map(|i| {
            let speaker = speakers[i % speakers.len()].clone();
            let utterance = if rng.gen_bool(0.5) {
                let cmd = &bank.commands()[rng.gen_range(0..bank.len())];
                synth.synthesize_command(cmd, &speaker, rng)
            } else {
                let len = rng.gen_range(5..14);
                let seq = random_common_sequence(len, rng);
                synth.synthesize_sequence(&seq, &speaker, rng)
            };
            LabelledUtterance { utterance, speaker }
        })
        .collect()
}

/// Assigns one label per analysis frame by majority overlap with the
/// utterance's phoneme segments.
///
/// `classify` maps a phoneme to its class label; frames that overlap no
/// segment (leading/trailing silence) get `default_label`.
pub fn frame_labels<F>(
    utterance: &Utterance,
    frame_len: usize,
    hop: usize,
    default_label: usize,
    classify: F,
) -> Vec<usize>
where
    F: Fn(PhonemeId) -> usize,
{
    let n = utterance.audio.len();
    if n == 0 || frame_len == 0 || hop == 0 {
        return Vec::new();
    }
    let n_frames = if n < frame_len {
        1
    } else {
        (n - frame_len) / hop + 1
    };
    (0..n_frames)
        .map(|fi| {
            let start = fi * hop;
            let end = (start + frame_len).min(n);
            // Find the segment with the largest overlap.
            let mut best_overlap = 0usize;
            let mut label = default_label;
            for seg in &utterance.segments {
                let lo = seg.start.max(start);
                let hi = seg.end.min(end);
                let overlap = hi.saturating_sub(lo);
                if overlap > best_overlap {
                    best_overlap = overlap;
                    label = classify(seg.phoneme);
                }
            }
            label
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventory::Inventory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn speaker_panel_composition() {
        let mut rng = StdRng::seed_from_u64(1);
        let panel = speaker_panel(5, 5, &mut rng);
        assert_eq!(panel.len(), 10);
        assert_eq!(panel.iter().filter(|s| s.sex == Sex::Male).count(), 5);
    }

    #[test]
    fn phoneme_samples_count_and_variation() {
        let mut rng = StdRng::seed_from_u64(2);
        let panel = speaker_panel(2, 2, &mut rng);
        let synth = Synthesizer::new(16_000);
        let id = Inventory::by_symbol("ae").unwrap();
        let samples = phoneme_samples(&synth, id, 8, &panel, &mut rng);
        assert_eq!(samples.len(), 8);
        // Samples must differ (duration and excitation are random).
        assert_ne!(samples[0], samples[4]);
    }

    #[test]
    fn random_sequences_favor_frequent_phonemes() {
        let mut rng = StdRng::seed_from_u64(3);
        let seq = random_common_sequence(3_000, &mut rng);
        let t = Inventory::by_symbol("t").unwrap();
        let uh = Inventory::by_symbol("uh").unwrap();
        let t_count = seq.iter().filter(|&&p| p == t).count();
        let uh_count = seq.iter().filter(|&&p| p == uh).count();
        // Table II: t appears 129 times vs uh 6 — ratio ~21x; allow slack.
        assert!(t_count > uh_count * 5, "t {t_count} vs uh {uh_count}");
    }

    #[test]
    fn training_corpus_generates_requested_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let panel = speaker_panel(1, 1, &mut rng);
        let synth = Synthesizer::new(16_000);
        let corpus = training_corpus(&synth, 4, &panel, &mut rng);
        assert_eq!(corpus.len(), 4);
        for u in &corpus {
            assert!(!u.utterance.segments.is_empty());
        }
    }

    #[test]
    fn frame_labels_align_with_segments() {
        let mut rng = StdRng::seed_from_u64(5);
        let synth = Synthesizer::new(16_000);
        let speaker = SpeakerProfile::reference_male();
        let aa = Inventory::by_symbol("aa").unwrap();
        let s = Inventory::by_symbol("s").unwrap();
        let utt = synth.synthesize_sequence(&[aa, s], &speaker, &mut rng);
        let labels = frame_labels(&utt, 400, 160, 9, |p| if p == aa { 1 } else { 0 });
        // Leading silence frames carry the default label.
        assert_eq!(labels[0], 9);
        // Both classes appear.
        assert!(labels.contains(&1));
        assert!(labels.contains(&0));
        // Label count matches the MFCC frame count for the same config.
        let mfcc = thrubarrier_dsp::mel::MfccExtractor::paper_default();
        assert_eq!(labels.len(), mfcc.frame_count(utt.audio.len()));
    }

    #[test]
    fn frame_labels_empty_utterance() {
        let utt = Utterance {
            audio: thrubarrier_dsp::AudioBuffer::empty(16_000),
            segments: Vec::new(),
        };
        assert!(frame_labels(&utt, 400, 160, 0, |_| 1).is_empty());
    }
}
