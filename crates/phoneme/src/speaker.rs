//! Per-speaker voice parameters.
//!
//! The paper's 20 participants (and TIMIT's 630 speakers) are replaced by
//! reproducible random draws of the parameters that actually matter to
//! the defense: fundamental frequency, vocal-tract length (formant
//! scale), vocal effort and speaking rate.

use rand::Rng;

/// Speaker sex — determines the F0 range and formant scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sex {
    /// Male voice: F0 roughly 85–155 Hz.
    Male,
    /// Female voice: F0 roughly 165–255 Hz.
    Female,
}

/// A synthetic speaker.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeakerProfile {
    /// Speaker sex.
    pub sex: Sex,
    /// Mean fundamental frequency in Hz.
    pub f0_hz: f32,
    /// Random per-utterance F0 wobble, as a fraction of `f0_hz`.
    pub f0_jitter: f32,
    /// Multiplier applied to all formant frequencies (shorter vocal
    /// tracts shift formants up; ~1.0 male, ~1.17 female).
    pub formant_scale: f32,
    /// Vocal effort relative to the nominal level, in dB.
    pub effort_db: f32,
    /// Speaking-rate multiplier applied to phoneme durations.
    pub rate: f32,
}

impl SpeakerProfile {
    /// Draws a random speaker (50/50 male/female).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let sex = if rng.gen_bool(0.5) {
            Sex::Male
        } else {
            Sex::Female
        };
        Self::random_with_sex(sex, rng)
    }

    /// Draws a random speaker of the given sex.
    pub fn random_with_sex<R: Rng + ?Sized>(sex: Sex, rng: &mut R) -> Self {
        let (f0_lo, f0_hi, scale_lo, scale_hi) = match sex {
            Sex::Male => (85.0, 155.0, 0.94, 1.06),
            Sex::Female => (165.0, 255.0, 1.10, 1.24),
        };
        SpeakerProfile {
            sex,
            f0_hz: rng.gen_range(f0_lo..f0_hi),
            f0_jitter: rng.gen_range(0.01..0.05),
            formant_scale: rng.gen_range(scale_lo..scale_hi),
            effort_db: rng.gen_range(-3.0..3.0),
            rate: rng.gen_range(0.85..1.15),
        }
    }

    /// A fixed reference male speaker, useful in deterministic tests.
    pub fn reference_male() -> Self {
        SpeakerProfile {
            sex: Sex::Male,
            f0_hz: 120.0,
            f0_jitter: 0.02,
            formant_scale: 1.0,
            effort_db: 0.0,
            rate: 1.0,
        }
    }

    /// A fixed reference female speaker.
    pub fn reference_female() -> Self {
        SpeakerProfile {
            sex: Sex::Female,
            f0_hz: 210.0,
            f0_jitter: 0.02,
            formant_scale: 1.17,
            effort_db: 0.0,
            rate: 1.0,
        }
    }

    /// Coarse voice-feature vector `(f0, formant_scale)` — the quantity a
    /// speaker-verification gate (and the voice-synthesis attacker)
    /// estimates from recordings.
    pub fn voice_signature(&self) -> (f32, f32) {
        (self.f0_hz, self.formant_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn f0_ranges_respect_sex() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let m = SpeakerProfile::random_with_sex(Sex::Male, &mut rng);
            assert!((85.0..155.0).contains(&m.f0_hz));
            let f = SpeakerProfile::random_with_sex(Sex::Female, &mut rng);
            assert!((165.0..255.0).contains(&f.f0_hz));
            assert!(f.formant_scale > m.formant_scale);
        }
    }

    #[test]
    fn random_draw_is_reproducible() {
        let a = SpeakerProfile::random(&mut StdRng::seed_from_u64(9));
        let b = SpeakerProfile::random(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn reference_speakers_are_distinct() {
        let m = SpeakerProfile::reference_male();
        let f = SpeakerProfile::reference_female();
        assert_ne!(m.voice_signature(), f.voice_signature());
    }
}
