//! Phoneme-level speech synthesis substrate — the workspace's TIMIT
//! substitute.
//!
//! The paper trains and evaluates on the TIMIT acoustic-phonetic corpus
//! (63 phonemes, time-aligned transcriptions, 630 speakers) and on live
//! voice commands from 20 participants. Neither resource is available to
//! a pure-software reproduction, so this crate synthesizes speech from
//! first principles with a classic **source–filter formant synthesizer**:
//!
//! * [`inventory`] — a 63-entry phoneme inventory with articulatory
//!   class, voicing, formant targets, noise bands, intrinsic intensity
//!   and duration ranges,
//! * [`common`] — the 37 common voice-command phonemes of paper Table II
//!   with their appearance counts,
//! * [`speaker`] — per-speaker parameters (sex, F0, vocal-tract scale,
//!   vocal effort) drawn reproducibly from an RNG,
//! * [`synth`] — glottal-pulse / noise excitation shaped by resonator
//!   cascades, producing phoneme sounds and whole utterances with
//!   **time-aligned phoneme segments**,
//! * [`command`] — a bank of phonetically transcribed voice-assistant
//!   commands ("turn on the lights", "unlock the door", …),
//! * [`corpus`] — labelled corpus generation for training the BRNN
//!   phoneme detector exactly as the paper does with TIMIT.
//!
//! The synthesizer is *not* meant to sound natural; it is meant to get
//! the **coarse spectral physics right** — which phonemes are voiced,
//! where their energy sits in frequency, and how loud they intrinsically
//! are — because those are the only properties the thru-barrier defense
//! depends on.
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use thrubarrier_phoneme::{command::CommandBank, speaker::SpeakerProfile, synth::Synthesizer};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let speaker = SpeakerProfile::random(&mut rng);
//! let bank = CommandBank::standard();
//! let synth = Synthesizer::new(16_000);
//! let utterance = synth.synthesize_command(&bank.commands()[0], &speaker, &mut rng);
//! assert!(utterance.audio.duration() > 0.3);
//! assert!(!utterance.segments.is_empty());
//! ```

#![warn(missing_docs)]

pub mod command;
pub mod common;
pub mod corpus;
pub mod inventory;
pub mod speaker;
pub mod synth;

pub use command::{Command, CommandBank};
pub use inventory::{Inventory, PhonemeClass, PhonemeId, PhonemeSpec};
pub use speaker::SpeakerProfile;
pub use synth::{Synthesizer, Utterance};
