//! Diagnostic: AUC/EER per method at a moderate scale.

use thrubarrier_attack::AttackKind;
use thrubarrier_defense::DefenseMethod;
use thrubarrier_eval::runner::{Runner, RunnerConfig, SelectorChoice};
use thrubarrier_eval::scenario::TrialSettings;
use thrubarrier_acoustics::room::{Room, RoomId};

fn main() {
    let mut settings = Vec::new();
    for room in [RoomId::A, RoomId::B] {
        for (d, spl_u) in [(1.0, 75.0), (2.0, 70.0), (3.0, 65.0)] {
            for spl_a in [65.0, 75.0, 85.0] {
                settings.push(TrialSettings {
                    room: Room::paper_room(room),
                    user_to_va_m: d,
                    user_spl_db: spl_u,
                    attack_spl_db: spl_a,
                    ..Default::default()
                });
            }
        }
    }
    let cfg = RunnerConfig {
        seed: 42,
        participants: 8,
        commands_per_user: 12,
        attacks_per_kind: 60,
        attack_kinds: vec![
            AttackKind::Random,
            AttackKind::Replay,
            AttackKind::VoiceSynthesis,
            AttackKind::HiddenVoice,
        ],
        settings,
        selector: if std::env::args().any(|a| a == "--brnn") { SelectorChoice::Brnn { corpus_size: 80, epochs: 3, hidden: 48 } } else { SelectorChoice::Energy },
        threads: 16,
    };
    let outcome = Runner::new(cfg).run();
    let q = |xs: &[f32], p: f32| {
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[((v.len() - 1) as f32 * p) as usize]
    };
    for method in DefenseMethod::all() {
        let pool = outcome.pool(method);
        let l = &pool.legitimate;
        let a = pool.attack_scores();
        println!(
            "{:<28} legit q10/50/90 {:.2}/{:.2}/{:.2}   attack q10/50/90 {:.2}/{:.2}/{:.2}",
            method.label(),
            q(l, 0.1), q(l, 0.5), q(l, 0.9),
            q(&a, 0.1), q(&a, 0.5), q(&a, 0.9)
        );
    }
    for kind in AttackKind::all() {
        println!("== {kind} ==");
        for method in DefenseMethod::all() {
            let m = outcome.pool(method).metrics_of(kind);
            println!("  {:<28} AUC {:.3}  EER {:.1}%", method.label(), m.auc, m.eer * 100.0);
        }
    }
}
