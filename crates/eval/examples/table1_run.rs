fn main() {
    let study = thrubarrier_eval::experiments::table1::run(&Default::default());
    println!("{}", study.render_text());
}
