//! Diagnostic: which attack trials score high, and why.

use rand::{rngs::StdRng, SeedableRng};
use thrubarrier_attack::AttackKind;
use thrubarrier_defense::{DefenseMethod, DefenseSystem};
use thrubarrier_eval::scenario::{TrialGenerator, TrialSettings};
use thrubarrier_phoneme::command::CommandBank;
use thrubarrier_phoneme::speaker::SpeakerProfile;

fn main() {
    let generator = TrialGenerator::new();
    let bank = CommandBank::standard();
    let system = DefenseSystem::paper_default();
    let mut rng = StdRng::seed_from_u64(1234);
    let victim = SpeakerProfile::reference_male();
    let adversary = SpeakerProfile::reference_female();
    println!("{:<30} {:>5} {:>8} {:>8} {:>8}", "command", "spl", "audio", "vib", "full(E)");
    for spl in [65.0f32, 75.0, 85.0] {
        for ci in [3usize, 5, 8, 12, 16] {
            let cmd = &bank.commands()[ci];
            let settings = TrialSettings {
                attack_spl_db: spl,
                ..Default::default()
            };
            let t = generator.attack(AttackKind::Replay, cmd, &victim, &adversary, &settings, &mut rng);
            let mut s = [0.0f32; 3];
            for (i, m) in DefenseMethod::all().into_iter().enumerate() {
                let mut r2 = StdRng::seed_from_u64(50 + ci as u64);
                s[i] = system.score_with_method(m, &t.va_recording, &t.wearable_recording, &mut r2);
            }
            let has_aa = cmd.phoneme_symbols().iter().any(|p| *p == "aa" || *p == "ao");
            println!(
                "{:<30} {:>5} {:>8.2} {:>8.2} {:>8.2}  aa/ao={}",
                cmd.text(), spl, s[0], s[1], s[2], has_aa
            );
        }
    }
    // User trials for contrast.
    println!("--- legitimate ---");
    for ci in [3usize, 5, 8] {
        let cmd = &bank.commands()[ci];
        let settings = TrialSettings::default();
        let t = generator.legitimate(cmd, &victim, &settings, &mut rng);
        let mut s = [0.0f32; 3];
        for (i, m) in DefenseMethod::all().into_iter().enumerate() {
            let mut r2 = StdRng::seed_from_u64(80 + ci as u64);
            s[i] = system.score_with_method(m, &t.va_recording, &t.wearable_recording, &mut r2);
        }
        println!("{:<30} {:>5} {:>8.2} {:>8.2} {:>8.2}", cmd.text(), 70, s[0], s[1], s[2]);
    }
}
