//! Diagnostic: wake-decision internals for the Table I study.

use rand::{rngs::StdRng, SeedableRng};
use thrubarrier_acoustics::room::{Room, RoomId};
use thrubarrier_acoustics::scene::AcousticPath;
use thrubarrier_acoustics::va::{VaDevice, VaModel};
use thrubarrier_attack::{AttackGenerator, AttackKind};
use thrubarrier_phoneme::command::CommandBank;
use thrubarrier_phoneme::speaker::{Sex, SpeakerProfile};
use thrubarrier_phoneme::synth::Synthesizer;

fn main() {
    let fs = 16_000u32;
    let mut rng = StdRng::seed_from_u64(7);
    let synth = Synthesizer::new(fs);
    let bank = CommandBank::standard();
    let generator = AttackGenerator::new(fs);
    let victim = SpeakerProfile::random_with_sex(Sex::Male, &mut rng);
    let room = Room::paper_room(RoomId::A);
    for model in VaModel::all() {
        let wake = bank.by_text(model.wake_word()).unwrap();
        let templates: Vec<Vec<f32>> = [
            SpeakerProfile::reference_male(),
            SpeakerProfile::reference_female(),
        ]
        .iter()
        .map(|sp| synth.synthesize_command(wake, sp, &mut rng).audio.into_samples())
        .collect();
        let mut device = VaDevice::paper_device(model, &templates);
        device.enroll_user(victim.f0_hz);
        for kind in [AttackKind::Random, AttackKind::Replay, AttackKind::HiddenVoice] {
            for spl in [65.0f32, 75.0] {
                let adversary = SpeakerProfile::random(&mut rng);
                let sound = generator.generate(kind, wake, &victim, &adversary, &mut rng);
                let mut source = sound.samples;
                let gain = thrubarrier_acoustics::propagation::spl_to_rms(spl)
                    / thrubarrier_dsp::stats::rms(&source).max(1e-9);
                for v in &mut source {
                    *v *= gain;
                }
                let path = AcousticPath {
                    room: room.clone(),
                    through_barrier: true,
                    distance_m: 2.0,
                    loudspeaker: sound.needs_loudspeaker.then(|| generator.loudspeaker),
                };
                let mut incident = path.transmit_positioned(&source, fs, &mut rng);
                room.add_ambient_noise(&mut incident, &mut rng);
                let d = device.hear(&incident, fs, &mut rng);
                println!(
                    "{:<12} {:<22} {spl:>4} dB  snr {:>6.1}  match {:>5.2}  verified {:?}  triggered {}",
                    model.name(),
                    kind.name(),
                    d.snr_db,
                    d.match_score,
                    d.verified,
                    d.triggered
                );
            }
        }
    }
}
