//! Property-based tests for the evaluation metrics.

use proptest::prelude::*;
use thrubarrier_eval::metrics::{DetectionMetrics, RocCurve};

/// End-to-end guard for the fused conversion engine: at a fixed seed,
/// the detection quality (ROC AUC / EER) of a system converting through
/// the fused path must be indistinguishable from one using the staged
/// oracle. AUC and EER depend only on the *ordering* of scores, so the
/// engines' tolerance-level numeric differences must not reorder
/// legitimate vs attack scores on this workload.
#[test]
fn fused_and_staged_conversion_yield_same_roc() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_attack::AttackKind;
    use thrubarrier_defense::DefenseSystem;
    use thrubarrier_eval::scenario::TrialContext;
    use thrubarrier_vibration::ConversionPath;

    let mut ctx = TrialContext::seeded(0xE2E);
    let mut trials = Vec::new();
    for _ in 0..6 {
        trials.push(ctx.legitimate_trial());
        trials.push(ctx.attack_trial(AttackKind::Replay));
        trials.push(ctx.attack_trial(AttackKind::VoiceSynthesis));
    }

    let mut metrics = Vec::new();
    for path in [ConversionPath::Fused, ConversionPath::Staged] {
        let mut sys = DefenseSystem::paper_default();
        sys.wearable.conversion = path;
        let mut legit = Vec::new();
        let mut attack = Vec::new();
        for (i, t) in trials.iter().enumerate() {
            // Per-trial seed so both paths score identical inputs with
            // identical RNG streams.
            let mut rng = StdRng::seed_from_u64(i as u64);
            let s = sys.score(&t.va_recording, &t.wearable_recording, &mut rng);
            if t.is_attack {
                attack.push(s);
            } else {
                legit.push(s);
            }
        }
        metrics.push(DetectionMetrics::from_scores(&legit, &attack));
    }
    assert_eq!(metrics[0].auc, metrics[1].auc, "AUC diverged across paths");
    assert_eq!(metrics[0].eer, metrics[1].eer, "EER diverged across paths");
}

/// End-to-end guard for the fused scene engine, in the same mold as the
/// conversion gate above: trials *rendered* through the fused acoustic
/// path must yield bitwise the same ROC AUC / EER as trials rendered
/// through the staged oracle at a fixed seed. Unlike the conversion
/// gate the recordings themselves differ at tolerance level here (the
/// render happens during trial building), so this pins that those
/// differences never reorder legitimate vs attack scores.
#[test]
fn fused_and_staged_render_yield_same_roc() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thrubarrier_acoustics::RenderPath;
    use thrubarrier_attack::AttackKind;
    use thrubarrier_defense::DefenseSystem;
    use thrubarrier_eval::scenario::TrialContext;

    let mut metrics = Vec::new();
    for render in [RenderPath::Fused, RenderPath::Staged] {
        // Same seed per render path: identical speakers, commands,
        // sources and physics draws — only the render implementation
        // differs.
        let mut ctx = TrialContext::seeded_with_render(0xACE, render);
        let mut trials = Vec::new();
        for _ in 0..4 {
            trials.push(ctx.legitimate_trial());
            trials.push(ctx.attack_trial(AttackKind::Replay));
            trials.push(ctx.attack_trial(AttackKind::HiddenVoice));
        }
        let sys = DefenseSystem::paper_default();
        let mut legit = Vec::new();
        let mut attack = Vec::new();
        for (i, t) in trials.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(i as u64);
            let s = sys.score(&t.va_recording, &t.wearable_recording, &mut rng);
            if t.is_attack {
                attack.push(s);
            } else {
                legit.push(s);
            }
        }
        metrics.push(DetectionMetrics::from_scores(&legit, &attack));
    }
    assert_eq!(
        metrics[0].auc, metrics[1].auc,
        "AUC diverged across render paths"
    );
    assert_eq!(
        metrics[0].eer, metrics[1].eer,
        "EER diverged across render paths"
    );
}

fn scores() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.0f32..1.0, 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn auc_is_in_unit_interval(legit in scores(), attack in scores()) {
        let m = DetectionMetrics::from_scores(&legit, &attack);
        prop_assert!((0.0..=1.0 + 1e-4).contains(&m.auc), "auc {}", m.auc);
        prop_assert!((0.0..=0.5 + 1e-4).contains(&m.eer) || m.eer <= 1.0);
    }

    #[test]
    fn roc_endpoints_are_anchored(legit in scores(), attack in scores()) {
        let roc = RocCurve::from_scores(&legit, &attack);
        let first = roc.points.first().unwrap();
        // Threshold 0: nothing scores below 0 -> no detections at all.
        prop_assert_eq!(first.tdr, 0.0);
        prop_assert_eq!(first.fdr, 0.0);
        // The sweep is monotone.
        for w in roc.points.windows(2) {
            prop_assert!(w[1].tdr >= w[0].tdr);
            prop_assert!(w[1].fdr >= w[0].fdr);
        }
    }

    #[test]
    fn separating_distributions_beat_random(
        gap in 0.2f32..0.6,
        n in 5usize..40,
    ) {
        let legit: Vec<f32> = (0..n).map(|i| 0.5 + gap / 2.0 + 0.2 * (i as f32 / n as f32)).collect();
        let attack: Vec<f32> = (0..n).map(|i| 0.5 - gap / 2.0 - 0.2 * (i as f32 / n as f32)).collect();
        let legit: Vec<f32> = legit.into_iter().map(|v| v.clamp(0.0, 1.0)).collect();
        let attack: Vec<f32> = attack.into_iter().map(|v| v.clamp(0.0, 1.0)).collect();
        let m = DetectionMetrics::from_scores(&legit, &attack);
        prop_assert!(m.auc > 0.95, "auc {}", m.auc);
        prop_assert!(m.eer < 0.1, "eer {}", m.eer);
    }

    #[test]
    fn swapping_classes_flips_auc(legit in scores(), attack in scores()) {
        let forward = DetectionMetrics::from_scores(&legit, &attack).auc;
        let reversed = DetectionMetrics::from_scores(&attack, &legit).auc;
        // AUC(a,b) + AUC(b,a) ~ 1 (exact up to the discrete threshold grid
        // and ties).
        prop_assert!((forward + reversed - 1.0).abs() < 0.12, "{forward} + {reversed}");
    }

    #[test]
    fn eer_threshold_is_within_sweep(legit in scores(), attack in scores()) {
        let roc = RocCurve::from_scores(&legit, &attack);
        let t = roc.eer_threshold();
        prop_assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    fn shifting_both_classes_by_constant_keeps_order(
        legit in scores(),
        attack in scores(),
        shift in 0.0f32..0.3,
    ) {
        // Compress the range, shift, and verify AUC direction survives
        // (threshold sweep covers [0,1] so shifted scores stay inside).
        let l2: Vec<f32> = legit.iter().map(|v| v * 0.5 + shift).collect();
        let a2: Vec<f32> = attack.iter().map(|v| v * 0.5 + shift).collect();
        let before = DetectionMetrics::from_scores(&legit, &attack).auc;
        let after = DetectionMetrics::from_scores(&l2, &a2).auc;
        prop_assert!(
            (before - after).abs() < 0.15,
            "auc changed {before} -> {after}"
        );
    }
}
