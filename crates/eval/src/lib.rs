//! Evaluation harness: metrics, trial scenarios, the multi-threaded
//! experiment runner, and one driver per table/figure of the paper.
//!
//! * [`metrics`] — TDR, FDR, ROC (0.01-step thresholds, as in the
//!   paper), AUC and EER.
//! * [`scenario`] — end-to-end trial generation: a legitimate user or a
//!   thru-barrier attacker produces sound, the VA device and the
//!   wearable record it, and the pair is handed to the defense.
//! * [`runner`] — threaded execution of trial batches and score
//!   collection for each detection method.
//! * [`experiments`] — drivers that regenerate **every table and figure**
//!   of the paper's evaluation (Table I, Table II, Figs. 3, 4, 6, 7,
//!   9a–c, 10, 11a–d, plus the Sec. V-B phoneme-detection accuracy
//!   study). Each driver returns a structured result with a
//!   plain-text rendering used by the `repro` binary.

#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod scenario;

pub use metrics::{DetectionMetrics, RocCurve};
pub use runner::{EvalOutcome, Runner, RunnerConfig, SelectorChoice};
pub use scenario::{Trial, TrialContext, TrialGenerator, TrialSettings};
