//! Fig. 3: average audio-domain FFT magnitude of phoneme sounds before
//! and after passing the barrier.
//!
//! The paper plays 100 segments of /ae/ (vowel) and /v/ (consonant) from
//! ten speakers at 75 dB through a glass window and shows that (i) both
//! lose their > 500 Hz components, and (ii) the post-barrier vowel looks
//! like the pre-barrier consonant — which is why the *audio* domain
//! cannot carry the defense.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thrubarrier_acoustics::loudspeaker::Loudspeaker;
use thrubarrier_acoustics::mic::Microphone;
use thrubarrier_acoustics::propagation::speech_gain_for_spl;
use thrubarrier_acoustics::room::{Room, RoomId};
use thrubarrier_acoustics::scene::AcousticPath;
use thrubarrier_dsp::fft;
use thrubarrier_phoneme::corpus::{phoneme_samples, speaker_panel};
use thrubarrier_phoneme::inventory::Inventory;
use thrubarrier_phoneme::synth::Synthesizer;

/// Configuration of the barrier-effect demonstration.
#[derive(Debug, Clone)]
pub struct BarrierEffectConfig {
    /// Master seed.
    pub seed: u64,
    /// Segments per phoneme (paper: 100).
    pub samples_per_phoneme: usize,
    /// Phonemes to analyze (paper: /ae/ and /v/).
    pub phonemes: Vec<&'static str>,
    /// Playback level in dB SPL.
    pub spl_db: f32,
}

impl Default for BarrierEffectConfig {
    fn default() -> Self {
        BarrierEffectConfig {
            seed: 0xF3,
            samples_per_phoneme: 40,
            phonemes: vec!["ae", "v"],
            spl_db: 75.0,
        }
    }
}

/// Average FFT magnitude curves for one phoneme.
#[derive(Debug, Clone)]
pub struct MagnitudeCurves {
    /// Phoneme symbol.
    pub symbol: &'static str,
    /// Frequency axis in Hz.
    pub frequencies: Vec<f32>,
    /// Mean magnitude before passing the barrier.
    pub before: Vec<f32>,
    /// Mean magnitude after passing the barrier.
    pub after: Vec<f32>,
}

impl MagnitudeCurves {
    /// Mean magnitude in `[lo, hi)` Hz of the `before` curve.
    pub fn before_band_mean(&self, lo: f32, hi: f32) -> f32 {
        band_mean(&self.frequencies, &self.before, lo, hi)
    }

    /// Mean magnitude in `[lo, hi)` Hz of the `after` curve.
    pub fn after_band_mean(&self, lo: f32, hi: f32) -> f32 {
        band_mean(&self.frequencies, &self.after, lo, hi)
    }
}

fn band_mean(freqs: &[f32], mags: &[f32], lo: f32, hi: f32) -> f32 {
    let vals: Vec<f32> = freqs
        .iter()
        .zip(mags)
        .filter(|(&f, _)| f >= lo && f < hi)
        .map(|(_, &m)| m)
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f32>() / vals.len() as f32
    }
}

/// Result of the Fig. 3 experiment.
#[derive(Debug, Clone)]
pub struct BarrierEffectStudy {
    /// One curve pair per requested phoneme.
    pub curves: Vec<MagnitudeCurves>,
}

/// Runs the Fig. 3 experiment (audio domain).
pub fn run(cfg: &BarrierEffectConfig) -> BarrierEffectStudy {
    let fs = 16_000u32;
    let n_fft = 4_096usize;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let panel = speaker_panel(5, 5, &mut rng);
    let synth = Synthesizer::new(fs);
    let room = Room::paper_room(RoomId::A);
    let mic = Microphone::wearable();
    let speaker_device = Loudspeaker::sound_bar();
    let gain = speech_gain_for_spl(cfg.spl_db);
    let curves = cfg
        .phonemes
        .iter()
        .map(|sym| {
            let id = Inventory::by_symbol(sym).unwrap_or_else(|| panic!("unknown phoneme {sym}"));
            let sounds = phoneme_samples(&synth, id, cfg.samples_per_phoneme, &panel, &mut rng);
            let mut before_acc = vec![0.0f32; n_fft / 2 + 1];
            let mut after_acc = vec![0.0f32; n_fft / 2 + 1];
            for sound in &sounds {
                let calibrated: Vec<f32> = sound.iter().map(|&x| x * gain).collect();
                // "Before" microphone: in front of the barrier.
                let before_path = AcousticPath {
                    room: room.clone(),
                    through_barrier: false,
                    distance_m: 0.5,
                    loudspeaker: Some(speaker_device),
                    render: Default::default(),
                };
                let after_path = AcousticPath {
                    room: room.clone(),
                    through_barrier: true,
                    distance_m: 2.0,
                    loudspeaker: Some(speaker_device),
                    render: Default::default(),
                };
                let before = before_path.record(&calibrated, fs, &mic, &mut rng);
                let after = after_path.record(&calibrated, fs, &mic, &mut rng);
                accumulate_padded_magnitude(&mut before_acc, before.samples(), n_fft);
                accumulate_padded_magnitude(&mut after_acc, after.samples(), n_fft);
            }
            let n = sounds.len() as f32;
            for v in before_acc.iter_mut().chain(after_acc.iter_mut()) {
                *v /= n;
            }
            MagnitudeCurves {
                symbol: sym,
                frequencies: fft::bin_frequencies(n_fft, fs),
                before: before_acc,
                after: after_acc,
            }
        })
        .collect();
    BarrierEffectStudy { curves }
}

fn accumulate_padded_magnitude(acc: &mut [f32], signal: &[f32], n_fft: usize) {
    // Welch-average the magnitude over n_fft-sized chunks so segment
    // duration does not scale the curve.
    let stft =
        thrubarrier_dsp::Stft::new(n_fft, n_fft / 2, thrubarrier_dsp::window::WindowKind::Hann)
            .expect("n_fft >= 2");
    let spec = stft.magnitude_spectrogram(signal, 16_000);
    let mean = spec.mean_per_bin();
    for (a, m) in acc.iter_mut().zip(mean) {
        *a += m;
    }
}

impl BarrierEffectStudy {
    /// Renders band summaries plus a coarse curve table.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Fig. 3 — audio-domain FFT magnitude before/after barrier\n");
        for c in &self.curves {
            out.push_str(&format!(
                "/{}/: <500 Hz before {:.4} after {:.4}  |  0.5-3 kHz before {:.4} after {:.4}\n",
                c.symbol,
                c.before_band_mean(50.0, 500.0),
                c.after_band_mean(50.0, 500.0),
                c.before_band_mean(500.0, 3_000.0),
                c.after_band_mean(500.0, 3_000.0),
            ));
            out.push_str("  f(Hz):  ");
            for f in (0..3_000).step_by(500) {
                out.push_str(&format!("{f:>8}"));
            }
            out.push_str("\n  before:");
            for f in (0..3_000).step_by(500) {
                out.push_str(&format!(
                    "{:>9.4}",
                    c.before_band_mean(f as f32, f as f32 + 500.0)
                ));
            }
            out.push_str("\n  after: ");
            for f in (0..3_000).step_by(500) {
                out.push_str(&format!(
                    "{:>9.4}",
                    c.after_band_mean(f as f32, f as f32 + 500.0)
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BarrierEffectStudy {
        run(&BarrierEffectConfig {
            samples_per_phoneme: 6,
            ..Default::default()
        })
    }

    #[test]
    fn high_frequencies_are_attenuated_for_both_phonemes() {
        let study = quick();
        for c in &study.curves {
            let before_high = c.before_band_mean(1_000.0, 3_000.0);
            let after_high = c.after_band_mean(1_000.0, 3_000.0);
            assert!(
                after_high < before_high * 0.4,
                "/{}/ high band {} -> {}",
                c.symbol,
                before_high,
                after_high
            );
        }
    }

    #[test]
    fn post_barrier_vowel_resembles_pre_barrier_consonant() {
        // The paper's key negative result for the audio domain: /ae/
        // after the barrier has comparable (same order) high-frequency
        // energy as /v/ before it.
        let study = quick();
        let ae = study.curves.iter().find(|c| c.symbol == "ae").unwrap();
        let v = study.curves.iter().find(|c| c.symbol == "v").unwrap();
        let ae_after = ae.after_band_mean(500.0, 2_000.0);
        let v_before = v.before_band_mean(500.0, 2_000.0);
        let ratio = ae_after / v_before.max(1e-9);
        assert!(
            (0.05..=20.0).contains(&ratio),
            "ae-after vs v-before ratio {ratio}"
        );
    }

    #[test]
    fn vowel_keeps_low_frequency_energy() {
        let study = quick();
        let ae = study.curves.iter().find(|c| c.symbol == "ae").unwrap();
        let low_keep = ae.after_band_mean(80.0, 500.0) / ae.before_band_mean(80.0, 500.0);
        let high_keep =
            ae.after_band_mean(1_000.0, 3_000.0) / ae.before_band_mean(1_000.0, 3_000.0).max(1e-9);
        assert!(
            low_keep > 2.0 * high_keep,
            "low {low_keep} vs high {high_keep}"
        );
    }

    #[test]
    fn render_contains_both_phonemes() {
        let text = quick().render_text();
        assert!(text.contains("/ae/"));
        assert!(text.contains("/v/"));
    }
}
