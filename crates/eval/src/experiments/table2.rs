//! Table II: the 37 common phonemes with appearance counts, and which of
//! them the offline screening marks barrier-effect sensitive (31 in the
//! paper; /s/, /z/ and the over-loud /aa/, /ao/ named as rejected).

use rand::rngs::StdRng;
use rand::SeedableRng;
use thrubarrier_defense::selection::{run_selection, PhonemeSelection, SelectionConfig};
use thrubarrier_phoneme::common::common_phonemes;
use thrubarrier_phoneme::corpus::speaker_panel;
use thrubarrier_vibration::Wearable;

/// Configuration for the Table II reproduction.
#[derive(Debug, Clone)]
pub struct SelectionStudyConfig {
    /// Master seed.
    pub seed: u64,
    /// Segments per phoneme (paper: 100).
    pub samples_per_phoneme: usize,
}

impl Default for SelectionStudyConfig {
    fn default() -> Self {
        SelectionStudyConfig {
            seed: 10,
            samples_per_phoneme: 24,
        }
    }
}

/// Result of the Table II reproduction.
#[derive(Debug, Clone)]
pub struct SelectionStudy {
    /// The full selection result (Q3 curves, criteria).
    pub selection: PhonemeSelection,
}

/// Runs the selection with the paper's setup (5 male + 5 female
/// speakers, glass window + wooden door, 75/85 dB).
pub fn run(cfg: &SelectionStudyConfig) -> SelectionStudy {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let panel = speaker_panel(5, 5, &mut rng);
    let sel_cfg = SelectionConfig {
        samples_per_phoneme: cfg.samples_per_phoneme,
        ..Default::default()
    };
    let selection = run_selection(&sel_cfg, &Wearable::fossil_gen_5(), &panel, &mut rng);
    SelectionStudy { selection }
}

impl SelectionStudy {
    /// Renders Table II: symbol, count, and `*` markers on the selected
    /// (bold in the paper) phonemes.
    pub fn render_text(&self) -> String {
        let commons = common_phonemes();
        let selected: std::collections::HashSet<&str> =
            self.selection.selected_symbols().into_iter().collect();
        let mut out =
            String::from("Table II — common phonemes (*(bold) = selected barrier-sensitive)\n");
        for row in commons.chunks(6) {
            for c in row {
                let mark = if selected.contains(c.symbol) {
                    "*"
                } else {
                    " "
                };
                out.push_str(&format!("{mark}{:<4}{:>4}   ", c.symbol, c.count));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "\nselected: {} of {}\nrejected: {}\n",
            selected.len(),
            commons.len(),
            self.selection.rejected_symbols().join(", ")
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_31_of_37_with_papers_rejections() {
        let study = run(&SelectionStudyConfig::default());
        let selected = study.selection.selected_ids();
        assert_eq!(
            selected.len(),
            31,
            "selected {:?}",
            study.selection.selected_symbols()
        );
        let rejected = study.selection.rejected_symbols();
        // The paper names /s/, /z/ (too weak) and /aa/, /ao/ (too loud).
        for must in ["s", "z", "aa", "ao"] {
            assert!(
                rejected.contains(&must),
                "{must} not rejected: {rejected:?}"
            );
        }
        let text = study.render_text();
        assert!(text.contains("selected: 31 of 37"));
    }
}
