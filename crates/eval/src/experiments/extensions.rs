//! Extension studies beyond the paper's printed evaluation.
//!
//! * **Device comparison** — the paper evaluates both a Fossil Gen 5 and
//!   a Moto 360 but only reports pooled numbers; here each wearable gets
//!   its own row.
//! * **Body-motion robustness** — the defense claims the ≤ 5 Hz crop and
//!   high-pass remove daily-activity interference (0.3–3.5 Hz); this
//!   study injects walking/desk-work motion into the wearer's
//!   accelerometer during conversion and re-measures.
//! * **Brick-wall infeasibility** — the paper argues brick absorbs too
//!   much for the attack to work at all; this study measures how much
//!   attack energy actually reaches the VA per material.

use crate::metrics::DetectionMetrics;
use crate::runner::score_trial;
use crate::scenario::{TrialContext, TrialSettings};
use thrubarrier_acoustics::barrier::{Barrier, BarrierMaterial};
use thrubarrier_acoustics::room::{Room, RoomId};
use thrubarrier_attack::AttackKind;
use thrubarrier_defense::{DefenseMethod, DefenseSystem};
use thrubarrier_vibration::motion::BodyMotion;
use thrubarrier_vibration::Wearable;

/// Configuration shared by the extension studies.
#[derive(Debug, Clone)]
pub struct ExtensionConfig {
    /// Master seed.
    pub seed: u64,
    /// Trials per class per condition.
    pub trials: usize,
}

impl Default for ExtensionConfig {
    fn default() -> Self {
        ExtensionConfig {
            seed: 0xE47,
            trials: 30,
        }
    }
}

/// A labelled metrics row.
#[derive(Debug, Clone)]
pub struct ConditionRow {
    /// Condition label.
    pub label: String,
    /// Full-system metrics under the condition.
    pub metrics: DetectionMetrics,
}

fn evaluate_with_system(cfg: &ExtensionConfig, system: &DefenseSystem) -> DetectionMetrics {
    let mut ctx = TrialContext::seeded(cfg.seed);
    let mut legit = Vec::new();
    let mut attack = Vec::new();
    for i in 0..cfg.trials {
        ctx.settings.attack_spl_db = [65.0, 75.0, 85.0][i % 3];
        ctx.settings.user_to_va_m = [1.0, 2.0, 3.0][i % 3];
        let l = ctx.legitimate_trial();
        let a = ctx.attack_trial(AttackKind::Replay);
        let full = DefenseMethod::all()
            .iter()
            .position(|m| *m == DefenseMethod::Full)
            .expect("full present");
        legit.push(score_trial(&l, cfg.seed ^ (i as u64), system)[full]);
        attack.push(score_trial(&a, cfg.seed ^ (0x8000 + i as u64), system)[full]);
    }
    DetectionMetrics::from_scores(&legit, &attack)
}

/// Compares the two evaluated wearables.
pub fn run_device_comparison(cfg: &ExtensionConfig) -> Vec<ConditionRow> {
    [Wearable::fossil_gen_5(), Wearable::moto_360()]
        .into_iter()
        .map(|wearable| {
            let mut system = DefenseSystem::paper_default();
            let label = wearable.name.to_string();
            system.wearable = wearable;
            ConditionRow {
                label,
                metrics: evaluate_with_system(cfg, &system),
            }
        })
        .collect()
}

/// Measures robustness to wearer motion during cross-domain sensing.
pub fn run_body_motion_study(cfg: &ExtensionConfig) -> Vec<ConditionRow> {
    [
        ("still", None),
        ("desk work", Some(BodyMotion::desk_work())),
        ("walking", Some(BodyMotion::walking())),
    ]
    .into_iter()
    .map(|(label, motion)| {
        let mut system = DefenseSystem::paper_default();
        if let Some(m) = motion {
            system.wearable = Wearable::fossil_gen_5().with_body_motion(m);
        }
        ConditionRow {
            label: label.to_string(),
            metrics: evaluate_with_system(cfg, &system),
        }
    })
    .collect()
}

/// Attack level actually reaching the VA per barrier material, relative
/// to the level without any barrier (dB).
pub fn run_material_feasibility(cfg: &ExtensionConfig) -> Vec<(BarrierMaterial, f32)> {
    let materials = [
        BarrierMaterial::GlassWindow,
        BarrierMaterial::GlassWall,
        BarrierMaterial::WoodenDoor,
        BarrierMaterial::BrickWall,
    ];
    materials
        .into_iter()
        .map(|material| {
            let mut ctx = TrialContext::seeded(cfg.seed);
            let mut room = Room::paper_room(RoomId::A);
            room.barrier = Barrier::new(material);
            ctx.settings = TrialSettings {
                room,
                attack_spl_db: 75.0,
                ..Default::default()
            };
            let through = ctx.attack_trial(AttackKind::Replay);
            // The same attack without a barrier (direct path).
            let mut ctx_direct = TrialContext::seeded(cfg.seed);
            ctx_direct.settings.attack_spl_db = 75.0;
            let mut direct_trial = ctx_direct.attack_trial(AttackKind::Replay);
            // Rebuild the direct reference by re-recording without the
            // barrier: approximate by the legitimate path at the same
            // distance (loudspeaker differences are second-order here).
            direct_trial.va_recording = ctx_direct.legitimate_trial().va_recording;
            let drop_db = 20.0
                * (through.va_recording.rms() / direct_trial.va_recording.rms().max(1e-9)).log10();
            (material, drop_db)
        })
        .collect()
}

/// Success probability of a k-attempt attack campaign: the paper notes
/// the adversary "can achieve a considerable increase in the success
/// probability if he/she repeats the attack". With the defense at a
/// fixed threshold, a campaign succeeds if ANY attempt scores above it.
pub fn run_repeated_attack_study(cfg: &ExtensionConfig, attempts: &[usize]) -> Vec<(usize, f32)> {
    let system = DefenseSystem::paper_default();
    let mut ctx = TrialContext::seeded(cfg.seed ^ 0x5EB);
    // Per-attempt bypass indicator stream.
    let mut bypasses = Vec::new();
    for i in 0..cfg.trials.max(20) * attempts.iter().max().copied().unwrap_or(1) {
        ctx.settings.attack_spl_db = [65.0, 75.0, 85.0][i % 3];
        let t = ctx.attack_trial(AttackKind::Replay);
        let full = DefenseMethod::all()
            .iter()
            .position(|m| *m == DefenseMethod::Full)
            .expect("full present");
        let score = score_trial(&t, cfg.seed ^ (0x9999 + i as u64), &system)[full];
        bypasses.push(!system.is_attack(score));
    }
    attempts
        .iter()
        .map(|&k| {
            // Group consecutive attempts into campaigns of size k.
            let campaigns = bypasses.chunks(k).filter(|c| c.len() == k);
            let (mut wins, mut total) = (0usize, 0usize);
            for c in campaigns {
                total += 1;
                if c.iter().any(|&b| b) {
                    wins += 1;
                }
            }
            (k, wins as f32 / total.max(1) as f32)
        })
        .collect()
}

/// Renders the three extension studies.
pub fn render_all(cfg: &ExtensionConfig) -> String {
    let mut out = String::from("Extension studies\n\nDevice comparison (replay attack):\n");
    for row in run_device_comparison(cfg) {
        out.push_str(&format!(
            "  {:<14} AUC {:.3}  EER {:.1}%\n",
            row.label,
            row.metrics.auc,
            row.metrics.eer * 100.0
        ));
    }
    out.push_str("\nBody-motion robustness (replay attack):\n");
    for row in run_body_motion_study(cfg) {
        out.push_str(&format!(
            "  {:<14} AUC {:.3}  EER {:.1}%\n",
            row.label,
            row.metrics.auc,
            row.metrics.eer * 100.0
        ));
    }
    out.push_str("\nAttack level reaching the VA relative to no barrier:\n");
    for (material, drop_db) in run_material_feasibility(cfg) {
        out.push_str(&format!("  {:<14} {:+.1} dB\n", material.name(), drop_db));
    }
    out.push_str("\nRepeated-attack campaigns bypassing the defense (threshold 0.5):\n");
    for (k, p) in run_repeated_attack_study(cfg, &[1, 2, 3]) {
        out.push_str(&format!("  {k} attempt(s): {:.1}%\n", p * 100.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExtensionConfig {
        ExtensionConfig {
            trials: 10,
            ..Default::default()
        }
    }

    #[test]
    fn both_devices_detect_attacks() {
        for row in run_device_comparison(&tiny()) {
            assert!(row.metrics.auc > 0.8, "{}: {}", row.label, row.metrics.auc);
        }
    }

    #[test]
    fn motion_does_not_break_detection() {
        let rows = run_body_motion_study(&tiny());
        let still = rows[0].metrics.auc;
        let walking = rows[2].metrics.auc;
        // The crop + high-pass keep the degradation bounded.
        assert!(walking > still - 0.15, "walking {walking} vs still {still}");
    }

    #[test]
    fn repeated_attacks_never_reduce_success() {
        let rows = run_repeated_attack_study(&tiny(), &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].1 >= rows[0].1 - 1e-6, "{rows:?}");
        assert!(rows.iter().all(|(_, p)| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn brick_absorbs_most() {
        let rows = run_material_feasibility(&tiny());
        let glass = rows
            .iter()
            .find(|(m, _)| *m == BarrierMaterial::GlassWindow)
            .unwrap()
            .1;
        let brick = rows
            .iter()
            .find(|(m, _)| *m == BarrierMaterial::BrickWall)
            .unwrap()
            .1;
        assert!(brick < glass - 8.0, "glass {glass} dB vs brick {brick} dB");
    }
}
