//! Fig. 4: the same phoneme sounds in the **vibration** domain.
//!
//! The point of the figure: after cross-domain conversion, the
//! post-barrier vowel /ae/ and the pre-barrier consonant /v/ — which are
//! confusable in the audio domain (Fig. 3) — become distinguishable,
//! because the accelerometer attenuates the shared low-frequency band
//! and aliases in the high-frequency band only the *user-side* sound
//! still has.

use crate::experiments::fig3::{BarrierEffectConfig, MagnitudeCurves};
use rand::rngs::StdRng;
use rand::SeedableRng;
use thrubarrier_acoustics::loudspeaker::Loudspeaker;
use thrubarrier_acoustics::mic::Microphone;
use thrubarrier_acoustics::propagation::speech_gain_for_spl;
use thrubarrier_acoustics::room::{Room, RoomId};
use thrubarrier_acoustics::scene::AcousticPath;
use thrubarrier_defense::selection::vibration_magnitude_spectrum;
use thrubarrier_phoneme::corpus::{phoneme_samples, speaker_panel};
use thrubarrier_phoneme::inventory::Inventory;
use thrubarrier_phoneme::synth::Synthesizer;
use thrubarrier_vibration::Wearable;

/// Result of the Fig. 4 experiment.
#[derive(Debug, Clone)]
pub struct VibrationEffectStudy {
    /// One curve pair per phoneme (frequency axis: 0–100 Hz).
    pub curves: Vec<MagnitudeCurves>,
}

/// Runs the Fig. 4 experiment (vibration domain, Fossil Gen 5).
pub fn run(cfg: &BarrierEffectConfig) -> VibrationEffectStudy {
    let fs = 16_000u32;
    let n_fft = 64usize;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF4);
    let panel = speaker_panel(5, 5, &mut rng);
    let synth = Synthesizer::new(fs);
    let wearable = Wearable::fossil_gen_5();
    let room = Room::paper_room(RoomId::A);
    let mic = Microphone::wearable();
    let speaker_device = Loudspeaker::sound_bar();
    let gain = speech_gain_for_spl(cfg.spl_db);
    let min_samples = (0.32 * fs as f32) as usize;
    let curves = cfg
        .phonemes
        .iter()
        .map(|sym| {
            let id = Inventory::by_symbol(sym).unwrap_or_else(|| panic!("unknown phoneme {sym}"));
            let raw = phoneme_samples(&synth, id, cfg.samples_per_phoneme, &panel, &mut rng);
            let mut before_acc = vec![0.0f32; n_fft / 2 + 1];
            let mut after_acc = vec![0.0f32; n_fft / 2 + 1];
            for s in &raw {
                let mut seg = s.clone();
                while seg.len() < min_samples {
                    seg.extend_from_slice(s);
                }
                let calibrated: Vec<f32> = seg.iter().map(|&x| x * gain).collect();
                let before_path = AcousticPath {
                    room: room.clone(),
                    through_barrier: false,
                    distance_m: 0.5,
                    loudspeaker: Some(speaker_device),
                    render: Default::default(),
                };
                let after_path = AcousticPath {
                    room: room.clone(),
                    through_barrier: true,
                    distance_m: 2.0,
                    loudspeaker: Some(speaker_device),
                    render: Default::default(),
                };
                let before = before_path.record(&calibrated, fs, &mic, &mut rng);
                let after = after_path.record(&calibrated, fs, &mic, &mut rng);
                let vib_before = wearable.convert(before.samples(), fs, &mut rng);
                let vib_after = wearable.convert(after.samples(), fs, &mut rng);
                for (a, m) in before_acc
                    .iter_mut()
                    .zip(vibration_magnitude_spectrum(&vib_before, n_fft))
                {
                    *a += m;
                }
                for (a, m) in after_acc
                    .iter_mut()
                    .zip(vibration_magnitude_spectrum(&vib_after, n_fft))
                {
                    *a += m;
                }
            }
            let n = raw.len() as f32;
            for v in before_acc.iter_mut().chain(after_acc.iter_mut()) {
                *v /= n;
            }
            let bin_hz = wearable.accelerometer.sample_rate as f32 / n_fft as f32;
            MagnitudeCurves {
                symbol: sym,
                frequencies: (0..=n_fft / 2).map(|b| b as f32 * bin_hz).collect(),
                before: before_acc,
                after: after_acc,
            }
        })
        .collect();
    VibrationEffectStudy { curves }
}

impl VibrationEffectStudy {
    /// Renders the 20–80 Hz band the paper plots.
    pub fn render_text(&self) -> String {
        let mut out =
            String::from("Fig. 4 — vibration-domain FFT magnitude before/after barrier\n");
        for c in &self.curves {
            out.push_str(&format!("/{}/:\n  f(Hz): ", c.symbol));
            for (b, f) in c.frequencies.iter().enumerate() {
                if (20.0..=80.0).contains(f) && b % 2 == 0 {
                    out.push_str(&format!("{f:>8.1}"));
                }
            }
            out.push_str("\n  before:");
            for (b, f) in c.frequencies.iter().enumerate() {
                if (20.0..=80.0).contains(f) && b % 2 == 0 {
                    out.push_str(&format!("{:>8.4}", c.before[b]));
                }
            }
            out.push_str("\n  after: ");
            for (b, f) in c.frequencies.iter().enumerate() {
                if (20.0..=80.0).contains(f) && b % 2 == 0 {
                    out.push_str(&format!("{:>8.4}", c.after[b]));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Mean 20–80 Hz magnitude of a curve (`before = true` selects the
    /// no-barrier condition).
    pub fn band_mean(&self, symbol: &str, before: bool) -> f32 {
        let c = self
            .curves
            .iter()
            .find(|c| c.symbol == symbol)
            .expect("phoneme present");
        if before {
            c.before_band_mean(20.0, 80.0)
        } else {
            c.after_band_mean(20.0, 80.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> VibrationEffectStudy {
        run(&BarrierEffectConfig {
            samples_per_phoneme: 6,
            ..Default::default()
        })
    }

    #[test]
    fn vowel_after_barrier_is_distinguishable_from_consonant_before() {
        // Fig. 4's point: in the vibration domain, /ae/-after-barrier is
        // clearly WEAKER than /v/-before-barrier (they were confusable
        // in the audio domain).
        let study = quick();
        let ae_after = study.band_mean("ae", false);
        let v_before = study.band_mean("v", true);
        assert!(
            v_before > 1.5 * ae_after,
            "v-before {v_before} vs ae-after {ae_after}"
        );
    }

    #[test]
    fn conversion_suppresses_post_barrier_vowel() {
        let study = quick();
        let ae_before = study.band_mean("ae", true);
        let ae_after = study.band_mean("ae", false);
        assert!(
            ae_before > 3.0 * ae_after,
            "before {ae_before} after {ae_after}"
        );
    }

    #[test]
    fn render_mentions_frequencies() {
        assert!(quick().render_text().contains("f(Hz)"));
    }
}
