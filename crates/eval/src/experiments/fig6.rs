//! Fig. 6: the phoneme-selection criteria illustrated on /er/.
//!
//! The paper plots the third-quartile vibration FFT magnitude of /er/
//! with and without the barrier against the threshold α: the
//! post-barrier curve must stay entirely *below* α (Criterion I) and the
//! no-barrier curve entirely *above* it (Criterion II).

use rand::rngs::StdRng;
use rand::SeedableRng;
use thrubarrier_defense::selection::{run_selection, PhonemeStats, SelectionConfig};
use thrubarrier_phoneme::corpus::speaker_panel;
use thrubarrier_vibration::Wearable;

/// Configuration for the Fig. 6 demonstration.
#[derive(Debug, Clone)]
pub struct CriteriaDemoConfig {
    /// Master seed.
    pub seed: u64,
    /// The phoneme to demonstrate (paper: /er/).
    pub symbol: &'static str,
    /// Segments per phoneme.
    pub samples_per_phoneme: usize,
}

impl Default for CriteriaDemoConfig {
    fn default() -> Self {
        CriteriaDemoConfig {
            seed: 0xF6,
            symbol: "er",
            samples_per_phoneme: 24,
        }
    }
}

/// Result of the Fig. 6 demonstration.
#[derive(Debug, Clone)]
pub struct CriteriaDemo {
    /// Statistics for the demonstrated phoneme.
    pub stats: PhonemeStats,
    /// Frequency axis in Hz.
    pub frequencies: Vec<f32>,
    /// The threshold α.
    pub alpha: f32,
}

/// Runs the Fig. 6 demonstration.
pub fn run(cfg: &CriteriaDemoConfig) -> CriteriaDemo {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let panel = speaker_panel(5, 5, &mut rng);
    let sel_cfg = SelectionConfig {
        samples_per_phoneme: cfg.samples_per_phoneme,
        ..Default::default()
    };
    let selection = run_selection(&sel_cfg, &Wearable::fossil_gen_5(), &panel, &mut rng);
    let stats = selection
        .stats_for(cfg.symbol)
        .unwrap_or_else(|| panic!("phoneme {} not in common set", cfg.symbol))
        .clone();
    CriteriaDemo {
        stats,
        frequencies: selection.bin_frequencies,
        alpha: selection.alpha,
    }
}

impl CriteriaDemo {
    /// Renders the two Q3 curves against α.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "Fig. 6 — Q3 vibration FFT magnitude of /{}/ vs alpha = {}\n",
            self.stats.symbol, self.alpha
        );
        out.push_str("  f(Hz)    with barrier   without barrier\n");
        for (b, f) in self.frequencies.iter().enumerate() {
            if *f < 6.0 || b % 2 == 1 {
                continue; // skip the artifact band and thin the table
            }
            out.push_str(&format!(
                "  {f:>6.2}   {:>12.5}   {:>15.5}\n",
                self.stats.q3_adv[b], self.stats.q3_user[b]
            ));
        }
        out.push_str(&format!(
            "criterion I (max adv < alpha): {}\ncriterion II (min user > alpha): {}\n",
            self.stats.passes_criterion_1, self.stats.passes_criterion_2
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_satisfies_both_criteria() {
        let demo = run(&CriteriaDemoConfig {
            samples_per_phoneme: 10,
            ..Default::default()
        });
        assert!(demo.stats.passes_criterion_1, "criterion I");
        assert!(demo.stats.passes_criterion_2, "criterion II");
        assert!((demo.alpha - 0.015).abs() < 1e-6);
        let text = demo.render_text();
        assert!(text.contains("/er/"));
    }
}
