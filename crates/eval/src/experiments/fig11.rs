//! Fig. 11: EER under real-world impact factors.
//!
//! * **11a** — replay-attack EER vs. attack volume {65, 75, 85 dB} for
//!   all three methods (paper: full system < 3.2 % at 65/75 dB; the
//!   audio baseline degrades badly at 85 dB, 29.5 % EER).
//! * **11b** — EER by barrier material {wood, glass} × 4 attacks
//!   (paper: all < 4.2 %, similar across materials).
//! * **11c** — EER by barrier-to-VA distance {3, 4, 5 m} × 4 attacks
//!   (paper: < 4.6 %, slightly worse at 5 m).
//! * **11d** — EER by room {A, B, C, D} × 4 attacks (paper: < 5 %;
//!   hidden voice near 0 %).

use crate::experiments::common::{pct, scaled};
use crate::runner::{Runner, RunnerConfig, SelectorChoice};
use crate::scenario::TrialSettings;
use std::sync::Arc;
use thrubarrier_acoustics::room::{Room, RoomId};
use thrubarrier_attack::AttackKind;
use thrubarrier_defense::segmentation::SegmentSelector;
use thrubarrier_defense::DefenseMethod;

/// Configuration shared by the four Fig. 11 panels.
#[derive(Debug, Clone)]
pub struct ImpactStudyConfig {
    /// Master seed.
    pub seed: u64,
    /// Trial-count scale.
    pub scale: f32,
    /// Segment selector.
    pub selector: SelectorChoice,
    /// Worker threads.
    pub threads: usize,
}

impl Default for ImpactStudyConfig {
    fn default() -> Self {
        ImpactStudyConfig {
            seed: 0xF11,
            scale: 0.05,
            selector: SelectorChoice::Brnn {
                corpus_size: 80,
                epochs: 3,
                hidden: 48,
            },
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

/// One labelled series of EER values.
#[derive(Debug, Clone)]
pub struct EerSeries {
    /// Series label (method or attack kind).
    pub label: String,
    /// `(condition label, EER)` pairs.
    pub points: Vec<(String, f32)>,
}

/// Result of one Fig. 11 panel.
#[derive(Debug, Clone)]
pub struct ImpactPanel {
    /// Panel title.
    pub title: String,
    /// The series.
    pub series: Vec<EerSeries>,
}

impl ImpactPanel {
    /// Renders the panel as text rows.
    pub fn render_text(&self) -> String {
        let mut out = format!("{}\n", self.title);
        for s in &self.series {
            out.push_str(&format!("  {:<28}", s.label));
            for (cond, eer) in &s.points {
                out.push_str(&format!(" {}={}", cond, pct(*eer)));
            }
            out.push('\n');
        }
        out
    }
}

fn base_runner(
    cfg: &ImpactStudyConfig,
    settings: Vec<TrialSettings>,
    kinds: Vec<AttackKind>,
) -> RunnerConfig {
    RunnerConfig {
        seed: cfg.seed,
        participants: scaled(8, cfg.scale.sqrt()).clamp(4, 20),
        commands_per_user: scaled(60, cfg.scale).max(2),
        attacks_per_kind: scaled(1_200, cfg.scale),
        attack_kinds: kinds,
        settings,
        selector: cfg.selector,
        threads: cfg.threads,
        batch_size: 8,
    }
}

fn all_rooms_settings(f: impl Fn(&mut TrialSettings)) -> Vec<TrialSettings> {
    RoomId::all()
        .into_iter()
        .flat_map(|room| {
            [(1.0, 75.0), (2.0, 70.0), (3.0, 65.0)].map(|(d, spl)| {
                let mut t = TrialSettings {
                    room: Room::paper_room(room),
                    user_to_va_m: d,
                    user_spl_db: spl,
                    ..Default::default()
                };
                f(&mut t);
                t
            })
        })
        .collect()
}

/// Fig. 11a: replay-attack EER vs. attack volume, one series per method.
pub fn run_fig11a(cfg: &ImpactStudyConfig, selector: Arc<dyn SegmentSelector>) -> ImpactPanel {
    let mut series: Vec<EerSeries> = DefenseMethod::all()
        .into_iter()
        .map(|m| EerSeries {
            label: m.label().to_string(),
            points: Vec::new(),
        })
        .collect();
    for spl in [65.0f32, 75.0, 85.0] {
        let settings = all_rooms_settings(|t| t.attack_spl_db = spl);
        let runner = Runner::new(base_runner(cfg, settings, vec![AttackKind::Replay]));
        let outcome = runner.run_with_selector(selector.clone(), Vec::new());
        for (i, m) in DefenseMethod::all().into_iter().enumerate() {
            let eer = outcome.pool(m).metrics_of(AttackKind::Replay).eer;
            series[i].points.push((format!("{spl:.0}dB"), eer));
        }
    }
    ImpactPanel {
        title: "Fig. 11a — EER vs attack sound volume (replay attack)".into(),
        series,
    }
}

/// Helper for panels 11b–d: EER per attack kind under a set of named
/// conditions.
fn attack_kind_panel(
    cfg: &ImpactStudyConfig,
    selector: Arc<dyn SegmentSelector>,
    title: &str,
    conditions: Vec<(String, Vec<TrialSettings>)>,
) -> ImpactPanel {
    let kinds = AttackKind::all().to_vec();
    let mut series: Vec<EerSeries> = kinds
        .iter()
        .map(|k| EerSeries {
            label: k.name().to_string(),
            points: Vec::new(),
        })
        .collect();
    for (cond, settings) in conditions {
        let runner = Runner::new(base_runner(cfg, settings, kinds.clone()));
        let outcome = runner.run_with_selector(selector.clone(), Vec::new());
        for (i, &kind) in kinds.iter().enumerate() {
            let eer = outcome.pool(DefenseMethod::Full).metrics_of(kind).eer;
            series[i].points.push((cond.clone(), eer));
        }
    }
    ImpactPanel {
        title: title.into(),
        series,
    }
}

/// Fig. 11b: EER by barrier material (wood = rooms B, C; glass = rooms
/// A, D).
pub fn run_fig11b(cfg: &ImpactStudyConfig, selector: Arc<dyn SegmentSelector>) -> ImpactPanel {
    let wood: Vec<TrialSettings> = all_rooms_settings(|_| {})
        .into_iter()
        .filter(|t| !t.room.barrier.material.is_glass())
        .collect();
    let glass: Vec<TrialSettings> = all_rooms_settings(|_| {})
        .into_iter()
        .filter(|t| t.room.barrier.material.is_glass())
        .collect();
    attack_kind_panel(
        cfg,
        selector,
        "Fig. 11b — EER by barrier material (full system)",
        vec![("Wood".into(), wood), ("Glass".into(), glass)],
    )
}

/// Fig. 11c: EER by barrier-to-VA distance (3, 4, 5 m;
/// barrier-to-wearable fixed at 2 m). The legitimate user stands at the
/// same distance from the VA, reproducing the paper's observation that
/// 5 m slightly degrades the user's own recordings.
pub fn run_fig11c(cfg: &ImpactStudyConfig, selector: Arc<dyn SegmentSelector>) -> ImpactPanel {
    let conditions = [3.0f32, 4.0, 5.0]
        .into_iter()
        .map(|d| {
            let settings = all_rooms_settings(|t| {
                t.barrier_to_va_m = d;
                t.barrier_to_wearable_m = 2.0;
                t.user_to_va_m = d - 2.0 + 1.0; // user further when VA is further
            });
            (format!("{d:.0}m"), settings)
        })
        .collect();
    attack_kind_panel(
        cfg,
        selector,
        "Fig. 11c — EER by barrier-to-VA distance (full system)",
        conditions,
    )
}

/// Fig. 11d: EER by room environment.
pub fn run_fig11d(cfg: &ImpactStudyConfig, selector: Arc<dyn SegmentSelector>) -> ImpactPanel {
    let conditions = RoomId::all()
        .into_iter()
        .map(|room| {
            let settings: Vec<TrialSettings> = all_rooms_settings(|_| {})
                .into_iter()
                .filter(|t| t.room.id == room)
                .collect();
            (room.to_string(), settings)
        })
        .collect();
    attack_kind_panel(
        cfg,
        selector,
        "Fig. 11d — EER by room environment (full system)",
        conditions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use thrubarrier_defense::segmentation::EnergySelector;

    fn tiny_cfg() -> ImpactStudyConfig {
        ImpactStudyConfig {
            scale: 0.008,
            selector: SelectorChoice::Energy,
            ..Default::default()
        }
    }

    #[test]
    fn fig11a_produces_three_levels_per_method() {
        let cfg = tiny_cfg();
        let panel = run_fig11a(&cfg, Arc::new(EnergySelector::default()));
        assert_eq!(panel.series.len(), 3);
        for s in &panel.series {
            assert_eq!(s.points.len(), 3);
            assert!(s.points.iter().all(|(_, e)| (0.0..=1.0).contains(e)));
        }
        assert!(panel.render_text().contains("65dB"));
    }

    #[test]
    fn fig11b_covers_both_materials() {
        let cfg = tiny_cfg();
        let panel = run_fig11b(&cfg, Arc::new(EnergySelector::default()));
        assert_eq!(panel.series.len(), 4);
        assert_eq!(panel.series[0].points.len(), 2);
    }

    #[test]
    fn fig11d_covers_four_rooms() {
        let cfg = tiny_cfg();
        let panel = run_fig11d(&cfg, Arc::new(EnergySelector::default()));
        assert_eq!(panel.series[0].points.len(), 4);
    }
}
