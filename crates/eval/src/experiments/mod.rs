//! One driver per table/figure of the paper's evaluation.
//!
//! Every driver follows the same shape: a `*Config` with a `scale` knob
//! (1.0 ≈ paper-scale trial counts; the defaults are smaller for laptop
//! runtimes), a `run` function returning a structured result, and a
//! `render_text` method producing the rows/series the paper reports.

pub mod ablation;
pub mod architectures;
pub mod common;
pub mod extensions;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig9;
pub mod naive_baseline;
pub mod phoneme_detection;
pub mod table1;
pub mod table2;
