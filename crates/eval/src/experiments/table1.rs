//! Table I: the thru-barrier attack study against commercial VA devices.
//!
//! Four devices (Google Home, Alexa Echo, MacBook Pro, iPhone) are
//! attacked with their wake words from behind a glass window and a
//! wooden door at 65 and 75 dB, 10 attempts each. Random and
//! voice-synthesis attacks are not applicable to the Siri devices
//! (speaker verification rejects unknown voices — the paper marks them
//! "-"), and the hidden-voice row exists only for Google Home.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thrubarrier_acoustics::barrier::BarrierMaterial;
use thrubarrier_acoustics::room::{Room, RoomId};
use thrubarrier_acoustics::scene::AcousticPath;
use thrubarrier_acoustics::va::{VaDevice, VaModel};
use thrubarrier_attack::{AttackGenerator, AttackKind};
use thrubarrier_phoneme::command::CommandBank;
use thrubarrier_phoneme::speaker::{Sex, SpeakerProfile};
use thrubarrier_phoneme::synth::Synthesizer;

/// Configuration for the attack study.
#[derive(Debug, Clone)]
pub struct AttackStudyConfig {
    /// Master seed.
    pub seed: u64,
    /// Attempts per cell (paper: 10).
    pub attempts: usize,
    /// Attack sound pressure levels (paper: 65 and 75 dB).
    pub spl_levels: Vec<f32>,
    /// Barrier-to-VA distance in metres (paper: 2).
    pub distance_m: f32,
}

impl Default for AttackStudyConfig {
    fn default() -> Self {
        AttackStudyConfig {
            seed: 0x7AB1,
            attempts: 10,
            spl_levels: vec![65.0, 75.0],
            distance_m: 2.0,
        }
    }
}

/// One cell of Table I: successes per SPL level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackCell {
    /// Device attacked.
    pub device: VaModel,
    /// Barrier material.
    pub barrier: BarrierMaterial,
    /// Attack kind.
    pub attack: AttackKind,
    /// Successes out of `attempts`, one entry per SPL level.
    pub successes: Vec<usize>,
    /// Whether the paper reports this cell (false ⇒ rendered as "-").
    pub in_paper: bool,
}

/// Result of the attack study.
#[derive(Debug, Clone)]
pub struct AttackStudy {
    /// All cells.
    pub cells: Vec<AttackCell>,
    /// Attempts per cell.
    pub attempts: usize,
    /// SPL levels evaluated.
    pub spl_levels: Vec<f32>,
}

/// Runs the Table I study.
pub fn run(cfg: &AttackStudyConfig) -> AttackStudy {
    let fs = 16_000u32;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let synth = Synthesizer::new(fs);
    let bank = CommandBank::standard();
    let generator = AttackGenerator::new(fs);
    // The victim enrolled on the Siri devices.
    let victim = SpeakerProfile::random_with_sex(Sex::Male, &mut rng);
    let rooms = [
        (BarrierMaterial::GlassWindow, Room::paper_room(RoomId::A)),
        (BarrierMaterial::WoodenDoor, Room::paper_room(RoomId::B)),
    ];

    let mut cells = Vec::new();
    for model in VaModel::all() {
        let wake = bank
            .by_text(model.wake_word())
            .expect("wake word in command bank");
        // Clean enrolment templates from two reference speakers.
        let templates: Vec<Vec<f32>> = [
            SpeakerProfile::reference_male(),
            SpeakerProfile::reference_female(),
        ]
        .iter()
        .map(|sp| {
            synth
                .synthesize_command(wake, sp, &mut rng)
                .audio
                .into_samples()
        })
        .collect();
        let mut device = VaDevice::paper_device(model, &templates);
        device.enroll_user(victim.f0_hz);

        let attacks = match model {
            VaModel::GoogleHome => vec![
                (AttackKind::Random, true),
                (AttackKind::Replay, true),
                (AttackKind::VoiceSynthesis, true),
                (AttackKind::HiddenVoice, true),
            ],
            VaModel::AlexaEcho => vec![
                (AttackKind::Random, true),
                (AttackKind::Replay, true),
                (AttackKind::VoiceSynthesis, true),
            ],
            VaModel::MacBookPro | VaModel::IPhone => vec![
                (AttackKind::Random, false),
                (AttackKind::Replay, true),
                (AttackKind::VoiceSynthesis, false),
            ],
        };
        for (barrier, room) in &rooms {
            for &(attack, in_paper) in &attacks {
                let mut successes = Vec::with_capacity(cfg.spl_levels.len());
                for &spl in &cfg.spl_levels {
                    let mut hits = 0usize;
                    for _ in 0..cfg.attempts {
                        let adversary = SpeakerProfile::random(&mut rng);
                        let sound = generator.generate(attack, wake, &victim, &adversary, &mut rng);
                        let mut source = sound.samples;
                        let gain = thrubarrier_acoustics::propagation::spl_to_rms(spl)
                            / thrubarrier_dsp::stats::rms(&source).max(1e-9);
                        for v in &mut source {
                            *v *= gain;
                        }
                        let path = AcousticPath {
                            room: room.clone(),
                            through_barrier: true,
                            distance_m: cfg.distance_m,
                            loudspeaker: sound.needs_loudspeaker.then_some(generator.loudspeaker),
                            render: Default::default(),
                        };
                        let incident = {
                            let mut sig = path.transmit_positioned(&source, fs, &mut rng);
                            room.add_ambient_noise(&mut sig, &mut rng);
                            sig
                        };
                        let decision = device.hear(&incident, fs, &mut rng);
                        if decision.triggered {
                            hits += 1;
                        }
                        // Advance the RNG irrespective of the outcome to
                        // decouple attempts.
                        let _ = rng.gen::<u32>();
                    }
                    successes.push(hits);
                }
                cells.push(AttackCell {
                    device: model,
                    barrier: *barrier,
                    attack,
                    successes,
                    in_paper,
                });
            }
        }
    }
    AttackStudy {
        cells,
        attempts: cfg.attempts,
        spl_levels: cfg.spl_levels.clone(),
    }
}

impl AttackStudy {
    /// Looks up one cell.
    pub fn cell(
        &self,
        device: VaModel,
        barrier: BarrierMaterial,
        attack: AttackKind,
    ) -> Option<&AttackCell> {
        self.cells
            .iter()
            .find(|c| c.device == device && c.barrier == barrier && c.attack == attack)
    }

    /// Renders Table I.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "Table I — attack success out of {} attempts ({})\n",
            self.attempts,
            self.spl_levels
                .iter()
                .map(|s| format!("{s:.0} dB"))
                .collect::<Vec<_>>()
                .join("; ")
        );
        for model in VaModel::all() {
            out.push_str(&format!(
                "\n{} (wake word: \"{}\")\n",
                model.name(),
                model.wake_word()
            ));
            for barrier in [BarrierMaterial::GlassWindow, BarrierMaterial::WoodenDoor] {
                out.push_str(&format!("  {}:\n", barrier.name()));
                for attack in AttackKind::all() {
                    if let Some(cell) = self.cell(model, barrier, attack) {
                        let counts = cell
                            .successes
                            .iter()
                            .map(|s| format!("{s}/{}", self.attempts))
                            .collect::<Vec<_>>()
                            .join("; ");
                        if cell.in_paper {
                            out.push_str(&format!("    {:<24} {counts}\n", attack.name()));
                        } else {
                            out.push_str(&format!(
                                "    {:<24} -  (measured: {counts})\n",
                                attack.name()
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> AttackStudy {
        run(&AttackStudyConfig {
            attempts: 6,
            ..Default::default()
        })
    }

    #[test]
    fn louder_attacks_succeed_at_least_as_often_in_aggregate() {
        let study = quick();
        // Per-cell counts carry sampling noise at 6-10 attempts; the
        // volume effect must hold in aggregate and not reverse badly in
        // any single cell.
        let mut quiet = 0usize;
        let mut loud = 0usize;
        for cell in &study.cells {
            quiet += cell.successes[0];
            loud += cell.successes[1];
            assert!(
                cell.successes[1] + 2 >= cell.successes[0],
                "{:?}/{:?}/{:?}: {:?}",
                cell.device,
                cell.barrier,
                cell.attack,
                cell.successes
            );
        }
        assert!(loud > quiet, "louder {loud} vs quieter {quiet}");
    }

    #[test]
    fn smart_speakers_are_more_susceptible_than_iphone() {
        let study = quick();
        let google: usize = study
            .cells
            .iter()
            .filter(|c| c.device == VaModel::GoogleHome && c.attack == AttackKind::Replay)
            .map(|c| c.successes.iter().sum::<usize>())
            .sum();
        let iphone: usize = study
            .cells
            .iter()
            .filter(|c| c.device == VaModel::IPhone && c.attack == AttackKind::Replay)
            .map(|c| c.successes.iter().sum::<usize>())
            .sum();
        assert!(google > iphone, "google {google} vs iphone {iphone}");
    }

    #[test]
    fn replay_beats_random_on_siri_devices() {
        // Speaker verification rejects the adversary's own voice.
        let study = quick();
        for barrier in [BarrierMaterial::GlassWindow, BarrierMaterial::WoodenDoor] {
            let random = study
                .cell(VaModel::MacBookPro, barrier, AttackKind::Random)
                .unwrap();
            let replay = study
                .cell(VaModel::MacBookPro, barrier, AttackKind::Replay)
                .unwrap();
            assert!(
                replay.successes.iter().sum::<usize>() >= random.successes.iter().sum::<usize>()
            );
            assert!(!random.in_paper);
        }
    }

    #[test]
    fn render_marks_untested_cells() {
        let text = quick().render_text();
        assert!(text.contains("-  (measured"));
        assert!(text.contains("Google Home"));
    }
}
