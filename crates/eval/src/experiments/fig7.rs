//! Fig. 7: vibration response of the wearable's accelerometer to a
//! 500–2500 Hz audio chirp — the strong 0–5 Hz sensitivity artifact that
//! motivates the spectrogram crop.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thrubarrier_vibration::chirp::{chirp_response, ChirpResponse};
use thrubarrier_vibration::Wearable;

/// Configuration for the chirp-response experiment.
#[derive(Debug, Clone)]
pub struct ChirpStudyConfig {
    /// Master seed.
    pub seed: u64,
    /// Chirp start frequency in Hz (paper: 500).
    pub f0: f32,
    /// Chirp end frequency in Hz (paper: 2500).
    pub f1: f32,
    /// Chirp duration in seconds.
    pub duration_s: f32,
    /// Chirp amplitude (digital full scale).
    pub amplitude: f32,
}

impl Default for ChirpStudyConfig {
    fn default() -> Self {
        ChirpStudyConfig {
            seed: 0xF7,
            f0: 500.0,
            f1: 2_500.0,
            duration_s: 4.0,
            amplitude: 0.2,
        }
    }
}

/// Result of the chirp study.
#[derive(Debug, Clone)]
pub struct ChirpStudy {
    /// The captured response.
    pub response: ChirpResponse,
}

/// Runs the Fig. 7 experiment on a Fossil Gen 5.
pub fn run(cfg: &ChirpStudyConfig) -> ChirpStudy {
    let wearable = Wearable::fossil_gen_5();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let response = chirp_response(
        &wearable,
        cfg.f0,
        cfg.f1,
        cfg.duration_s,
        cfg.amplitude,
        &mut rng,
    );
    ChirpStudy { response }
}

impl ChirpStudy {
    /// Renders the band powers and a per-band spectrogram summary.
    pub fn render_text(&self) -> String {
        let r = &self.response;
        let mut out = format!(
            "Fig. 7 — accelerometer response to a 500-2500 Hz chirp\n\
             mean power 0-5 Hz: {:.6}\nmean power 5-100 Hz: {:.6}\nratio: {:.1}x\n",
            r.low_band_power,
            r.rest_band_power,
            r.low_band_power / r.rest_band_power.max(1e-12)
        );
        out.push_str("per-band mean power: ");
        let spec = &r.spectrogram;
        let mean = spec.mean_per_bin();
        for (lo, hi) in [
            (0.0, 5.0),
            (5.0, 25.0),
            (25.0, 50.0),
            (50.0, 75.0),
            (75.0, 100.1),
        ] {
            let vals: Vec<f32> = mean
                .iter()
                .enumerate()
                .filter(|(b, _)| {
                    let f = spec.bin_frequency(*b);
                    f >= lo && f < hi
                })
                .map(|(_, &v)| v)
                .collect();
            let avg = vals.iter().sum::<f32>() / vals.len().max(1) as f32;
            out.push_str(&format!("[{lo:.0}-{hi:.0} Hz]={avg:.6} "));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_band_dominates() {
        let study = run(&ChirpStudyConfig::default());
        assert!(
            study.response.low_band_power > 5.0 * study.response.rest_band_power,
            "low {} rest {}",
            study.response.low_band_power,
            study.response.rest_band_power
        );
        assert!(study.render_text().contains("ratio"));
    }
}
