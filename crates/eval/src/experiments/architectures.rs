//! Detector-architecture comparison: bidirectional LSTM vs. GRU.
//!
//! The paper chooses LSTM units for its BRNN, citing a comparative
//! speech study (its reference [21]) that finds LSTM and GRU close.
//! This experiment trains both architectures on the same synthesized
//! corpus and labels and reports frame accuracy — reproducing that
//! design-choice check within the workspace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use thrubarrier_dsp::mel::MfccExtractor;
use thrubarrier_nn::dense::Dense;
use thrubarrier_nn::gru::BiGru;
use thrubarrier_nn::loss;
use thrubarrier_nn::lstm::BiLstm;
use thrubarrier_nn::param::AdamConfig;
use thrubarrier_phoneme::common::common_phonemes;
use thrubarrier_phoneme::corpus::{frame_labels, speaker_panel, training_corpus};
use thrubarrier_phoneme::inventory::PhonemeId;
use thrubarrier_phoneme::synth::Synthesizer;

/// Configuration for the architecture comparison.
#[derive(Debug, Clone)]
pub struct ArchitectureStudyConfig {
    /// Master seed.
    pub seed: u64,
    /// Training utterances.
    pub corpus_size: usize,
    /// Held-out test utterances.
    pub test_size: usize,
    /// Hidden units per direction.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for ArchitectureStudyConfig {
    fn default() -> Self {
        ArchitectureStudyConfig {
            seed: 0xA2C4,
            corpus_size: 60,
            test_size: 20,
            hidden: 32,
            epochs: 3,
        }
    }
}

/// Accuracy of one architecture.
#[derive(Debug, Clone)]
pub struct ArchitectureRow {
    /// Architecture name.
    pub name: &'static str,
    /// Held-out frame accuracy.
    pub accuracy: f32,
    /// Trainable parameter count.
    pub parameters: usize,
}

/// Result of the architecture comparison.
#[derive(Debug, Clone)]
pub struct ArchitectureStudy {
    /// One row per architecture.
    pub rows: Vec<ArchitectureRow>,
}

enum Recurrent {
    Lstm(BiLstm),
    Gru(BiGru),
}

impl Recurrent {
    fn forward_states(&self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        match self {
            Recurrent::Lstm(m) => m.forward(xs).0,
            Recurrent::Gru(m) => m.forward(xs).0,
        }
    }

    fn parameter_count(&self) -> usize {
        let count = |rows: usize, cols: usize| rows * cols;
        match self {
            Recurrent::Lstm(m) => {
                2 * (count(m.fwd.w.value.rows(), m.fwd.w.value.cols())
                    + count(m.fwd.u.value.rows(), m.fwd.u.value.cols())
                    + m.fwd.b.value.rows())
            }
            Recurrent::Gru(m) => {
                2 * (count(m.fwd.w.value.rows(), m.fwd.w.value.cols())
                    + count(m.fwd.u.value.rows(), m.fwd.u.value.cols())
                    + m.fwd.b.value.rows())
            }
        }
    }

    /// One training step over a batch; returns the mean loss.
    fn train_step(
        &mut self,
        head: &mut Dense,
        batch: &[(&[Vec<f32>], &[usize])],
        cfg: &AdamConfig,
        step: u64,
    ) -> f32 {
        match self {
            Recurrent::Lstm(m) => {
                for p in m.params_mut() {
                    p.zero_grad();
                }
            }
            Recurrent::Gru(m) => {
                for p in m.params_mut() {
                    p.zero_grad();
                }
            }
        }
        for p in head.params_mut() {
            p.zero_grad();
        }
        let mut total = 0.0f32;
        let scale = 1.0 / batch.len().max(1) as f32;
        for (xs, ys) in batch {
            if xs.is_empty() {
                continue;
            }
            match self {
                Recurrent::Lstm(m) => {
                    let (hs, cache) = m.forward(xs);
                    let (logits, head_cache) = head.forward(&hs);
                    let (l, mut dl) = loss::sequence_cross_entropy(&logits, ys);
                    total += l;
                    for f in &mut dl {
                        for d in f {
                            *d *= scale;
                        }
                    }
                    let dhs = head.backward(&head_cache, &dl);
                    m.backward(&cache, &dhs);
                }
                Recurrent::Gru(m) => {
                    let (hs, cache) = m.forward(xs);
                    let (logits, head_cache) = head.forward(&hs);
                    let (l, mut dl) = loss::sequence_cross_entropy(&logits, ys);
                    total += l;
                    for f in &mut dl {
                        for d in f {
                            *d *= scale;
                        }
                    }
                    let dhs = head.backward(&head_cache, &dl);
                    m.backward(&cache, &dhs);
                }
            }
        }
        match self {
            Recurrent::Lstm(m) => {
                for p in m.params_mut() {
                    p.adam_step(cfg, step);
                }
            }
            Recurrent::Gru(m) => {
                for p in m.params_mut() {
                    p.adam_step(cfg, step);
                }
            }
        }
        for p in head.params_mut() {
            p.adam_step(cfg, step);
        }
        total * scale
    }
}

/// Runs the LSTM-vs-GRU comparison.
pub fn run(cfg: &ArchitectureStudyConfig) -> ArchitectureStudy {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let panel = speaker_panel(3, 3, &mut rng);
    let synth = Synthesizer::new(16_000);
    let mfcc = MfccExtractor::paper_default();
    // Labels: the paper's rejected set (weak fricatives + loud vowels).
    let rejected = ["s", "z", "sh", "th", "aa", "ao"];
    let sensitive: HashSet<PhonemeId> = common_phonemes()
        .iter()
        .filter(|c| !rejected.contains(&c.symbol))
        .map(|c| c.id)
        .collect();
    let featurize = |utts: &[thrubarrier_phoneme::corpus::LabelledUtterance]| {
        utts.iter()
            .map(|u| {
                let feats = mfcc.extract(u.utterance.audio.samples());
                let labels = frame_labels(&u.utterance, mfcc.frame_len(), mfcc.hop(), 0, |p| {
                    usize::from(sensitive.contains(&p))
                });
                (feats, labels)
            })
            .collect::<Vec<_>>()
    };
    let train = featurize(&training_corpus(&synth, cfg.corpus_size, &panel, &mut rng));
    let test = featurize(&training_corpus(&synth, cfg.test_size, &panel, &mut rng));

    let adam = AdamConfig {
        lr: 3e-3,
        ..Default::default()
    };
    let rows = [("BiLSTM", true), ("BiGRU", false)]
        .into_iter()
        .map(|(name, is_lstm)| {
            let mut arch_rng = StdRng::seed_from_u64(cfg.seed ^ 0xA);
            let mut recurrent = if is_lstm {
                Recurrent::Lstm(BiLstm::new(mfcc.n_coeffs(), cfg.hidden, &mut arch_rng))
            } else {
                Recurrent::Gru(BiGru::new(mfcc.n_coeffs(), cfg.hidden, &mut arch_rng))
            };
            let mut head = Dense::new(cfg.hidden, 2, &mut arch_rng);
            let mut order: Vec<usize> = (0..train.len()).collect();
            let mut step = 0u64;
            for _ in 0..cfg.epochs {
                for i in (1..order.len()).rev() {
                    let j = arch_rng.gen_range(0..=i);
                    order.swap(i, j);
                }
                for chunk in order.chunks(8) {
                    let batch: Vec<(&[Vec<f32>], &[usize])> = chunk
                        .iter()
                        .map(|&i| (train[i].0.as_slice(), train[i].1.as_slice()))
                        .collect();
                    step += 1;
                    recurrent.train_step(&mut head, &batch, &adam, step);
                }
            }
            // Held-out frame accuracy.
            let mut correct = 0usize;
            let mut total = 0usize;
            for (xs, ys) in &test {
                let hs = recurrent.forward_states(xs);
                let (logits, _) = head.forward(&hs);
                for (l, &y) in logits.iter().zip(ys) {
                    let pred = usize::from(l[1] > l[0]);
                    correct += usize::from(pred == y);
                    total += 1;
                }
            }
            ArchitectureRow {
                name,
                accuracy: correct as f32 / total.max(1) as f32,
                parameters: recurrent.parameter_count(),
            }
        })
        .collect();
    ArchitectureStudy { rows }
}

impl ArchitectureStudy {
    /// Renders the comparison.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Detector architecture comparison (held-out frame accuracy)\n");
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<8} accuracy {:.1}%   ({} recurrent parameters)\n",
                r.name,
                r.accuracy * 100.0,
                r.parameters
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_architectures_learn_the_task() {
        let study = run(&ArchitectureStudyConfig {
            seed: 3,
            corpus_size: 20,
            test_size: 8,
            hidden: 12,
            epochs: 3,
        });
        assert_eq!(study.rows.len(), 2);
        for r in &study.rows {
            assert!(r.accuracy > 0.7, "{} accuracy {}", r.name, r.accuracy);
        }
        // GRU has 3 gates to LSTM's 4.
        let lstm = &study.rows[0];
        let gru = &study.rows[1];
        assert!(gru.parameters < lstm.parameters);
        assert!(study.render_text().contains("BiGRU"));
    }
}
