//! The naive detector the paper's introduction evaluates and rejects.
//!
//! Sec. I: "one approach to capture the barrier effect … is to examine
//! the high-frequency spectral energy of the voice sounds captured by
//! the VA device. However, we find that this approach is not reliable as
//! some voice sounds inherently have low spectral energy in
//! high-frequency ranges, leading to false detection."
//!
//! This driver implements that single-recording detector (score = the
//! VA recording's high-band energy ratio) and shows both halves of the
//! claim: it beats chance, and its false detections concentrate on
//! legitimate commands whose phonemes are inherently low-frequency.

use crate::metrics::DetectionMetrics;
use crate::scenario::TrialContext;
use thrubarrier_attack::AttackKind;
use thrubarrier_dsp::features::high_band_energy_ratio;

/// Configuration for the naive-baseline study.
#[derive(Debug, Clone)]
pub struct NaiveBaselineConfig {
    /// Master seed.
    pub seed: u64,
    /// Trials per class.
    pub trials: usize,
    /// Band split in Hz (the paper's barrier-effect knee: 500 Hz).
    pub split_hz: f32,
}

impl Default for NaiveBaselineConfig {
    fn default() -> Self {
        NaiveBaselineConfig {
            seed: 0x7A1,
            trials: 60,
            split_hz: 500.0,
        }
    }
}

/// Result of the naive-baseline study.
#[derive(Debug, Clone)]
pub struct NaiveBaselineStudy {
    /// Metrics of the naive high-band-ratio detector.
    pub metrics: DetectionMetrics,
    /// Mean high-band ratio of legitimate commands.
    pub legit_mean_ratio: f32,
    /// Mean high-band ratio of attack recordings.
    pub attack_mean_ratio: f32,
    /// The lowest-scoring legitimate trials' ratios (the false-detection
    /// tail the paper warns about).
    pub legit_low_tail: Vec<f32>,
}

/// Runs the naive-detector study on replay attacks.
pub fn run(cfg: &NaiveBaselineConfig) -> NaiveBaselineStudy {
    let mut ctx = TrialContext::seeded(cfg.seed);
    let mut legit = Vec::with_capacity(cfg.trials);
    let mut attack = Vec::with_capacity(cfg.trials);
    for i in 0..cfg.trials {
        ctx.settings.attack_spl_db = [65.0, 75.0, 85.0][i % 3];
        ctx.settings.user_to_va_m = [1.0, 2.0, 3.0][i % 3];
        let l = ctx.legitimate_trial();
        legit.push(high_band_energy_ratio(
            l.va_recording.samples(),
            16_000,
            cfg.split_hz,
        ));
        let a = ctx.attack_trial(AttackKind::Replay);
        attack.push(high_band_energy_ratio(
            a.va_recording.samples(),
            16_000,
            cfg.split_hz,
        ));
    }
    let metrics = DetectionMetrics::from_scores(&legit, &attack);
    let mean = |xs: &[f32]| xs.iter().sum::<f32>() / xs.len().max(1) as f32;
    let mut sorted = legit.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    NaiveBaselineStudy {
        metrics,
        legit_mean_ratio: mean(&legit),
        attack_mean_ratio: mean(&attack),
        legit_low_tail: sorted.into_iter().take(5).collect(),
    }
}

impl NaiveBaselineStudy {
    /// Renders the study.
    pub fn render_text(&self) -> String {
        format!(
            "Naive high-frequency-energy detector (paper Sec. I):\n\
             mean >500 Hz energy share: legitimate {:.3}, attack {:.3}\n\
             AUC {:.3}   EER {:.1}%\n\
             lowest legitimate ratios (false-detection tail): {:?}\n\
             The detector works on average but its EER is far above the\n\
             full system's: low-frequency-heavy commands look like attacks.\n",
            self.legit_mean_ratio,
            self.attack_mean_ratio,
            self.metrics.auc,
            self.metrics.eer * 100.0,
            self.legit_low_tail
                .iter()
                .map(|v| (v * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_detector_beats_chance_but_is_unreliable() {
        let study = run(&NaiveBaselineConfig {
            trials: 24,
            ..Default::default()
        });
        // It does capture the barrier effect on average...
        assert!(
            study.legit_mean_ratio > study.attack_mean_ratio,
            "legit {} vs attack {}",
            study.legit_mean_ratio,
            study.attack_mean_ratio
        );
        assert!(study.metrics.auc > 0.6, "auc {}", study.metrics.auc);
        // ...but the paper's point stands: it is not a usable defense
        // (the full system reaches a few percent; this does not).
        assert!(study.metrics.eer > 0.02, "eer {}", study.metrics.eer);
        assert!(study.render_text().contains("AUC"));
    }
}
