//! Shared helpers for the experiment drivers.

use crate::scenario::TrialSettings;
use thrubarrier_acoustics::room::{Room, RoomId};

/// The standard evaluation matrix pooled over "different physical
/// settings" (paper Sec. VII-A): all four rooms, three user-to-VA
/// distances, and the three attack sound pressure levels.
pub fn standard_settings() -> Vec<TrialSettings> {
    let mut out = Vec::new();
    for room in RoomId::all() {
        for (user_d, user_spl) in [(1.0, 75.0), (2.0, 70.0), (3.0, 65.0)] {
            for attack_spl in [65.0, 75.0, 85.0] {
                out.push(TrialSettings {
                    room: Room::paper_room(room),
                    user_to_va_m: user_d,
                    user_spl_db: user_spl,
                    attack_spl_db: attack_spl,
                    ..Default::default()
                });
            }
        }
    }
    out
}

/// Scales a trial count by the driver's `scale` knob (minimum 1).
pub fn scaled(base: usize, scale: f32) -> usize {
    ((base as f32 * scale).round() as usize).max(1)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f32) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_settings_cover_matrix() {
        let s = standard_settings();
        assert_eq!(s.len(), 4 * 3 * 3);
        assert!(s.iter().any(|t| t.room.id == RoomId::D));
        assert!(s.iter().any(|t| t.attack_spl_db == 85.0));
    }

    #[test]
    fn scaled_has_floor_of_one() {
        assert_eq!(scaled(10, 0.01), 1);
        assert_eq!(scaled(10, 2.0), 20);
    }
}
