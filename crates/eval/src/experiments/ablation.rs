//! Ablation study: which pieces of the pipeline carry the detection
//! power?
//!
//! Not a paper figure — this exercises the design decisions DESIGN.md
//! calls out by disabling one mechanism at a time and re-measuring the
//! replay-attack EER:
//!
//! * **no ≤ 5 Hz crop** — the accelerometer's low-frequency artifact
//!   (Fig. 7) and body motion pollute the features;
//! * **no synchronization** — recordings are compared misaligned;
//! * **no replay normalization** — conversion SNR depends on the user's
//!   distance;
//! * **anti-aliased ADC** — "fixing" the accelerometer's aliasing
//!   destroys the fold-down evidence the defense reads;
//! * **no noise injection** — without level-dependent readout noise,
//!   attack conversions stay clean and detection collapses.

use crate::metrics::DetectionMetrics;
use crate::runner::score_trial;
use crate::scenario::{TrialContext, TrialSettings};
use thrubarrier_attack::AttackKind;
use thrubarrier_defense::{DefenseMethod, DefenseSystem};
use thrubarrier_vibration::Wearable;

/// Configuration for the ablation study.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Master seed.
    pub seed: u64,
    /// Legitimate/attack trials per variant.
    pub trials: usize,
    /// Attack evaluated.
    pub attack: AttackKind,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            seed: 0xAB1A,
            trials: 40,
            attack: AttackKind::Replay,
        }
    }
}

/// One ablation variant's outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub name: &'static str,
    /// Detection metrics of the (ablated) full method.
    pub metrics: DetectionMetrics,
}

/// Result of the ablation study.
#[derive(Debug, Clone)]
pub struct AblationStudy {
    /// All variants, reference first.
    pub rows: Vec<AblationRow>,
}

fn variant_system(name: &str) -> DefenseSystem {
    let mut system = DefenseSystem::paper_default();
    match name {
        "reference" => {}
        "no 5 Hz crop" => system.features.crop_hz = 0.0,
        "no synchronization" => system.synchronize = false,
        "no replay normalization" => system.normalize_replay = false,
        "anti-aliased ADC" => {
            let mut wearable = Wearable::fossil_gen_5();
            wearable.accelerometer.anti_alias = true;
            system.wearable = wearable;
        }
        "no noise injection" => {
            let mut wearable = Wearable::fossil_gen_5();
            wearable.accelerometer.low_freq_noise_coeff = 0.0;
            wearable.accelerometer.noise_floor = 1e-6;
            system.wearable = wearable;
        }
        other => panic!("unknown ablation variant {other}"),
    }
    system
}

/// All variant names, reference first.
pub const VARIANTS: &[&str] = &[
    "reference",
    "no 5 Hz crop",
    "no synchronization",
    "no replay normalization",
    "anti-aliased ADC",
    "no noise injection",
];

/// Runs the ablation study.
pub fn run(cfg: &AblationConfig) -> AblationStudy {
    // One shared trial set so variants differ only in the pipeline.
    let mut ctx = TrialContext::seeded(cfg.seed);
    ctx.settings = TrialSettings::default();
    let mut trials = Vec::with_capacity(cfg.trials * 2);
    for i in 0..cfg.trials {
        // Mix the attack volumes like the pooled evaluation does.
        ctx.settings.attack_spl_db = [65.0, 75.0, 85.0][i % 3];
        ctx.settings.user_spl_db = [65.0, 70.0, 75.0][i % 3];
        ctx.settings.user_to_va_m = [1.0, 2.0, 3.0][i % 3];
        trials.push((ctx.legitimate_trial(), false, i as u64));
        trials.push((ctx.attack_trial(cfg.attack), true, 1_000 + i as u64));
    }
    let rows = VARIANTS
        .iter()
        .map(|&name| {
            let system = variant_system(name);
            let mut legit = Vec::new();
            let mut attack = Vec::new();
            for (trial, is_attack, seed) in &trials {
                let scores = score_trial(trial, cfg.seed ^ seed, &system);
                let s = scores[DefenseMethod::all()
                    .iter()
                    .position(|m| *m == DefenseMethod::Full)
                    .expect("full method present")];
                if *is_attack {
                    attack.push(s);
                } else {
                    legit.push(s);
                }
            }
            AblationRow {
                name,
                metrics: DetectionMetrics::from_scores(&legit, &attack),
            }
        })
        .collect();
    AblationStudy { rows }
}

impl AblationStudy {
    /// The reference (un-ablated) row.
    pub fn reference(&self) -> &AblationRow {
        &self.rows[0]
    }

    /// A named variant's row.
    pub fn variant(&self, name: &str) -> Option<&AblationRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Renders the study.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Ablation study (replay attack, full pipeline)\n");
        for row in &self.rows {
            out.push_str(&format!(
                "  {:<26} AUC {:.3}   EER {:.1}%\n",
                row.name,
                row.metrics.auc,
                row.metrics.eer * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_injection_is_the_load_bearing_mechanism() {
        let study = run(&AblationConfig {
            trials: 16,
            ..Default::default()
        });
        let reference = study.reference().metrics.auc;
        let no_noise = study.variant("no noise injection").unwrap().metrics.auc;
        // Mic noise and room ambience still decorrelate some attacks,
        // so the collapse is partial at this scale — but it must be
        // clearly measurable.
        assert!(
            reference > no_noise + 0.03,
            "reference {reference} vs no-noise {no_noise}"
        );
    }

    #[test]
    fn aliasing_is_a_feature_not_a_bug() {
        let study = run(&AblationConfig {
            trials: 16,
            ..Default::default()
        });
        let reference = study.reference().metrics.auc;
        let anti_aliased = study.variant("anti-aliased ADC").unwrap().metrics.auc;
        assert!(
            reference >= anti_aliased,
            "reference {reference} vs anti-aliased {anti_aliased}"
        );
    }

    #[test]
    fn all_variants_render() {
        let study = run(&AblationConfig {
            trials: 8,
            ..Default::default()
        });
        let text = study.render_text();
        for name in VARIANTS {
            assert!(text.contains(name), "{name} missing");
        }
    }
}
