//! Sec. V-B study: BRNN phoneme-detection accuracy on phoneme segments
//! that did / did not pass the barrier (paper: 94 % / 91 %).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use thrubarrier_acoustics::loudspeaker::Loudspeaker;
use thrubarrier_acoustics::mic::Microphone;
use thrubarrier_acoustics::propagation::speech_gain_for_spl;
use thrubarrier_acoustics::room::{Room, RoomId};
use thrubarrier_acoustics::scene::AcousticPath;
use thrubarrier_defense::segmentation::{DetectorTrainConfig, PhonemeDetector, SegmentSelector};
use thrubarrier_defense::selection::{run_selection, SelectionConfig};
use thrubarrier_phoneme::common::common_phonemes;
use thrubarrier_phoneme::corpus::{phoneme_samples, speaker_panel, training_corpus};
use thrubarrier_phoneme::inventory::PhonemeId;
use thrubarrier_phoneme::synth::Synthesizer;
use thrubarrier_vibration::Wearable;

/// Configuration for the detection-accuracy study.
#[derive(Debug, Clone)]
pub struct DetectionAccuracyConfig {
    /// Master seed.
    pub seed: u64,
    /// Segments per phoneme (paper: 100, i.e. 6 300 total with 63
    /// phonemes; we evaluate the 37 common ones).
    pub samples_per_phoneme: usize,
    /// Training corpus size (utterances).
    pub corpus_size: usize,
    /// BRNN training epochs.
    pub epochs: usize,
    /// LSTM units per direction (paper: 64).
    pub hidden: usize,
}

impl Default for DetectionAccuracyConfig {
    fn default() -> Self {
        DetectionAccuracyConfig {
            seed: 0x5EB,
            samples_per_phoneme: 12,
            corpus_size: 80,
            epochs: 3,
            hidden: 48,
        }
    }
}

/// Result of the study.
#[derive(Debug, Clone)]
pub struct DetectionAccuracy {
    /// Segment-level accuracy without a barrier.
    pub accuracy_clear: f32,
    /// Segment-level accuracy through the barrier.
    pub accuracy_barrier: f32,
    /// Segments evaluated per condition.
    pub n_segments: usize,
    /// Number of phonemes the detector treats as sensitive.
    pub n_sensitive: usize,
}

/// Runs the study: trains the BRNN as the pipeline does, then classifies
/// propagated phoneme segments in both conditions.
pub fn run(cfg: &DetectionAccuracyConfig) -> DetectionAccuracy {
    let fs = 16_000u32;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let panel = speaker_panel(5, 5, &mut rng);
    let synth = Synthesizer::new(fs);

    // Offline selection fixes the label set.
    let selection = run_selection(
        &SelectionConfig::default(),
        &Wearable::fossil_gen_5(),
        &panel,
        &mut rng,
    );
    let sensitive: HashSet<PhonemeId> = selection.selected_ids().into_iter().collect();

    // Train.
    let corpus = training_corpus(&synth, cfg.corpus_size, &panel, &mut rng);
    let train_cfg = DetectorTrainConfig {
        hidden_size: cfg.hidden,
        epochs: cfg.epochs,
        ..Default::default()
    };
    let detector = PhonemeDetector::train(&sensitive, &corpus, &train_cfg, &mut rng);

    // Evaluate on propagated phoneme segments.
    let room = Room::paper_room(RoomId::A);
    let mic = Microphone::wearable();
    let speaker_device = Loudspeaker::sound_bar();
    let gain = speech_gain_for_spl(75.0);
    let mut n = 0usize;
    let mut correct_clear = 0usize;
    let mut correct_barrier = 0usize;
    for common in common_phonemes() {
        let truth = sensitive.contains(&common.id);
        let sounds = phoneme_samples(&synth, common.id, cfg.samples_per_phoneme, &panel, &mut rng);
        for s in &sounds {
            let calibrated: Vec<f32> = s.iter().map(|&x| x * gain).collect();
            // The paper drops segments whose recorded magnitude is too
            // low to trigger the VA at all.
            let clear_path = AcousticPath {
                room: room.clone(),
                through_barrier: false,
                distance_m: 2.0,
                loudspeaker: Some(speaker_device),
                render: Default::default(),
            };
            let barrier_path = AcousticPath {
                room: room.clone(),
                through_barrier: true,
                distance_m: 2.0,
                loudspeaker: Some(speaker_device),
                render: Default::default(),
            };
            let clear = clear_path.record(&calibrated, fs, &mic, &mut rng);
            let through = barrier_path.record(&calibrated, fs, &mic, &mut rng);
            n += 1;
            if classify_segment(&detector, clear.samples()) == truth {
                correct_clear += 1;
            }
            if classify_segment(&detector, through.samples()) == truth {
                correct_barrier += 1;
            }
        }
    }
    DetectionAccuracy {
        accuracy_clear: correct_clear as f32 / n.max(1) as f32,
        accuracy_barrier: correct_barrier as f32 / n.max(1) as f32,
        n_segments: n,
        n_sensitive: sensitive.len(),
    }
}

/// Majority vote over the detector's frame decisions.
fn classify_segment(detector: &PhonemeDetector, audio: &[f32]) -> bool {
    let mask = detector.sensitive_frames(audio, 16_000);
    if mask.is_empty() {
        return false;
    }
    mask.iter().filter(|&&m| m).count() * 2 > mask.len()
}

impl DetectionAccuracy {
    /// Renders the study summary.
    pub fn render_text(&self) -> String {
        format!(
            "Phoneme detection accuracy (Sec. V-B; paper: 94% clear / 91% barrier)\n\
             segments per condition: {}\nsensitive phonemes: {}\n\
             accuracy without barrier: {:.1}%\naccuracy through barrier:  {:.1}%\n",
            self.n_segments,
            self.n_sensitive,
            self.accuracy_clear * 100.0,
            self.accuracy_barrier * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracies_are_high_and_barrier_is_not_better() {
        let result = run(&DetectionAccuracyConfig {
            samples_per_phoneme: 4,
            corpus_size: 40,
            epochs: 2,
            hidden: 24,
            ..Default::default()
        });
        assert!(
            result.accuracy_clear > 0.75,
            "clear {}",
            result.accuracy_clear
        );
        assert!(
            result.accuracy_barrier > 0.6,
            "barrier {}",
            result.accuracy_barrier
        );
        assert!(result.render_text().contains("accuracy"));
    }
}
