//! Figs. 9a–c and Fig. 10: ROC / AUC / EER per attack kind and method.
//!
//! Paper reference values (all settings pooled):
//!
//! | attack | audio AUC | vibration AUC | full AUC | full EER |
//! |---|---|---|---|---|
//! | random (9a) | 0.693 | 0.884 | 0.994 | 3.8 % |
//! | replay (9b) | 0.688 | 0.869 | 0.995 | 3.5 % |
//! | synthesis (9c) | 0.662 | 0.830 | 0.990 | 3.9 % |
//! | hidden (10) | 0.742 | 0.883 | 1.000 | 6 %  |

use crate::experiments::common::{pct, scaled, standard_settings};
use crate::metrics::DetectionMetrics;
use crate::runner::{Runner, RunnerConfig, SelectorChoice};
use thrubarrier_attack::AttackKind;
use thrubarrier_defense::DefenseMethod;

/// Configuration for the detection-performance experiments.
#[derive(Debug, Clone)]
pub struct DetectionStudyConfig {
    /// Master seed.
    pub seed: u64,
    /// Trial-count scale; 1.0 approximates the paper's counts.
    pub scale: f32,
    /// Attack kinds to evaluate (Fig. 9 = clear attacks, Fig. 10 =
    /// hidden voice).
    pub attacks: Vec<AttackKind>,
    /// Segment selector.
    pub selector: SelectorChoice,
    /// Worker threads.
    pub threads: usize,
}

impl Default for DetectionStudyConfig {
    fn default() -> Self {
        DetectionStudyConfig {
            seed: 0xF19,
            scale: 0.05,
            attacks: vec![
                AttackKind::Random,
                AttackKind::Replay,
                AttackKind::VoiceSynthesis,
                AttackKind::HiddenVoice,
            ],
            selector: SelectorChoice::Brnn {
                corpus_size: 80,
                epochs: 3,
                hidden: 48,
            },
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

/// Result for one attack kind: metrics per method.
#[derive(Debug, Clone)]
pub struct DetectionStudyRow {
    /// Attack evaluated.
    pub attack: AttackKind,
    /// `(method, metrics)` triplets in presentation order.
    pub methods: Vec<(DefenseMethod, DetectionMetrics)>,
}

/// Full result of the detection study.
#[derive(Debug, Clone)]
pub struct DetectionStudy {
    /// One row per attack kind.
    pub rows: Vec<DetectionStudyRow>,
    /// Number of legitimate trials scored.
    pub n_legitimate: usize,
    /// Number of attack trials scored per kind.
    pub n_attacks_per_kind: usize,
}

/// Runs the Fig. 9 / Fig. 10 experiment.
pub fn run(cfg: &DetectionStudyConfig) -> DetectionStudy {
    // Paper: 3 600 legitimate command recordings and 3 600+ attack
    // samples per kind (random: 26 400). Scaled defaults keep ratios.
    let participants = scaled(20, cfg.scale.sqrt()).clamp(4, 20);
    let commands_per_user = scaled(180, cfg.scale / (participants as f32 / 20.0)).max(2);
    let attacks_per_kind = scaled(3_600, cfg.scale);
    let runner_cfg = RunnerConfig {
        seed: cfg.seed,
        participants,
        commands_per_user,
        attacks_per_kind,
        attack_kinds: cfg.attacks.clone(),
        settings: standard_settings(),
        selector: cfg.selector,
        threads: cfg.threads,
        batch_size: 8,
    };
    let runner = Runner::new(runner_cfg);
    let outcome = runner.run();
    let n_legitimate = outcome.pool(DefenseMethod::Full).legitimate.len();
    let rows = cfg
        .attacks
        .iter()
        .map(|&attack| DetectionStudyRow {
            attack,
            methods: DefenseMethod::all()
                .into_iter()
                .map(|m| (m, outcome.pool(m).metrics_of(attack)))
                .collect(),
        })
        .collect();
    DetectionStudy {
        rows,
        n_legitimate,
        n_attacks_per_kind: attacks_per_kind,
    }
}

impl DetectionStudy {
    /// Metrics of one attack/method cell.
    pub fn metrics(&self, attack: AttackKind, method: DefenseMethod) -> Option<&DetectionMetrics> {
        self.rows
            .iter()
            .find(|r| r.attack == attack)?
            .methods
            .iter()
            .find(|(m, _)| *m == method)
            .map(|(_, metrics)| metrics)
    }

    /// Renders the figure data as text (one block per attack kind).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Detection study: {} legitimate trials, {} attacks per kind\n",
            self.n_legitimate, self.n_attacks_per_kind
        ));
        for row in &self.rows {
            let fig = match row.attack {
                AttackKind::Random => "Fig. 9a",
                AttackKind::Replay => "Fig. 9b",
                AttackKind::VoiceSynthesis => "Fig. 9c",
                AttackKind::HiddenVoice => "Fig. 10",
            };
            out.push_str(&format!("\n{fig} — {}:\n", row.attack));
            for (method, m) in &row.methods {
                out.push_str(&format!(
                    "  {:<28} AUC {:.3}   EER {}\n",
                    method.label(),
                    m.auc,
                    pct(m.eer)
                ));
            }
            // A 11-point ROC sketch for the full system.
            if let Some((_, m)) = row.methods.iter().find(|(m, _)| *m == DefenseMethod::Full) {
                out.push_str("  ROC (full system), FDR -> TDR: ");
                for i in (0..=10).map(|i| i * 10) {
                    let p = &m.roc.points[i];
                    out.push_str(&format!("({:.2},{:.2}) ", p.fdr, p.tdr));
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_all_cells() {
        let cfg = DetectionStudyConfig {
            scale: 0.004,
            attacks: vec![AttackKind::Replay],
            selector: SelectorChoice::Energy,
            ..Default::default()
        };
        let study = run(&cfg);
        assert_eq!(study.rows.len(), 1);
        let m = study
            .metrics(AttackKind::Replay, DefenseMethod::Full)
            .unwrap();
        assert!(m.auc > 0.5, "auc {}", m.auc);
        let text = study.render_text();
        assert!(text.contains("Fig. 9b"));
        assert!(text.contains("AUC"));
    }
}
