//! Threaded experiment runner: generate trials, score them with each
//! detection method, and collect metrics.

use crate::metrics::DetectionMetrics;
use crate::scenario::{Trial, TrialGenerator, TrialSettings};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};
use thrubarrier_attack::AttackKind;
use thrubarrier_defense::segmentation::{
    DetectorTrainConfig, EnergySelector, PhonemeDetector, SegmentSelector,
};
use thrubarrier_defense::selection::{run_selection, SelectionConfig};
use thrubarrier_defense::{DefenseMethod, DefenseSystem};
use thrubarrier_nn::score::{ScoreService, DEFAULT_MAX_BATCH};
use thrubarrier_phoneme::command::CommandBank;
use thrubarrier_phoneme::corpus::{speaker_panel, training_corpus};
use thrubarrier_phoneme::inventory::PhonemeId;
use thrubarrier_phoneme::speaker::SpeakerProfile;
use thrubarrier_phoneme::synth::Synthesizer;
use thrubarrier_vibration::Wearable;

/// Which segment selector drives the full method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorChoice {
    /// The cheap voice-activity approximation (fast; used by unit tests
    /// and `--quick` runs).
    Energy,
    /// The paper's pipeline: run offline phoneme selection, then train
    /// the BRNN detector on a synthesized corpus.
    Brnn {
        /// Utterances in the training corpus.
        corpus_size: usize,
        /// Training epochs.
        epochs: usize,
        /// LSTM units per direction.
        hidden: usize,
    },
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Master seed; every trial derives its own seed from it.
    pub seed: u64,
    /// Number of participants taking turns as the legitimate user.
    pub participants: usize,
    /// Legitimate commands per participant.
    pub commands_per_user: usize,
    /// Attack trials per attack kind.
    pub attacks_per_kind: usize,
    /// Attack kinds evaluated.
    pub attack_kinds: Vec<AttackKind>,
    /// Trial physics variants cycled over (rooms, distances, SPLs).
    pub settings: Vec<TrialSettings>,
    /// Segment selector for the full method.
    pub selector: SelectorChoice,
    /// Worker threads.
    pub threads: usize,
    /// Trials scored per minibatch inside each worker: their
    /// sensitive-frame masks are computed in one batched BRNN pass
    /// ([`SegmentSelector::sensitive_frames_batch`]) instead of one
    /// forward pass per trial.
    pub batch_size: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            seed: 0xB0A7,
            participants: 6,
            commands_per_user: 6,
            attacks_per_kind: 36,
            attack_kinds: vec![AttackKind::Replay],
            settings: vec![TrialSettings::default()],
            selector: SelectorChoice::Energy,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            batch_size: 8,
        }
    }
}

/// Scores collected for one detection method.
#[derive(Debug, Clone, Default)]
pub struct ScorePool {
    /// Scores of legitimate trials.
    pub legitimate: Vec<f32>,
    /// Scores of attack trials, keyed by kind.
    pub attacks: Vec<(AttackKind, f32)>,
}

impl ScorePool {
    /// All attack scores regardless of kind.
    pub fn attack_scores(&self) -> Vec<f32> {
        self.attacks.iter().map(|&(_, s)| s).collect()
    }

    /// Attack scores of one kind.
    pub fn attack_scores_of(&self, kind: AttackKind) -> Vec<f32> {
        self.attacks
            .iter()
            .filter(|&&(k, _)| k == kind)
            .map(|&(_, s)| s)
            .collect()
    }

    /// Metrics against all attacks.
    pub fn metrics(&self) -> DetectionMetrics {
        DetectionMetrics::from_scores(&self.legitimate, &self.attack_scores())
    }

    /// Metrics against one attack kind.
    pub fn metrics_of(&self, kind: AttackKind) -> DetectionMetrics {
        DetectionMetrics::from_scores(&self.legitimate, &self.attack_scores_of(kind))
    }
}

/// Outcome of one runner execution: a score pool per method.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Pools indexed in the order of [`DefenseMethod::all`].
    pub pools: Vec<(DefenseMethod, ScorePool)>,
    /// The sensitive phonemes used by the full method (empty for the
    /// energy selector).
    pub sensitive_symbols: Vec<&'static str>,
}

impl EvalOutcome {
    /// The score pool of one method.
    pub fn pool(&self, method: DefenseMethod) -> &ScorePool {
        &self
            .pools
            .iter()
            .find(|(m, _)| *m == method)
            .expect("all methods evaluated")
            .1
    }
}

/// A description of one trial to execute.
#[derive(Debug, Clone)]
enum TrialPlan {
    Legitimate {
        seed: u64,
        user: usize,
        command: usize,
        setting: usize,
    },
    Attack {
        seed: u64,
        kind: AttackKind,
        victim: usize,
        adversary: usize,
        command: usize,
        setting: usize,
    },
}

/// The experiment runner.
#[derive(Debug, Clone)]
pub struct Runner {
    config: RunnerConfig,
    /// Shared rendition memo. Entries are pure functions of
    /// `(config.seed, user, command)`, so the cache lives with the
    /// runner and persists across [`Runner::run_with_selector`] calls
    /// (and across clones) instead of being rebuilt per run.
    utterances: Arc<UtteranceCache>,
}

impl Runner {
    /// Creates a runner.
    pub fn new(config: RunnerConfig) -> Self {
        Runner {
            config,
            utterances: Arc::new(UtteranceCache::default()),
        }
    }

    /// Builds the segment selector for the full method (trains the BRNN
    /// when [`SelectorChoice::Brnn`] is configured) and returns it with
    /// the sensitive symbols it encodes.
    pub fn build_selector(&self) -> (Arc<dyn SegmentSelector>, Vec<&'static str>) {
        match self.config.selector {
            SelectorChoice::Energy => (Arc::new(EnergySelector::default()), Vec::new()),
            SelectorChoice::Brnn {
                corpus_size,
                epochs,
                hidden,
            } => {
                let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5E1EC7);
                let panel = speaker_panel(3, 3, &mut rng);
                let selection_cfg = SelectionConfig::default();
                let selection =
                    run_selection(&selection_cfg, &Wearable::fossil_gen_5(), &panel, &mut rng);
                let sensitive: HashSet<PhonemeId> = selection.selected_ids().into_iter().collect();
                let symbols = selection.selected_symbols();
                let synth = Synthesizer::new(crate::scenario::AUDIO_RATE);
                let corpus = training_corpus(&synth, corpus_size, &panel, &mut rng);
                let cfg = DetectorTrainConfig {
                    hidden_size: hidden,
                    epochs,
                    ..Default::default()
                };
                let detector = PhonemeDetector::train(&sensitive, &corpus, &cfg, &mut rng);
                (Arc::new(detector), symbols)
            }
        }
    }

    /// Runs the evaluation over all three methods with the given
    /// selector (build it once via [`Runner::build_selector`] and share
    /// it across calls to avoid retraining).
    pub fn run_with_selector(
        &self,
        selector: Arc<dyn SegmentSelector>,
        sensitive_symbols: Vec<&'static str>,
    ) -> EvalOutcome {
        let plans = self.plan_trials();
        let cfg = &self.config;
        let n_threads = cfg.threads.max(1);
        // Shared scoring engine: with several workers and a selector
        // backed by a BRNN, spawn one engine thread from the same
        // weights and route every worker's batched mask scoring through
        // it — the engine coalesces groups from all workers into one
        // wide fused-GEMM pack per drain. The fused kernels are bitwise
        // batch-size invariant, so scores are identical to inline
        // per-worker batching. Declared before the system so the
        // workers' client handles drop first and the engine join in
        // `Drop` cannot block.
        let service = if n_threads > 1 {
            selector
                .classifier()
                .map(|model| ScoreService::spawn(model.clone(), DEFAULT_MAX_BATCH))
        } else {
            None
        };
        let selector = match &service {
            Some(service) => selector
                .with_backend(Arc::new(service.client()))
                .unwrap_or(selector),
            None => selector,
        };
        let system = DefenseSystem::with_selector(Wearable::fossil_gen_5(), selector);
        let chunks: Vec<Vec<TrialPlan>> = split_round_robin(&plans, n_threads);
        let utterances = &*self.utterances;
        let results: Vec<Vec<(TrialPlan, [f32; 3])>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .enumerate()
                .map(|(worker, chunk)| {
                    let system = &system;
                    let utterances = &utterances;
                    scope.spawn(move || {
                        thrubarrier_obs::label_thread(&format!("worker-{worker}"));
                        let generator = TrialGenerator::new();
                        let bank = CommandBank::standard();
                        let mut out = Vec::with_capacity(chunk.len());
                        // Trials are scored in minibatches: every group's
                        // sensitive-frame masks come from one batched BRNN
                        // pass, then each trial reuses its precomputed mask.
                        for group in chunk.chunks(cfg.batch_size.max(1)) {
                            let trials: Vec<(Trial, u64)> = {
                                let _span = thrubarrier_obs::span!("eval.build_trials");
                                group
                                    .iter()
                                    .map(|plan| {
                                        build_trial(plan, cfg, &generator, &bank, utterances)
                                    })
                                    .collect()
                            };
                            let recordings: Vec<&[f32]> = trials
                                .iter()
                                .map(|(t, _)| t.va_recording.samples())
                                .collect();
                            let masks = system
                                .selector()
                                .sensitive_frames_batch(&recordings, crate::scenario::AUDIO_RATE);
                            for ((plan, (trial, seed)), mask) in
                                group.iter().zip(&trials).zip(&masks)
                            {
                                let _span = thrubarrier_obs::span!("eval.trial");
                                let scores = score_trial_with_mask(trial, *seed, system, mask);
                                out.push((plan.clone(), scores));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let mut pools: Vec<(DefenseMethod, ScorePool)> = DefenseMethod::all()
            .into_iter()
            .map(|m| (m, ScorePool::default()))
            .collect();
        for chunk in results {
            for (plan, scores) in chunk {
                for (i, (_, pool)) in pools.iter_mut().enumerate() {
                    match &plan {
                        TrialPlan::Legitimate { .. } => pool.legitimate.push(scores[i]),
                        TrialPlan::Attack { kind, .. } => pool.attacks.push((*kind, scores[i])),
                    }
                }
            }
        }
        EvalOutcome {
            pools,
            sensitive_symbols,
        }
    }

    /// Convenience: builds the selector and runs.
    pub fn run(&self) -> EvalOutcome {
        let (selector, symbols) = self.build_selector();
        self.run_with_selector(selector, symbols)
    }

    fn plan_trials(&self) -> Vec<TrialPlan> {
        let cfg = &self.config;
        let mut plans = Vec::new();
        let mut counter = 0u64;
        let next_seed = |counter: &mut u64| {
            *counter += 1;
            cfg.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(*counter)
        };
        for user in 0..cfg.participants {
            for command in 0..cfg.commands_per_user {
                let setting = (user * cfg.commands_per_user + command) % cfg.settings.len();
                plans.push(TrialPlan::Legitimate {
                    seed: next_seed(&mut counter),
                    user,
                    command,
                    setting,
                });
            }
        }
        for &kind in &cfg.attack_kinds {
            for i in 0..cfg.attacks_per_kind {
                let victim = i % cfg.participants;
                let adversary = (victim + 1 + i / cfg.participants) % cfg.participants.max(2);
                plans.push(TrialPlan::Attack {
                    seed: next_seed(&mut counter),
                    kind,
                    victim,
                    adversary: if adversary == victim {
                        (victim + 1) % cfg.participants.max(2)
                    } else {
                        adversary
                    },
                    command: i,
                    setting: i % cfg.settings.len(),
                });
            }
        }
        plans
    }
}

fn split_round_robin<T: Clone>(items: &[T], n: usize) -> Vec<Vec<T>> {
    let mut out = vec![Vec::new(); n];
    for (i, item) in items.iter().enumerate() {
        out[i % n].push(item.clone());
    }
    out.retain(|c| !c.is_empty());
    out
}

/// The speaker profile of participant `i` under master seed `seed` —
/// deterministic, so every worker derives the same panel.
fn participant(seed: u64, i: usize) -> SpeakerProfile {
    let mut rng = StdRng::seed_from_u64(seed ^ (0xFACE_0000 + i as u64));
    SpeakerProfile::random(&mut rng)
}

/// Seed of participant `user`'s rendition of command `command`, derived
/// from the master seed only. Keeping it independent of the per-trial
/// physics seed makes the rendition a pure function of (master seed,
/// user, command) — which is what lets workers memoize it.
fn utterance_seed(master_seed: u64, user: usize, command: usize) -> u64 {
    master_seed
        .wrapping_mul(0xA24B_AED4_963E_E407)
        .wrapping_add(((user as u64) << 32) ^ (command as u64) ^ 0x7E57_1E55)
}

/// Shared, read-mostly memo of synthesized command audio. One instance
/// serves *all* worker threads of a run: a cell (user, command) is
/// rendered once per run instead of once per worker, so synthesis cost
/// no longer scales with thread count on large panels.
///
/// Concurrency story: lookups take the [`RwLock`] read side (the common
/// case once the cache is warm, so workers never serialize on it);
/// misses synthesize *outside* any lock and then race to insert. Because
/// a rendition is a pure function of (master seed, user, command) — see
/// [`utterance_seed`] — racing workers produce identical audio and it
/// does not matter whose [`Arc`] wins. The legitimate speaker panel is
/// derived once into a [`OnceLock`] rather than re-deriving profiles per
/// lookup.
#[derive(Debug, Default)]
struct UtteranceCache {
    panel: OnceLock<Vec<SpeakerProfile>>,
    map: RwLock<RenditionMap>,
}

/// Rendition audio keyed by `(user, command index)`.
type RenditionMap = HashMap<(usize, usize), Arc<Vec<f32>>>;

impl UtteranceCache {
    fn get(
        &self,
        cfg: &RunnerConfig,
        generator: &TrialGenerator,
        bank: &CommandBank,
        user: usize,
        command: usize,
    ) -> Arc<Vec<f32>> {
        let key = (user, command % bank.len());
        // Lock poisoning is recovered from rather than propagated: every
        // entry is a pure function of its key, so a map abandoned by a
        // panicking worker is still structurally sound and at worst
        // missing entries the losers of an insert race will resynthesize.
        if let Some(hit) = self
            .map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            thrubarrier_obs::counter!("eval.utterance_cache.hit").incr();
            return Arc::clone(hit);
        }
        thrubarrier_obs::counter!("eval.utterance_cache.miss").incr();
        let panel = self.panel.get_or_init(|| {
            (0..cfg.participants)
                .map(|i| participant(cfg.seed, i))
                .collect()
        });
        let cmd = &bank.commands()[key.1];
        let mut rng = StdRng::seed_from_u64(utterance_seed(cfg.seed, user, key.1));
        let audio = Arc::new(generator.utterance_audio(cmd, &panel[user], &mut rng));
        let mut map = self.map.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(key).or_insert(audio))
    }
}

/// Synthesizes the recordings of one planned trial (no scoring).
fn build_trial(
    plan: &TrialPlan,
    cfg: &RunnerConfig,
    generator: &TrialGenerator,
    bank: &CommandBank,
    utterances: &UtteranceCache,
) -> (Trial, u64) {
    match plan {
        TrialPlan::Legitimate {
            seed,
            user,
            command,
            setting,
        } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let utterance = utterances.get(cfg, generator, bank, *user, *command);
            let settings = &cfg.settings[*setting];
            (
                generator.legitimate_with_utterance(&utterance, settings, &mut rng),
                *seed,
            )
        }
        TrialPlan::Attack {
            seed,
            kind,
            victim,
            adversary,
            command,
            setting,
        } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            let victim = participant(cfg.seed, *victim);
            let adversary = participant(cfg.seed, *adversary + 101);
            let cmd = &bank.commands()[*command % bank.len()];
            let settings = &cfg.settings[*setting];
            (
                generator.attack(*kind, cmd, &victim, &adversary, settings, &mut rng),
                *seed,
            )
        }
    }
}

/// Scores one trial with all three methods (deterministic per seed).
pub fn score_trial(trial: &Trial, seed: u64, system: &DefenseSystem) -> [f32; 3] {
    let mut out = [0.0f32; 3];
    for (i, method) in DefenseMethod::all().into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (0xC0FFEE + i as u64));
        out[i] = system.score_with_method(
            method,
            &trial.va_recording,
            &trial.wearable_recording,
            &mut rng,
        );
    }
    out
}

/// [`score_trial`] with a precomputed sensitive-frame mask for the full
/// method — score-identical when `mask` matches what the system's own
/// selector would produce on the trial's VA recording.
fn score_trial_with_mask(
    trial: &Trial,
    seed: u64,
    system: &DefenseSystem,
    mask: &[bool],
) -> [f32; 3] {
    let mut out = [0.0f32; 3];
    for (i, method) in DefenseMethod::all().into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (0xC0FFEE + i as u64));
        out[i] = if method == DefenseMethod::Full {
            system.score_full_with_mask(
                &trial.va_recording,
                &trial.wearable_recording,
                mask,
                &mut rng,
            )
        } else {
            system.score_with_method(
                method,
                &trial.va_recording,
                &trial.wearable_recording,
                &mut rng,
            )
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> RunnerConfig {
        RunnerConfig {
            seed: 7,
            participants: 2,
            commands_per_user: 2,
            attacks_per_kind: 4,
            attack_kinds: vec![AttackKind::Replay],
            settings: vec![TrialSettings::default()],
            selector: SelectorChoice::Energy,
            threads: 2,
            batch_size: 3,
        }
    }

    #[test]
    fn runner_produces_expected_counts() {
        let outcome = Runner::new(tiny_config()).run();
        for (_, pool) in &outcome.pools {
            assert_eq!(pool.legitimate.len(), 4);
            assert_eq!(pool.attacks.len(), 4);
        }
    }

    #[test]
    fn full_method_separates_better_than_audio_baseline() {
        let mut cfg = tiny_config();
        cfg.participants = 3;
        cfg.commands_per_user = 4;
        cfg.attacks_per_kind = 12;
        let outcome = Runner::new(cfg).run();
        let audio = outcome.pool(DefenseMethod::AudioBaseline).metrics();
        let full = outcome.pool(DefenseMethod::Full).metrics();
        assert!(
            full.auc >= audio.auc,
            "full {} vs audio {}",
            full.auc,
            audio.auc
        );
        // The full system must be strongly discriminative even on this
        // tiny sample.
        assert!(full.auc > 0.85, "full auc {}", full.auc);
    }

    #[test]
    fn runner_is_deterministic() {
        let a = Runner::new(tiny_config()).run();
        let b = Runner::new(tiny_config()).run();
        assert_eq!(
            a.pool(DefenseMethod::Full).legitimate,
            b.pool(DefenseMethod::Full).legitimate
        );
        assert_eq!(
            a.pool(DefenseMethod::Full).attack_scores(),
            b.pool(DefenseMethod::Full).attack_scores()
        );
    }

    #[test]
    fn scores_are_invariant_to_batch_size() {
        // The minibatched mask path must reproduce per-trial scoring
        // exactly: batch size 1 degenerates to one mask per BRNN pass.
        let runs: Vec<EvalOutcome> = [1usize, 3, 16]
            .into_iter()
            .map(|batch_size| {
                let mut cfg = tiny_config();
                cfg.batch_size = batch_size;
                Runner::new(cfg).run()
            })
            .collect();
        let reference = &runs[0];
        for other in &runs[1..] {
            for (m, pool) in &reference.pools {
                assert_eq!(pool.legitimate, other.pool(*m).legitimate);
                assert_eq!(pool.attacks, other.pool(*m).attacks);
            }
        }
    }

    #[test]
    fn utterance_memo_leaves_scores_unchanged() {
        // Different thread counts give the shared cache different race
        // and interleaving patterns; identical score multisets across
        // threads ∈ {1, 4, 8} prove the memo hands back exactly what
        // fresh synthesis would, regardless of which worker populated a
        // cell first.
        let runs: Vec<EvalOutcome> = [1usize, 4, 8]
            .into_iter()
            .map(|threads| {
                let mut cfg = tiny_config();
                cfg.threads = threads;
                Runner::new(cfg).run()
            })
            .collect();
        let sorted = |mut v: Vec<f32>| {
            v.sort_by(f32::total_cmp);
            v
        };
        let reference = &runs[0];
        for other in &runs[1..] {
            for (m, pool) in &reference.pools {
                assert_eq!(
                    sorted(pool.legitimate.clone()),
                    sorted(other.pool(*m).legitimate.clone())
                );
                assert_eq!(
                    sorted(pool.attack_scores()),
                    sorted(other.pool(*m).attack_scores())
                );
            }
        }
    }

    #[test]
    fn score_service_scores_are_bitwise_identical_to_inline() {
        // threads = 1 scores every mask inline in the worker; threads
        // ∈ {4, 8} route all mask scoring through the shared engine,
        // whose drains coalesce groups from different workers into
        // arbitrary interleavings. Identical score multisets prove the
        // service path is bitwise equivalent to inline batching (the
        // fused kernels are batch-size invariant, so coalescing wider
        // packs changes nothing).
        let mut cfg = tiny_config();
        cfg.selector = SelectorChoice::Brnn {
            corpus_size: 6,
            epochs: 1,
            hidden: 8,
        };
        let (selector, symbols) = Runner::new(cfg.clone()).build_selector();
        let runs: Vec<EvalOutcome> = [1usize, 4, 8]
            .into_iter()
            .map(|threads| {
                let mut cfg = cfg.clone();
                cfg.threads = threads;
                Runner::new(cfg).run_with_selector(Arc::clone(&selector), symbols.clone())
            })
            .collect();
        let sorted = |mut v: Vec<f32>| {
            v.sort_by(f32::total_cmp);
            v
        };
        let reference = &runs[0];
        for other in &runs[1..] {
            for (m, pool) in &reference.pools {
                assert_eq!(
                    sorted(pool.legitimate.clone()),
                    sorted(other.pool(*m).legitimate.clone())
                );
                assert_eq!(
                    sorted(pool.attack_scores()),
                    sorted(other.pool(*m).attack_scores())
                );
            }
        }
    }

    #[test]
    fn utterance_cache_is_a_pure_synthesis_memo() {
        let cfg = tiny_config();
        let generator = TrialGenerator::new();
        let bank = CommandBank::standard();
        let cache = UtteranceCache::default();
        let warm = cache.get(&cfg, &generator, &bank, 1, 1);
        let fresh = {
            let speaker = participant(cfg.seed, 1);
            let mut rng = StdRng::seed_from_u64(utterance_seed(cfg.seed, 1, 1));
            generator.utterance_audio(&bank.commands()[1], &speaker, &mut rng)
        };
        assert_eq!(*warm, fresh);
        let again = cache.get(&cfg, &generator, &bank, 1, 1);
        assert!(Arc::ptr_eq(&warm, &again), "second lookup must be a hit");
    }

    #[test]
    fn utterance_cache_is_shared_across_threads() {
        // Two threads asking for the same cell must end up with the same
        // allocation — the cache is per-run, not per-worker.
        let cfg = tiny_config();
        let cache = UtteranceCache::default();
        let (a, b) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let cache = &cache;
                    let cfg = &cfg;
                    scope.spawn(move || {
                        let generator = TrialGenerator::new();
                        let bank = CommandBank::standard();
                        cache.get(cfg, &generator, &bank, 0, 1)
                    })
                })
                .collect();
            let mut out = handles.into_iter().map(|h| h.join().unwrap());
            (out.next().unwrap(), out.next().unwrap())
        });
        assert_eq!(*a, *b, "racing synthesis must be identical");
        let generator = TrialGenerator::new();
        let bank = CommandBank::standard();
        let later = cache.get(&cfg, &generator, &bank, 0, 1);
        assert!(
            Arc::ptr_eq(&a, &later) || Arc::ptr_eq(&b, &later),
            "later lookups must hit the allocation one of the racers installed"
        );
    }

    #[test]
    fn score_pool_filters_by_kind() {
        let mut pool = ScorePool::default();
        pool.attacks.push((AttackKind::Replay, 0.1));
        pool.attacks.push((AttackKind::Random, 0.2));
        assert_eq!(pool.attack_scores_of(AttackKind::Replay), vec![0.1]);
        assert_eq!(pool.attack_scores().len(), 2);
    }
}
