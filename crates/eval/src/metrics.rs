//! Detection metrics: TDR, FDR, ROC, AUC, EER (paper Sec. VII-A).
//!
//! Scores are similarity scores in `[0, 1]`: *low* scores indicate
//! attacks. At threshold `t`, a sample is flagged as an attack when its
//! score is below `t`; the true detection rate is the fraction of attack
//! samples flagged, the false detection rate the fraction of legitimate
//! samples flagged.

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold.
    pub threshold: f32,
    /// True detection rate at this threshold.
    pub tdr: f32,
    /// False detection rate at this threshold.
    pub fdr: f32,
}

/// A ROC curve swept over thresholds 0.00–1.00 in 0.01 steps (the
/// paper's procedure).
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    /// Points ordered by increasing threshold.
    pub points: Vec<RocPoint>,
}

impl RocCurve {
    /// Builds the ROC curve from the two score populations.
    ///
    /// # Panics
    ///
    /// Panics if either population is empty — a ROC over an empty class
    /// is meaningless and always a caller bug.
    pub fn from_scores(legitimate: &[f32], attack: &[f32]) -> Self {
        assert!(
            !legitimate.is_empty() && !attack.is_empty(),
            "roc needs both populations"
        );
        let points = (0..=100)
            .map(|i| {
                let threshold = i as f32 * 0.01;
                let tdr = fraction_below(attack, threshold);
                let fdr = fraction_below(legitimate, threshold);
                RocPoint {
                    threshold,
                    tdr,
                    fdr,
                }
            })
            .collect();
        RocCurve { points }
    }

    /// Area under the curve (trapezoidal over FDR).
    pub fn auc(&self) -> f32 {
        // Points are monotone in threshold, hence FDR and TDR are
        // non-decreasing along the sweep.
        let mut area = 0.0f64;
        for w in self.points.windows(2) {
            let dx = (w[1].fdr - w[0].fdr) as f64;
            let avg_y = (w[0].tdr + w[1].tdr) as f64 / 2.0;
            area += dx * avg_y;
        }
        // Close the curve to (1, 1) if the sweep did not reach it.
        if let Some(last) = self.points.last() {
            area += (1.0 - last.fdr) as f64 * (last.tdr as f64 + 1.0) / 2.0;
        }
        area as f32
    }

    /// Equal error rate: the error at the threshold where the false
    /// detection rate and the miss rate (1 − TDR) are closest.
    pub fn eer(&self) -> f32 {
        let mut best = f32::INFINITY;
        let mut eer = 0.5;
        for p in &self.points {
            let miss = 1.0 - p.tdr;
            let gap = (p.fdr - miss).abs();
            if gap < best {
                best = gap;
                eer = (p.fdr + miss) / 2.0;
            }
        }
        eer
    }

    /// The threshold achieving the EER operating point.
    pub fn eer_threshold(&self) -> f32 {
        let mut best = f32::INFINITY;
        let mut thr = 0.5;
        for p in &self.points {
            let gap = (p.fdr - (1.0 - p.tdr)).abs();
            if gap < best {
                best = gap;
                thr = p.threshold;
            }
        }
        thr
    }
}

fn fraction_below(scores: &[f32], threshold: f32) -> f32 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().filter(|&&s| s < threshold).count() as f32 / scores.len() as f32
}

/// Summary metrics for one evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionMetrics {
    /// The underlying ROC curve.
    pub roc: RocCurve,
    /// Area under the ROC curve.
    pub auc: f32,
    /// Equal error rate.
    pub eer: f32,
}

impl DetectionMetrics {
    /// Computes the metrics from the two score populations.
    ///
    /// # Panics
    ///
    /// Panics if either population is empty.
    pub fn from_scores(legitimate: &[f32], attack: &[f32]) -> Self {
        let roc = RocCurve::from_scores(legitimate, attack);
        let auc = roc.auc();
        let eer = roc.eer();
        DetectionMetrics { roc, auc, eer }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_auc_one_eer_zero() {
        let legit = vec![0.9, 0.8, 0.95, 0.85];
        let attack = vec![0.1, 0.2, 0.05, 0.15];
        let m = DetectionMetrics::from_scores(&legit, &attack);
        assert!((m.auc - 1.0).abs() < 1e-3, "auc {}", m.auc);
        assert!(m.eer < 0.01, "eer {}", m.eer);
    }

    #[test]
    fn identical_distributions_give_auc_half() {
        let scores: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let m = DetectionMetrics::from_scores(&scores, &scores);
        assert!((m.auc - 0.5).abs() < 0.02, "auc {}", m.auc);
        assert!((m.eer - 0.5).abs() < 0.05, "eer {}", m.eer);
    }

    #[test]
    fn inverted_scores_give_auc_near_zero() {
        let legit = vec![0.1, 0.2];
        let attack = vec![0.8, 0.9];
        let m = DetectionMetrics::from_scores(&legit, &attack);
        assert!(m.auc < 0.1);
    }

    #[test]
    fn partial_overlap_is_intermediate() {
        let legit: Vec<f32> = (0..50).map(|i| 0.4 + i as f32 * 0.01).collect();
        let attack: Vec<f32> = (0..50).map(|i| 0.1 + i as f32 * 0.01).collect();
        let m = DetectionMetrics::from_scores(&legit, &attack);
        assert!(m.auc > 0.7 && m.auc < 1.0, "auc {}", m.auc);
        assert!(m.eer > 0.01 && m.eer < 0.4, "eer {}", m.eer);
    }

    #[test]
    fn roc_is_monotone() {
        let legit = vec![0.5, 0.6, 0.7, 0.9];
        let attack = vec![0.2, 0.3, 0.55, 0.65];
        let roc = RocCurve::from_scores(&legit, &attack);
        for w in roc.points.windows(2) {
            assert!(w[1].tdr >= w[0].tdr);
            assert!(w[1].fdr >= w[0].fdr);
        }
    }

    #[test]
    fn eer_threshold_is_consistent() {
        let legit = vec![0.7, 0.8, 0.9, 0.6];
        let attack = vec![0.2, 0.3, 0.4, 0.75];
        let roc = RocCurve::from_scores(&legit, &attack);
        let thr = roc.eer_threshold();
        assert!((0.0..=1.0).contains(&thr));
    }

    #[test]
    #[should_panic(expected = "roc needs both populations")]
    fn empty_population_panics() {
        RocCurve::from_scores(&[], &[0.5]);
    }

    #[test]
    fn single_score_populations_produce_a_full_sweep() {
        // The smallest legal input: one score per class. The sweep is
        // still 101 points, monotone, and separable inputs stay perfect.
        let roc = RocCurve::from_scores(&[0.9], &[0.1]);
        assert_eq!(roc.points.len(), 101);
        for w in roc.points.windows(2) {
            assert!(w[1].tdr >= w[0].tdr);
            assert!(w[1].fdr >= w[0].fdr);
        }
        assert!((roc.auc() - 1.0).abs() < 1e-3, "auc {}", roc.auc());
        assert!(roc.eer() < 0.01, "eer {}", roc.eer());
    }

    #[test]
    fn all_tied_scores_give_chance_performance() {
        // Every sample in both classes has the same score: the curve
        // degenerates to two operating points ((0,0) before the tie,
        // (1,1) after) and no threshold separates anything.
        let tied = vec![0.5; 8];
        let roc = RocCurve::from_scores(&tied, &tied);
        for p in &roc.points {
            assert_eq!(p.tdr, p.fdr, "tied classes must move together");
        }
        assert!((roc.auc() - 0.5).abs() < 0.02, "auc {}", roc.auc());
        assert!((roc.eer() - 0.5).abs() < 0.02, "eer {}", roc.eer());
    }

    #[test]
    fn eer_and_threshold_agree_on_degenerate_curves() {
        // On curves with ties and single points, `eer()` and
        // `eer_threshold()` must pick the same operating point: the gap
        // |FDR - (1 - TDR)| evaluated at the returned threshold equals
        // the gap implied by the returned EER.
        for (legit, attack) in [
            (vec![0.5f32; 4], vec![0.5f32; 4]),
            (vec![0.9], vec![0.1]),
            (vec![0.0, 0.0], vec![1.0, 1.0]),
        ] {
            let roc = RocCurve::from_scores(&legit, &attack);
            let thr = roc.eer_threshold();
            let at = roc
                .points
                .iter()
                .min_by(|a, b| {
                    let ga = (a.fdr - (1.0 - a.tdr)).abs();
                    let gb = (b.fdr - (1.0 - b.tdr)).abs();
                    ga.partial_cmp(&gb).unwrap()
                })
                .unwrap();
            let point_at_thr = roc
                .points
                .iter()
                .find(|p| (p.threshold - thr).abs() < 1e-6)
                .expect("eer_threshold returns a sweep point");
            let gap_at_thr = (point_at_thr.fdr - (1.0 - point_at_thr.tdr)).abs();
            let best_gap = (at.fdr - (1.0 - at.tdr)).abs();
            assert!(
                (gap_at_thr - best_gap).abs() < 1e-6,
                "threshold {thr} gap {gap_at_thr} vs best {best_gap}"
            );
            let eer = roc.eer();
            let eer_at_thr = (point_at_thr.fdr + (1.0 - point_at_thr.tdr)) / 2.0;
            assert!(
                (eer - eer_at_thr).abs() < 1e-6,
                "eer {eer} disagrees with the point at its threshold ({eer_at_thr})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "roc needs both populations")]
    fn empty_attack_population_panics() {
        RocCurve::from_scores(&[0.5], &[]);
    }

    #[test]
    #[should_panic(expected = "roc needs both populations")]
    fn both_populations_empty_panics() {
        RocCurve::from_scores(&[], &[]);
    }

    #[test]
    fn scores_at_one_are_never_flagged_below_max_threshold() {
        // A perfect score of 1.0 is flagged only at threshold > 1.0,
        // which the sweep never reaches.
        let legit = vec![1.0, 1.0];
        let attack = vec![0.0, 0.0];
        let m = DetectionMetrics::from_scores(&legit, &attack);
        assert!((m.auc - 1.0).abs() < 1e-4);
    }
}
