//! End-to-end trial generation.
//!
//! A *trial* is one presentation of a voice command to the defense: the
//! sound source (a legitimate user inside the room, or a thru-barrier
//! attacker behind it), its propagation to both the VA device and the
//! user's wearable, the two microphone recordings, and the wearable's
//! delayed recording start caused by the WiFi trigger.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use thrubarrier_acoustics::engine::RenderPath;
use thrubarrier_acoustics::loudspeaker::Loudspeaker;
use thrubarrier_acoustics::mic::Microphone;
use thrubarrier_acoustics::propagation::speech_gain_for_spl;
use thrubarrier_acoustics::room::{Room, RoomId};
use thrubarrier_acoustics::scene::AcousticPath;
use thrubarrier_attack::{AttackGenerator, AttackKind};
use thrubarrier_defense::sync;
use thrubarrier_dsp::AudioBuffer;
use thrubarrier_phoneme::command::{Command, CommandBank};
use thrubarrier_phoneme::speaker::SpeakerProfile;
use thrubarrier_phoneme::synth::Synthesizer;

/// Audio sample rate used throughout the evaluation.
pub const AUDIO_RATE: u32 = 16_000;

/// One recording pair presented to the defense.
#[derive(Debug, Clone)]
pub struct Trial {
    /// What the VA device recorded.
    pub va_recording: AudioBuffer,
    /// What the wearable recorded (starts late by the network delay).
    pub wearable_recording: AudioBuffer,
    /// Ground truth: was this a thru-barrier attack?
    pub is_attack: bool,
    /// The attack kind, if any.
    pub attack: Option<AttackKind>,
}

/// Physical parameters of a trial.
#[derive(Debug, Clone)]
pub struct TrialSettings {
    /// The room (and hence barrier).
    pub room: Room,
    /// Legitimate user's distance to the VA device in metres.
    pub user_to_va_m: f32,
    /// Wearable's distance to the user's mouth (worn on the wrist).
    pub mouth_to_wearable_m: f32,
    /// Barrier-to-VA distance for attacks, metres.
    pub barrier_to_va_m: f32,
    /// Barrier-to-wearable distance for attacks, metres.
    pub barrier_to_wearable_m: f32,
    /// Legitimate speech level in dB SPL (at 1 m).
    pub user_spl_db: f32,
    /// Attack playback level in dB SPL (at the barrier).
    pub attack_spl_db: f32,
}

impl Default for TrialSettings {
    fn default() -> Self {
        TrialSettings {
            room: Room::paper_room(RoomId::A),
            user_to_va_m: 2.0,
            mouth_to_wearable_m: 0.3,
            barrier_to_va_m: 2.0,
            barrier_to_wearable_m: 2.0,
            user_spl_db: 70.0,
            attack_spl_db: 75.0,
        }
    }
}

/// Generates trials for arbitrary speakers/commands/settings.
#[derive(Debug, Clone)]
pub struct TrialGenerator {
    synth: Synthesizer,
    attacks: AttackGenerator,
    va_mic: Microphone,
    wearable_mic: Microphone,
    render: RenderPath,
}

impl Default for TrialGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl TrialGenerator {
    /// Creates a generator with the paper's device roles: a smartphone
    /// (Nexus 6) emulating the VA, a smartwatch microphone on the
    /// wearable.
    pub fn new() -> Self {
        TrialGenerator {
            synth: Synthesizer::new(AUDIO_RATE),
            attacks: AttackGenerator::new(AUDIO_RATE),
            va_mic: Microphone::phone(),
            wearable_mic: Microphone::wearable(),
            render: RenderPath::default(),
        }
    }

    /// The same generator with an explicit acoustic rendering
    /// implementation for every trial's propagation (parity tests pin
    /// [`RenderPath::Staged`]).
    pub fn with_render(mut self, render: RenderPath) -> Self {
        self.render = render;
        self
    }

    /// The synthesizer used for command audio.
    pub fn synthesizer(&self) -> &Synthesizer {
        &self.synth
    }

    /// A legitimate trial: `speaker` utters `command` inside the room.
    pub fn legitimate<R: Rng + ?Sized>(
        &self,
        command: &Command,
        speaker: &SpeakerProfile,
        settings: &TrialSettings,
        rng: &mut R,
    ) -> Trial {
        let utterance = {
            let _span = thrubarrier_obs::span!("eval.build.synthesis");
            self.synth.synthesize_command(command, speaker, rng)
        };
        self.legitimate_with_utterance(utterance.audio.samples(), settings, rng)
    }

    /// Synthesizes `speaker`'s rendition of `command` at unit speech
    /// level. The result can be fed to
    /// [`TrialGenerator::legitimate_with_utterance`] any number of times,
    /// which is how the runner memoizes per-(speaker, command) audio.
    pub fn utterance_audio<R: Rng + ?Sized>(
        &self,
        command: &Command,
        speaker: &SpeakerProfile,
        rng: &mut R,
    ) -> Vec<f32> {
        let _span = thrubarrier_obs::span!("eval.build.synthesis");
        self.synth
            .synthesize_command(command, speaker, rng)
            .audio
            .into_samples()
    }

    /// Like [`TrialGenerator::legitimate`] but with a pre-synthesized
    /// utterance; `rng` drives only the trial physics (propagation,
    /// noise, trigger delay).
    pub fn legitimate_with_utterance<R: Rng + ?Sized>(
        &self,
        utterance: &[f32],
        settings: &TrialSettings,
        rng: &mut R,
    ) -> Trial {
        let gain = speech_gain_for_spl(settings.user_spl_db);
        let source: Vec<f32> = utterance.iter().map(|&v| v * gain).collect();
        let (va, wearable) = self.record_pair(
            &source,
            AcousticPath::direct(settings.room.clone(), settings.user_to_va_m)
                .with_render(self.render),
            AcousticPath::direct(settings.room.clone(), settings.mouth_to_wearable_m)
                .with_render(self.render),
            rng,
        );
        Trial {
            va_recording: va,
            wearable_recording: wearable,
            is_attack: false,
            attack: None,
        }
    }

    /// An attack trial: `adversary` attacks `victim`'s VA from behind
    /// the room's barrier.
    pub fn attack<R: Rng + ?Sized>(
        &self,
        kind: AttackKind,
        command: &Command,
        victim: &SpeakerProfile,
        adversary: &SpeakerProfile,
        settings: &TrialSettings,
        rng: &mut R,
    ) -> Trial {
        let sound = {
            let _span = thrubarrier_obs::span!("eval.build.attack_gen");
            self.attacks.generate(kind, command, victim, adversary, rng)
        };
        let mut source = sound.samples;
        // The adversary controls the playback volume directly: calibrate
        // the emitted level to the configured attack SPL.
        let gain = thrubarrier_acoustics::propagation::spl_to_rms(settings.attack_spl_db)
            / thrubarrier_dsp::stats::rms(&source).max(1e-9);
        for v in &mut source {
            *v *= gain;
        }
        let loudspeaker = sound.needs_loudspeaker.then(Loudspeaker::sound_bar);
        let va_path = AcousticPath {
            room: settings.room.clone(),
            through_barrier: true,
            distance_m: settings.barrier_to_va_m,
            loudspeaker,
            render: self.render,
        };
        let wearable_path = AcousticPath {
            room: settings.room.clone(),
            through_barrier: true,
            distance_m: settings.barrier_to_wearable_m,
            loudspeaker,
            render: self.render,
        };
        let (va, wearable) = self.record_pair(&source, va_path, wearable_path, rng);
        Trial {
            va_recording: va,
            wearable_recording: wearable,
            is_attack: true,
            attack: Some(kind),
        }
    }

    fn record_pair<R: Rng + ?Sized>(
        &self,
        source: &[f32],
        va_path: AcousticPath,
        wearable_path: AcousticPath,
        rng: &mut R,
    ) -> (AudioBuffer, AudioBuffer) {
        // The `eval.build.propagation` span lives inside the scene
        // engine now — one span per rendered path instead of per pair.
        let va = va_path.record(source, AUDIO_RATE, &self.va_mic, rng);
        let wearable_full = wearable_path.record(source, AUDIO_RATE, &self.wearable_mic, rng);
        // The wearable starts recording only once the WiFi trigger
        // arrives.
        let delay = sync::random_network_delay(rng);
        let wearable = sync::apply_trigger_delay(&wearable_full, delay);
        (va, wearable)
    }
}

/// A self-contained, seeded context for producing example trials — used
/// by the quickstart example, doctests and integration tests.
#[derive(Debug)]
pub struct TrialContext {
    /// The RNG driving every stochastic component.
    pub rng: StdRng,
    /// Trial physics.
    pub settings: TrialSettings,
    /// The victim (legitimate user).
    pub victim: SpeakerProfile,
    /// The adversary for random attacks.
    pub adversary: SpeakerProfile,
    generator: TrialGenerator,
    bank: CommandBank,
}

impl TrialContext {
    /// Creates a context with everything derived from one seed.
    pub fn seeded(seed: u64) -> Self {
        Self::seeded_with_render(seed, RenderPath::default())
    }

    /// Like [`TrialContext::seeded`] but with an explicit acoustic
    /// rendering implementation — the fixed-seed fused-vs-staged eval
    /// gates build one context per [`RenderPath`] from the same seed.
    pub fn seeded_with_render(seed: u64, render: RenderPath) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let victim = SpeakerProfile::random(&mut rng);
        let adversary = SpeakerProfile::random(&mut rng);
        TrialContext {
            rng,
            settings: TrialSettings::default(),
            victim,
            adversary,
            generator: TrialGenerator::new().with_render(render),
            bank: CommandBank::standard(),
        }
    }

    /// A legitimate trial on a random command.
    pub fn legitimate_trial(&mut self) -> Trial {
        let cmd = &self.bank.commands()[self.rng.gen_range(0..self.bank.len())];
        self.generator
            .legitimate(cmd, &self.victim, &self.settings, &mut self.rng)
    }

    /// A replay-attack trial on a random command.
    pub fn replay_attack_trial(&mut self) -> Trial {
        self.attack_trial(AttackKind::Replay)
    }

    /// An attack trial of the given kind on a random command.
    pub fn attack_trial(&mut self, kind: AttackKind) -> Trial {
        let cmd = &self.bank.commands()[self.rng.gen_range(0..self.bank.len())];
        self.generator.attack(
            kind,
            cmd,
            &self.victim,
            &self.adversary,
            &self.settings,
            &mut self.rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legitimate_trial_produces_nonsilent_pair() {
        let mut ctx = TrialContext::seeded(1);
        let t = ctx.legitimate_trial();
        assert!(!t.is_attack);
        assert!(t.va_recording.rms() > 1e-4);
        assert!(t.wearable_recording.rms() > 1e-4);
        // The wearable recording is shorter (late start).
        assert!(t.wearable_recording.len() < t.va_recording.len());
    }

    #[test]
    fn attack_trials_for_all_kinds() {
        let mut ctx = TrialContext::seeded(2);
        for kind in AttackKind::all() {
            let t = ctx.attack_trial(kind);
            assert!(t.is_attack);
            assert_eq!(t.attack, Some(kind));
            assert!(t.va_recording.rms() > 0.0);
        }
    }

    #[test]
    fn attack_recordings_are_quieter_than_user_recordings() {
        let mut ctx = TrialContext::seeded(3);
        let legit = ctx.legitimate_trial();
        let attack = ctx.replay_attack_trial();
        // Attack sound passes the barrier (>=7.5 dB loss) while the user
        // speaks inside; the wearable recording especially should differ.
        assert!(attack.wearable_recording.rms() < legit.wearable_recording.rms());
    }

    #[test]
    fn trials_are_reproducible_per_seed() {
        let t1 = TrialContext::seeded(5).legitimate_trial();
        let t2 = TrialContext::seeded(5).legitimate_trial();
        assert_eq!(t1.va_recording.samples(), t2.va_recording.samples());
    }

    #[test]
    fn default_settings_match_paper_geometry() {
        let s = TrialSettings::default();
        assert_eq!(s.barrier_to_va_m, 2.0);
        assert_eq!(s.barrier_to_wearable_m, 2.0);
        assert!(s.user_spl_db >= 65.0 && s.user_spl_db <= 75.0);
    }
}
