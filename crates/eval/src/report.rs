//! Result serialization: CSV writers for scores, ROC curves and metric
//! summaries, so external tooling (plots, notebooks) can consume every
//! experiment's output.

use crate::metrics::RocCurve;
use crate::runner::ScorePool;
use std::io::{self, Write};

/// One score record as written to CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRecord {
    /// `legitimate` or the attack-kind name.
    pub class: String,
    /// The detector's similarity score.
    pub score: f32,
}

/// Writes a score pool as CSV (`class,score`). Accepts `&mut W`.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_scores_csv<W: Write>(mut w: W, pool: &ScorePool) -> io::Result<()> {
    writeln!(w, "class,score")?;
    for &s in &pool.legitimate {
        writeln!(w, "legitimate,{s}")?;
    }
    for &(kind, s) in &pool.attacks {
        writeln!(w, "{},{s}", kind.name().replace(' ', "_"))?;
    }
    Ok(())
}

/// Writes a ROC curve as CSV (`threshold,fdr,tdr`).
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_roc_csv<W: Write>(mut w: W, roc: &RocCurve) -> io::Result<()> {
    writeln!(w, "threshold,fdr,tdr")?;
    for p in &roc.points {
        writeln!(w, "{},{},{}", p.threshold, p.fdr, p.tdr)?;
    }
    Ok(())
}

/// Formats a fixed-width text table from a header and rows — used by
/// drivers that print matrices of conditions.
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", h, w = widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RocCurve;
    use thrubarrier_attack::AttackKind;

    #[test]
    fn scores_csv_has_all_rows() {
        let pool = ScorePool {
            legitimate: vec![0.9, 0.8],
            attacks: vec![(AttackKind::Replay, 0.1)],
        };
        let mut bytes = Vec::new();
        write_scores_csv(&mut bytes, &pool).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("legitimate,0.9"));
        assert!(text.contains("replay_attack,0.1"));
    }

    #[test]
    fn roc_csv_has_101_points() {
        let roc = RocCurve::from_scores(&[0.8, 0.9], &[0.1, 0.2]);
        let mut bytes = Vec::new();
        write_roc_csv(&mut bytes, &roc).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 102);
        assert!(text.starts_with("threshold,fdr,tdr"));
    }

    #[test]
    fn text_table_aligns_columns() {
        let t = text_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        // The "value" column starts at the same offset in every line.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[1][col..col + 1], "1");
        assert_eq!(&lines[2][col..col + 1], "2");
    }
}
