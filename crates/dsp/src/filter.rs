//! IIR biquad and FIR filters, and fast frequency-domain convolution.
//!
//! The defense pipeline uses a high-pass biquad to strip body-motion
//! interference from accelerometer readings (Sec. IV-C), and the
//! anti-aliasing decimator in [`crate::resample`] is built on the
//! windowed-sinc FIR designed here. Long impulse responses (room
//! reverberation) convolve through [`overlap_save_convolve`] on the
//! planned real-input FFT instead of the O(N·M) direct form.

use crate::error::DspError;
use crate::fft::{half_spectrum_into, next_pow2};
use crate::window::WindowKind;

/// A second-order IIR section (biquad) in direct form I, with RBJ cookbook
/// designs for Butterworth-style low-pass/high-pass responses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    b0: f32,
    b1: f32,
    b2: f32,
    a1: f32,
    a2: f32,
}

impl Biquad {
    /// Designs a low-pass biquad with cutoff `fc` Hz at sample rate `fs`
    /// (Butterworth Q = 1/sqrt(2)).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidFilterParameter`] unless
    /// `0 < fc < fs / 2`.
    pub fn lowpass(fc: f32, fs: f32) -> Result<Self, DspError> {
        Self::design(fc, fs, false)
    }

    /// Designs a high-pass biquad with cutoff `fc` Hz at sample rate `fs`
    /// (Butterworth Q = 1/sqrt(2)).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidFilterParameter`] unless
    /// `0 < fc < fs / 2`.
    pub fn highpass(fc: f32, fs: f32) -> Result<Self, DspError> {
        Self::design(fc, fs, true)
    }

    fn design(fc: f32, fs: f32, high: bool) -> Result<Self, DspError> {
        if !(fc > 0.0 && fc < fs / 2.0) {
            return Err(DspError::InvalidFilterParameter(format!(
                "cutoff {fc} Hz must be in (0, {}) for fs={fs}",
                fs / 2.0
            )));
        }
        let q = std::f32::consts::FRAC_1_SQRT_2;
        let w0 = std::f32::consts::TAU * fc / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        let (b0, b1, b2) = if high {
            ((1.0 + cw) / 2.0, -(1.0 + cw), (1.0 + cw) / 2.0)
        } else {
            ((1.0 - cw) / 2.0, 1.0 - cw, (1.0 - cw) / 2.0)
        };
        Ok(Biquad {
            b0: b0 / a0,
            b1: b1 / a0,
            b2: b2 / a0,
            a1: (-2.0 * cw) / a0,
            a2: (1.0 - alpha) / a0,
        })
    }

    /// Filters the signal, returning a new vector (zero initial state).
    pub fn filter(&self, signal: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(signal.len());
        let (mut x1, mut x2, mut y1, mut y2) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for &x in signal {
            let y = self.b0 * x + self.b1 * x1 + self.b2 * x2 - self.a1 * y1 - self.a2 * y2;
            x2 = x1;
            x1 = x;
            y2 = y1;
            y1 = y;
            out.push(y);
        }
        out
    }

    /// Zero-phase filtering: forward pass, reverse, forward pass, reverse.
    /// Doubles the effective order and removes group delay; used where the
    /// timing of vibration features must stay aligned across devices.
    pub fn filtfilt(&self, signal: &[f32]) -> Vec<f32> {
        let mut fwd = self.filter(signal);
        fwd.reverse();
        let mut back = self.filter(&fwd);
        back.reverse();
        back
    }
}

/// Designs a windowed-sinc low-pass FIR filter with `taps` coefficients
/// (forced odd) and cutoff `fc` Hz at sample rate `fs`, using a Hamming
/// window.
///
/// # Errors
///
/// Returns [`DspError::InvalidFilterParameter`] unless `0 < fc < fs / 2`
/// and `taps >= 3`.
pub fn fir_lowpass(taps: usize, fc: f32, fs: f32) -> Result<Vec<f32>, DspError> {
    if !(fc > 0.0 && fc < fs / 2.0) {
        return Err(DspError::InvalidFilterParameter(format!(
            "cutoff {fc} Hz must be in (0, {})",
            fs / 2.0
        )));
    }
    if taps < 3 {
        return Err(DspError::InvalidFilterParameter(format!(
            "need at least 3 taps, got {taps}"
        )));
    }
    let taps = if taps.is_multiple_of(2) {
        taps + 1
    } else {
        taps
    };
    let mid = (taps / 2) as isize;
    let fc_norm = fc / fs;
    let win = WindowKind::Hamming.coefficients(taps);
    let mut h: Vec<f32> = (0..taps as isize)
        .map(|i| {
            let n = (i - mid) as f32;
            let sinc = if n == 0.0 {
                2.0 * fc_norm
            } else {
                (std::f32::consts::TAU * fc_norm * n).sin() / (std::f32::consts::PI * n)
            };
            sinc * win[i as usize]
        })
        .collect();
    // Normalize DC gain to 1.
    let sum: f32 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    Ok(h)
}

/// Convolves `signal` with FIR coefficients `h`, compensating the group
/// delay so the output is time-aligned with the input (same length).
pub fn fir_filter(signal: &[f32], h: &[f32]) -> Vec<f32> {
    if signal.is_empty() || h.is_empty() {
        return vec![0.0; signal.len()];
    }
    let delay = h.len() / 2;
    let mut out = vec![0.0f32; signal.len()];
    for (i, slot) in out.iter_mut().enumerate() {
        let center = i + delay;
        let mut acc = 0.0f32;
        for (k, &hk) in h.iter().enumerate() {
            if let Some(j) = center.checked_sub(k) {
                if j < signal.len() {
                    acc += hk * signal[j];
                }
            }
        }
        *slot = acc;
    }
    out
}

/// Full linear convolution of `signal` with impulse response `ir` via the
/// overlap-save method: the IR spectrum is computed once, then the signal
/// streams through fixed-size FFT blocks, each contributing
/// `n - (ir.len() - 1)` valid output samples after the time-aliased
/// prefix is discarded. Output length is `signal.len() + ir.len() - 1`
/// (the direct-form convolution's), and the FFT size is
/// `next_pow2(max(4·ir.len(), 256))` so per-sample cost stays
/// `O(log ir.len())` regardless of signal length.
///
/// Runs on the planned real-input transform ([`half_spectrum_into`]), so
/// steady state rebuilds no twiddle tables.
pub fn overlap_save_convolve(signal: &[f32], ir: &[f32]) -> Vec<f32> {
    if signal.is_empty() || ir.is_empty() {
        return Vec::new();
    }
    let m = ir.len();
    let out_len = signal.len() + m - 1;
    let n = next_pow2((4 * m).max(256));
    let step = n - (m - 1);
    let mut ir_spec = Vec::new();
    half_spectrum_into(ir, n, &mut ir_spec);
    let mut out = Vec::with_capacity(out_len);
    let mut block = vec![0.0f32; n];
    let mut spec = Vec::new();
    let mut time = Vec::new();
    let mut pos = 0usize;
    while pos < out_len {
        // The block covers input samples [pos - (m-1), pos + step);
        // indices outside the signal are zeros (they produce the leading
        // ramp of the first block and the convolution tail of the last).
        for (j, slot) in block.iter_mut().enumerate() {
            let idx = pos as isize + j as isize - (m as isize - 1);
            *slot = if idx >= 0 && (idx as usize) < signal.len() {
                signal[idx as usize]
            } else {
                0.0
            };
        }
        half_spectrum_into(&block, n, &mut spec);
        for (v, &h) in spec.iter_mut().zip(&ir_spec) {
            *v *= h;
        }
        time.clear();
        crate::fft::real_inverse_into(&spec, n, &mut time);
        let take = step.min(out_len - pos);
        out.extend_from_slice(&time[m - 1..m - 1 + take]);
        pos += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, stats};

    #[test]
    fn lowpass_rejects_bad_cutoff() {
        assert!(Biquad::lowpass(0.0, 100.0).is_err());
        assert!(Biquad::lowpass(60.0, 100.0).is_err());
        assert!(Biquad::lowpass(10.0, 100.0).is_ok());
    }

    #[test]
    fn lowpass_attenuates_high_tone() {
        let fs = 16_000.0;
        let bq = Biquad::lowpass(500.0, fs).unwrap();
        let lo = gen::sine(100.0, 1.0, 16_000, 0.5);
        let hi = gen::sine(4_000.0, 1.0, 16_000, 0.5);
        let lo_out = stats::rms(&bq.filter(&lo));
        let hi_out = stats::rms(&bq.filter(&hi));
        assert!(lo_out > 0.6, "low tone should pass: rms={lo_out}");
        assert!(hi_out < 0.05, "high tone should be blocked: rms={hi_out}");
    }

    #[test]
    fn highpass_attenuates_low_tone() {
        let fs = 200.0;
        let bq = Biquad::highpass(5.0, fs).unwrap();
        let lo = gen::sine(1.0, 1.0, 200, 5.0);
        let hi = gen::sine(40.0, 1.0, 200, 5.0);
        let lo_out = stats::rms(&bq.filter(&lo));
        let hi_out = stats::rms(&bq.filter(&hi));
        assert!(lo_out < 0.1, "1 Hz should be blocked: rms={lo_out}");
        assert!(hi_out > 0.6, "40 Hz should pass: rms={hi_out}");
    }

    #[test]
    fn filtfilt_preserves_alignment_of_peak() {
        // An impulse filtered zero-phase keeps its peak location.
        let mut sig = vec![0.0f32; 401];
        sig[200] = 1.0;
        let bq = Biquad::lowpass(2_000.0, 16_000.0).unwrap();
        let out = bq.filtfilt(&sig);
        assert_eq!(stats::argmax(&out), Some(200));
    }

    #[test]
    fn fir_lowpass_dc_gain_is_unity() {
        let h = fir_lowpass(63, 80.0, 16_000.0).unwrap();
        let dc = vec![1.0f32; 400];
        let out = fir_filter(&dc, &h);
        // Middle of the output should be ~1.
        assert!((out[200] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn fir_lowpass_blocks_above_cutoff() {
        let h = fir_lowpass(127, 80.0, 16_000.0).unwrap();
        let hi = gen::sine(2_000.0, 1.0, 16_000, 0.25);
        let out = fir_filter(&hi, &h);
        assert!(stats::rms(&out) < 0.02);
    }

    #[test]
    fn fir_even_tap_request_is_promoted_to_odd() {
        let h = fir_lowpass(64, 80.0, 16_000.0).unwrap();
        assert_eq!(h.len(), 65);
    }

    #[test]
    fn fir_filter_empty_inputs() {
        assert!(fir_filter(&[], &[1.0]).is_empty());
        assert_eq!(fir_filter(&[1.0, 2.0], &[]), vec![0.0, 0.0]);
    }

    #[test]
    fn fir_rejects_too_few_taps() {
        assert!(fir_lowpass(2, 80.0, 16_000.0).is_err());
    }

    /// Direct O(N·M) reference convolution.
    fn naive_convolve(signal: &[f32], ir: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; signal.len() + ir.len() - 1];
        for (i, &s) in signal.iter().enumerate() {
            for (k, &h) in ir.iter().enumerate() {
                out[i + k] += s * h;
            }
        }
        out
    }

    #[test]
    fn overlap_save_matches_direct_convolution() {
        // Signal lengths straddling one/many blocks and IR lengths
        // straddling the FFT-size floor.
        for (sig_len, ir_len) in [(50usize, 3usize), (400, 64), (1_000, 129), (257, 257)] {
            let signal: Vec<f32> = (0..sig_len)
                .map(|i| ((i * 37) % 19) as f32 * 0.1 - 0.9)
                .collect();
            let ir: Vec<f32> = (0..ir_len)
                .map(|k| ((k * 11) % 7) as f32 * 0.05 - 0.15)
                .collect();
            let fast = overlap_save_convolve(&signal, &ir);
            let reference = naive_convolve(&signal, &ir);
            assert_eq!(fast.len(), reference.len());
            let scale = reference.iter().fold(1.0f32, |a, &b| a.max(b.abs()));
            for (i, (f, r)) in fast.iter().zip(&reference).enumerate() {
                assert!(
                    (f - r).abs() / scale < 1e-4,
                    "sig {sig_len} ir {ir_len} sample {i}: {f} vs {r}"
                );
            }
        }
    }

    #[test]
    fn overlap_save_empty_inputs() {
        assert!(overlap_save_convolve(&[], &[1.0]).is_empty());
        assert!(overlap_save_convolve(&[1.0], &[]).is_empty());
    }

    #[test]
    fn overlap_save_impulse_ir_is_identity() {
        let signal: Vec<f32> = (0..300).map(|i| (i as f32 * 0.1).sin()).collect();
        let out = overlap_save_convolve(&signal, &[1.0]);
        assert_eq!(out.len(), signal.len());
        for (a, b) in signal.iter().zip(&out) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
