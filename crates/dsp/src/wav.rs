//! Minimal WAV (RIFF, PCM16) reading and writing.
//!
//! Lets users export any signal in the workspace — synthesized commands,
//! attack sounds, barrier-filtered recordings — for listening or
//! external analysis, and import real recordings to run through the
//! defense. Only mono/stereo PCM16 is supported; that is what every
//! tool accepts.

use crate::buffer::AudioBuffer;
use std::io::{self, Read, Write};
use std::path::Path;

/// Writes a mono PCM16 WAV file. Samples are clamped to `[-1, 1]`.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_wav<P: AsRef<Path>>(path: P, buffer: &AudioBuffer) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write_wav_to(&mut w, buffer)
}

/// Writes a mono PCM16 WAV stream to any writer. Accepts `&mut W` as
/// well, thanks to the blanket `Write` impl for mutable references.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_wav_to<W: Write>(mut w: W, buffer: &AudioBuffer) -> io::Result<()> {
    let n = buffer.len() as u32;
    let sample_rate = buffer.sample_rate();
    let data_bytes = n * 2;
    let byte_rate = sample_rate * 2;
    w.write_all(b"RIFF")?;
    w.write_all(&(36 + data_bytes).to_le_bytes())?;
    w.write_all(b"WAVE")?;
    w.write_all(b"fmt ")?;
    w.write_all(&16u32.to_le_bytes())?;
    w.write_all(&1u16.to_le_bytes())?; // PCM
    w.write_all(&1u16.to_le_bytes())?; // mono
    w.write_all(&sample_rate.to_le_bytes())?;
    w.write_all(&byte_rate.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // block align
    w.write_all(&16u16.to_le_bytes())?; // bits per sample
    w.write_all(b"data")?;
    w.write_all(&data_bytes.to_le_bytes())?;
    for &s in buffer.samples() {
        let v = (s.clamp(-1.0, 1.0) * i16::MAX as f32) as i16;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a PCM16 WAV file (mono or stereo; stereo is downmixed).
///
/// # Errors
///
/// Returns `InvalidData` for malformed or unsupported files, and
/// propagates filesystem errors.
pub fn read_wav<P: AsRef<Path>>(path: P) -> io::Result<AudioBuffer> {
    let file = std::fs::File::open(path)?;
    let mut r = std::io::BufReader::new(file);
    read_wav_from(&mut r)
}

/// Reads a PCM16 WAV stream from any reader. Accepts `&mut R` as well.
///
/// # Errors
///
/// Returns `InvalidData` for malformed or unsupported streams.
pub fn read_wav_from<R: Read>(mut r: R) -> io::Result<AudioBuffer> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    if &header[0..4] != b"RIFF" || &header[8..12] != b"WAVE" {
        return Err(bad("not a RIFF/WAVE file"));
    }
    let mut sample_rate = 0u32;
    let mut channels = 0u16;
    loop {
        let mut chunk = [0u8; 8];
        r.read_exact(&mut chunk)?;
        let size = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes")) as usize;
        match &chunk[0..4] {
            b"fmt " => {
                let mut fmt = vec![0u8; size];
                r.read_exact(&mut fmt)?;
                let format = u16::from_le_bytes(fmt[0..2].try_into().expect("2 bytes"));
                if format != 1 {
                    return Err(bad("only PCM WAV is supported"));
                }
                channels = u16::from_le_bytes(fmt[2..4].try_into().expect("2 bytes"));
                sample_rate = u32::from_le_bytes(fmt[4..8].try_into().expect("4 bytes"));
                let bits = u16::from_le_bytes(fmt[14..16].try_into().expect("2 bytes"));
                if bits != 16 {
                    return Err(bad("only 16-bit WAV is supported"));
                }
                if channels == 0 || channels > 2 {
                    return Err(bad("only mono/stereo WAV is supported"));
                }
            }
            b"data" => {
                if sample_rate == 0 {
                    return Err(bad("data chunk before fmt chunk"));
                }
                let mut data = vec![0u8; size];
                r.read_exact(&mut data)?;
                let ch = channels as usize;
                let frames = size / 2 / ch;
                let mut samples = Vec::with_capacity(frames);
                for f in 0..frames {
                    let mut acc = 0.0f32;
                    for c in 0..ch {
                        let i = (f * ch + c) * 2;
                        let v = i16::from_le_bytes(data[i..i + 2].try_into().expect("2 bytes"));
                        acc += v as f32 / i16::MAX as f32;
                    }
                    samples.push(acc / ch as f32);
                }
                return Ok(AudioBuffer::new(samples, sample_rate));
            }
            _ => {
                // Skip unknown chunks (LIST, fact, ...).
                let mut skip = vec![0u8; size];
                r.read_exact(&mut skip)?;
            }
        }
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_preserves_signal() {
        let original = AudioBuffer::new(gen::sine(440.0, 0.5, 16_000, 0.1), 16_000);
        let mut bytes = Vec::new();
        write_wav_to(&mut bytes, &original).unwrap();
        let back = read_wav_from(bytes.as_slice()).unwrap();
        assert_eq!(back.sample_rate(), 16_000);
        assert_eq!(back.len(), original.len());
        for (a, b) in original.samples().iter().zip(back.samples()) {
            assert!((a - b).abs() < 1.0 / 16_000.0, "{a} vs {b}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("thrubarrier_wav_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tone.wav");
        let original = AudioBuffer::new(gen::sine(1_000.0, 0.3, 8_000, 0.05), 8_000);
        write_wav(&path, &original).unwrap();
        let back = read_wav(&path).unwrap();
        assert_eq!(back.sample_rate(), 8_000);
        assert_eq!(back.len(), original.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clamps_out_of_range_samples() {
        let loud = AudioBuffer::new(vec![2.0, -2.0], 8_000);
        let mut bytes = Vec::new();
        write_wav_to(&mut bytes, &loud).unwrap();
        let back = read_wav_from(bytes.as_slice()).unwrap();
        assert!((back.samples()[0] - 1.0).abs() < 1e-3);
        assert!((back.samples()[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn rejects_non_wav_data() {
        let junk = b"this is not a wav file at all.....";
        assert!(read_wav_from(junk.as_slice()).is_err());
    }

    #[test]
    fn rejects_unsupported_formats() {
        // Build a header claiming IEEE float format (3).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RIFF");
        bytes.extend_from_slice(&36u32.to_le_bytes());
        bytes.extend_from_slice(b"WAVE");
        bytes.extend_from_slice(b"fmt ");
        bytes.extend_from_slice(&16u32.to_le_bytes());
        bytes.extend_from_slice(&3u16.to_le_bytes()); // float
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&16_000u32.to_le_bytes());
        bytes.extend_from_slice(&64_000u32.to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&32u16.to_le_bytes());
        assert!(read_wav_from(bytes.as_slice()).is_err());
    }

    #[test]
    fn stereo_is_downmixed() {
        // Hand-build a 2-frame stereo file: L=1.0/R=0.0 then L=0.0/R=1.0.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RIFF");
        bytes.extend_from_slice(&(36u32 + 8).to_le_bytes());
        bytes.extend_from_slice(b"WAVE");
        bytes.extend_from_slice(b"fmt ");
        bytes.extend_from_slice(&16u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes()); // stereo
        bytes.extend_from_slice(&8_000u32.to_le_bytes());
        bytes.extend_from_slice(&32_000u32.to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&16u16.to_le_bytes());
        bytes.extend_from_slice(b"data");
        bytes.extend_from_slice(&8u32.to_le_bytes());
        for v in [i16::MAX, 0, 0, i16::MAX] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let back = read_wav_from(bytes.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert!((back.samples()[0] - 0.5).abs() < 1e-3);
        assert!((back.samples()[1] - 0.5).abs() < 1e-3);
    }
}
