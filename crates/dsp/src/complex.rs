//! Minimal complex-number type used by the FFT and frequency-domain filters.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number with `f32` components.
///
/// Only the operations needed by this workspace's FFT and frequency-domain
/// processing are provided; this is not a general-purpose numerics type.
///
/// # Example
///
/// ```
/// use thrubarrier_dsp::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!(z * Complex::I, Complex::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real component.
    pub re: f32,
    /// Imaginary component.
    pub im: f32,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f32) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates the unit-magnitude complex number `e^{i theta}`.
    #[inline]
    pub fn from_polar(magnitude: f32, phase: f32) -> Self {
        Complex {
            re: magnitude * phase.cos(),
            im: magnitude * phase.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (Euclidean norm).
    #[inline]
    pub fn norm(self) -> f32 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; cheaper than [`Complex::norm`] when comparing
    /// energies.
    #[inline]
    pub fn norm_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f32) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl From<f32> for Complex {
    fn from(re: f32) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f32) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f32> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f32) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sq();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6
    }

    #[test]
    fn addition_and_subtraction_are_componentwise() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
    }

    #[test]
    fn division_is_inverse_of_multiplication() {
        let a = Complex::new(0.3, -1.7);
        let b = Complex::new(2.0, 0.25);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f32::consts::FRAC_PI_3);
        assert!((z.norm() - 2.0).abs() < 1e-6);
        assert!((z.arg() - std::f32::consts::FRAC_PI_3).abs() < 1e-6);
    }

    #[test]
    fn conjugate_negates_imaginary_part() {
        assert_eq!(Complex::new(1.0, 2.0).conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn norm_sq_equals_norm_squared() {
        let z = Complex::new(-2.5, 1.5);
        assert!((z.norm_sq() - z.norm() * z.norm()).abs() < 1e-5);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }
}
