//! Error type for DSP operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the DSP primitives in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// An FFT was requested for a length that is not a power of two.
    FftLengthNotPowerOfTwo(usize),
    /// A window/frame configuration was inconsistent (e.g. zero-length
    /// window or hop).
    InvalidFrameConfig {
        /// Window length in samples.
        window: usize,
        /// Hop length in samples.
        hop: usize,
    },
    /// A filter was configured with an unusable parameter (e.g. cutoff
    /// outside `(0, fs/2)`).
    InvalidFilterParameter(String),
    /// An operation received an empty input where at least one sample is
    /// required.
    EmptyInput(&'static str),
    /// Two inputs that must agree in dimension did not.
    DimensionMismatch {
        /// Dimension of the first operand.
        left: usize,
        /// Dimension of the second operand.
        right: usize,
    },
    /// A mel/MFCC configuration was invalid (e.g. more coefficients than
    /// filters).
    InvalidMelConfig(String),
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::FftLengthNotPowerOfTwo(n) => {
                write!(f, "fft length {n} is not a power of two")
            }
            DspError::InvalidFrameConfig { window, hop } => {
                write!(f, "invalid frame config: window={window}, hop={hop}")
            }
            DspError::InvalidFilterParameter(msg) => {
                write!(f, "invalid filter parameter: {msg}")
            }
            DspError::EmptyInput(what) => write!(f, "empty input: {what}"),
            DspError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            DspError::InvalidMelConfig(msg) => write!(f, "invalid mel config: {msg}"),
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let variants: Vec<DspError> = vec![
            DspError::FftLengthNotPowerOfTwo(3),
            DspError::InvalidFrameConfig { window: 0, hop: 1 },
            DspError::InvalidFilterParameter("cutoff".into()),
            DspError::EmptyInput("signal"),
            DspError::DimensionMismatch { left: 2, right: 3 },
            DspError::InvalidMelConfig("filters".into()),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
