//! Analysis window functions for framed signal processing.

/// Supported analysis window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowKind {
    /// Rectangular (no tapering).
    Rectangular,
    /// Hann window — the default for STFT analysis in this workspace.
    #[default]
    Hann,
    /// Hamming window — used for MFCC frames, matching common speech
    /// front-ends.
    Hamming,
    /// Blackman window — stronger sidelobe suppression.
    Blackman,
}

impl WindowKind {
    /// Returns the window coefficients of length `n`.
    ///
    /// A zero-length request returns an empty vector; a length-1 window is
    /// the single coefficient `1.0`.
    ///
    /// # Example
    ///
    /// ```
    /// use thrubarrier_dsp::window::WindowKind;
    ///
    /// let w = WindowKind::Hann.coefficients(5);
    /// assert_eq!(w.len(), 5);
    /// assert!((w[2] - 1.0).abs() < 1e-6); // symmetric, peak at center
    /// ```
    pub fn coefficients(self, n: usize) -> Vec<f32> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let m = (n - 1) as f32;
        (0..n)
            .map(|i| {
                let x = i as f32 / m;
                match self {
                    WindowKind::Rectangular => 1.0,
                    WindowKind::Hann => 0.5 - 0.5 * (std::f32::consts::TAU * x).cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * (std::f32::consts::TAU * x).cos(),
                    WindowKind::Blackman => {
                        0.42 - 0.5 * (std::f32::consts::TAU * x).cos()
                            + 0.08 * (2.0 * std::f32::consts::TAU * x).cos()
                    }
                }
            })
            .collect()
    }

    /// Multiplies `frame` by the window in place.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != coeffs.len()` would be violated — the
    /// coefficients are generated to match `frame.len()`.
    pub fn apply(self, frame: &mut [f32]) {
        let coeffs = self.coefficients(frame.len());
        for (x, w) in frame.iter_mut().zip(coeffs) {
            *x *= w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_windows_are_in_unit_range() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ] {
            for &w in &kind.coefficients(33) {
                assert!((-1e-6..=1.0 + 1e-6).contains(&w), "{kind:?} -> {w}");
            }
        }
    }

    #[test]
    fn windows_are_symmetric() {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = kind.coefficients(40);
            for i in 0..20 {
                assert!((w[i] - w[39 - i]).abs() < 1e-5, "{kind:?} at {i}");
            }
        }
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let w = WindowKind::Hann.coefficients(16);
        assert!(w[0].abs() < 1e-6);
        assert!(w[15].abs() < 1e-6);
    }

    #[test]
    fn rectangular_is_all_ones() {
        assert!(WindowKind::Rectangular
            .coefficients(10)
            .iter()
            .all(|&w| w == 1.0));
    }

    #[test]
    fn degenerate_lengths() {
        assert!(WindowKind::Hann.coefficients(0).is_empty());
        assert_eq!(WindowKind::Hann.coefficients(1), vec![1.0]);
    }

    #[test]
    fn apply_scales_frame() {
        let mut frame = vec![2.0; 8];
        WindowKind::Hann.apply(&mut frame);
        assert!(frame[0].abs() < 1e-6);
        assert!(frame[3] > 1.5);
    }
}
