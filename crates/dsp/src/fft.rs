//! Radix-2 fast Fourier transform and helpers.
//!
//! The in-place iterative Cooley–Tukey algorithm is used. Lengths must be
//! powers of two; [`next_pow2`] and [`fft_padded`] help with arbitrary
//! input lengths.

use crate::complex::Complex;
use crate::error::DspError;

/// Returns the smallest power of two that is `>= n` (and at least 1).
///
/// # Example
///
/// ```
/// assert_eq!(thrubarrier_dsp::fft::next_pow2(500), 512);
/// assert_eq!(thrubarrier_dsp::fft::next_pow2(512), 512);
/// assert_eq!(thrubarrier_dsp::fft::next_pow2(0), 1);
/// ```
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT.
///
/// # Errors
///
/// Returns [`DspError::FftLengthNotPowerOfTwo`] if `buf.len()` is not a
/// power of two.
pub fn fft_in_place(buf: &mut [Complex]) -> Result<(), DspError> {
    transform(buf, false)
}

/// In-place inverse FFT (includes the `1/N` normalization).
///
/// # Errors
///
/// Returns [`DspError::FftLengthNotPowerOfTwo`] if `buf.len()` is not a
/// power of two.
pub fn ifft_in_place(buf: &mut [Complex]) -> Result<(), DspError> {
    transform(buf, true)?;
    let n = buf.len() as f32;
    for v in buf.iter_mut() {
        *v = *v / n;
    }
    Ok(())
}

fn transform(buf: &mut [Complex], inverse: bool) -> Result<(), DspError> {
    let n = buf.len();
    if !n.is_power_of_two() {
        return Err(DspError::FftLengthNotPowerOfTwo(n));
    }
    if n <= 1 {
        return Ok(());
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0f32 } else { -1.0f32 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f32::consts::TAU / len as f32;
        let wlen = Complex::from_polar(1.0, ang);
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..half {
                let a = buf[start + k];
                let b = buf[start + k + half] * w;
                buf[start + k] = a + b;
                buf[start + k + half] = a - b;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Forward FFT of a real signal, zero-padded to the next power of two (or
/// to `min_len`, whichever is larger). Returns the full complex spectrum.
///
/// # Example
///
/// ```
/// let sig = vec![1.0_f32; 300];
/// let spec = thrubarrier_dsp::fft::fft_padded(&sig, 0);
/// assert_eq!(spec.len(), 512);
/// ```
pub fn fft_padded(signal: &[f32], min_len: usize) -> Vec<Complex> {
    let n = next_pow2(signal.len().max(min_len));
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
    buf.resize(n, Complex::ZERO);
    // Length is a power of two by construction.
    fft_in_place(&mut buf).expect("padded length is a power of two");
    buf
}

/// Magnitude spectrum (first `N/2 + 1` bins) of a real signal, zero-padded
/// to a power of two.
///
/// Bin `k` corresponds to frequency `k * sample_rate / N` where `N` is the
/// padded length; use [`bin_frequencies`] to recover the axis.
pub fn magnitude_spectrum(signal: &[f32], min_len: usize) -> Vec<f32> {
    let spec = fft_padded(signal, min_len);
    let half = spec.len() / 2 + 1;
    spec[..half].iter().map(|c| c.norm()).collect()
}

/// Frequencies (Hz) of the bins returned by [`magnitude_spectrum`] for a
/// padded FFT length `n_fft` at `sample_rate`.
pub fn bin_frequencies(n_fft: usize, sample_rate: u32) -> Vec<f32> {
    let half = n_fft / 2 + 1;
    (0..half)
        .map(|k| k as f32 * sample_rate as f32 / n_fft as f32)
        .collect()
}

/// Applies a frequency-domain gain curve to a real signal and returns the
/// filtered real signal (same length as the input).
///
/// `gain` is sampled at the non-negative FFT bin frequencies via the
/// provided closure (argument: frequency in Hz). The negative-frequency
/// half is mirrored to keep the output real. This is how barrier
/// transmission and transducer responses are applied throughout the
/// workspace.
///
/// # Example
///
/// ```
/// use thrubarrier_dsp::{fft, gen};
///
/// let sig = gen::sine(3_000.0, 0.1, 16_000, 1.0);
/// // Brick-wall low-pass at 1 kHz should annihilate a 3 kHz tone.
/// let out = fft::apply_frequency_response(&sig, 16_000, |f| if f < 1_000.0 { 1.0 } else { 0.0 });
/// let rms_out = thrubarrier_dsp::stats::rms(&out);
/// assert!(rms_out < 0.05);
/// ```
pub fn apply_frequency_response<F>(signal: &[f32], sample_rate: u32, gain: F) -> Vec<f32>
where
    F: Fn(f32) -> f32,
{
    if signal.is_empty() {
        return Vec::new();
    }
    let n = next_pow2(signal.len());
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
    buf.resize(n, Complex::ZERO);
    fft_in_place(&mut buf).expect("padded length is a power of two");
    let fs = sample_rate as f32;
    for (k, v) in buf.iter_mut().enumerate() {
        // Map bin index to signed frequency, then take |f|.
        let f = if k <= n / 2 {
            k as f32 * fs / n as f32
        } else {
            (n - k) as f32 * fs / n as f32
        };
        let g = gain(f);
        *v = v.scale(g);
    }
    ifft_in_place(&mut buf).expect("padded length is a power of two");
    buf[..signal.len()].iter().map(|c| c.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn rejects_non_power_of_two() {
        let mut buf = vec![Complex::ZERO; 3];
        assert_eq!(
            fft_in_place(&mut buf),
            Err(DspError::FftLengthNotPowerOfTwo(3))
        );
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::ZERO; 8];
        buf[0] = Complex::ONE;
        fft_in_place(&mut buf).unwrap();
        for v in &buf {
            assert!((v.re - 1.0).abs() < 1e-5 && v.im.abs() < 1e-5);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let sig: Vec<f32> = (0..64).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let mut buf: Vec<Complex> = sig.iter().map(|&x| Complex::from_real(x)).collect();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (orig, got) in sig.iter().zip(&buf) {
            assert!((orig - got.re).abs() < 1e-3);
            assert!(got.im.abs() < 1e-3);
        }
    }

    #[test]
    fn sine_peaks_at_expected_bin() {
        let fs = 16_000u32;
        let sig = gen::sine(1_000.0, 1.0, fs, 0.128); // 2048 samples
        let mags = magnitude_spectrum(&sig, 0);
        let n_fft = 2048;
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let peak_hz = peak as f32 * fs as f32 / n_fft as f32;
        assert!((peak_hz - 1_000.0).abs() < 10.0, "peak at {peak_hz} Hz");
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let sig: Vec<f32> = (0..128).map(|i| (i as f32 * 0.37).sin()).collect();
        let time_energy: f32 = sig.iter().map(|x| x * x).sum();
        let spec = fft_padded(&sig, 0);
        let freq_energy: f32 = spec.iter().map(|c| c.norm_sq()).sum::<f32>() / spec.len() as f32;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-3);
    }

    #[test]
    fn frequency_response_passes_in_band_tone() {
        let sig = gen::sine(400.0, 0.1, 16_000, 1.0);
        let out = apply_frequency_response(&sig, 16_000, |f| if f < 1_000.0 { 1.0 } else { 0.0 });
        let in_rms = crate::stats::rms(&sig);
        let out_rms = crate::stats::rms(&out);
        assert!((in_rms - out_rms).abs() / in_rms < 0.05);
    }

    #[test]
    fn frequency_response_output_matches_input_length() {
        let sig = vec![0.5_f32; 777];
        let out = apply_frequency_response(&sig, 8_000, |_| 1.0);
        assert_eq!(out.len(), 777);
    }

    #[test]
    fn frequency_response_empty_input() {
        let out = apply_frequency_response(&[], 8_000, |_| 1.0);
        assert!(out.is_empty());
    }

    #[test]
    fn bin_frequencies_span_zero_to_nyquist() {
        let f = bin_frequencies(64, 200);
        assert_eq!(f.len(), 33);
        assert_eq!(f[0], 0.0);
        assert!((f[32] - 100.0).abs() < 1e-4);
    }
}
